// Electoral campaign targeting (paper §I: "each community represents a
// state of population").
//
// Voters influence each other online; states are disjoint voter blocks won
// outright when half the (modeled) voters are persuaded — and a won state
// pays its electoral votes, all or nothing. That all-or-nothing payoff is
// precisely the non-submodular community objective: the marginal value of
// one more persuaded voter is zero until the state tips.
//
//   build/examples/election_campaign [--k 20] [--states 12]
#include <iomanip>
#include <iostream>
#include <vector>

#include "imc/imc.h"

int main(int argc, char** argv) {
  using namespace imc;
  const ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 20));
  const auto states = static_cast<CommunityId>(args.get_int("states", 12));

  std::cout << "=== Electoral campaign planner ===\n\n";

  // Online discourse graph with strong regional structure: voters mostly
  // follow in-state voices (SBM blocks = states) plus national influencers.
  Rng rng(1787);
  SbmConfig sbm;
  sbm.nodes = 1200;
  sbm.blocks = states;
  sbm.p_in = 0.08;
  sbm.p_out = 0.002;
  EdgeList edges = sbm_edges(sbm, rng);
  // Persuasion is contagious within echo chambers: a fixed per-edge
  // probability (not weighted cascade) so that in-state cascades can
  // actually percolate and states can tip.
  apply_uniform_weights(edges, 0.12);
  const Graph graph(sbm.nodes, edges);

  // States from the planted blocks; electoral votes proportional to turnout
  // (population), victory at 50%.
  std::vector<CommunityId> assignment(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    assignment[v] = sbm_block_of(v, states);
  }
  CommunitySet state_set =
      CommunitySet::from_assignment(graph.node_count(), assignment);
  state_set = cap_community_sizes(state_set, 50, rng);  // mask-width split
  apply_population_benefits(state_set);
  apply_fraction_thresholds(state_set, 0.3);

  const BenefitOracle oracle(graph, state_set, [] {
    DagumOptions options;
    options.max_samples = 60000;  // keep the demo responsive
    return options;
  }());

  std::cout << "discourse graph: " << graph.summary() << "\n"
            << "state blocks:    " << state_set.summary() << "\n\n";

  // Compare the full strategy matrix on the electoral objective.
  struct Row {
    const char* name;
    std::vector<NodeId> seeds;
  };
  std::vector<Row> rows;

  UbgSolver ubg;
  MafSolver maf;
  ImcafConfig config;
  config.max_samples = 16000;
  rows.push_back({"UBG  (ours)",
                  imcaf_solve(graph, state_set, k, ubg, config).seeds});
  rows.push_back({"MAF  (ours)",
                  imcaf_solve(graph, state_set, k, maf, config).seeds});
  rows.push_back({"HBC", hbc_select(graph, state_set, k)});
  Rng ks_rng(3);
  rows.push_back({"KS", ks_select(state_set, k, ks_rng)});
  rows.push_back({"IM (spread)", im_ris_select(graph, k).seeds});
  rows.push_back({"Degree", degree_select(graph, k)});

  std::cout << std::left << std::setw(14) << "strategy" << std::right
            << std::setw(22) << "expected elect. votes" << "\n"
            << std::string(36, '-') << "\n";
  for (const Row& row : rows) {
    std::cout << std::left << std::setw(14) << row.name << std::right
              << std::setw(22) << std::fixed << std::setprecision(2)
              << oracle.benefit(row.seeds) << "\n";
  }
  std::cout << "\ntotal electoral votes in play: "
            << state_set.total_benefit() << "\n"
            << "\nNote how spread-maximizing strategies waste persuasion on "
               "safe or hopeless\nstates; the community-level planner "
               "concentrates on tippable blocks.\n";
  return 0;
}
