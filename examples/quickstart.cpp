// Quickstart: the five-minute tour of the imc public API.
//
//   build/examples/quickstart [--dataset facebook] [--k 10] [--scale 0.2]
//
// 1. Build (or load) a graph.
// 2. Detect communities and assign thresholds/benefits.
// 3. Run IMCAF with the UBG solver.
// 4. Evaluate the chosen seeds with an independent estimator.
#include <iostream>

#include "imc/imc.h"

int main(int argc, char** argv) {
  using namespace imc;
  const ArgParser args(argc, argv);
  const std::string dataset_name = args.get_string("dataset", "facebook");
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 10));
  const double scale = args.get_double("scale", 0.2);

  // --- 1. Graph -------------------------------------------------------------
  // Synthetic SNAP stand-in with weighted-cascade IC probabilities. To use
  // your own data instead:
  //   auto loaded = load_edge_list("my_graph.txt");
  //   apply_weighted_cascade(loaded.edges, loaded.node_count);
  //   Graph graph(loaded.node_count, loaded.edges);
  const Graph graph = make_dataset(dataset_from_name(dataset_name), scale);
  std::cout << "graph:       " << graph.summary() << "\n";

  // --- 2. Communities ---------------------------------------------------------
  CommunityBuildConfig community_config;
  community_config.method = CommunityMethod::kLouvain;
  community_config.size_cap = 8;                      // the paper's s
  community_config.regime = ThresholdRegime::kFractionOfPopulation;
  community_config.threshold_fraction = 0.5;          // h_i = 50% of |C_i|
  const CommunitySet communities = build_communities(graph, community_config);
  std::cout << "communities: " << communities.summary() << "\n";

  // --- 3. Solve ----------------------------------------------------------------
  UbgSolver solver;  // or MafSolver / BtSolver / MbSolver
  ImcafConfig imcaf_config;
  imcaf_config.max_samples = 20000;  // practical cap below the Ψ worst case
  const ImcafResult result =
      imcaf_solve(graph, communities, k, solver, imcaf_config);

  std::cout << "seeds (k=" << k << "):";
  for (const NodeId v : result.seeds) std::cout << ' ' << v;
  std::cout << "\nRIC samples used: " << result.samples_used
            << "  stop stages: " << result.stop_stages
            << "  runtime: " << result.runtime_seconds << "s\n";

  // --- 4. Independent evaluation ------------------------------------------------
  const double benefit = BenefitOracle(graph, communities).benefit(result.seeds);
  std::cout << "expected benefit of influenced communities: " << benefit
            << " (of total " << communities.total_benefit() << ")\n";

  // Cross-check with plain forward Monte-Carlo simulation.
  MonteCarloOptions mc;
  mc.simulations = 5000;
  std::cout << "forward Monte-Carlo cross-check:            "
            << mc_expected_benefit(graph, communities, result.seeds, mc)
            << "\n";
  return 0;
}
