// Collaborative-based viral marketing (paper §I).
//
// A product is only adopted when a *group* of users is influenced together
// — e.g. a team-messaging app is useless to a lone adopter. Communities are
// friend circles; a circle "converts" once half its members are influenced,
// and its value is its population. We compare the community-aware planner
// (UBG) against classic influence maximization (IM) and show why optimizing
// raw spread misses group conversions.
//
//   build/examples/viral_marketing [--k 15] [--scale 0.3]
#include <iostream>

#include "imc/imc.h"

int main(int argc, char** argv) {
  using namespace imc;
  const ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 15));
  const double scale = args.get_double("scale", 0.3);

  std::cout << "=== Collaborative viral marketing ===\n\n";

  // A dense friendship network (facebook-like stand-in).
  const Graph graph = make_dataset(DatasetId::kFacebook, scale);

  // Friend circles from Louvain, capped at 8 people; a circle converts when
  // 50% of it is influenced and is worth its size in licence seats.
  CommunityBuildConfig config;
  config.method = CommunityMethod::kLouvain;
  config.size_cap = 8;
  config.regime = ThresholdRegime::kFractionOfPopulation;
  config.threshold_fraction = 0.5;
  const CommunitySet circles = build_communities(graph, config);
  std::cout << "network: " << graph.summary() << "\n"
            << "circles: " << circles.summary() << "\n\n";

  // --- community-aware planning (this paper) ---------------------------------
  UbgSolver ubg;
  ImcafConfig imcaf_config;
  imcaf_config.max_samples = 20000;
  const ImcafResult ours = imcaf_solve(graph, circles, k, ubg, imcaf_config);

  // --- classic IM (spread-optimal, community-blind) ---------------------------
  ImRisConfig im_config;
  const ImRisResult im = im_ris_select(graph, k, im_config);

  // --- the marketing-relevant score: converted seats --------------------------
  const BenefitOracle oracle(graph, circles);
  const double ours_seats = oracle.benefit(ours.seeds);
  const double im_seats = oracle.benefit(im.seeds);

  MonteCarloOptions mc;
  mc.simulations = 4000;
  const double ours_spread = mc_expected_spread(graph, ours.seeds, mc);
  const double im_spread = mc_expected_spread(graph, im.seeds, mc);

  std::cout << "                     UBG (community-aware)   IM (spread-only)\n";
  std::cout << "expected seats:      " << ours_seats << "                 "
            << im_seats << "\n";
  std::cout << "expected spread:     " << ours_spread << "               "
            << im_spread << "\n\n";
  std::cout << "IM reaches " << (im_spread >= ours_spread ? "as many or more"
                                                          : "fewer")
            << " individuals, but scattered reach converts fewer whole "
               "circles;\nthe community-level objective is what the "
               "licence revenue tracks.\n";
  return 0;
}
