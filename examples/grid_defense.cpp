// Social-network-coupled power grid vulnerability analysis (paper §I, [7]).
//
// An adversary spreads misinformation through a social network to trigger
// synchronized demand swings. A NEIGHBORHOOD (geographic community) becomes
// dangerous once enough of its residents act in unison — the activation
// threshold models the demand swing a feeder can absorb. IMC computes the
// attacker's optimum, which is exactly the defender's worst case; the
// example reports which neighborhoods are most exposed.
//
//   build/examples/grid_defense [--k 12] [--neighborhoods 40]
#include <algorithm>
#include <iostream>
#include <vector>

#include "imc/imc.h"

int main(int argc, char** argv) {
  using namespace imc;
  const ArgParser args(argc, argv);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 12));
  const auto neighborhoods =
      static_cast<CommunityId>(args.get_int("neighborhoods", 40));

  std::cout << "=== Grid-coupled social attack surface ===\n\n";

  // Residents follow each other on a heavy-tailed social graph; geography
  // (the grid) partitions them into disjoint neighborhoods, so communities
  // are NOT the social clusters — we use a random geographic partition.
  Rng rng(2026);
  BarabasiAlbertConfig social;
  social.nodes = 1200;
  social.attach = 5;
  social.directed = true;
  social.reciprocity = 0.3;
  EdgeList edges = barabasi_albert_edges(social, rng);
  apply_weighted_cascade(edges, social.nodes);
  const Graph graph(social.nodes, edges);

  CommunitySet zones = CommunitySet::from_assignment(
      graph.node_count(),
      random_partition(graph.node_count(), neighborhoods, rng));
  // Feeder capacity: a zone oscillates when 40% of residents act together;
  // impact is proportional to its population. Keep zones within the mask
  // width by splitting oversized ones.
  zones = cap_community_sizes(zones, 40, rng);
  apply_population_benefits(zones);
  apply_fraction_thresholds(zones, 0.25);

  std::cout << "social graph:  " << graph.summary() << "\n"
            << "grid zones:    " << zones.summary() << "\n\n";

  // Worst-case attacker: maximize the load impact of influenced zones.
  UbgSolver solver;
  ImcafConfig config;
  config.max_samples = 10000;
  const ImcafResult attack = imcaf_solve(graph, zones, k, solver, config);
  DagumOptions oracle_options;
  oracle_options.max_samples = 60000;
  const double exposure =
      BenefitOracle(graph, zones, oracle_options).benefit(attack.seeds);

  std::cout << "attacker budget (compromised accounts): " << k << "\n"
            << "expected affected load (population units): " << exposure
            << " of " << zones.total_benefit() << "\n\n";

  // Defender view: which zones do the attack seeds sit in / reach first?
  std::vector<std::uint32_t> seeds_in_zone(zones.size(), 0);
  for (const NodeId seed : attack.seeds) {
    const CommunityId z = zones.community_of(seed);
    if (z != kInvalidCommunity) ++seeds_in_zone[z];
  }
  std::cout << "zones hosting attack seeds (harden these first):\n";
  for (CommunityId z = 0; z < zones.size(); ++z) {
    if (seeds_in_zone[z] > 0) {
      std::cout << "  zone " << z << ": " << seeds_in_zone[z]
                << " seed(s), population " << zones.population(z)
                << ", threshold " << zones.threshold(z) << "\n";
    }
  }
  std::cout << "\n(Re-run with a larger --k to stress-test mitigation "
               "budgets.)\n";
  return 0;
}
