#include "sampling/pool_io.h"

#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>

namespace imc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("ric pool file, line " + std::to_string(line) +
                           ": " + what);
}

const char* model_tag(DiffusionModel model) {
  return model == DiffusionModel::kIndependentCascade ? "ic" : "lt";
}

}  // namespace

/// Restores a stream's formatting state on scope exit: write_ric_pool
/// toggles std::hex/std::dec for the mask fields, and leaking that to the
/// caller would silently corrupt whatever they print next.
class StreamFlagsGuard {
 public:
  explicit StreamFlagsGuard(std::ios_base& stream)
      : stream_(stream), flags_(stream.flags()) {}
  ~StreamFlagsGuard() { stream_.flags(flags_); }
  StreamFlagsGuard(const StreamFlagsGuard&) = delete;
  StreamFlagsGuard& operator=(const StreamFlagsGuard&) = delete;

 private:
  std::ios_base& stream_;
  std::ios_base::fmtflags flags_;
};

void write_ric_pool(std::ostream& out, const RicPool& pool) {
  const StreamFlagsGuard guard(out);
  out << "imc-ric-pool v1\n";
  out << "nodes " << pool.graph().node_count() << " samples " << pool.size()
      << " model " << model_tag(pool.model()) << "\n";
  // Sample headers come from the SoA metadata arrays; the touching lists
  // stream straight out of the sample-major arena.
  const std::span<const CommunityId> communities = pool.source_communities();
  const std::span<const std::uint32_t> thresholds = pool.thresholds();
  out << std::hex;
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    const auto touches = pool.sample_touches(g);
    out << std::dec << "sample " << communities[g] << ' ' << thresholds[g]
        << ' ' << touches.size();
    out << std::hex;
    for (const auto& [node, mask] : touches) {
      out << ' ' << std::dec << node << ' ' << std::hex << mask;
    }
    out << '\n';
  }
}

void save_ric_pool(const std::string& path, const RicPool& pool) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_ric_pool: cannot open " + path);
  write_ric_pool(out, pool);
  // Flush + close-check: buffered bytes can still fail at the filesystem
  // (ENOSPC) after every operator<< "succeeded", and reporting success on
  // a truncated pool file would poison later runs.
  out.flush();
  if (!out) throw std::runtime_error("save_ric_pool: write failed");
  out.close();
  if (out.fail()) {
    throw std::runtime_error("save_ric_pool: close failed for " + path);
  }
}

RicPool read_ric_pool(std::istream& in, const Graph& graph,
                      const CommunitySet& communities,
                      ArenaBackend backend) {
  std::string line;
  std::size_t line_number = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line() || line != "imc-ric-pool v1") {
    fail(line_number, "missing 'imc-ric-pool v1' header");
  }
  if (!next_line()) fail(line_number, "missing metadata line");
  NodeId node_count = 0;
  std::uint64_t sample_count = 0;
  std::string model_text;
  {
    std::istringstream fields(line);
    std::string kw_nodes, kw_samples, kw_model;
    if (!(fields >> kw_nodes >> node_count >> kw_samples >> sample_count >>
          kw_model >> model_text) ||
        kw_nodes != "nodes" || kw_samples != "samples" ||
        kw_model != "model") {
      fail(line_number, "expected 'nodes <n> samples <m> model <ic|lt>'");
    }
  }
  if (node_count != graph.node_count()) {
    fail(line_number, "node count does not match the supplied graph");
  }
  DiffusionModel model;
  if (model_text == "ic") {
    model = DiffusionModel::kIndependentCascade;
  } else if (model_text == "lt") {
    model = DiffusionModel::kLinearThreshold;
  } else {
    fail(line_number, "unknown model '" + model_text + "'");
  }

  RicPool pool(graph, communities, model, backend);
  while (next_line()) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword != "sample") fail(line_number, "expected 'sample ...'");
    RicSample sample;
    std::size_t touch_count = 0;
    if (!(fields >> sample.community >> sample.threshold >> touch_count)) {
      fail(line_number, "bad sample header");
    }
    if (sample.community >= communities.size()) {
      // Used to clamp to community 0, which silently rewrote the sample's
      // member count (and masked the corruption until append() — or worse,
      // accepted a wrong member_count when populations coincided).
      fail(line_number, "sample community id out of range");
    }
    sample.member_count =
        static_cast<std::uint32_t>(communities.population(sample.community));
    sample.touching.reserve(touch_count);
    for (std::size_t i = 0; i < touch_count; ++i) {
      NodeId node = 0;
      std::uint64_t mask = 0;
      if (!(fields >> std::dec >> node >> std::hex >> mask)) {
        fail(line_number, "bad touching pair");
      }
      sample.touching.emplace_back(node, mask);
    }
    // The declared touch count must consume the whole line: trailing
    // non-whitespace means the count and the data disagree (a truncated
    // edit or a concatenation bug), not extra harmless tokens.
    std::string trailing;
    if (fields >> trailing) {
      fail(line_number, "trailing tokens after the declared touch pairs");
    }
    try {
      pool.append(std::move(sample));
    } catch (const std::invalid_argument& error) {
      fail(line_number, error.what());
    }
  }
  if (pool.size() != sample_count) {
    fail(line_number, "sample count mismatch vs metadata");
  }
  return pool;
}

RicPool load_ric_pool(const std::string& path, const Graph& graph,
                      const CommunitySet& communities,
                      ArenaBackend backend) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_ric_pool: cannot open " + path);
  return read_ric_pool(in, graph, communities, backend);
}

}  // namespace imc
