// A pool R of RIC samples with the inverted index every MAXR algorithm
// needs: node -> {(sample id, member mask)}. Supports incremental growth
// (the SSA-style doubling of IMCAF, Alg. 5) and parallel generation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "community/community_set.h"
#include "graph/graph.h"
#include "sampling/ric_sample.h"
#include "util/rng.h"

namespace imc {

class RicPool {
 public:
  /// Index entry: which sample a node touches and which members it reaches.
  struct Touch {
    std::uint32_t sample = 0;
    std::uint64_t mask = 0;
  };

  RicPool(const Graph& graph, const CommunitySet& communities,
          DiffusionModel model = DiffusionModel::kIndependentCascade);

  /// Appends `count` fresh samples, deterministically derived from `seed`
  /// and the current pool size (so grow(a); grow(b) == grow(a+b) given the
  /// same base seed). Generation is spread across default_pool() workers
  /// when `parallel` is set.
  void grow(std::uint64_t count, std::uint64_t seed, bool parallel = true);

  /// Appends one externally produced sample (deserialization, tests).
  /// Validates community id, threshold and touching node ids; throws
  /// std::invalid_argument on mismatch with the bound structures.
  void append(RicSample sample);

  [[nodiscard]] std::uint64_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const RicSample& sample(std::uint32_t i) const {
    return samples_.at(i);
  }
  [[nodiscard]] std::span<const RicSample> samples() const noexcept {
    return samples_;
  }

  /// Samples touched by node v (empty for untouched nodes).
  [[nodiscard]] std::span<const Touch> touches_of(NodeId v) const;

  /// Number of samples node v touches (the MAF "appearance" count).
  [[nodiscard]] std::uint32_t appearance_count(NodeId v) const {
    return static_cast<std::uint32_t>(touches_of(v).size());
  }

  /// Number of samples whose source community is c (MAF community
  /// frequency). O(1): counters are maintained during grow/append.
  [[nodiscard]] std::uint32_t community_frequency(CommunityId c) const {
    return c < community_frequency_.size() ? community_frequency_[c] : 0;
  }

  /// All per-community source counts, indexed by community id.
  [[nodiscard]] std::span<const std::uint32_t> community_frequencies()
      const noexcept {
    return community_frequency_;
  }

  /// ĉ_R(S) = (b / |R|) · #influenced samples (paper eq. 3). O(Σ_{v∈S}
  /// |touches_of(v)| + |R| epoch reset), exact.
  [[nodiscard]] double c_hat(std::span<const NodeId> seeds) const;

  /// ν_R(S) = (b / |R|) Σ min(|I_g(S)| / h_g, 1) (paper eq. 7).
  [[nodiscard]] double nu(std::span<const NodeId> seeds) const;

  /// Number of samples influenced by S (the raw MAXR objective).
  [[nodiscard]] std::uint64_t influenced_count(
      std::span<const NodeId> seeds) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const CommunitySet& communities() const noexcept {
    return *communities_;
  }
  [[nodiscard]] double total_benefit() const noexcept {
    return total_benefit_;
  }
  [[nodiscard]] DiffusionModel model() const noexcept { return model_; }

 private:
  /// Per-sample RNG seed derivation (stable across chunkings).
  [[nodiscard]] static std::uint64_t splitmix_of(std::uint64_t seed,
                                                 std::uint64_t index);

  /// OR-accumulates the member masks of `seeds` into `covered`, indexed by
  /// sample id; records dirtied sample ids in `dirty`.
  void accumulate_masks(std::span<const NodeId> seeds,
                        std::vector<std::uint64_t>& covered,
                        std::vector<std::uint32_t>& dirty) const;

  const Graph* graph_;
  const CommunitySet* communities_;
  DiffusionModel model_ = DiffusionModel::kIndependentCascade;
  double total_benefit_ = 0.0;

  std::vector<RicSample> samples_;
  std::vector<std::vector<Touch>> index_;  // node -> touches
  std::vector<std::uint32_t> community_frequency_;  // community -> #samples
};

}  // namespace imc
