// A pool R of RIC samples with the inverted index every MAXR algorithm
// needs: node -> {(sample id, member mask)}. Supports incremental growth
// (the SSA-style doubling of IMCAF, Alg. 5) and parallel generation.
//
// Memory layout (see DESIGN.md §8, "Pool memory layout"): the inverted
// index is a flat CSR — `touch_offsets_` (node -> begin, n+1 entries) over
// one contiguous `touches_` arena — instead of a vector-of-vectors, so the
// greedy argmax sweep walks one cache-friendly span per candidate with no
// pointer chasing. Per-sample metadata the hot loops need is split into
// SoA arrays (`thresholds_`, `source_community_`): a marginal-gain probe
// loads 4 bytes per sample, not a whole RicSample. There is NO retained
// AoS sample store: the sample-major arena (`sample_offsets_` +
// `sample_arena_`) IS the canonical per-sample storage, and `sample()`
// materializes a RicSample view on demand (serialization/tests only).
// Growth is arena-direct (DESIGN.md §9): per-part worker arenas filled by
// `RicSampler::generate_into` are stitched straight into the sample-major
// arena, and the CSR is rebuilt incrementally: `grow()` merges its fresh
// batch with a two-pass parallel build (per-chunk count, exclusive
// prefix-sum, parallel scatter); `append()` marks the index stale and the
// next reader materializes it on demand, so bulk deserialization pays one
// merge, not one per sample.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "community/community_set.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "sampling/ric_sample.h"
#include "util/mmap_arena.h"
#include "util/rng.h"

namespace imc {

class ThreadPool;
class PoolStagingArena;

class RicPool {
 public:
  /// Index entry: which sample a node touches and which members it reaches.
  /// The sample's threshold rides along in what would otherwise be struct
  /// padding (16 bytes either way): the marginal-gain sweeps then read it
  /// sequentially with the touch instead of issuing a second random load
  /// into `thresholds_[sample]` for every touch.
  struct Touch {
    std::uint32_t sample = 0;
    std::uint32_t threshold = 0;
    std::uint64_t mask = 0;
  };
  static_assert(sizeof(Touch) == 16, "Touch must stay two words");

  /// Append-only growth watermark. Captured by grow_epoch(), consumed by
  /// samples_since() and CoverageState::extend: the sample range
  /// [epoch.samples, size()) is exactly what growth appended since the
  /// capture. `grows` counts completed grow()/append() operations — it lets
  /// holders of an epoch assert they are looking at the same pool lineage
  /// (a pool that shrank or was rebuilt would not just have a different
  /// size, it would have replayed a different number of growth steps).
  /// `repairs` counts completed invalidate_and_repair() calls: a repair
  /// rewrites samples IN PLACE (size and grows unchanged), so anything
  /// holding per-sample state — warm-start carriers, CoverageState, staged
  /// arenas — keys on it to detect that the prefix it cached is no longer
  /// the prefix the pool serves (DESIGN.md §16).
  struct PoolEpoch {
    std::uint64_t samples = 0;  // pool size at capture
    std::uint64_t grows = 0;    // growth operations completed at capture
    std::uint64_t repairs = 0;  // delta repairs completed at capture
    friend bool operator==(const PoolEpoch&, const PoolEpoch&) = default;
  };

  /// The arena backend every growth path allocates from: kRam keeps the
  /// pre-mmap behavior (aligned heap slabs), kMmap puts the arenas in
  /// anonymous mappings grown via mremap. Content is bit-identical either
  /// way — the backend only decides where the bytes live.
  RicPool(const Graph& graph, const CommunitySet& communities,
          DiffusionModel model = DiffusionModel::kIndependentCascade,
          ArenaBackend backend = ArenaBackend::kRam);

  // Movable (the CSR cache mutex is per-object, not part of the value).
  RicPool(RicPool&& other) noexcept;
  RicPool& operator=(RicPool&& other) noexcept;
  RicPool(const RicPool&) = delete;
  RicPool& operator=(const RicPool&) = delete;

  /// Appends `count` fresh samples, deterministically derived from `seed`
  /// and the current pool size (so grow(a); grow(b) == grow(a+b) given the
  /// same base seed, for ANY parallelism/worker combination — per-sample
  /// RNG substreams make chunking irrelevant). When `parallel` is set the
  /// generation runs on `workers` (default_pool() when null): each part
  /// emits into its own arena via RicSampler::generate_into, parts are
  /// stitched deterministically into the sample-major arena, and the CSR
  /// index is merged eagerly with the two-pass parallel build. Sampler
  /// instances are cached and reused across parts and across grow() calls
  /// (no O(n) scratch construction per chunk). Throws std::length_error
  /// once sample ids would no longer fit in 32 bits.
  void grow(std::uint64_t count, std::uint64_t seed, bool parallel = true,
            ThreadPool* workers = nullptr);

  /// Speculative counterpart of grow(): generates the samples grow(count,
  /// seed, ...) WOULD append next — same per-sample RNG substreams
  /// splitmix_of(seed, size() + i) — into caller-owned staging buffers
  /// without touching the pool (const: the live arenas, the CSR index and
  /// the PoolEpoch watermark are all unchanged). `commit_staged` later
  /// splices the batch in with the regular two-pass merge, producing a
  /// pool bit-identical to the direct grow() — or the staging arena is
  /// simply dropped when the speculation missed. `cancelled` (may be
  /// empty) is polled once per sample; on cancellation the arena is left
  /// incomplete (complete() == false) and commit will refuse it. Safe to
  /// run concurrently with const readers of this pool (the engine overlaps
  /// it with solve/estimate); the only shared mutable state is the
  /// mutex-guarded sampler cache. Throws std::length_error when the batch
  /// would overflow 32-bit sample ids.
  void stage_samples(std::uint64_t count, std::uint64_t seed, bool parallel,
                     ThreadPool* workers,
                     const std::function<bool()>& cancelled,
                     PoolStagingArena& out) const;

  /// Appends a batch staged by stage_samples() to the pool — stitch into
  /// the sample-major arena, register metadata, merge the CSR index, bump
  /// the growth watermark — exactly one grow() worth of mutation, so the
  /// resulting pool (content AND PoolEpoch) is bit-identical to having
  /// called grow(staged.count(), staged.seed()) at the staging point.
  /// Consumes the arena (left cleared). Throws std::invalid_argument when
  /// the arena is incomplete (cancelled staging) or stale (the pool grew
  /// since staging — base/epoch mismatch); the pool is untouched then.
  void commit_staged(PoolStagingArena&& staged, bool parallel = true,
                     ThreadPool* workers = nullptr);

  /// Appends one externally produced sample (deserialization, tests).
  /// Validates community id, threshold and touching node ids; throws
  /// std::invalid_argument on mismatch with the bound structures. The CSR
  /// index is NOT rebuilt here — it materializes on the next read.
  void append(RicSample sample);

  [[nodiscard]] std::uint64_t size() const noexcept {
    return thresholds_.size();
  }

  /// Watermark of the current growth state. Samples are append-only, so a
  /// captured epoch permanently names the prefix [0, epoch.samples).
  [[nodiscard]] PoolEpoch grow_epoch() const noexcept {
    return PoolEpoch{size(), grows_, repairs_};
  }

  /// Number of samples appended since `epoch` was captured — the size of
  /// the fresh range [epoch.samples, size()). Throws std::invalid_argument
  /// when the epoch does not describe a prefix of THIS pool (captured from
  /// another pool, or from a later state: epoch.samples > size() or
  /// epoch.grows > the completed growth count) or when a delta repair
  /// rewrote samples since the capture (epoch.repairs differs — the prefix
  /// [0, epoch.samples) is no longer the one the holder cached).
  [[nodiscard]] std::uint64_t samples_since(PoolEpoch epoch) const;

  /// Outcome of invalidate_and_repair(): how much of the pool had to be
  /// regenerated. `repaired == 0` means the delta could not have changed
  /// any existing sample (the epoch still bumps — future samples could
  /// differ, so staged arenas and carriers must not survive).
  struct RepairStats {
    std::uint64_t repaired = 0;  // samples regenerated in place
    std::uint64_t total = 0;     // pool size at repair time
  };

  /// Regenerates, in place, exactly the samples a graph/community delta
  /// could have changed, leaving every other sample byte-identical — the
  /// incremental half of the dynamic-graph path (DESIGN.md §16). Call
  /// AFTER the bound Graph/CommunitySet were mutated (apply_delta in
  /// graph/delta.h returns the `effects` to pass here). Affected samples
  /// are identified from the pre-delta inverted index: a reverse RIC walk
  /// only examines a node's in-edges when it dequeues that node, and every
  /// dequeued node is in the sample's touch set, so the samples whose
  /// realizations could differ are exactly those touching a node in
  /// `effects.changed_in_nodes` — plus those sourced at a community in
  /// `effects.changed_communities` (their member list, and hence mask bit
  /// layout, moved; the ρ source distribution depends only on benefits,
  /// which deltas never alter). Each affected sample g is regenerated with
  /// its original splitmix substream Rng(splitmix_of(seed, g)), so the
  /// repaired pool is BIT-IDENTICAL to a from-scratch rebuild on the
  /// mutated structures with the same seed — `seed` must therefore be the
  /// same base seed every grow() of this pool used (the engine's
  /// config_.seed discipline). Metadata (thresholds, source communities),
  /// the community_frequency counters and the CSR index are rebuilt, not
  /// drifted. Bumps PoolEpoch::repairs when any sample was regenerated OR
  /// any future sample could differ (i.e. whenever `effects` is
  /// non-empty), invalidating warm-start carriers and staged arenas.
  /// Returns how many samples were repaired. Not safe to run concurrently
  /// with readers or stagers of this pool. Throws std::invalid_argument
  /// (pool untouched) when the mutated structures violate sampling
  /// invariants — community population > 64 members, LT in-weight sums
  /// > 1.
  RepairStats invalidate_and_repair(const DeltaEffects& effects,
                                    std::uint64_t seed, bool parallel = true,
                                    ThreadPool* workers = nullptr);

  /// Every arena the pool owns, in one movable bundle — the unit the
  /// binary snapshot format (sampling/pool_snapshot.h) persists and
  /// restores. Includes the CSR index so a restored pool answers
  /// touches_of() without an O(pool) rebuild.
  struct PoolArenas {
    ArenaVector<std::uint32_t> thresholds;
    ArenaVector<CommunityId> source_community;
    ArenaVector<std::uint32_t> community_frequency;
    ArenaVector<std::uint64_t> sample_offsets;
    ArenaVector<std::pair<NodeId, std::uint64_t>> sample_arena;
    ArenaVector<std::uint64_t> touch_offsets;
    ArenaVector<Touch> touches;
  };

  /// Read-only view of every arena plus the growth watermark — what the
  /// snapshot writer serializes. Materializes any pending index merge
  /// first so the CSR sections are never stale.
  struct SnapshotView {
    std::span<const std::uint32_t> thresholds;
    std::span<const CommunityId> source_community;
    std::span<const std::uint32_t> community_frequency;
    std::span<const std::uint64_t> sample_offsets;
    std::span<const std::pair<NodeId, std::uint64_t>> sample_arena;
    std::span<const std::uint64_t> touch_offsets;
    std::span<const Touch> touches;
    PoolEpoch epoch;
    DiffusionModel model = DiffusionModel::kIndependentCascade;
  };
  [[nodiscard]] SnapshotView snapshot_view() const;

  /// Installs fully built arenas (deserialization back door for
  /// sampling/pool_snapshot.cpp). Arenas may be owned (the streamed
  /// loader) or borrowed zero-copy views into an mmapped snapshot (the
  /// attach path) — a borrowed pool serves reads in place and
  /// copy-on-write-materializes on the first grow()/append(). Validates
  /// the cheap structural invariants (sizes coherent, both offset tables'
  /// endpoints AND monotonicity — so no span can wrap out of bounds even
  /// for trusted input — community frequencies sum to the sample count,
  /// epoch matches); deep per-sample content validation is the loaders'
  /// job (pool_snapshot's validate step, skipped only by the explicit
  /// SnapshotTrust::kTrustPayload attach). Throws std::invalid_argument
  /// on any structural mismatch.
  [[nodiscard]] static RicPool restore_snapshot(const Graph& graph,
                                                const CommunitySet& communities,
                                                DiffusionModel model,
                                                PoolEpoch epoch,
                                                PoolArenas&& arenas);

  /// Backend growth allocates from (fixed at construction / restore).
  [[nodiscard]] ArenaBackend backend() const noexcept { return backend_; }

  /// True while any arena is still a zero-copy view into an attached
  /// snapshot mapping (i.e. no mutation has materialized it yet).
  [[nodiscard]] bool attached() const noexcept {
    return sample_arena_.is_borrowed() || touches_.is_borrowed();
  }

  /// Materializes sample g from the arenas (community/threshold from the
  /// SoA metadata, touching pairs from the sample-major arena). This is
  /// the slow path for serialization, BT instance construction and tests;
  /// hot loops read the arenas directly. Throws std::out_of_range.
  [[nodiscard]] RicSample sample(std::uint32_t i) const;

  /// Touch list of sample g — the same (node, mask) pairs as
  /// sample(g).touching, but served from one contiguous sample-major arena
  /// (samples are concatenated in insertion order, so maintenance on
  /// grow/append is a plain append — no rebuild, never stale). The
  /// sample-major marginal passes stream this arena end to end instead of
  /// hopping through |R| scattered heap vectors. Hot path: debug-asserted.
  [[nodiscard]] std::span<const std::pair<NodeId, std::uint64_t>>
  sample_touches(std::uint32_t g) const {
    assert(g + 1 < sample_offsets_.size());
    const std::uint64_t begin = sample_offsets_[g];
    return {sample_arena_.data() + begin, sample_offsets_[g + 1] - begin};
  }

  /// Per-sample begin offsets into sample_arena() (size()+1 entries; raw
  /// counterpart of sample_touches() for the gain-kernel sweeps).
  [[nodiscard]] std::span<const std::uint64_t> sample_offsets()
      const noexcept {
    return sample_offsets_.span();
  }
  /// The contiguous (node, mask) pair arena behind sample_touches().
  [[nodiscard]] std::span<const std::pair<NodeId, std::uint64_t>>
  sample_arena() const noexcept {
    return sample_arena_.span();
  }

  /// One slab of the sample id range — the unit of work of the sharded
  /// selection sweeps (core/greedy.cpp, DESIGN.md §14).
  struct SampleShard {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;  // exclusive
  };

  /// Splits [0, samples) into at most `shards` contiguous slabs of
  /// near-equal size. Every boundary except the last is a multiple of 64,
  /// so each slab owns whole saturation-bitmap words (the word-at-a-time
  /// skip never straddles slabs) and slab starts land on cache-line/page
  /// boundaries of the covered array — under first-touch allocation the
  /// pages a worker sweeps are the pages it faulted in. `shards == 0` is
  /// treated as 1. The decomposition is a pure function of (samples,
  /// shards): reducing per-slab results in ascending slab order is a fixed
  /// accumulation sequence, independent of execution timing.
  [[nodiscard]] static std::vector<SampleShard> selection_shards(
      std::uint64_t samples, unsigned shards);

  /// Samples touched by node v (empty for untouched nodes). Hot path:
  /// bounds are debug-asserted, not checked in release builds.
  [[nodiscard]] std::span<const Touch> touches_of(NodeId v) const {
    ensure_index();
    assert(v + 1 < touch_offsets_.size());
    const std::uint64_t begin = touch_offsets_[v];
    return {touches_.data() + begin, touch_offsets_[v + 1] - begin};
  }

  /// Number of samples node v touches (the MAF "appearance" count).
  [[nodiscard]] std::uint32_t appearance_count(NodeId v) const {
    return static_cast<std::uint32_t>(touches_of(v).size());
  }

  // -- SoA metadata (hot-loop view of the samples) ---------------------------
  /// h_g of sample g. Debug-asserted, unchecked in release.
  [[nodiscard]] std::uint32_t threshold_of(std::uint32_t g) const {
    assert(g < thresholds_.size());
    return thresholds_[g];
  }
  /// Per-sample thresholds, indexed by sample id.
  [[nodiscard]] std::span<const std::uint32_t> thresholds() const noexcept {
    return thresholds_.span();
  }
  /// Per-sample source community ids, indexed by sample id.
  [[nodiscard]] std::span<const CommunityId> source_communities()
      const noexcept {
    return source_community_.span();
  }

  /// CSR begin offsets (node -> first touch; node_count()+1 entries). The
  /// span [touch_offsets()[v], touch_offsets()[v+1]) indexes touch_arena().
  [[nodiscard]] std::span<const std::uint64_t> touch_offsets() const {
    ensure_index();
    return touch_offsets_.span();
  }
  /// The contiguous touch arena the offsets point into.
  [[nodiscard]] std::span<const Touch> touch_arena() const {
    ensure_index();
    return touches_.span();
  }

  /// Number of samples whose source community is c (MAF community
  /// frequency). O(1): counters are maintained during grow/append.
  [[nodiscard]] std::uint32_t community_frequency(CommunityId c) const {
    return c < community_frequency_.size() ? community_frequency_[c] : 0;
  }

  /// All per-community source counts, indexed by community id.
  [[nodiscard]] std::span<const std::uint32_t> community_frequencies()
      const noexcept {
    return community_frequency_.span();
  }

  /// ĉ_R(S) = (b / |R|) · #influenced samples (paper eq. 3). O(Σ_{v∈S}
  /// |touches_of(v)|), exact; the reset is epoch-based, not O(|R|).
  [[nodiscard]] double c_hat(std::span<const NodeId> seeds) const;

  /// ν_R(S) = (b / |R|) Σ min(|I_g(S)| / h_g, 1) (paper eq. 7).
  [[nodiscard]] double nu(std::span<const NodeId> seeds) const;

  /// Number of samples influenced by S (the raw MAXR objective).
  [[nodiscard]] std::uint64_t influenced_count(
      std::span<const NodeId> seeds) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const CommunitySet& communities() const noexcept {
    return *communities_;
  }
  [[nodiscard]] double total_benefit() const noexcept {
    return total_benefit_;
  }
  [[nodiscard]] DiffusionModel model() const noexcept { return model_; }

 private:
  /// Per-sample RNG seed derivation (stable across chunkings).
  [[nodiscard]] static std::uint64_t splitmix_of(std::uint64_t seed,
                                                 std::uint64_t index);

  /// Throws std::length_error when adding `count` samples would push ids
  /// past the 32-bit Touch::sample range.
  void check_capacity(std::uint64_t count) const;

  /// Pops a cached sampler or constructs one; return via release_sampler.
  /// Const because read-side producers (stage_samples) borrow samplers
  /// too; the cache is mutable state guarded by sampler_mutex_.
  [[nodiscard]] std::unique_ptr<RicSampler> acquire_sampler() const;
  void release_sampler(std::unique_ptr<RicSampler> sampler) const;

  /// Registers one sample's metadata (SoA mirrors + community counter +
  /// sample-major offset for `touch_count` freshly appended arena pairs).
  void register_metadata(CommunityId community, std::uint32_t threshold,
                         std::uint64_t touch_count);

  /// Copy-on-write gate for attached pools: the first mutation after a
  /// zero-copy snapshot attach materializes the borrowed sample-side
  /// arenas into owned storage (one O(pool) copy, then never again). The
  /// CSR arenas are replaced wholesale by the next index merge, so they
  /// need no eager copy. No-op for pools that own their arenas.
  void ensure_mutable();

  /// Cheap staleness gate in front of every index read.
  void ensure_index() const {
    if (index_stale_.load(std::memory_order_acquire)) materialize_index();
  }
  /// Slow path of ensure_index(): serial merge under the cache mutex
  /// (double-checked; safe for concurrent const readers).
  void materialize_index() const;
  /// Merges samples [indexed_samples_, size()) into the CSR via the
  /// two-pass build: per-chunk counting, exclusive prefix-sum over
  /// (node, chunk) cursors, then relocation of the old arena and scatter of
  /// the fresh touches — both parallel when `chunks > 1`. Fresh touches are
  /// read from the sample-major arena. The result is byte-identical for
  /// any chunk count (touches stay sorted by sample id within each node),
  /// which is what keeps selection deterministic.
  void merge_fresh_into_index(unsigned chunks, ThreadPool* workers) const;

  const Graph* graph_;
  const CommunitySet* communities_;
  DiffusionModel model_ = DiffusionModel::kIndependentCascade;
  ArenaBackend backend_ = ArenaBackend::kRam;
  double total_benefit_ = 0.0;

  // Completed growth operations (grow with count > 0, append); see
  // PoolEpoch.
  std::uint64_t grows_ = 0;

  // Completed delta repairs (invalidate_and_repair with non-empty
  // effects); see PoolEpoch.
  std::uint64_t repairs_ = 0;

  // SoA hot-path metadata, one entry per sample. All arenas below live in
  // ArenaVector slabs (util/mmap_arena.h): heap or anonymous-mmap per
  // backend_, or zero-copy borrowed views while attached() to a snapshot.
  ArenaVector<std::uint32_t> thresholds_;       // sample -> h_g
  ArenaVector<CommunityId> source_community_;   // sample -> C_g
  ArenaVector<std::uint32_t> community_frequency_;  // community -> #samples

  // Canonical per-sample storage: touch lists concatenated in insertion
  // order (offsets in sample_offsets_, size+1 entries). Sample-major gain
  // passes stream it; sample() materializes views from it.
  ArenaVector<std::uint64_t> sample_offsets_;            // sample -> begin
  ArenaVector<std::pair<NodeId, std::uint64_t>> sample_arena_;

  // Cached RicSampler instances, reused across grow() parts and calls so
  // repeated growth never reconstructs O(n) scratch buffers. Mutable:
  // const staging reuses the cache under the mutex.
  mutable std::vector<std::unique_ptr<RicSampler>> sampler_cache_;
  mutable std::mutex sampler_mutex_;

  // Flat CSR inverted index over samples [0, indexed_samples_); mutable so
  // const readers can materialize pending appends on demand.
  mutable ArenaVector<std::uint64_t> touch_offsets_;  // node -> begin
  mutable ArenaVector<Touch> touches_;                // contiguous arena
  mutable std::uint64_t indexed_samples_ = 0;
  mutable std::atomic<bool> index_stale_{false};
  mutable std::mutex index_mutex_;
};

/// Sampler-owned staging buffers for one speculative growth batch — the
/// double-buffer half of the pipelined engine (DESIGN.md §15). Holds the
/// per-part touch arenas and metadata stage_samples() produced, plus the
/// provenance (base size, seed, epoch at staging) commit_staged() checks
/// before splicing the batch into the live pool. A default-constructed
/// arena is empty and reusable across stages: commit and clear both reset
/// it, and the buffers keep their capacity for the next staging round.
class PoolStagingArena {
 public:
  PoolStagingArena() = default;
  PoolStagingArena(PoolStagingArena&&) noexcept = default;
  PoolStagingArena& operator=(PoolStagingArena&&) noexcept = default;
  PoolStagingArena(const PoolStagingArena&) = delete;
  PoolStagingArena& operator=(const PoolStagingArena&) = delete;

  /// True once stage_samples() generated the full batch (not cancelled).
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  /// Requested batch size (what commit will append when complete).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Pool size at staging time — the batch's sample ids start here.
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  /// Seed the substreams were derived from.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Full pool watermark at staging time. Besides the base()/size match,
  /// commit requires this to still equal the pool's grow_epoch() — in
  /// particular a delta repair between staging and commit (which rewrites
  /// samples without changing the size) bumps PoolEpoch::repairs and
  /// makes the staged batch stale, since it was generated from the
  /// pre-delta graph.
  [[nodiscard]] RicPool::PoolEpoch epoch() const noexcept { return epoch_; }
  /// Samples actually generated so far (== count() when complete; the
  /// partial progress of a cancelled staging otherwise).
  [[nodiscard]] std::uint64_t staged_count() const noexcept;

  /// Drops any staged content; capacity is retained for reuse.
  void clear() noexcept;

 private:
  friend class RicPool;

  /// One generation part: a contiguous run of the batch's sample indices,
  /// emitted arena-direct exactly like grow()'s PartOutput.
  struct Part {
    RicSampler::TouchArena touches;
    std::vector<RicSampleMeta> metas;
  };

  std::vector<Part> parts_;
  std::uint64_t base_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t seed_ = 0;
  RicPool::PoolEpoch epoch_;
  bool complete_ = false;
};

}  // namespace imc
