// Classic Reverse Influence Sampling (Borgs et al. 2014) — the substrate of
// the IM baseline (§VI-A) and the reference point the paper's RIC sampling
// generalizes. An RR set is the set of nodes that reach a uniformly random
// root in one live-edge realization; E[|S ∩ RR| > 0] * n = influence of S.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

struct RrSet {
  NodeId root = 0;
  std::vector<NodeId> nodes;  // includes the root, sorted ascending
};

/// Generates one RR set: picks a uniform root and walks in-edges backwards,
/// flipping each edge once with its IC probability.
[[nodiscard]] RrSet generate_rr_set(const Graph& graph, Rng& rng);

/// LT-model RR set: a random backward PATH — each visited node keeps at
/// most one live in-edge, chosen with probability equal to its weight
/// (Tang et al.'s LT reverse sampling). Requires per-node in-weights <= 1.
[[nodiscard]] RrSet generate_rr_set_lt(const Graph& graph, Rng& rng);

/// A pool of RR sets with an inverted node -> {set index} index, the input
/// to max-coverage seed selection (core/baselines/im_ris.*).
class RrPool {
 public:
  explicit RrPool(const Graph& graph) : graph_(&graph) {}

  /// Appends `count` fresh RR sets (deterministic given rng state).
  void generate(std::uint64_t count, Rng& rng);

  [[nodiscard]] std::uint64_t size() const noexcept { return sets_.size(); }
  [[nodiscard]] const RrSet& set(std::uint64_t i) const { return sets_.at(i); }

  /// Indices of RR sets containing `v`.
  [[nodiscard]] const std::vector<std::uint32_t>& sets_containing(
      NodeId v) const;

  /// Fraction of RR sets hit by S, times n — the RIS spread estimate.
  [[nodiscard]] double estimate_spread(std::span<const NodeId> seeds) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_;
  std::vector<RrSet> sets_;
  std::vector<std::vector<std::uint32_t>> index_;  // node -> set ids
};

}  // namespace imc
