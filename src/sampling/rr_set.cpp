#include "sampling/rr_set.h"

#include <algorithm>
#include <stdexcept>

namespace imc {

RrSet generate_rr_set(const Graph& graph, Rng& rng) {
  if (graph.empty()) {
    throw std::invalid_argument("generate_rr_set: empty graph");
  }
  RrSet result;
  result.root = static_cast<NodeId>(rng.below(graph.node_count()));

  std::vector<NodeId> stack{result.root};
  // Visited marks double as membership; graphs here are small enough for a
  // dense bitmap, and the pool reuses nothing across sets by design (each
  // RR set must be an independent realization).
  std::vector<std::uint8_t> seen(graph.node_count(), 0);
  seen[result.root] = 1;
  result.nodes.push_back(result.root);

  // Each node is popped once; each in-edge of a popped node is flipped once,
  // so every edge of the graph is realized at most once per RR set.
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : graph.in_neighbors(u)) {
      if (!seen[nb.node] && rng.bernoulli(static_cast<double>(nb.weight))) {
        seen[nb.node] = 1;
        result.nodes.push_back(nb.node);
        stack.push_back(nb.node);
      }
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  return result;
}

RrSet generate_rr_set_lt(const Graph& graph, Rng& rng) {
  if (graph.empty()) {
    throw std::invalid_argument("generate_rr_set_lt: empty graph");
  }
  RrSet result;
  result.root = static_cast<NodeId>(rng.below(graph.node_count()));
  result.nodes.push_back(result.root);

  // Walk backwards: each node yields at most one live in-edge; stop when
  // no edge survives or the walk bites its own tail.
  std::vector<std::uint8_t> seen(graph.node_count(), 0);
  seen[result.root] = 1;
  NodeId current = result.root;
  for (;;) {
    double x = rng.uniform();
    NodeId parent = kInvalidNode;
    for (const Neighbor& nb : graph.in_neighbors(current)) {
      x -= static_cast<double>(nb.weight);
      if (x < 0.0) {
        parent = nb.node;
        break;
      }
    }
    if (parent == kInvalidNode || seen[parent]) break;
    seen[parent] = 1;
    result.nodes.push_back(parent);
    current = parent;
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  return result;
}

void RrPool::generate(std::uint64_t count, Rng& rng) {
  index_.resize(graph_->node_count());
  sets_.reserve(sets_.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto set_id = static_cast<std::uint32_t>(sets_.size());
    sets_.push_back(generate_rr_set(*graph_, rng));
    for (const NodeId v : sets_.back().nodes) {
      index_[v].push_back(set_id);
    }
  }
}

const std::vector<std::uint32_t>& RrPool::sets_containing(NodeId v) const {
  return index_.at(v);
}

double RrPool::estimate_spread(std::span<const NodeId> seeds) const {
  if (sets_.empty()) return 0.0;
  std::vector<std::uint8_t> hit(sets_.size(), 0);
  std::uint64_t covered = 0;
  for (const NodeId v : seeds) {
    for (const std::uint32_t set_id : sets_containing(v)) {
      if (!hit[set_id]) {
        hit[set_id] = 1;
        ++covered;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(sets_.size()) *
         static_cast<double>(graph_->node_count());
}

}  // namespace imc
