// Binary RIC-pool snapshot, format v3 — the persisted pool IS the live
// pool (DESIGN.md §13). (v3 extends the v2 layout with the epoch's
// repairs counter and a header checksum; the magic string is unchanged.)
//
// The text format (pool_io.h) re-parses and re-appends every sample:
// O(pool) work and allocations before the first query can run. The v2
// snapshot instead persists the pool's flat arenas verbatim — SoA
// metadata, sample-major twin, community counters AND the CSR inverted
// index — so a reload is either one sequential read (streamed) or, with
// `attach_ric_pool_snapshot`, a single mmap whose cost is independent of
// pool size: the arenas are served zero-copy straight out of the page
// cache and a restart resumes warm-started solves in milliseconds.
//
// Layout (all integers little-endian, host-width as noted):
//
//   [0, 128)   PoolSnapshotHeader — magic "imcpool2", version, model,
//              node/community/sample counts, epoch watermark
//              {samples, grows, repairs}, RNG-contract id, graph +
//              community fingerprints, payload byte count, payload
//              checksum, header checksum (FNV-1a over the preceding 120
//              header bytes — forging any header field, including the
//              epoch, without resealing is detected even on the trusted
//              attach path).
//   sections   seven raw arena sections, each padded to a 64-byte
//              boundary, in this fixed order (lengths derive from the
//              header counts — no section table needed):
//                1. thresholds          u32  × samples
//                2. source_community    u32  × samples
//                3. community_frequency u32  × communities
//                4. sample_offsets      u64  × samples + 1
//                5. sample_arena        {u32 node, u64 mask} × pairs (16 B)
//                6. touch_offsets       u64  × nodes + 1
//                7. touches             {u32 sample, u32 threshold,
//                                        u64 mask} × csr touches (16 B)
//
// Validation contract: BOTH loaders check magic, version, RNG contract,
// counts against the supplied graph/communities, the epoch watermark and
// the two fingerprints. By DEFAULT both also verify the payload checksum
// and every per-sample invariant (community ids, thresholds, masks,
// offset monotonicity/endpoints, touch ordering) — snapshots are treated
// as untrusted input unless the caller says otherwise. The mmap attach
// can skip the O(pool) deep checks with SnapshotTrust::kTrustPayload so
// attach time stays flat in pool size; that is an explicit opt-in for
// snapshots this host wrote, guarded by the fingerprints (see DESIGN.md
// §13 for the trust model). Even a trusted attach cannot produce
// out-of-bounds spans: RicPool::restore_snapshot independently checks
// both offset tables for endpoints and monotonicity. Endianness is not
// translated: a snapshot is portable between machines of the same byte
// order only.
//
// Ownership: an attached pool pins the file mapping via shared keepalives
// inside its borrowed arenas; the mapping unmaps when the last arena (or
// the pool holding them) dies. The first grow()/append() after an attach
// copy-on-write-materializes the arenas, after which the file is no
// longer referenced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sampling/ric_pool.h"

namespace imc {

inline constexpr char kPoolSnapshotMagic[8] = {'i', 'm', 'c', 'p',
                                               'o', 'o', 'l', '2'};
inline constexpr std::uint32_t kPoolSnapshotVersion = 3;

/// Fixed-size on-disk header; the arena sections follow at 64-byte-aligned
/// offsets.
struct PoolSnapshotHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t model = 0;  // DiffusionModel underlying value
  std::uint64_t node_count = 0;
  std::uint64_t community_count = 0;
  std::uint64_t sample_count = 0;
  std::uint64_t sample_pair_count = 0;  // sample-major arena entries
  std::uint64_t csr_touch_count = 0;    // inverted-index arena entries
  std::uint64_t epoch_samples = 0;      // PoolEpoch at save time
  std::uint64_t epoch_grows = 0;
  std::uint32_t rng_contract = 0;  // kRicSamplerRngContract of the writer
  std::uint32_t reserved = 0;
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t community_fingerprint = 0;
  std::uint64_t payload_bytes = 0;     // total snapshot size, header included
  std::uint64_t payload_checksum = 0;  // FNV-1a over the section bytes
  std::uint64_t epoch_repairs = 0;     // PoolEpoch::repairs at save time
  std::uint64_t header_checksum = 0;   // FNV-1a over the 120 bytes above
};
static_assert(sizeof(PoolSnapshotHeader) == 128,
              "header must fill its reserved 128 bytes exactly (the header "
              "checksum covers the 120 bytes before itself)");

/// How much of a snapshot's payload the attach paths verify before
/// serving it. Header, counts, epoch and fingerprints are always checked.
enum class SnapshotTrust {
  /// Default: verify the payload checksum and every per-sample invariant
  /// (one sequential O(pool) pass; still zero-copy on the attach path).
  kVerifyPayload,
  /// Explicit opt-in for snapshots this host wrote: skip the O(pool)
  /// payload pass so attach cost stays independent of pool size. The
  /// structural offset checks in RicPool::restore_snapshot still run, so
  /// corrupt offsets fail the load rather than index out of bounds.
  kTrustPayload,
};

/// Writes the v2 snapshot. The pool's pending index merge (if any) is
/// materialized first so the CSR sections are current.
void write_ric_pool_snapshot(std::ostream& out, const RicPool& pool);

/// Saves to a file; throws std::runtime_error on I/O failure (the stream
/// is flushed and close-checked before success is reported).
void save_ric_pool_snapshot(const std::string& path, const RicPool& pool);

/// Streamed load with FULL validation (checksum + per-sample invariants).
/// Arenas are owned copies in `backend` storage. Throws std::runtime_error
/// on malformed/corrupt input or graph/community mismatch.
[[nodiscard]] RicPool read_ric_pool_snapshot(
    std::istream& in, const Graph& graph, const CommunitySet& communities,
    ArenaBackend backend = ArenaBackend::kRam);

/// Convenience file wrapper around read_ric_pool_snapshot.
[[nodiscard]] RicPool load_ric_pool_snapshot(
    const std::string& path, const Graph& graph,
    const CommunitySet& communities,
    ArenaBackend backend = ArenaBackend::kRam);

/// Zero-copy attach: mmaps the snapshot and serves the arenas in place —
/// no arena copy happens until the pool is grown, and growth materializes
/// into `materialize_backend` storage. With the default kVerifyPayload
/// the checksum and per-sample invariants are verified in one sequential
/// pass over the mapping; kTrustPayload skips that pass so attach cost is
/// O(offset tables), independent of the arena payload. Throws
/// std::runtime_error on mismatch or (when verifying) corruption.
[[nodiscard]] RicPool attach_ric_pool_snapshot(
    const std::string& path, const Graph& graph,
    const CommunitySet& communities,
    SnapshotTrust trust = SnapshotTrust::kVerifyPayload,
    ArenaBackend materialize_backend = ArenaBackend::kMmap);

/// True when `path` starts with the v2 snapshot magic (a cheap sniff for
/// format dispatch; false for unreadable files).
[[nodiscard]] bool is_pool_snapshot_file(const std::string& path);

/// Format-dispatching load: v2 snapshots are ATTACHED zero-copy (with
/// `trust` forwarded — payload-verifying by default), anything else goes
/// through the text v1 loader. `backend` is where the loaded pool's owned
/// arenas live (text path) or where an attached pool materializes on its
/// first grow, so a configured --pool-backend survives the load. The
/// one-stop entry point for `imc_cli --load-pool` and
/// ImcEngine::attach_pool.
[[nodiscard]] RicPool load_ric_pool_any(
    const std::string& path, const Graph& graph,
    const CommunitySet& communities,
    ArenaBackend backend = ArenaBackend::kRam,
    SnapshotTrust trust = SnapshotTrust::kVerifyPayload);

}  // namespace imc
