// RIC pool (de)serialization: generating millions of samples dominates
// experiment time, so pools can be written once and reloaded across runs
// (the CLI and long sweeps use this; the text format keeps diffs auditable).
//
// Format (line-oriented, '#' comments):
//   imc-ric-pool v1
//   nodes <n> samples <m> model <ic|lt>
//   sample <community> <threshold> <touch-count> v1 m1 v2 m2 ...
// where (v, m) pairs are node id + member mask (hex). The loader validates
// against the graph/community structure it is attached to.
#pragma once

#include <iosfwd>
#include <string>

#include "sampling/ric_pool.h"

namespace imc {

/// Writes the pool's samples (not the index — it is rebuilt on load).
void write_ric_pool(std::ostream& out, const RicPool& pool);

/// Saves to a file; throws std::runtime_error on I/O failure.
void save_ric_pool(const std::string& path, const RicPool& pool);

/// Reads samples into a fresh pool bound to (graph, communities), with
/// arenas in `backend` storage. Throws std::runtime_error on malformed
/// input or structural mismatch (node count, community ids, thresholds
/// out of range).
[[nodiscard]] RicPool read_ric_pool(std::istream& in, const Graph& graph,
                                    const CommunitySet& communities,
                                    ArenaBackend backend = ArenaBackend::kRam);

/// Loads from a file; throws std::runtime_error if unreadable.
[[nodiscard]] RicPool load_ric_pool(const std::string& path,
                                    const Graph& graph,
                                    const CommunitySet& communities,
                                    ArenaBackend backend = ArenaBackend::kRam);

}  // namespace imc
