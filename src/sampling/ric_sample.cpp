#include "sampling/ric_sample.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "diffusion/lt_model.h"

namespace imc {

std::uint64_t RicSample::mask_of(NodeId v) const {
  const auto it = std::lower_bound(
      touching.begin(), touching.end(), v,
      [](const auto& entry, NodeId node) { return entry.first < node; });
  if (it != touching.end() && it->first == v) return it->second;
  return 0;
}

std::uint32_t RicSample::members_reached(std::span<const NodeId> seeds) const {
  std::uint64_t covered = 0;
  for (const NodeId v : seeds) covered |= mask_of(v);
  return static_cast<std::uint32_t>(__builtin_popcountll(covered));
}

RicSampler::RicSampler(const Graph& graph, const CommunitySet& communities,
                       DiffusionModel model)
    : graph_(&graph), communities_(&communities), model_(model) {
  if (communities.empty()) {
    throw std::invalid_argument("RicSampler: no communities");
  }
  if (model == DiffusionModel::kLinearThreshold &&
      !lt_weights_valid(graph)) {
    throw std::invalid_argument(
        "RicSampler: LT mode requires per-node incoming weights <= 1");
  }
  if (communities.node_count() != graph.node_count()) {
    throw std::invalid_argument(
        "RicSampler: community set and graph node counts differ");
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    if (communities.population(c) > kMaxCommunityPopulation) {
      throw std::invalid_argument(
          "RicSampler: community population exceeds 64 (mask width); "
          "split communities first (community/size_cap.h)");
    }
  }
  rho_ = DiscreteDistribution(communities.benefits());
  const NodeId n = graph.node_count();
  visit_epoch_.assign(n, 0);
  mask_.assign(n, 0);
  live_in_.resize(n);
}

RicSample RicSampler::generate(Rng& rng) {
  return generate_for_community(static_cast<CommunityId>(rho_.sample(rng)),
                                rng);
}

RicSample RicSampler::generate_for_community(CommunityId community, Rng& rng) {
  const auto members = communities_->members(community);  // range-checked
  RicSample sample;
  sample.community = community;
  sample.threshold = communities_->threshold(community);
  sample.member_count = static_cast<std::uint32_t>(members.size());

  // -- Phase 1: backward BFS from the whole community, flipping each edge
  // at most once (the st[e] bookkeeping of Alg. 1 is implicit: an edge is
  // examined exactly when its head is dequeued, which happens once).
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap: old marks could alias the restarted counter.
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  queue_.clear();
  region_.clear();
  const auto visit = [&](NodeId v) {
    if (visit_epoch_[v] != epoch_) {
      visit_epoch_[v] = epoch_;
      mask_[v] = 0;
      queue_.push_back(v);
      region_.push_back(v);
    }
  };
  for (const NodeId u : members) visit(u);

  // live_in lists are stored per head node; remember which heads we touched
  // so clearing is O(realized edges), not O(n).
  live_touched_.clear();
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    if (model_ == DiffusionModel::kIndependentCascade) {
      for (const Neighbor& nb : graph_->in_neighbors(u)) {
        if (rng.bernoulli(static_cast<double>(nb.weight))) {
          if (live_in_[u].empty()) live_touched_.push_back(u);
          live_in_[u].push_back(nb.node);  // live edge nb.node -> u
          visit(nb.node);
        }
      }
    } else {
      // LT live-edge: node u keeps exactly one in-edge with probability
      // equal to its weight (none with the leftover probability).
      double x = rng.uniform();
      for (const Neighbor& nb : graph_->in_neighbors(u)) {
        x -= static_cast<double>(nb.weight);
        if (x < 0.0) {
          live_touched_.push_back(u);  // first and only edge into u
          live_in_[u].push_back(nb.node);
          visit(nb.node);
          break;
        }
      }
    }
  }

  // -- Phase 2: per-member backward DFS over realized edges. Node v gets
  // bit j iff v can reach member j — this is the transpose of R_g(u_j).
  std::vector<NodeId> stack;
  for (std::uint32_t j = 0; j < members.size(); ++j) {
    const std::uint64_t bit = 1ULL << j;
    const NodeId root = members[j];
    if ((mask_[root] & bit) != 0) continue;
    mask_[root] |= bit;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : live_in_[v]) {  // live edge w -> v
        if ((mask_[w] & bit) == 0) {
          mask_[w] |= bit;
          stack.push_back(w);
        }
      }
    }
  }

  // -- Phase 3: emit (node, mask) pairs sorted by node id; reset scratch.
  sample.touching.reserve(region_.size());
  for (const NodeId v : region_) {
    if (mask_[v] != 0) sample.touching.emplace_back(v, mask_[v]);
  }
  std::sort(sample.touching.begin(), sample.touching.end());
  for (const NodeId u : live_touched_) live_in_[u].clear();
  return sample;
}

}  // namespace imc
