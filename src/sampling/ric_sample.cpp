#include "sampling/ric_sample.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "diffusion/lt_model.h"
#include "util/mmap_arena.h"

namespace imc {

std::uint64_t RicSample::mask_of(NodeId v) const {
  const auto it = std::lower_bound(
      touching.begin(), touching.end(), v,
      [](const auto& entry, NodeId node) { return entry.first < node; });
  if (it != touching.end() && it->first == v) return it->second;
  return 0;
}

std::uint32_t RicSample::members_reached(std::span<const NodeId> seeds) const {
  std::uint64_t covered = 0;
  for (const NodeId v : seeds) covered |= mask_of(v);
  return static_cast<std::uint32_t>(__builtin_popcountll(covered));
}

RicSampler::RicSampler(const Graph& graph, const CommunitySet& communities,
                       DiffusionModel model)
    : graph_(&graph), communities_(&communities), model_(model) {
  if (communities.empty()) {
    throw std::invalid_argument("RicSampler: no communities");
  }
  if (model == DiffusionModel::kLinearThreshold &&
      !lt_weights_valid(graph)) {
    throw std::invalid_argument(
        "RicSampler: LT mode requires per-node incoming weights <= 1");
  }
  if (communities.node_count() != graph.node_count()) {
    throw std::invalid_argument(
        "RicSampler: community set and graph node counts differ");
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    if (communities.population(c) > kMaxCommunityPopulation) {
      throw std::invalid_argument(
          "RicSampler: community population exceeds 64 (mask width); "
          "split communities first (community/size_cap.h)");
    }
  }
  rho_ = DiscreteDistribution(communities.benefits());
  const NodeId n = graph.node_count();
  visit_epoch_.assign(n, 0);
  mask_.assign(n, 0);
  live_head_.assign(n, kNoLiveEdge);
  in_worklist_.assign(n, 0);
}

RicSample RicSampler::generate(Rng& rng) {
  return generate_for_community(static_cast<CommunityId>(rho_.sample(rng)),
                                rng);
}

RicSample RicSampler::generate_for_community(CommunityId community, Rng& rng) {
  RicSample sample;
  sample.touching.clear();
  const RicSampleMeta meta =
      generate_for_community_into(community, rng, sample.touching);
  sample.community = meta.community;
  sample.threshold = meta.threshold;
  sample.member_count = meta.member_count;
  return sample;
}

template <typename Arena>
RicSampleMeta RicSampler::generate_into(Rng& rng, Arena& out) {
  return generate_for_community_into(
      static_cast<CommunityId>(rho_.sample(rng)), rng, out);
}

template <typename Arena>
RicSampleMeta RicSampler::generate_for_community_into(CommunityId community,
                                                      Rng& rng,
                                                      Arena& out) {
  const auto members = communities_->members(community);  // range-checked
  RicSampleMeta meta;
  meta.community = community;
  meta.threshold = communities_->threshold(community);
  meta.member_count = static_cast<std::uint32_t>(members.size());

  // -- Phase 1: backward BFS from the whole community, flipping each edge
  // at most once (the st[e] bookkeeping of Alg. 1 is implicit: an edge is
  // examined exactly when its head is dequeued, which happens once).
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap: old marks could alias the restarted counter.
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  queue_.clear();
  region_.clear();
  for (const NodeId u : members) visit(u);

  const std::span<const float> uniform_p = graph_->in_uniform_weights();
  const std::span<const double> uniform_inv = graph_->in_uniform_inv_log1ps();
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    if (model_ == DiffusionModel::kIndependentCascade) {
      const float p = uniform_p[u];
      if (p > 0.0F) {
        // Uniform in-weights: geometric skipping. One draw per REALIZED
        // edge (plus a final overshoot) instead of one per in-edge; with
        // p == 1, 1/log1p(-p) == -0.0 and every skip is 0, so the loop
        // degenerates to "realize everything".
        const double inv_log1p = uniform_inv[u];
        const auto neighbors = graph_->in_neighbors(u);
        std::uint64_t idx = rng.geometric_skip(inv_log1p);
        while (idx < neighbors.size()) {
          const NodeId tail = neighbors[idx].node;
          add_live_edge(u, tail);
          visit(tail);
          idx += 1 + rng.geometric_skip(inv_log1p);
        }
      } else if (p < 0.0F) {
        // Mixed in-weights: per-edge Bernoulli fallback.
        for (const Neighbor& nb : graph_->in_neighbors(u)) {
          if (rng.bernoulli(static_cast<double>(nb.weight))) {
            add_live_edge(u, nb.node);
            visit(nb.node);
          }
        }
      }
      // p == 0 (uniformly zero weights / no in-edges): nothing realizes.
    } else {
      // LT live-edge: node u keeps exactly one in-edge with probability
      // equal to its weight (none with the leftover probability).
      double x = rng.uniform();
      for (const Neighbor& nb : graph_->in_neighbors(u)) {
        x -= static_cast<double>(nb.weight);
        if (x < 0.0) {
          add_live_edge(u, nb.node);
          visit(nb.node);
          break;
        }
      }
    }
  }

  // -- Phase 2: bit-parallel mask propagation. Node v gets bit j iff v can
  // reach member j — all <= 64 bits flow at once along the realized edges
  // (mask_[tail] |= mask_[head]) through one monotone worklist fixpoint,
  // instead of one DFS per member. Reusing queue_ as the worklist is safe:
  // the BFS above fully drained it.
  queue_.clear();
  head = 0;
  for (std::uint32_t j = 0; j < members.size(); ++j) {
    mask_[members[j]] |= 1ULL << j;
  }
  for (const NodeId u : members) {
    if (!in_worklist_[u]) {
      in_worklist_[u] = 1;
      queue_.push_back(u);
    }
  }
  while (head < queue_.size()) {
    const NodeId v = queue_[head++];
    in_worklist_[v] = 0;
    const std::uint64_t m = mask_[v];
    for (std::uint32_t e = live_head_[v]; e != kNoLiveEdge;
         e = live_next_[e]) {
      const NodeId w = live_tail_[e];  // live edge w -> v
      if ((mask_[w] | m) != mask_[w]) {
        mask_[w] |= m;
        if (!in_worklist_[w]) {
          in_worklist_[w] = 1;
          queue_.push_back(w);
        }
      }
    }
  }

  // -- Phase 3: emit (node, mask) pairs sorted by node id; reset scratch.
  // Sorting the 4-byte node ids and then emitting beats sorting the
  // 16-byte pairs in place, and the ordered mask_ reads are cache-kinder.
  // No per-sample reserve: arenas accumulate MANY samples, and reserve()
  // grows capacity to exactly the requested size — calling it per sample
  // would defeat push_back's geometric growth and turn bulk generation
  // quadratic in the arena size.
  std::sort(region_.begin(), region_.end());
  const std::size_t start = out.size();
  for (const NodeId v : region_) {
    if (mask_[v] != 0) out.emplace_back(v, mask_[v]);
  }
  meta.touch_count = static_cast<std::uint32_t>(out.size() - start);
  for (const NodeId u : live_touched_) live_head_[u] = kNoLiveEdge;
  live_touched_.clear();
  live_tail_.clear();
  live_next_.clear();
  return meta;
}

// The two arena types pool growth actually emits into: per-part scratch
// vectors and the pool's own ArenaVector slabs (heap or mmap backend).
using PoolArena = ArenaVector<std::pair<NodeId, std::uint64_t>>;
template RicSampleMeta RicSampler::generate_into(Rng&,
                                                 RicSampler::TouchArena&);
template RicSampleMeta RicSampler::generate_into(Rng&, PoolArena&);
template RicSampleMeta RicSampler::generate_for_community_into(
    CommunityId, Rng&, RicSampler::TouchArena&);
template RicSampleMeta RicSampler::generate_for_community_into(CommunityId,
                                                               Rng&,
                                                               PoolArena&);

}  // namespace imc
