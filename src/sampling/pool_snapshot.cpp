#include "sampling/pool_snapshot.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "sampling/pool_io.h"
#include "util/mathx.h"

namespace imc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ric pool snapshot: " + what);
}

constexpr std::size_t kHeaderBytes = 128;

/// Byte length of each section, padded position independent: sections are
/// laid out back to back, each starting on a 64-byte boundary.
struct SectionLayout {
  std::size_t bytes = 0;    // raw payload bytes
  std::size_t padded = 0;   // bytes + zero padding to the next boundary
  std::size_t offset = 0;   // absolute file offset of the raw payload
};

/// The seven sections in their fixed file order, with offsets resolved.
/// All lengths derive from the header counts — there is no section table.
struct SnapshotLayout {
  SectionLayout sections[7];
  std::size_t total_bytes = 0;

  static SnapshotLayout from_counts(std::uint64_t nodes,
                                    std::uint64_t communities,
                                    std::uint64_t samples,
                                    std::uint64_t sample_pairs,
                                    std::uint64_t csr_touches) {
    // All products and the running cursor are overflow-checked: a crafted
    // header count (e.g. 2^60 pairs) would otherwise wrap a section size
    // to a tiny value that stays self-consistent with payload_bytes while
    // disagreeing with the declared counts.
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    const auto section_bytes = [](std::uint64_t count,
                                  std::size_t element) -> std::size_t {
      if (count > (kMax - 63) / element) {
        fail("header counts overflow the section layout");
      }
      return static_cast<std::size_t>(count) * element;
    };
    const std::size_t raw[7] = {
        section_bytes(samples, sizeof(std::uint32_t)),      // thresholds
        section_bytes(samples, sizeof(CommunityId)),        // source_community
        section_bytes(communities, sizeof(std::uint32_t)),  // community_freq
        section_bytes(samples + 1, sizeof(std::uint64_t)),  // sample_offsets
        section_bytes(sample_pairs,
                      sizeof(std::pair<NodeId, std::uint64_t>)),
        section_bytes(nodes + 1, sizeof(std::uint64_t)),    // touch_offsets
        section_bytes(csr_touches, sizeof(RicPool::Touch)),  // touches
    };
    SnapshotLayout layout;
    std::size_t cursor = kHeaderBytes;
    for (int i = 0; i < 7; ++i) {
      layout.sections[i].bytes = raw[i];
      layout.sections[i].padded = detail::round_up_64(raw[i]);
      layout.sections[i].offset = cursor;
      if (layout.sections[i].padded > kMax - cursor) {
        fail("header counts overflow the section layout");
      }
      cursor += layout.sections[i].padded;
    }
    layout.total_bytes = cursor;
    return layout;
  }
};

/// FNV-1a over the raw (unpadded) bytes of every section, in file order.
/// Padding is excluded so the digest only covers meaningful data.
std::uint64_t payload_checksum(const RicPool::SnapshotView& view) {
  Fnv1a64 digest;
  const auto add = [&digest](const auto& span) {
    digest.add_bytes(span.data(),
                     span.size() * sizeof(typename std::remove_reference_t<
                                          decltype(span)>::element_type));
  };
  add(view.thresholds);
  add(view.source_community);
  add(view.community_frequency);
  add(view.sample_offsets);
  add(view.sample_arena);
  add(view.touch_offsets);
  add(view.touches);
  return digest.value();
}

void write_padded(std::ostream& out, const void* data, std::size_t bytes,
                  std::size_t padded) {
  static constexpr char kZeros[64] = {};
  if (bytes > 0) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  }
  if (padded > bytes) {
    out.write(kZeros, static_cast<std::streamsize>(padded - bytes));
  }
}

/// FNV-1a over every header byte before the header_checksum field. The
/// struct is padding-free and exactly 128 bytes (static_assert in the
/// header), so digesting the struct's own bytes digests the file bytes.
std::uint64_t header_digest(const PoolSnapshotHeader& header) {
  Fnv1a64 digest;
  digest.add_bytes(&header, offsetof(PoolSnapshotHeader, header_checksum));
  return digest.value();
}

PoolSnapshotHeader make_header(const RicPool& pool,
                               const RicPool::SnapshotView& view) {
  PoolSnapshotHeader header;
  std::memcpy(header.magic, kPoolSnapshotMagic, sizeof(header.magic));
  header.version = kPoolSnapshotVersion;
  header.model = static_cast<std::uint32_t>(view.model);
  header.node_count = pool.graph().node_count();
  header.community_count = pool.communities().size();
  header.sample_count = view.thresholds.size();
  header.sample_pair_count = view.sample_arena.size();
  header.csr_touch_count = view.touches.size();
  header.epoch_samples = view.epoch.samples;
  header.epoch_grows = view.epoch.grows;
  header.rng_contract = kRicSamplerRngContract;
  header.graph_fingerprint = pool.graph().fingerprint();
  header.community_fingerprint = pool.communities().fingerprint();
  const SnapshotLayout layout = SnapshotLayout::from_counts(
      header.node_count, header.community_count, header.sample_count,
      header.sample_pair_count, header.csr_touch_count);
  header.payload_bytes = layout.total_bytes;
  header.payload_checksum = payload_checksum(view);
  header.epoch_repairs = view.epoch.repairs;
  header.header_checksum = header_digest(header);
  return header;
}

/// Shared header validation for both loaders: everything that can be
/// checked without touching the arena payload.
void validate_header(const PoolSnapshotHeader& header, const Graph& graph,
                     const CommunitySet& communities) {
  if (std::memcmp(header.magic, kPoolSnapshotMagic, sizeof(header.magic)) !=
      0) {
    fail("bad magic (not an imcpool2 snapshot)");
  }
  if (header.version != kPoolSnapshotVersion) {
    fail("unsupported version " + std::to_string(header.version));
  }
  if (header.rng_contract != kRicSamplerRngContract) {
    fail("rng contract mismatch (snapshot " +
         std::to_string(header.rng_contract) + ", sampler " +
         std::to_string(kRicSamplerRngContract) + ")");
  }
  if (header.model > static_cast<std::uint32_t>(
                         DiffusionModel::kLinearThreshold)) {
    fail("unknown diffusion model tag " + std::to_string(header.model));
  }
  if (header.node_count != graph.node_count()) {
    fail("node count does not match the supplied graph");
  }
  if (header.community_count != communities.size()) {
    fail("community count does not match the supplied communities");
  }
  if (header.graph_fingerprint != graph.fingerprint()) {
    fail("graph fingerprint mismatch");
  }
  if (header.community_fingerprint != communities.fingerprint()) {
    fail("community fingerprint mismatch");
  }
  if (header.sample_count > std::numeric_limits<std::uint32_t>::max()) {
    fail("sample count exceeds the 32-bit id range");
  }
  if (header.epoch_samples != header.sample_count) {
    fail("epoch watermark disagrees with the sample count");
  }
  const SnapshotLayout layout = SnapshotLayout::from_counts(
      header.node_count, header.community_count, header.sample_count,
      header.sample_pair_count, header.csr_touch_count);
  if (header.payload_bytes != layout.total_bytes) {
    fail("declared payload size disagrees with the section counts");
  }
  // The header's own checksum runs LAST: every specific diagnosis above
  // (wrong version, fingerprint mismatch, ...) stays reachable for
  // honestly-mismatched snapshots, and only a header that passed them all
  // but was edited in place — e.g. a forged epoch — lands here.
  if (header_digest(header) != header.header_checksum) {
    fail("header checksum mismatch (tampered or corrupt header)");
  }
}

/// Deep per-sample validation for untrusted snapshots (streamed loads and
/// the default verifying attach; SnapshotTrust::kTrustPayload skips it).
///
/// Both offset tables get a full endpoints + monotonicity pass BEFORE any
/// offset is used to index its arena: front == 0, back == arena size and
/// pairwise monotone together bound every span by the arena length. The
/// per-step check cannot live inside the content loop — there it would
/// only have validated the prefix scanned so far, and a hostile
/// offsets[g + 1] past the arena would be dereferenced before its own
/// monotonicity check ran.
void validate_payload(const RicPool::PoolArenas& arenas,
                      const Graph& graph, const CommunitySet& communities) {
  const auto thresholds = arenas.thresholds.span();
  const auto source = arenas.source_community.span();
  const auto offsets = arenas.sample_offsets.span();
  const auto pairs = arenas.sample_arena.span();
  if (thresholds.size() != source.size() ||
      offsets.size() != source.size() + 1) {
    fail("metadata arenas disagree on the sample count");
  }
  if (offsets.front() != 0 || offsets.back() != pairs.size()) {
    fail("sample-major offsets do not span the sample arena");
  }
  for (std::size_t g = 0; g + 1 < offsets.size(); ++g) {
    if (offsets[g] > offsets[g + 1]) {
      fail("sample " + std::to_string(g) + ": offsets not monotone");
    }
  }
  for (std::size_t g = 0; g < source.size(); ++g) {
    const CommunityId c = source[g];
    if (c >= communities.size()) {
      fail("sample " + std::to_string(g) + ": community id out of range");
    }
    if (thresholds[g] != communities.threshold(c)) {
      fail("sample " + std::to_string(g) +
           ": threshold disagrees with the community structure");
    }
    const NodeId population = communities.population(c);
    const std::uint64_t full =
        population >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << population) - 1;
    for (std::uint64_t i = offsets[g]; i < offsets[g + 1]; ++i) {
      if (pairs[i].first >= graph.node_count()) {
        fail("sample " + std::to_string(g) + ": touching node out of range");
      }
      if ((pairs[i].second & ~full) != 0) {
        fail("sample " + std::to_string(g) +
             ": member mask wider than the community population");
      }
    }
  }
  const auto touch_offsets = arenas.touch_offsets.span();
  const auto touches = arenas.touches.span();
  if (touch_offsets.size() !=
      static_cast<std::size_t>(graph.node_count()) + 1) {
    fail("csr: offsets table does not match the graph");
  }
  if (touch_offsets.front() != 0 || touch_offsets.back() != touches.size()) {
    fail("csr: touch offsets do not span the touch arena");
  }
  for (std::size_t v = 0; v + 1 < touch_offsets.size(); ++v) {
    if (touch_offsets[v] > touch_offsets[v + 1]) {
      fail("csr: touch offsets not monotone");
    }
  }
  for (std::size_t v = 0; v + 1 < touch_offsets.size(); ++v) {
    for (std::uint64_t i = touch_offsets[v]; i < touch_offsets[v + 1]; ++i) {
      const RicPool::Touch& t = touches[i];
      if (t.sample >= thresholds.size()) {
        fail("csr: touch references a sample out of range");
      }
      if (t.threshold != thresholds[t.sample]) {
        fail("csr: touch threshold disagrees with the sample metadata");
      }
      if (i > touch_offsets[v] && touches[i - 1].sample >= t.sample) {
        fail("csr: touches not strictly ordered by sample id");
      }
    }
  }
}

/// Reads one section into an owned ArenaVector and folds its raw bytes
/// into the running checksum, then skips the alignment padding.
template <typename T>
ArenaVector<T> read_section(std::istream& in, const SectionLayout& section,
                            ArenaBackend backend, Fnv1a64& digest) {
  ArenaVector<T> arena(backend);
  const std::size_t count = section.bytes / sizeof(T);
  arena.resize(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(arena.data()),
            static_cast<std::streamsize>(section.bytes));
    if (!in) fail("truncated arena section");
    digest.add_bytes(arena.data(), section.bytes);
  }
  const std::size_t pad = section.padded - section.bytes;
  if (pad > 0) {
    in.ignore(static_cast<std::streamsize>(pad));
    if (!in) fail("truncated arena section");
  }
  return arena;
}

/// Borrowed zero-copy view of one section inside the mapped snapshot;
/// the first mutation materializes into `materialize_backend` storage.
template <typename T>
ArenaVector<T> borrow_section(const std::shared_ptr<const MmapStorage>& map,
                              const SectionLayout& section,
                              ArenaBackend materialize_backend) {
  const auto* base =
      reinterpret_cast<const T*>(map->data() + section.offset);
  return ArenaVector<T>::borrowed(base, section.bytes / sizeof(T), map,
                                  materialize_backend);
}

/// FNV-1a over the raw (unpadded) section bytes of a mapped snapshot —
/// the attach-path twin of the streamed loader's incremental digest.
std::uint64_t mapped_checksum(const MmapStorage& map,
                              const SnapshotLayout& layout) {
  Fnv1a64 digest;
  for (const SectionLayout& section : layout.sections) {
    digest.add_bytes(map.data() + section.offset, section.bytes);
  }
  return digest.value();
}

}  // namespace

void write_ric_pool_snapshot(std::ostream& out, const RicPool& pool) {
  const RicPool::SnapshotView view = pool.snapshot_view();
  const PoolSnapshotHeader header = make_header(pool, view);
  const SnapshotLayout layout = SnapshotLayout::from_counts(
      header.node_count, header.community_count, header.sample_count,
      header.sample_pair_count, header.csr_touch_count);

  char header_block[kHeaderBytes] = {};
  std::memcpy(header_block, &header, sizeof(header));
  out.write(header_block, kHeaderBytes);

  const auto section = [&](int i, const auto& span) {
    write_padded(out, span.data(), layout.sections[i].bytes,
                 layout.sections[i].padded);
  };
  section(0, view.thresholds);
  section(1, view.source_community);
  section(2, view.community_frequency);
  section(3, view.sample_offsets);
  section(4, view.sample_arena);
  section(5, view.touch_offsets);
  section(6, view.touches);
  if (!out) fail("write failed");
}

void save_ric_pool_snapshot(const std::string& path, const RicPool& pool) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path);
  write_ric_pool_snapshot(out, pool);
  out.flush();
  if (!out) fail("write failed for " + path);
  out.close();
  if (out.fail()) fail("close failed for " + path);
}

RicPool read_ric_pool_snapshot(std::istream& in, const Graph& graph,
                               const CommunitySet& communities,
                               ArenaBackend backend) {
  char header_block[kHeaderBytes] = {};
  in.read(header_block, kHeaderBytes);
  if (!in) fail("truncated header");
  PoolSnapshotHeader header;
  std::memcpy(&header, header_block, sizeof(header));
  validate_header(header, graph, communities);

  const SnapshotLayout layout = SnapshotLayout::from_counts(
      header.node_count, header.community_count, header.sample_count,
      header.sample_pair_count, header.csr_touch_count);

  Fnv1a64 digest;
  RicPool::PoolArenas arenas;
  arenas.thresholds = read_section<std::uint32_t>(in, layout.sections[0],
                                                  backend, digest);
  arenas.source_community = read_section<CommunityId>(in, layout.sections[1],
                                                      backend, digest);
  arenas.community_frequency = read_section<std::uint32_t>(
      in, layout.sections[2], backend, digest);
  arenas.sample_offsets = read_section<std::uint64_t>(in, layout.sections[3],
                                                      backend, digest);
  arenas.sample_arena = read_section<std::pair<NodeId, std::uint64_t>>(
      in, layout.sections[4], backend, digest);
  arenas.touch_offsets = read_section<std::uint64_t>(in, layout.sections[5],
                                                     backend, digest);
  arenas.touches = read_section<RicPool::Touch>(in, layout.sections[6],
                                                backend, digest);
  if (digest.value() != header.payload_checksum) {
    fail("payload checksum mismatch (corrupt snapshot)");
  }
  if (in.peek() != std::istream::traits_type::eof()) {
    fail("trailing bytes after the last arena section");
  }
  validate_payload(arenas, graph, communities);

  try {
    return RicPool::restore_snapshot(
        graph, communities, static_cast<DiffusionModel>(header.model),
        RicPool::PoolEpoch{header.epoch_samples, header.epoch_grows,
                           header.epoch_repairs},
        std::move(arenas));
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
}

RicPool load_ric_pool_snapshot(const std::string& path, const Graph& graph,
                               const CommunitySet& communities,
                               ArenaBackend backend) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  return read_ric_pool_snapshot(in, graph, communities, backend);
}

RicPool attach_ric_pool_snapshot(const std::string& path, const Graph& graph,
                                 const CommunitySet& communities,
                                 SnapshotTrust trust,
                                 ArenaBackend materialize_backend) {
  auto map = std::make_shared<const MmapStorage>(
      MmapStorage::open_readonly(path));
  if (map->size() < kHeaderBytes) fail("truncated header");
  PoolSnapshotHeader header;
  std::memcpy(&header, map->data(), sizeof(header));
  validate_header(header, graph, communities);
  if (map->size() != header.payload_bytes) {
    fail("snapshot file size disagrees with its declared payload");
  }

  const SnapshotLayout layout = SnapshotLayout::from_counts(
      header.node_count, header.community_count, header.sample_count,
      header.sample_pair_count, header.csr_touch_count);

  RicPool::PoolArenas arenas;
  arenas.thresholds = borrow_section<std::uint32_t>(map, layout.sections[0],
                                                    materialize_backend);
  arenas.source_community = borrow_section<CommunityId>(
      map, layout.sections[1], materialize_backend);
  arenas.community_frequency = borrow_section<std::uint32_t>(
      map, layout.sections[2], materialize_backend);
  arenas.sample_offsets = borrow_section<std::uint64_t>(
      map, layout.sections[3], materialize_backend);
  arenas.sample_arena = borrow_section<std::pair<NodeId, std::uint64_t>>(
      map, layout.sections[4], materialize_backend);
  arenas.touch_offsets = borrow_section<std::uint64_t>(
      map, layout.sections[5], materialize_backend);
  arenas.touches = borrow_section<RicPool::Touch>(map, layout.sections[6],
                                                  materialize_backend);

  if (trust == SnapshotTrust::kVerifyPayload) {
    if (mapped_checksum(*map, layout) != header.payload_checksum) {
      fail("payload checksum mismatch (corrupt snapshot)");
    }
    validate_payload(arenas, graph, communities);
  }

  try {
    return RicPool::restore_snapshot(
        graph, communities, static_cast<DiffusionModel>(header.model),
        RicPool::PoolEpoch{header.epoch_samples, header.epoch_grows,
                           header.epoch_repairs},
        std::move(arenas));
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
}

bool is_pool_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kPoolSnapshotMagic)] = {};
  in.read(magic, sizeof(magic));
  return in &&
         std::memcmp(magic, kPoolSnapshotMagic, sizeof(magic)) == 0;
}

RicPool load_ric_pool_any(const std::string& path, const Graph& graph,
                          const CommunitySet& communities,
                          ArenaBackend backend, SnapshotTrust trust) {
  if (is_pool_snapshot_file(path)) {
    return attach_ric_pool_snapshot(path, graph, communities, trust,
                                    backend);
  }
  return load_ric_pool(path, graph, communities, backend);
}

}  // namespace imc
