// Reverse Influenceable Community (RIC) sampling — the paper's Alg. 1 and
// the foundation of every IMC algorithm in this library.
//
// A RIC sample g is drawn by (1) choosing a source community C_g with
// probability ρ(C_i) = b_i / b, (2) realizing a live-edge sample graph via
// a backward BFS seeded with ALL of C_g (each edge flipped at most once),
// and (3) recording, for every node v in the realized region, WHICH members
// of C_g it can reach (the transpose of the per-member reverse-reachable
// sets R_g(u) of the paper). g is influenced by S iff S reaches at least
// h_g distinct members, i.e. popcount(OR of member masks over S) >= h_g.
//
// Member sets are stored as 64-bit masks: the library requires community
// populations of at most 64, which the paper's experiments always satisfy
// (communities are size-capped at s = 8 by default and s <= 32 in sweeps).
//
// Engine notes (DESIGN.md §9, "Sampling engine"):
//   * Live-edge realization uses geometric skipping on nodes whose
//     in-edges share one probability (every node under weighted cascade):
//     one uniform draw jumps straight to the next realized edge instead of
//     one Bernoulli per in-edge. Mixed-weight nodes keep the per-edge path.
//   * Member reachability is computed by ONE bit-parallel worklist pass
//     that propagates all <= 64 member bits at once along realized edges —
//     O(live edges × rounds) instead of one DFS per member.
//   * Scratch is flat: realized in-edges live in a head/next arena (no
//     per-node heap vectors), and `generate_into` appends the touching
//     pairs straight into a caller-owned arena so pool growth never
//     materializes intermediate RicSample objects.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Maximum community population supported by the mask representation.
inline constexpr std::uint32_t kMaxCommunityPopulation = 64;

/// Version of the sampler's RNG-consumption contract. The determinism unit
/// is unchanged — one substream per global sample index, derived as
/// splitmix_of(seed, base + i) — but the number of draws consumed PER
/// sample differs across versions, so pools generated from the same seed
/// are not comparable across them. v1: per-edge Bernoulli realization
/// (PRs 0–2). v2: geometric-skip realization on uniform-in-weight nodes
/// (golden-seed pins re-recorded once in maxr_determinism_test).
inline constexpr std::uint32_t kRicSamplerRngContract = 2;

/// One RIC sample. `touching` lists every node that can reach >= 1 member
/// of the source community in the realization, with the mask of members it
/// reaches; sorted by node id; members themselves appear with their own bit
/// set (u ∈ R_g(u)).
struct RicSample {
  CommunityId community = kInvalidCommunity;
  std::uint32_t threshold = 1;     // h_g
  std::uint32_t member_count = 0;  // |C_g| (<= 64)
  std::vector<std::pair<NodeId, std::uint64_t>> touching;

  /// Mask of members reached from `v`, 0 if v does not touch the sample.
  [[nodiscard]] std::uint64_t mask_of(NodeId v) const;

  /// Number of members of C_g reachable from seed set S = |I_g(S)|.
  [[nodiscard]] std::uint32_t members_reached(
      std::span<const NodeId> seeds) const;

  /// X_g(S): 1 iff S reaches >= h_g members.
  [[nodiscard]] bool influenced_by(std::span<const NodeId> seeds) const {
    return members_reached(seeds) >= threshold;
  }
};

/// Per-sample metadata the arena-direct generation path emits alongside the
/// touching pairs — everything RicPool stores besides the pairs themselves.
struct RicSampleMeta {
  CommunityId community = kInvalidCommunity;
  std::uint32_t threshold = 1;     // h_g
  std::uint32_t member_count = 0;  // |C_g| (<= 64)
  std::uint32_t touch_count = 0;   // pairs appended to the arena
};

/// Reusable generator (owns scratch buffers; one instance per thread).
///
/// Supports both diffusion models (the paper's §II-A remark): under IC each
/// in-edge of a dequeued node is realized independently; under LT each
/// node realizes AT MOST ONE live in-edge, chosen with probability equal
/// to its weight (the classic LT live-edge distribution), so the reverse
/// region is a union of in-trees.
class RicSampler {
 public:
  /// The arena type `generate_into` appends to: (node, member mask) pairs.
  using TouchArena = std::vector<std::pair<NodeId, std::uint64_t>>;

  /// Requires every community population <= kMaxCommunityPopulation and a
  /// non-empty community set; throws std::invalid_argument otherwise.
  /// For kLinearThreshold the incoming weights of every node must sum to
  /// at most 1 (checked eagerly).
  RicSampler(const Graph& graph, const CommunitySet& communities,
             DiffusionModel model = DiffusionModel::kIndependentCascade);

  /// Draws one sample (paper Alg. 1). Deterministic given rng state.
  [[nodiscard]] RicSample generate(Rng& rng);

  /// Draws a sample with a forced source community (used by tests and by
  /// stratified ablations).
  [[nodiscard]] RicSample generate_for_community(CommunityId community,
                                                 Rng& rng);

  /// Arena-direct variant: appends the sample's touching pairs (sorted by
  /// node id) to `out` and returns the metadata. Pool growth uses this to
  /// emit straight into per-thread arenas with zero intermediate copies.
  /// Templated over the arena so the pool's serial fast path can emit
  /// straight into an ArenaVector slab (heap or mmap) while per-part
  /// scratch keeps using TouchArena; instantiated in ric_sample.cpp for
  /// exactly those two types.
  template <typename Arena>
  RicSampleMeta generate_into(Rng& rng, Arena& out);

  /// Arena-direct variant of generate_for_community.
  template <typename Arena>
  RicSampleMeta generate_for_community_into(CommunityId community, Rng& rng,
                                            Arena& out);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const CommunitySet& communities() const noexcept {
    return *communities_;
  }

  [[nodiscard]] DiffusionModel model() const noexcept { return model_; }

  /// Test-only: forces the visit-epoch counter so the wrap branch
  /// (epoch_ == UINT32_MAX → full refill, restart at 1) can be exercised
  /// without generating 2^32 samples.
  void set_visit_epoch_for_test(std::uint32_t value) noexcept {
    epoch_ = value;
  }
  [[nodiscard]] std::uint32_t visit_epoch_for_test() const noexcept {
    return epoch_;
  }

 private:
  /// Sentinel for "no (more) realized in-edges" in the live-edge arena.
  static constexpr std::uint32_t kNoLiveEdge = 0xFFFFFFFFU;

  /// Marks v visited (epoch trick) and enqueues it for the BFS. Inline:
  /// called once per realized edge, millions of times per grow().
  void visit(NodeId v) {
    if (visit_epoch_[v] != epoch_) {
      visit_epoch_[v] = epoch_;
      mask_[v] = 0;
      queue_.push_back(v);
      region_.push_back(v);
    }
  }
  /// Records realized live edge tail -> head in the flat arena. Inline for
  /// the same reason as visit().
  void add_live_edge(NodeId head, NodeId tail) {
    if (live_head_[head] == kNoLiveEdge) live_touched_.push_back(head);
    live_next_.push_back(live_head_[head]);
    live_tail_.push_back(tail);
    live_head_[head] = static_cast<std::uint32_t>(live_tail_.size() - 1);
  }

  const Graph* graph_;
  const CommunitySet* communities_;
  DiffusionModel model_ = DiffusionModel::kIndependentCascade;
  DiscreteDistribution rho_;  // ρ(C_i) = b_i / b

  // Scratch (cleared per sample via the epoch trick — no O(n) reset).
  std::vector<std::uint32_t> visit_epoch_;
  std::vector<std::uint64_t> mask_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> queue_;   // phase-1 BFS queue, reused as the phase-2
                                // worklist (both drained head-to-tail)
  std::vector<NodeId> region_;  // all visited nodes, BFS order

  // Realized live edges INTO each node, as a flat head/next linked arena:
  // live_head_[v] indexes the first entry for v (kNoLiveEdge when none),
  // entries chain through live_next_, tails live in live_tail_. Replaces
  // the former vector<vector<NodeId>> — zero per-node heap churn, O(live
  // edges) reset via live_touched_.
  std::vector<std::uint32_t> live_head_;
  std::vector<NodeId> live_tail_;
  std::vector<std::uint32_t> live_next_;
  std::vector<NodeId> live_touched_;  // heads with live in-edges this sample

  // Phase-2 worklist membership flags (all false between samples: every
  // queued node is popped exactly once per queue residency).
  std::vector<std::uint8_t> in_worklist_;
};

}  // namespace imc
