// Reverse Influenceable Community (RIC) sampling — the paper's Alg. 1 and
// the foundation of every IMC algorithm in this library.
//
// A RIC sample g is drawn by (1) choosing a source community C_g with
// probability ρ(C_i) = b_i / b, (2) realizing a live-edge sample graph via
// a backward BFS seeded with ALL of C_g (each edge flipped at most once),
// and (3) recording, for every node v in the realized region, WHICH members
// of C_g it can reach (the transpose of the per-member reverse-reachable
// sets R_g(u) of the paper). g is influenced by S iff S reaches at least
// h_g distinct members, i.e. popcount(OR of member masks over S) >= h_g.
//
// Member sets are stored as 64-bit masks: the library requires community
// populations of at most 64, which the paper's experiments always satisfy
// (communities are size-capped at s = 8 by default and s <= 32 in sweeps).
#pragma once

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Maximum community population supported by the mask representation.
inline constexpr std::uint32_t kMaxCommunityPopulation = 64;

/// One RIC sample. `touching` lists every node that can reach >= 1 member
/// of the source community in the realization, with the mask of members it
/// reaches; sorted by node id; members themselves appear with their own bit
/// set (u ∈ R_g(u)).
struct RicSample {
  CommunityId community = kInvalidCommunity;
  std::uint32_t threshold = 1;     // h_g
  std::uint32_t member_count = 0;  // |C_g| (<= 64)
  std::vector<std::pair<NodeId, std::uint64_t>> touching;

  /// Mask of members reached from `v`, 0 if v does not touch the sample.
  [[nodiscard]] std::uint64_t mask_of(NodeId v) const;

  /// Number of members of C_g reachable from seed set S = |I_g(S)|.
  [[nodiscard]] std::uint32_t members_reached(
      std::span<const NodeId> seeds) const;

  /// X_g(S): 1 iff S reaches >= h_g members.
  [[nodiscard]] bool influenced_by(std::span<const NodeId> seeds) const {
    return members_reached(seeds) >= threshold;
  }
};

/// Reusable generator (owns scratch buffers; one instance per thread).
///
/// Supports both diffusion models (the paper's §II-A remark): under IC each
/// in-edge of a dequeued node is realized independently; under LT each
/// node realizes AT MOST ONE live in-edge, chosen with probability equal
/// to its weight (the classic LT live-edge distribution), so the reverse
/// region is a union of in-trees.
class RicSampler {
 public:
  /// Requires every community population <= kMaxCommunityPopulation and a
  /// non-empty community set; throws std::invalid_argument otherwise.
  /// For kLinearThreshold the incoming weights of every node must sum to
  /// at most 1 (checked eagerly).
  RicSampler(const Graph& graph, const CommunitySet& communities,
             DiffusionModel model = DiffusionModel::kIndependentCascade);

  /// Draws one sample (paper Alg. 1). Deterministic given rng state.
  [[nodiscard]] RicSample generate(Rng& rng);

  /// Draws a sample with a forced source community (used by tests and by
  /// stratified ablations).
  [[nodiscard]] RicSample generate_for_community(CommunityId community,
                                                 Rng& rng);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const CommunitySet& communities() const noexcept {
    return *communities_;
  }

  [[nodiscard]] DiffusionModel model() const noexcept { return model_; }

 private:
  const Graph* graph_;
  const CommunitySet* communities_;
  DiffusionModel model_ = DiffusionModel::kIndependentCascade;
  DiscreteDistribution rho_;  // ρ(C_i) = b_i / b

  // Scratch (cleared per sample via the epoch trick — no O(n) reset).
  std::vector<std::uint32_t> visit_epoch_;
  std::vector<std::uint64_t> mask_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> queue_;
  std::vector<NodeId> region_;
  std::vector<std::vector<NodeId>> live_in_;  // realized live edges INTO each node (tails)
  std::vector<NodeId> live_touched_;           // heads with live in-edges
};

}  // namespace imc
