#include "sampling/ric_pool.h"

#include <algorithm>
#include <mutex>

#include "util/mathx.h"
#include "util/thread_pool.h"

namespace imc {

RicPool::RicPool(const Graph& graph, const CommunitySet& communities,
                 DiffusionModel model)
    : graph_(&graph),
      communities_(&communities),
      model_(model),
      total_benefit_(communities.total_benefit()) {
  // Validate eagerly so misconfiguration surfaces at pool construction.
  (void)RicSampler(graph, communities, model);
  index_.resize(graph.node_count());
  community_frequency_.assign(communities.size(), 0);
}

void RicPool::grow(std::uint64_t count, std::uint64_t seed, bool parallel) {
  if (count == 0) return;
  const std::uint64_t base = samples_.size();
  std::vector<RicSample> fresh(count);

  const auto generate_range = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned /*chunk*/) {
    RicSampler sampler(*graph_, *communities_, model_);
    for (std::uint64_t i = begin; i < end; ++i) {
      // One substream per global sample index keeps growth deterministic
      // and independent of chunking.
      Rng rng(splitmix_of(seed, base + i));
      fresh[i] = sampler.generate(rng);
    }
  };

  if (parallel && default_pool().size() > 1) {
    parallel_for(default_pool(), count, generate_range);
  } else {
    generate_range(0, count, 0);
  }

  samples_.reserve(samples_.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto id = static_cast<std::uint32_t>(samples_.size());
    samples_.push_back(std::move(fresh[i]));
    ++community_frequency_[samples_.back().community];
    for (const auto& [node, mask] : samples_.back().touching) {
      index_[node].push_back(Touch{id, mask});
    }
  }
}

void RicPool::append(RicSample sample) {
  if (sample.community >= communities_->size()) {
    throw std::invalid_argument("RicPool::append: bad community id");
  }
  if (sample.threshold == 0 ||
      sample.threshold > communities_->population(sample.community)) {
    throw std::invalid_argument("RicPool::append: threshold out of range");
  }
  for (const auto& [node, mask] : sample.touching) {
    if (node >= graph_->node_count() || mask == 0) {
      throw std::invalid_argument("RicPool::append: bad touching entry");
    }
  }
  const auto id = static_cast<std::uint32_t>(samples_.size());
  samples_.push_back(std::move(sample));
  ++community_frequency_[samples_.back().community];
  for (const auto& [node, mask] : samples_.back().touching) {
    index_[node].push_back(Touch{id, mask});
  }
}

std::uint64_t RicPool::splitmix_of(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(state);
}

std::span<const RicPool::Touch> RicPool::touches_of(NodeId v) const {
  return index_.at(v);
}

void RicPool::accumulate_masks(std::span<const NodeId> seeds,
                               std::vector<std::uint64_t>& covered,
                               std::vector<std::uint32_t>& dirty) const {
  covered.assign(samples_.size(), 0);
  dirty.clear();
  for (const NodeId v : seeds) {
    for (const Touch& touch : touches_of(v)) {
      if (covered[touch.sample] == 0) dirty.push_back(touch.sample);
      covered[touch.sample] |= touch.mask;
    }
  }
}

std::uint64_t RicPool::influenced_count(std::span<const NodeId> seeds) const {
  std::vector<std::uint64_t> covered;
  std::vector<std::uint32_t> dirty;
  accumulate_masks(seeds, covered, dirty);
  std::uint64_t influenced = 0;
  for (const std::uint32_t id : dirty) {
    if (static_cast<std::uint32_t>(popcount64(covered[id])) >=
        samples_[id].threshold) {
      ++influenced;
    }
  }
  return influenced;
}

double RicPool::c_hat(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  return total_benefit_ * static_cast<double>(influenced_count(seeds)) /
         static_cast<double>(samples_.size());
}

double RicPool::nu(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  std::vector<std::uint64_t> covered;
  std::vector<std::uint32_t> dirty;
  accumulate_masks(seeds, covered, dirty);
  KahanSum sum;
  for (const std::uint32_t id : dirty) {
    const double reached = popcount64(covered[id]);
    sum.add(std::min(1.0, reached /
                              static_cast<double>(samples_[id].threshold)));
  }
  return total_benefit_ * sum.value() / static_cast<double>(samples_.size());
}

}  // namespace imc
