#include "sampling/ric_pool.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/mathx.h"
#include "util/thread_pool.h"

namespace imc {

namespace {

/// One sample's evaluator slot: the reached-member mask fused with its
/// epoch mark and threshold into 16 bytes, so both the accumulation sweep
/// and the reduction over dirty ids touch a single cache stream (one
/// prefetch covers all three fields, and the reduction needs no random
/// `thresholds_[id]` load).
struct CoveredSlot {
  std::uint64_t mask = 0;       // reached member mask
  std::uint32_t mark = 0;       // epoch of last write; mask valid iff == epoch
  std::uint32_t threshold = 0;  // copied from the touch that dirtied the slot
};

/// Per-thread scratch for the one-shot evaluators (c_hat/nu/
/// influenced_count). `slots[g].mask` is only meaningful when
/// `slots[g].mark == epoch`, so an evaluation costs O(Σ touches of the
/// seeds) with no O(|R|) reset — the same epoch trick RicSampler uses for
/// its visit buffers. thread_local keeps concurrent evaluations (e.g.
/// MAF's overlapped S1/S2 scoring) race-free without locking.
struct EvalScratch {
  std::vector<CoveredSlot> slots;    // per sample
  std::vector<std::uint32_t> dirty;  // samples touched this evaluation
  std::uint32_t epoch = 0;
};

EvalScratch& eval_scratch(std::uint64_t samples) {
  static thread_local EvalScratch scratch;
  if (scratch.slots.size() < samples) scratch.slots.resize(samples);
  if (++scratch.epoch == 0) {  // wraparound: every mark is stale again
    for (CoveredSlot& slot : scratch.slots) slot.mark = 0;
    scratch.epoch = 1;
  }
  scratch.dirty.clear();
  return scratch;
}

/// OR-accumulates the member masks of `seeds` into the scratch, recording
/// dirtied sample ids; returns the scratch for the caller to reduce.
EvalScratch& accumulate_masks(const RicPool& pool,
                              std::span<const NodeId> seeds) {
  EvalScratch& scratch = eval_scratch(pool.size());
  CoveredSlot* slots = scratch.slots.data();
  const std::uint32_t epoch = scratch.epoch;
  for (const NodeId v : seeds) {
    const std::span<const RicPool::Touch> touches = pool.touches_of(v);
    const std::size_t size = touches.size();
    const std::size_t prefetched =
        size > kCoveredPrefetchDistance ? size - kCoveredPrefetchDistance : 0;
    const auto body = [&](const RicPool::Touch& touch) {
      CoveredSlot& slot = slots[touch.sample];
      if (slot.mark != epoch) {
        slot.mark = epoch;
        slot.mask = 0;
        slot.threshold = touch.threshold;
        scratch.dirty.push_back(touch.sample);
      }
      slot.mask |= touch.mask;
    };
    std::size_t i = 0;
    for (; i < prefetched; ++i) {
      prefetch_write(&slots[touches[i + kCoveredPrefetchDistance].sample]);
      body(touches[i]);
    }
    for (; i < size; ++i) body(touches[i]);
  }
  return scratch;
}

}  // namespace

RicPool::RicPool(const Graph& graph, const CommunitySet& communities,
                 DiffusionModel model, ArenaBackend backend)
    : graph_(&graph),
      communities_(&communities),
      model_(model),
      backend_(backend),
      total_benefit_(communities.total_benefit()),
      thresholds_(backend),
      source_community_(backend),
      community_frequency_(backend),
      sample_offsets_(backend),
      sample_arena_(backend),
      touch_offsets_(backend),
      touches_(backend) {
  // Validate eagerly so misconfiguration surfaces at pool construction;
  // the validation sampler seeds the reuse cache instead of being thrown
  // away.
  sampler_cache_.push_back(
      std::make_unique<RicSampler>(graph, communities, model));
  touch_offsets_.assign(graph.node_count() + 1, 0);
  community_frequency_.assign(communities.size(), 0);
  sample_offsets_.assign(1, 0);
}

RicPool::RicPool(RicPool&& other) noexcept
    : graph_(other.graph_),
      communities_(other.communities_),
      model_(other.model_),
      backend_(other.backend_),
      total_benefit_(other.total_benefit_),
      grows_(other.grows_),
      repairs_(other.repairs_),
      thresholds_(std::move(other.thresholds_)),
      source_community_(std::move(other.source_community_)),
      community_frequency_(std::move(other.community_frequency_)),
      sample_offsets_(std::move(other.sample_offsets_)),
      sample_arena_(std::move(other.sample_arena_)),
      sampler_cache_(std::move(other.sampler_cache_)),
      touch_offsets_(std::move(other.touch_offsets_)),
      touches_(std::move(other.touches_)),
      indexed_samples_(other.indexed_samples_),
      index_stale_(other.index_stale_.load(std::memory_order_relaxed)) {}

RicPool& RicPool::operator=(RicPool&& other) noexcept {
  if (this == &other) return *this;
  graph_ = other.graph_;
  communities_ = other.communities_;
  model_ = other.model_;
  backend_ = other.backend_;
  total_benefit_ = other.total_benefit_;
  grows_ = other.grows_;
  repairs_ = other.repairs_;
  thresholds_ = std::move(other.thresholds_);
  source_community_ = std::move(other.source_community_);
  community_frequency_ = std::move(other.community_frequency_);
  sample_offsets_ = std::move(other.sample_offsets_);
  sample_arena_ = std::move(other.sample_arena_);
  sampler_cache_ = std::move(other.sampler_cache_);
  touch_offsets_ = std::move(other.touch_offsets_);
  touches_ = std::move(other.touches_);
  indexed_samples_ = other.indexed_samples_;
  index_stale_.store(other.index_stale_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  return *this;
}

void RicPool::check_capacity(std::uint64_t count) const {
  if (size() + count > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "RicPool: pool of " + std::to_string(size()) + " + " +
        std::to_string(count) +
        " samples would overflow the 32-bit sample ids the inverted index "
        "uses; split the workload across pools");
  }
}

std::unique_ptr<RicSampler> RicPool::acquire_sampler() const {
  {
    const std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (!sampler_cache_.empty()) {
      std::unique_ptr<RicSampler> sampler = std::move(sampler_cache_.back());
      sampler_cache_.pop_back();
      return sampler;
    }
  }
  return std::make_unique<RicSampler>(*graph_, *communities_, model_);
}

void RicPool::release_sampler(std::unique_ptr<RicSampler> sampler) const {
  const std::lock_guard<std::mutex> lock(sampler_mutex_);
  sampler_cache_.push_back(std::move(sampler));
}

void RicPool::register_metadata(CommunityId community, std::uint32_t threshold,
                                std::uint64_t touch_count) {
  thresholds_.push_back(threshold);
  source_community_.push_back(community);
  ++community_frequency_[community];
  sample_offsets_.push_back(sample_offsets_.back() + touch_count);
}

void RicPool::ensure_mutable() {
  thresholds_.ensure_owned();
  source_community_.ensure_owned();
  community_frequency_.ensure_owned();
  sample_offsets_.ensure_owned();
  sample_arena_.ensure_owned();
}

void RicPool::grow(std::uint64_t count, std::uint64_t seed, bool parallel,
                   ThreadPool* workers) {
  if (count == 0) return;
  check_capacity(count);
  ensure_mutable();
  const std::uint64_t base = size();

  ThreadPool* pool = nullptr;
  if (parallel) {
    pool = workers != nullptr ? workers : &default_pool();
    if (pool->size() <= 1) pool = nullptr;
  }
  // Serial fast path: one part means the stitched layout IS generation
  // order, so emit straight into the pool's own sample-major arena and
  // skip the part-arena copy entirely. (This is the configuration the
  // sampling-throughput acceptance benchmark measures.)
  if (pool == nullptr) {
    std::unique_ptr<RicSampler> sampler = acquire_sampler();
    thresholds_.reserve(thresholds_.size() + count);
    source_community_.reserve(source_community_.size() + count);
    sample_offsets_.reserve(sample_offsets_.size() + count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Rng rng(splitmix_of(seed, base + i));
      const RicSampleMeta meta = sampler->generate_into(rng, sample_arena_);
      register_metadata(meta.community, meta.threshold, meta.touch_count);
    }
    release_sampler(std::move(sampler));
    merge_fresh_into_index(1, nullptr);
    ++grows_;
    return;
  }

  // Fixed sample-range -> part mapping (count*p/parts), so which samples
  // share a part — and therefore the stitched arena layout — depends only
  // on (count, parts), never on runtime scheduling. Combined with the
  // per-sample RNG substreams, serial and parallel growth are
  // bit-identical.
  const std::uint64_t parts = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             count, static_cast<std::uint64_t>(pool->size()) * 4));
  const auto part_begin = [&](std::uint64_t p) { return count * p / parts; };

  // Each part emits straight into its own arena via generate_into — no
  // intermediate RicSample objects. Samplers come from the reuse cache so
  // repeated grow() calls never reconstruct O(n) scratch.
  struct PartOutput {
    RicSampler::TouchArena touches;
    std::vector<RicSampleMeta> metas;
  };
  std::vector<PartOutput> outputs(parts);
  const auto generate_parts = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned /*chunk*/) {
    std::unique_ptr<RicSampler> sampler = acquire_sampler();
    for (std::uint64_t p = begin; p < end; ++p) {
      PartOutput& out = outputs[p];
      const std::uint64_t lo = part_begin(p);
      const std::uint64_t hi = part_begin(p + 1);
      out.metas.reserve(hi - lo);
      for (std::uint64_t i = lo; i < hi; ++i) {
        // One substream per global sample index keeps growth deterministic
        // and independent of chunking.
        Rng rng(splitmix_of(seed, base + i));
        out.metas.push_back(sampler->generate_into(rng, out.touches));
      }
    }
    release_sampler(std::move(sampler));
  };
  parallel_for(*pool, parts, generate_parts);

  // Stitch the part arenas into the sample-major arena in part order
  // (= global sample order): prefix-sum the part sizes, bulk-copy each
  // part into its slot (parallel), then append the metadata serially.
  std::vector<std::uint64_t> part_base(parts + 1, 0);
  for (std::uint64_t p = 0; p < parts; ++p) {
    part_base[p + 1] = part_base[p] + outputs[p].touches.size();
  }
  const std::uint64_t old_arena = sample_arena_.size();
  sample_arena_.resize(old_arena + part_base[parts]);
  const auto stitch_parts = [&](std::uint64_t begin, std::uint64_t end,
                                unsigned /*chunk*/) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::copy(outputs[p].touches.begin(), outputs[p].touches.end(),
                sample_arena_.begin() +
                    static_cast<std::ptrdiff_t>(old_arena + part_base[p]));
    }
  };
  parallel_for(*pool, parts, stitch_parts);

  thresholds_.reserve(thresholds_.size() + count);
  source_community_.reserve(source_community_.size() + count);
  sample_offsets_.reserve(sample_offsets_.size() + count);
  for (std::uint64_t p = 0; p < parts; ++p) {
    for (const RicSampleMeta& meta : outputs[p].metas) {
      register_metadata(meta.community, meta.threshold, meta.touch_count);
    }
  }

  // Merge the fresh batch (plus any samples append() left pending) into
  // the CSR eagerly: grow() is the bulk producer, and doing it here keeps
  // the read path branch-predictable.
  merge_fresh_into_index(pool->size(), pool);
  ++grows_;
}

void RicPool::stage_samples(std::uint64_t count, std::uint64_t seed,
                            bool parallel, ThreadPool* workers,
                            const std::function<bool()>& cancelled,
                            PoolStagingArena& out) const {
  out.clear();
  out.base_ = size();
  out.count_ = count;
  out.seed_ = seed;
  out.epoch_ = grow_epoch();
  if (count == 0) {
    out.complete_ = true;
    return;
  }
  check_capacity(count);

  ThreadPool* pool = nullptr;
  if (parallel) {
    pool = workers != nullptr ? workers : &default_pool();
    if (pool->size() <= 1) pool = nullptr;
  }
  // Same fixed (count, parts) -> sample-range mapping as grow()'s parallel
  // path. The part structure only decides buffer boundaries: the stitched
  // commit concatenates parts in order (= global sample order), so the
  // spliced arena bytes do not depend on it — but keeping the mapping
  // identical means staging and growing even share their copy pattern.
  const std::uint64_t base = out.base_;
  const std::uint64_t parts =
      pool == nullptr
          ? 1
          : std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(
                       count, static_cast<std::uint64_t>(pool->size()) * 4));
  const auto part_begin = [&](std::uint64_t p) { return count * p / parts; };
  out.parts_.resize(parts);

  std::atomic<bool> stopped{false};
  const auto generate_parts = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned /*chunk*/) {
    std::unique_ptr<RicSampler> sampler = acquire_sampler();
    for (std::uint64_t p = begin; p < end && !stopped.load(std::memory_order_relaxed);
         ++p) {
      PoolStagingArena::Part& part = out.parts_[p];
      const std::uint64_t lo = part_begin(p);
      const std::uint64_t hi = part_begin(p + 1);
      part.metas.reserve(hi - lo);
      for (std::uint64_t i = lo; i < hi; ++i) {
        // Polled per sample: speculation must wind down promptly when the
        // engine cancels it (stop condition fired, deadline expired).
        if (cancelled && cancelled()) {
          stopped.store(true, std::memory_order_relaxed);
          break;
        }
        // One substream per global sample index — identical to grow(), so
        // a committed batch is bit-identical to direct growth.
        Rng rng(splitmix_of(seed, base + i));
        part.metas.push_back(sampler->generate_into(rng, part.touches));
      }
    }
    release_sampler(std::move(sampler));
  };
  if (pool == nullptr) {
    generate_parts(0, parts, 0);
  } else {
    parallel_for(*pool, parts, generate_parts);
  }
  out.complete_ = !stopped.load(std::memory_order_relaxed);
}

void RicPool::commit_staged(PoolStagingArena&& staged, bool parallel,
                            ThreadPool* workers) {
  if (!staged.complete_) {
    throw std::invalid_argument(
        "RicPool::commit_staged: staging arena is incomplete (staging was "
        "cancelled or never ran)");
  }
  if (staged.base_ != size() || !(staged.epoch_ == grow_epoch())) {
    throw std::invalid_argument(
        "RicPool::commit_staged: stale staging arena (the pool grew since "
        "stage_samples captured it)");
  }
  if (staged.count_ == 0) {
    staged.clear();
    return;  // mirrors grow(0): no growth operation happened
  }
  check_capacity(staged.count_);
  ensure_mutable();

  ThreadPool* pool = nullptr;
  if (parallel) {
    pool = workers != nullptr ? workers : &default_pool();
    if (pool->size() <= 1) pool = nullptr;
  }

  // Stitch the staged part arenas into the sample-major arena in part
  // order (= global sample order) — the same prefix-sum + bulk-copy splice
  // grow()'s parallel path uses, so the committed bytes are identical to
  // direct growth for any staging part count.
  const std::uint64_t parts = staged.parts_.size();
  std::vector<std::uint64_t> part_base(parts + 1, 0);
  for (std::uint64_t p = 0; p < parts; ++p) {
    part_base[p + 1] = part_base[p] + staged.parts_[p].touches.size();
  }
  const std::uint64_t old_arena = sample_arena_.size();
  sample_arena_.resize(old_arena + part_base[parts]);
  const auto stitch_parts = [&](std::uint64_t begin, std::uint64_t end,
                                unsigned /*chunk*/) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::copy(staged.parts_[p].touches.begin(),
                staged.parts_[p].touches.end(),
                sample_arena_.begin() +
                    static_cast<std::ptrdiff_t>(old_arena + part_base[p]));
    }
  };
  if (pool == nullptr) {
    stitch_parts(0, parts, 0);
  } else {
    parallel_for(*pool, parts, stitch_parts);
  }

  thresholds_.reserve(thresholds_.size() + staged.count_);
  source_community_.reserve(source_community_.size() + staged.count_);
  sample_offsets_.reserve(sample_offsets_.size() + staged.count_);
  for (std::uint64_t p = 0; p < parts; ++p) {
    for (const RicSampleMeta& meta : staged.parts_[p].metas) {
      register_metadata(meta.community, meta.threshold, meta.touch_count);
    }
  }

  // One grow() worth of index merge + exactly one watermark bump: holders
  // of a PoolEpoch cannot tell a committed stage from a direct grow.
  merge_fresh_into_index(pool == nullptr ? 1 : pool->size(), pool);
  ++grows_;
  staged.clear();
}

std::uint64_t PoolStagingArena::staged_count() const noexcept {
  std::uint64_t total = 0;
  for (const Part& part : parts_) total += part.metas.size();
  return total;
}

void PoolStagingArena::clear() noexcept {
  for (Part& part : parts_) {
    part.touches.clear();
    part.metas.clear();
  }
  base_ = 0;
  count_ = 0;
  seed_ = 0;
  epoch_ = RicPool::PoolEpoch{};
  complete_ = false;
}

void RicPool::append(RicSample sample) {
  if (sample.community >= communities_->size()) {
    throw std::invalid_argument("RicPool::append: bad community id");
  }
  if (sample.threshold == 0 ||
      sample.threshold > communities_->population(sample.community)) {
    throw std::invalid_argument("RicPool::append: threshold out of range");
  }
  // Reject masks with bits beyond the community population: popcount-based
  // evaluators would count the phantom members toward h_g. (population is
  // in [1, 64] here — empty communities are rejected by CommunitySet and
  // the threshold check above bounds it — so the shift is well-defined.)
  const std::uint64_t population = communities_->population(sample.community);
  const std::uint64_t member_bits =
      population >= 64 ? ~0ull : (1ull << population) - 1;
  NodeId previous_node = 0;
  bool first = true;
  for (const auto& [node, mask] : sample.touching) {
    if (node >= graph_->node_count() || mask == 0 ||
        (mask & ~member_bits) != 0) {
      throw std::invalid_argument("RicPool::append: bad touching entry");
    }
    // Touches must be strictly ascending by node (which also bans
    // duplicates): sample() reads rely on it, and the CSR merge emits
    // per-node runs whose sample-id order assumes one touch per node.
    if (!first && node <= previous_node) {
      throw std::invalid_argument(
          "RicPool::append: touching entries not sorted by node");
    }
    previous_node = node;
    first = false;
  }
  check_capacity(1);
  ensure_mutable();
  sample_arena_.append(sample.touching.data(),
                       sample.touching.data() + sample.touching.size());
  register_metadata(sample.community, sample.threshold,
                    sample.touching.size());
  // Defer the CSR merge: a deserialization loop appends |R| samples and
  // pays for ONE rebuild on the first read instead of |R| re-merges.
  index_stale_.store(true, std::memory_order_release);
  ++grows_;
}

RicSample RicPool::sample(std::uint32_t i) const {
  if (i >= thresholds_.size()) {
    throw std::out_of_range("RicPool::sample: index out of range");
  }
  RicSample s;
  s.community = source_community_[i];
  s.threshold = thresholds_[i];
  s.member_count =
      static_cast<std::uint32_t>(communities_->population(s.community));
  const auto touches = sample_touches(i);
  s.touching.assign(touches.begin(), touches.end());
  return s;
}

void RicPool::materialize_index() const {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  if (!index_stale_.load(std::memory_order_relaxed)) return;  // raced: done
  merge_fresh_into_index(1, nullptr);
}

void RicPool::merge_fresh_into_index(unsigned chunks,
                                     ThreadPool* workers) const {
  const std::uint64_t total_samples = size();
  const std::uint64_t fresh_begin = indexed_samples_;
  const std::uint64_t fresh = total_samples - fresh_begin;
  if (fresh == 0) {
    index_stale_.store(false, std::memory_order_release);
    return;
  }
  const std::uint64_t n = graph_->node_count();
  const std::uint64_t parts =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(chunks, fresh));
  // Chunk p owns the contiguous fresh sample ids [part_begin(p),
  // part_begin(p+1)) — the SAME split in the counting and scatter passes.
  const auto part_begin = [&](std::uint64_t p) {
    return fresh_begin + fresh * p / parts;
  };

  // Pass 1 — count: how many fresh touches each (chunk, node) contributes.
  std::vector<std::uint64_t> cursors(parts * n, 0);
  const auto count_range = [&](std::uint64_t begin, std::uint64_t end,
                               unsigned) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::uint64_t* counts = cursors.data() + p * n;
      for (std::uint64_t g = part_begin(p); g < part_begin(p + 1); ++g) {
        for (const auto& [node, mask] :
             sample_touches(static_cast<std::uint32_t>(g))) {
          (void)mask;
          ++counts[node];
        }
      }
    }
  };

  // Exclusive prefix-sum — runs per node as: old touches, then chunk 0's
  // fresh touches, then chunk 1's, ... Sample ids ascend within each run
  // and across runs, so the merged CSR equals the serial append order for
  // ANY chunk count: the keystone of deterministic parallel rebuilds.
  ArenaVector<std::uint64_t> new_offsets(n + 1, 0, backend_);
  ArenaVector<Touch> new_arena(backend_);
  const std::span<const std::uint64_t> old_offsets = touch_offsets_.span();
  const auto prefix_sum = [&] {
    std::uint64_t total = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      new_offsets[v] = total;
      std::uint64_t running =
          total + (old_offsets[v + 1] - old_offsets[v]);
      for (std::uint64_t p = 0; p < parts; ++p) {
        const std::uint64_t count = cursors[p * n + v];
        cursors[p * n + v] = running;  // becomes the chunk's write cursor
        running += count;
      }
      total = running;
    }
    new_offsets[n] = total;
    new_arena.resize(total);  // sized exactly from the counting pass
  };

  // Pass 2a — relocate each node's existing run into its new position.
  // Old touches are read through the const span so an attached pool's
  // borrowed CSR is streamed out of the mapping, not materialized first.
  const std::span<const Touch> old_touches = touches_.span();
  const auto relocate_range = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned) {
    for (std::uint64_t v = begin; v < end; ++v) {
      std::copy(old_touches.begin() +
                    static_cast<std::ptrdiff_t>(old_offsets[v]),
                old_touches.begin() +
                    static_cast<std::ptrdiff_t>(old_offsets[v + 1]),
                new_arena.begin() + new_offsets[v]);
    }
  };
  // Pass 2b — scatter fresh touches at the per-(chunk, node) cursors.
  const auto scatter_range = [&](std::uint64_t begin, std::uint64_t end,
                                 unsigned) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::uint64_t* cursor = cursors.data() + p * n;
      for (std::uint64_t g = part_begin(p); g < part_begin(p + 1); ++g) {
        const auto id = static_cast<std::uint32_t>(g);
        const std::uint32_t threshold = thresholds_[g];
        for (const auto& [node, mask] : sample_touches(id)) {
          new_arena[cursor[node]++] = Touch{id, threshold, mask};
        }
      }
    }
  };

  if (parts > 1 && workers != nullptr) {
    parallel_for(*workers, parts, count_range);
    prefix_sum();
    if (!touches_.empty()) parallel_for(*workers, n, relocate_range);
    parallel_for(*workers, parts, scatter_range);
  } else {
    count_range(0, parts, 0);
    prefix_sum();
    if (!touches_.empty()) relocate_range(0, n, 0);
    scatter_range(0, parts, 0);
  }

  touches_ = std::move(new_arena);
  touch_offsets_ = std::move(new_offsets);
  indexed_samples_ = total_samples;
  index_stale_.store(false, std::memory_order_release);
}

RicPool::SnapshotView RicPool::snapshot_view() const {
  ensure_index();  // never persist a stale CSR
  SnapshotView view;
  view.thresholds = thresholds_.span();
  view.source_community = source_community_.span();
  view.community_frequency = community_frequency_.span();
  view.sample_offsets = sample_offsets_.span();
  view.sample_arena = sample_arena_.span();
  view.touch_offsets = touch_offsets_.span();
  view.touches = touches_.span();
  view.epoch = grow_epoch();
  view.model = model_;
  return view;
}

RicPool RicPool::restore_snapshot(const Graph& graph,
                                  const CommunitySet& communities,
                                  DiffusionModel model, PoolEpoch epoch,
                                  PoolArenas&& arenas) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("RicPool::restore_snapshot: " + what);
  };
  const std::uint64_t samples = arenas.thresholds.size();
  if (arenas.source_community.size() != samples) {
    fail("metadata arenas disagree on the sample count");
  }
  if (epoch.samples != samples) {
    fail("epoch watermark does not match the sample count");
  }
  if (samples > std::numeric_limits<std::uint32_t>::max()) {
    fail("sample count overflows 32-bit sample ids");
  }
  if (arenas.sample_offsets.size() != samples + 1 ||
      arenas.sample_offsets.span()[0] != 0 ||
      arenas.sample_offsets.back() != arenas.sample_arena.size()) {
    fail("sample-major offsets inconsistent with the arena");
  }
  // Monotonicity of both offset tables is load-bearing even on the
  // trusted attach path: sample_touches()/touches_of() compute spans as
  // offsets[i + 1] - offsets[i] in unsigned arithmetic, so a non-monotone
  // pair would wrap to a huge span and read out of bounds during solves.
  // Endpoints + monotonicity bound every span by the arena size.
  const std::span<const std::uint64_t> sample_offsets =
      arenas.sample_offsets.span();
  for (std::uint64_t g = 0; g + 1 < sample_offsets.size(); ++g) {
    if (sample_offsets[g] > sample_offsets[g + 1]) {
      fail("sample-major offsets not monotone");
    }
  }
  if (arenas.community_frequency.size() != communities.size()) {
    fail("community frequency table does not match the community set");
  }
  std::uint64_t frequency_sum = 0;
  for (const std::uint32_t count : arenas.community_frequency.span()) {
    frequency_sum += count;
  }
  if (frequency_sum != samples) {
    fail("community frequencies do not sum to the sample count");
  }
  if (arenas.touch_offsets.size() !=
          static_cast<std::uint64_t>(graph.node_count()) + 1 ||
      arenas.touch_offsets.span()[0] != 0 ||
      arenas.touch_offsets.back() != arenas.touches.size()) {
    fail("CSR offsets inconsistent with the graph / touch arena");
  }
  const std::span<const std::uint64_t> csr_offsets =
      arenas.touch_offsets.span();
  for (std::uint64_t v = 0; v + 1 < csr_offsets.size(); ++v) {
    if (csr_offsets[v] > csr_offsets[v + 1]) {
      fail("CSR offsets not monotone");
    }
  }

  // The restored pool inherits the arenas' backend (the attach path hands
  // over borrowed views whose materialize target is kMmap) so later
  // growth keeps allocating from the same kind of storage.
  RicPool pool(graph, communities, model, arenas.sample_arena.backend());
  pool.thresholds_ = std::move(arenas.thresholds);
  pool.source_community_ = std::move(arenas.source_community);
  pool.community_frequency_ = std::move(arenas.community_frequency);
  pool.sample_offsets_ = std::move(arenas.sample_offsets);
  pool.sample_arena_ = std::move(arenas.sample_arena);
  pool.touch_offsets_ = std::move(arenas.touch_offsets);
  pool.touches_ = std::move(arenas.touches);
  pool.grows_ = epoch.grows;
  pool.repairs_ = epoch.repairs;
  pool.indexed_samples_ = samples;
  pool.index_stale_.store(false, std::memory_order_release);
  return pool;
}

std::uint64_t RicPool::samples_since(PoolEpoch epoch) const {
  if (epoch.samples > size() || epoch.grows > grows_ ||
      epoch.repairs != repairs_) {
    // A repairs mismatch in EITHER direction invalidates the epoch: older
    // means a repair rewrote part of the prefix the holder cached, newer
    // means the epoch came from a different pool lineage.
    throw std::invalid_argument(
        "RicPool::samples_since: epoch from a different, newer or "
        "since-repaired pool");
  }
  return size() - epoch.samples;
}

RicPool::RepairStats RicPool::invalidate_and_repair(
    const DeltaEffects& effects, std::uint64_t seed, bool parallel,
    ThreadPool* workers) {
  RepairStats stats;
  stats.total = size();
  if (effects.empty()) return stats;
  for (const NodeId v : effects.changed_in_nodes) {
    if (v >= graph_->node_count()) {
      throw std::invalid_argument(
          "RicPool::invalidate_and_repair: effects name a node outside the "
          "bound graph");
    }
  }
  for (const CommunityId c : effects.changed_communities) {
    if (c >= communities_->size()) {
      throw std::invalid_argument(
          "RicPool::invalidate_and_repair: effects name a community outside "
          "the bound set");
    }
  }

  // Revalidate the mutated structures FIRST: constructing a sampler
  // enforces the ≤64-member community cap and the LT in-weight sums, so a
  // delta the sampler cannot serve throws here with the pool untouched.
  // The probe then replaces the cache wholesale — every cached sampler
  // baked pre-delta adjacency and membership into its scratch tables.
  {
    auto probe = std::make_unique<RicSampler>(*graph_, *communities_, model_);
    const std::lock_guard<std::mutex> lock(sampler_mutex_);
    sampler_cache_.clear();
    sampler_cache_.push_back(std::move(probe));
  }

  if (stats.total == 0) {
    ++repairs_;  // future samples may differ: stale stagers must not commit
    return stats;
  }
  ensure_index();  // the affected set is read off the PRE-delta index
  ensure_mutable();

  // Affected = samples touching a changed in-adjacency head (their walk
  // examined that node's in-edges — see the header's identification rule)
  // ∪ samples sourced at a community whose member list moved (their mask
  // bit layout changed). Everything else replays bit-identically.
  std::vector<std::uint8_t> affected(stats.total, 0);
  for (const NodeId v : effects.changed_in_nodes) {
    for (const Touch& touch : touches_of(v)) affected[touch.sample] = 1;
  }
  if (!effects.changed_communities.empty()) {
    std::vector<std::uint8_t> moved(communities_->size(), 0);
    for (const CommunityId c : effects.changed_communities) moved[c] = 1;
    const std::span<const CommunityId> sources = source_community_.span();
    for (std::uint64_t g = 0; g < stats.total; ++g) {
      if (moved[sources[g]]) affected[g] = 1;
    }
  }
  std::vector<std::uint32_t> repair_ids;
  for (std::uint64_t g = 0; g < stats.total; ++g) {
    if (affected[g]) repair_ids.push_back(static_cast<std::uint32_t>(g));
  }
  stats.repaired = repair_ids.size();
  if (repair_ids.empty()) {
    ++repairs_;
    return stats;
  }

  ThreadPool* pool = nullptr;
  if (parallel) {
    pool = workers != nullptr ? workers : &default_pool();
    if (pool->size() <= 1) pool = nullptr;
  }

  // Regenerate the affected samples with their ORIGINAL substreams —
  // Rng(splitmix_of(seed, g)) is exactly what a rebuild-from-scratch
  // would feed sample g — using grow()'s fixed repair-order -> part
  // mapping so the output is independent of scheduling.
  const std::uint64_t count = repair_ids.size();
  const std::uint64_t parts =
      pool == nullptr
          ? 1
          : std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(
                       count, static_cast<std::uint64_t>(pool->size()) * 4));
  const auto part_begin = [&](std::uint64_t p) { return count * p / parts; };
  struct PartOutput {
    RicSampler::TouchArena touches;
    std::vector<RicSampleMeta> metas;
  };
  std::vector<PartOutput> outputs(parts);
  const auto regenerate = [&](std::uint64_t begin, std::uint64_t end,
                              unsigned /*chunk*/) {
    std::unique_ptr<RicSampler> sampler = acquire_sampler();
    for (std::uint64_t p = begin; p < end; ++p) {
      PartOutput& out = outputs[p];
      const std::uint64_t lo = part_begin(p);
      const std::uint64_t hi = part_begin(p + 1);
      out.metas.reserve(hi - lo);
      for (std::uint64_t j = lo; j < hi; ++j) {
        Rng rng(splitmix_of(seed, repair_ids[j]));
        out.metas.push_back(sampler->generate_into(rng, out.touches));
      }
    }
    release_sampler(std::move(sampler));
  };
  if (pool == nullptr) {
    regenerate(0, parts, 0);
  } else {
    parallel_for(*pool, parts, regenerate);
  }

  // Flatten the parts (contiguous runs of repair order, so concatenation
  // IS repair order) into per-repaired-sample views for the splice.
  std::vector<const std::pair<NodeId, std::uint64_t>*> repaired_data(count);
  std::vector<const RicSampleMeta*> repaired_meta(count);
  {
    std::uint64_t j = 0;
    for (const PartOutput& out : outputs) {
      std::uint64_t offset = 0;
      for (const RicSampleMeta& meta : out.metas) {
        repaired_data[j] = out.touches.data() + offset;
        repaired_meta[j] = &meta;
        offset += meta.touch_count;
        ++j;
      }
    }
  }

  // Serial splice into a fresh sample-major arena: bulk-copy each
  // unaffected run, drop in the regenerated touches at the affected ids,
  // and overwrite the repaired samples' SoA metadata in place.
  const std::span<const std::uint64_t> old_offsets = sample_offsets_.span();
  const std::span<const std::pair<NodeId, std::uint64_t>> old_arena =
      sample_arena_.span();
  std::uint64_t new_pairs = old_arena.size();
  for (std::uint64_t j = 0; j < count; ++j) {
    const std::uint64_t r = repair_ids[j];
    new_pairs += repaired_meta[j]->touch_count -
                 (old_offsets[r + 1] - old_offsets[r]);
  }
  ArenaVector<std::uint64_t> new_offsets(backend_);
  new_offsets.reserve(stats.total + 1);
  new_offsets.push_back(0);
  ArenaVector<std::pair<NodeId, std::uint64_t>> new_arena(backend_);
  new_arena.reserve(new_pairs);
  std::uint64_t run_begin = 0;
  for (std::uint64_t j = 0; j <= count; ++j) {
    const std::uint64_t run_end = j < count ? repair_ids[j] : stats.total;
    if (run_end > run_begin) {
      new_arena.append(
          old_arena.data() + old_offsets[run_begin],
          old_arena.data() + old_offsets[run_end]);
      for (std::uint64_t g = run_begin; g < run_end; ++g) {
        new_offsets.push_back(new_offsets.back() +
                              (old_offsets[g + 1] - old_offsets[g]));
      }
    }
    if (j == count) break;
    const RicSampleMeta& meta = *repaired_meta[j];
    new_arena.append(repaired_data[j], repaired_data[j] + meta.touch_count);
    new_offsets.push_back(new_offsets.back() + meta.touch_count);
    thresholds_[run_end] = meta.threshold;
    source_community_[run_end] = meta.community;
    run_begin = run_end + 1;
  }
  sample_offsets_ = std::move(new_offsets);
  sample_arena_ = std::move(new_arena);

  // Counters recomputed from the repaired metadata, never drifted.
  community_frequency_.assign(communities_->size(), 0);
  for (const CommunityId c : source_community_.span()) {
    ++community_frequency_[c];
  }

  // Full CSR rebuild through the regular two-pass merge: with a zeroed
  // offset table and an empty arena, merging [0, size()) is exactly the
  // fresh-build path — byte-identical for any chunk count.
  touch_offsets_.assign(graph_->node_count() + 1, 0);
  touches_ = ArenaVector<Touch>(backend_);
  indexed_samples_ = 0;
  merge_fresh_into_index(pool == nullptr ? 1 : pool->size(), pool);

  ++repairs_;
  return stats;
}

std::vector<RicPool::SampleShard> RicPool::selection_shards(
    std::uint64_t samples, unsigned shards) {
  std::vector<SampleShard> out;
  if (samples == 0) return out;
  if (shards == 0) shards = 1;
  // Near-equal spans, rounded UP to whole 64-sample saturation words; the
  // rounding can only reduce the shard count, never add a runt shard.
  const std::uint64_t span = ceil_div(ceil_div(samples, shards), 64) * 64;
  out.reserve(static_cast<std::size_t>(ceil_div(samples, span)));
  for (std::uint64_t begin = 0; begin < samples; begin += span) {
    out.push_back(SampleShard{static_cast<std::uint32_t>(begin),
                              static_cast<std::uint32_t>(
                                  std::min(samples, begin + span))});
  }
  return out;
}

std::uint64_t RicPool::splitmix_of(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(state);
}

IMC_POPCNT_CLONES
std::uint64_t RicPool::influenced_count(std::span<const NodeId> seeds) const {
  const EvalScratch& scratch = accumulate_masks(*this, seeds);
  std::uint64_t influenced = 0;
  for (const std::uint32_t id : scratch.dirty) {
    const CoveredSlot& slot = scratch.slots[id];
    if (static_cast<std::uint32_t>(popcount64(slot.mask)) >= slot.threshold) {
      ++influenced;
    }
  }
  return influenced;
}

double RicPool::c_hat(std::span<const NodeId> seeds) const {
  if (size() == 0) return 0.0;
  return total_benefit_ * static_cast<double>(influenced_count(seeds)) /
         static_cast<double>(size());
}

IMC_POPCNT_CLONES
double RicPool::nu(std::span<const NodeId> seeds) const {
  if (size() == 0) return 0.0;
  const EvalScratch& scratch = accumulate_masks(*this, seeds);
  const double* table = nu_fraction_row(0);
  KahanSum sum;
  for (const std::uint32_t id : scratch.dirty) {
    const CoveredSlot& slot = scratch.slots[id];
    const auto count = static_cast<std::uint32_t>(popcount64(slot.mask));
    // Table rows hold the exact min(count/h, 1) doubles: bit-identical.
    sum.add(table[slot.threshold * (kMaxNuThreshold + 1) + count]);
  }
  return total_benefit_ * sum.value() / static_cast<double>(size());
}

}  // namespace imc
