#include "sampling/ric_pool.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/mathx.h"
#include "util/thread_pool.h"

namespace imc {

namespace {

/// One sample's evaluator slot: the reached-member mask fused with its
/// epoch mark and threshold into 16 bytes, so both the accumulation sweep
/// and the reduction over dirty ids touch a single cache stream (one
/// prefetch covers all three fields, and the reduction needs no random
/// `thresholds_[id]` load).
struct CoveredSlot {
  std::uint64_t mask = 0;       // reached member mask
  std::uint32_t mark = 0;       // epoch of last write; mask valid iff == epoch
  std::uint32_t threshold = 0;  // copied from the touch that dirtied the slot
};

/// Per-thread scratch for the one-shot evaluators (c_hat/nu/
/// influenced_count). `slots[g].mask` is only meaningful when
/// `slots[g].mark == epoch`, so an evaluation costs O(Σ touches of the
/// seeds) with no O(|R|) reset — the same epoch trick RicSampler uses for
/// its visit buffers. thread_local keeps concurrent evaluations (e.g.
/// MAF's overlapped S1/S2 scoring) race-free without locking.
struct EvalScratch {
  std::vector<CoveredSlot> slots;    // per sample
  std::vector<std::uint32_t> dirty;  // samples touched this evaluation
  std::uint32_t epoch = 0;
};

EvalScratch& eval_scratch(std::uint64_t samples) {
  static thread_local EvalScratch scratch;
  if (scratch.slots.size() < samples) scratch.slots.resize(samples);
  if (++scratch.epoch == 0) {  // wraparound: every mark is stale again
    for (CoveredSlot& slot : scratch.slots) slot.mark = 0;
    scratch.epoch = 1;
  }
  scratch.dirty.clear();
  return scratch;
}

/// OR-accumulates the member masks of `seeds` into the scratch, recording
/// dirtied sample ids; returns the scratch for the caller to reduce.
EvalScratch& accumulate_masks(const RicPool& pool,
                              std::span<const NodeId> seeds) {
  EvalScratch& scratch = eval_scratch(pool.size());
  CoveredSlot* slots = scratch.slots.data();
  const std::uint32_t epoch = scratch.epoch;
  for (const NodeId v : seeds) {
    const std::span<const RicPool::Touch> touches = pool.touches_of(v);
    const std::size_t size = touches.size();
    const std::size_t prefetched =
        size > kCoveredPrefetchDistance ? size - kCoveredPrefetchDistance : 0;
    const auto body = [&](const RicPool::Touch& touch) {
      CoveredSlot& slot = slots[touch.sample];
      if (slot.mark != epoch) {
        slot.mark = epoch;
        slot.mask = 0;
        slot.threshold = touch.threshold;
        scratch.dirty.push_back(touch.sample);
      }
      slot.mask |= touch.mask;
    };
    std::size_t i = 0;
    for (; i < prefetched; ++i) {
      prefetch_write(&slots[touches[i + kCoveredPrefetchDistance].sample]);
      body(touches[i]);
    }
    for (; i < size; ++i) body(touches[i]);
  }
  return scratch;
}

}  // namespace

RicPool::RicPool(const Graph& graph, const CommunitySet& communities,
                 DiffusionModel model)
    : graph_(&graph),
      communities_(&communities),
      model_(model),
      total_benefit_(communities.total_benefit()) {
  // Validate eagerly so misconfiguration surfaces at pool construction.
  (void)RicSampler(graph, communities, model);
  touch_offsets_.assign(graph.node_count() + 1, 0);
  community_frequency_.assign(communities.size(), 0);
  sample_offsets_.assign(1, 0);
}

RicPool::RicPool(RicPool&& other) noexcept
    : graph_(other.graph_),
      communities_(other.communities_),
      model_(other.model_),
      total_benefit_(other.total_benefit_),
      samples_(std::move(other.samples_)),
      thresholds_(std::move(other.thresholds_)),
      source_community_(std::move(other.source_community_)),
      community_frequency_(std::move(other.community_frequency_)),
      sample_offsets_(std::move(other.sample_offsets_)),
      sample_arena_(std::move(other.sample_arena_)),
      touch_offsets_(std::move(other.touch_offsets_)),
      touches_(std::move(other.touches_)),
      indexed_samples_(other.indexed_samples_),
      index_stale_(other.index_stale_.load(std::memory_order_relaxed)) {}

RicPool& RicPool::operator=(RicPool&& other) noexcept {
  if (this == &other) return *this;
  graph_ = other.graph_;
  communities_ = other.communities_;
  model_ = other.model_;
  total_benefit_ = other.total_benefit_;
  samples_ = std::move(other.samples_);
  thresholds_ = std::move(other.thresholds_);
  source_community_ = std::move(other.source_community_);
  community_frequency_ = std::move(other.community_frequency_);
  sample_offsets_ = std::move(other.sample_offsets_);
  sample_arena_ = std::move(other.sample_arena_);
  touch_offsets_ = std::move(other.touch_offsets_);
  touches_ = std::move(other.touches_);
  indexed_samples_ = other.indexed_samples_;
  index_stale_.store(other.index_stale_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  return *this;
}

void RicPool::check_capacity(std::uint64_t count) const {
  if (samples_.size() + count >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "RicPool: pool of " + std::to_string(samples_.size()) + " + " +
        std::to_string(count) +
        " samples would overflow the 32-bit sample ids the inverted index "
        "uses; split the workload across pools");
  }
}

void RicPool::register_metadata(const RicSample& sample) {
  thresholds_.push_back(sample.threshold);
  source_community_.push_back(sample.community);
  ++community_frequency_[sample.community];
  sample_arena_.insert(sample_arena_.end(), sample.touching.begin(),
                       sample.touching.end());
  sample_offsets_.push_back(sample_arena_.size());
}

void RicPool::grow(std::uint64_t count, std::uint64_t seed, bool parallel) {
  if (count == 0) return;
  check_capacity(count);
  const std::uint64_t base = samples_.size();
  std::vector<RicSample> fresh(count);

  const auto generate_range = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned /*chunk*/) {
    RicSampler sampler(*graph_, *communities_, model_);
    for (std::uint64_t i = begin; i < end; ++i) {
      // One substream per global sample index keeps growth deterministic
      // and independent of chunking.
      Rng rng(splitmix_of(seed, base + i));
      fresh[i] = sampler.generate(rng);
    }
  };

  const bool use_pool = parallel && default_pool().size() > 1;
  if (use_pool) {
    parallel_for(default_pool(), count, generate_range);
  } else {
    generate_range(0, count, 0);
  }

  samples_.reserve(samples_.size() + count);
  thresholds_.reserve(thresholds_.size() + count);
  source_community_.reserve(source_community_.size() + count);
  sample_offsets_.reserve(sample_offsets_.size() + count);
  std::uint64_t fresh_touches = 0;
  for (const RicSample& s : fresh) fresh_touches += s.touching.size();
  sample_arena_.reserve(sample_arena_.size() + fresh_touches);
  for (std::uint64_t i = 0; i < count; ++i) {
    samples_.push_back(std::move(fresh[i]));
    register_metadata(samples_.back());
  }
  // Merge the fresh batch (plus any samples append() left pending) into
  // the CSR eagerly: grow() is the bulk producer, and doing it here keeps
  // the read path branch-predictable.
  merge_fresh_into_index(parallel ? std::max(1U, default_pool().size()) : 1);
}

void RicPool::append(RicSample sample) {
  if (sample.community >= communities_->size()) {
    throw std::invalid_argument("RicPool::append: bad community id");
  }
  if (sample.threshold == 0 ||
      sample.threshold > communities_->population(sample.community)) {
    throw std::invalid_argument("RicPool::append: threshold out of range");
  }
  for (const auto& [node, mask] : sample.touching) {
    if (node >= graph_->node_count() || mask == 0) {
      throw std::invalid_argument("RicPool::append: bad touching entry");
    }
  }
  check_capacity(1);
  samples_.push_back(std::move(sample));
  register_metadata(samples_.back());
  // Defer the CSR merge: a deserialization loop appends |R| samples and
  // pays for ONE rebuild on the first read instead of |R| re-merges.
  index_stale_.store(true, std::memory_order_release);
}

void RicPool::materialize_index() const {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  if (!index_stale_.load(std::memory_order_relaxed)) return;  // raced: done
  merge_fresh_into_index(1);
}

void RicPool::merge_fresh_into_index(unsigned chunks) const {
  const std::uint64_t total_samples = samples_.size();
  const std::uint64_t fresh_begin = indexed_samples_;
  const std::uint64_t fresh = total_samples - fresh_begin;
  if (fresh == 0) {
    index_stale_.store(false, std::memory_order_release);
    return;
  }
  const std::uint64_t n = graph_->node_count();
  const std::uint64_t parts =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(chunks, fresh));
  // Chunk p owns the contiguous fresh sample ids [part_begin(p),
  // part_begin(p+1)) — the SAME split in the counting and scatter passes.
  const auto part_begin = [&](std::uint64_t p) {
    return fresh_begin + fresh * p / parts;
  };

  // Pass 1 — count: how many fresh touches each (chunk, node) contributes.
  std::vector<std::uint64_t> cursors(parts * n, 0);
  const auto count_range = [&](std::uint64_t begin, std::uint64_t end,
                               unsigned) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::uint64_t* counts = cursors.data() + p * n;
      for (std::uint64_t g = part_begin(p); g < part_begin(p + 1); ++g) {
        for (const auto& [node, mask] : samples_[g].touching) {
          (void)mask;
          ++counts[node];
        }
      }
    }
  };

  // Exclusive prefix-sum — runs per node as: old touches, then chunk 0's
  // fresh touches, then chunk 1's, ... Sample ids ascend within each run
  // and across runs, so the merged CSR equals the serial append order for
  // ANY chunk count: the keystone of deterministic parallel rebuilds.
  std::vector<std::uint64_t> new_offsets(n + 1, 0);
  std::vector<Touch> new_arena;
  const auto prefix_sum = [&] {
    std::uint64_t total = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      new_offsets[v] = total;
      std::uint64_t running =
          total + (touch_offsets_[v + 1] - touch_offsets_[v]);
      for (std::uint64_t p = 0; p < parts; ++p) {
        const std::uint64_t count = cursors[p * n + v];
        cursors[p * n + v] = running;  // becomes the chunk's write cursor
        running += count;
      }
      total = running;
    }
    new_offsets[n] = total;
    new_arena.resize(total);  // sized exactly from the counting pass
  };

  // Pass 2a — relocate each node's existing run into its new position.
  const auto relocate_range = [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned) {
    for (std::uint64_t v = begin; v < end; ++v) {
      std::copy(touches_.begin() + touch_offsets_[v],
                touches_.begin() + touch_offsets_[v + 1],
                new_arena.begin() + new_offsets[v]);
    }
  };
  // Pass 2b — scatter fresh touches at the per-(chunk, node) cursors.
  const auto scatter_range = [&](std::uint64_t begin, std::uint64_t end,
                                 unsigned) {
    for (std::uint64_t p = begin; p < end; ++p) {
      std::uint64_t* cursor = cursors.data() + p * n;
      for (std::uint64_t g = part_begin(p); g < part_begin(p + 1); ++g) {
        const auto id = static_cast<std::uint32_t>(g);
        const std::uint32_t threshold = thresholds_[g];
        for (const auto& [node, mask] : samples_[g].touching) {
          new_arena[cursor[node]++] = Touch{id, threshold, mask};
        }
      }
    }
  };

  if (parts > 1) {
    ThreadPool& pool = default_pool();
    parallel_for(pool, parts, count_range);
    prefix_sum();
    if (!touches_.empty()) parallel_for(pool, n, relocate_range);
    parallel_for(pool, parts, scatter_range);
  } else {
    count_range(0, 1, 0);
    prefix_sum();
    if (!touches_.empty()) relocate_range(0, n, 0);
    scatter_range(0, 1, 0);
  }

  touches_ = std::move(new_arena);
  touch_offsets_ = std::move(new_offsets);
  indexed_samples_ = total_samples;
  index_stale_.store(false, std::memory_order_release);
}

std::uint64_t RicPool::splitmix_of(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(state);
}

IMC_POPCNT_CLONES
std::uint64_t RicPool::influenced_count(std::span<const NodeId> seeds) const {
  const EvalScratch& scratch = accumulate_masks(*this, seeds);
  std::uint64_t influenced = 0;
  for (const std::uint32_t id : scratch.dirty) {
    const CoveredSlot& slot = scratch.slots[id];
    if (static_cast<std::uint32_t>(popcount64(slot.mask)) >= slot.threshold) {
      ++influenced;
    }
  }
  return influenced;
}

double RicPool::c_hat(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  return total_benefit_ * static_cast<double>(influenced_count(seeds)) /
         static_cast<double>(samples_.size());
}

IMC_POPCNT_CLONES
double RicPool::nu(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  const EvalScratch& scratch = accumulate_masks(*this, seeds);
  const double* table = nu_fraction_row(0);
  KahanSum sum;
  for (const std::uint32_t id : scratch.dirty) {
    const CoveredSlot& slot = scratch.slots[id];
    const auto count = static_cast<std::uint32_t>(popcount64(slot.mask));
    // Table rows hold the exact min(count/h, 1) doubles: bit-identical.
    sum.add(table[slot.threshold * (kMaxNuThreshold + 1) + count]);
  }
  return total_benefit_ * sum.value() / static_cast<double>(samples_.size());
}

}  // namespace imc
