// Minimal leveled logger.
//
// The library itself logs sparingly (algorithm progress at kDebug, framework
// milestones at kInfo). Benchmarks and examples raise/lower the global level.
// Thread-safe: each log statement is formatted into a local buffer and
// written with a single mutex-protected call.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace imc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Writes one formatted line (timestamp + level tag + message) to stderr.
  void write(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {

/// RAII line builder: streams into a buffer, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : level_(level), enabled_(Logger::instance().enabled(level)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

/// Usage: imc::log(imc::LogLevel::kInfo) << "generated " << n << " samples";
/// The returned object is cheap to discard when the level is filtered out.
inline detail::LogLine log(LogLevel level) { return detail::LogLine(level); }

}  // namespace imc
