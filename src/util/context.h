// ExecutionContext — the cross-cutting execution environment the staged
// engine (core/engine.h) threads through sampling, solving and estimation:
// a thread-pool handle, a wall-clock Deadline, an optional cooperative
// cancellation flag, deterministic splitmix RNG substream derivation, and a
// pluggable MetricsSink that records one StageMetrics row per stop stage.
//
// The context is a plain value: cheap to copy, no ownership of the pool or
// the cancel flag (both are borrowed for the duration of the run). A
// default-constructed context means "no deadline, no cancellation, default
// thread pool, no metrics" — exactly the pre-engine behaviour, so passing
// one through changes nothing observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/stopwatch.h"

namespace imc {

class ThreadPool;

/// One stop stage of an IMCAF run, as recorded by the engine: how much the
/// pool grew before the solve, how long each phase took, and how the stage
/// ended. Timings are wall-clock seconds.
struct StageMetrics {
  std::uint32_t stage = 0;             // 1-based stop-stage index
  std::uint64_t pool_size = 0;         // |R| the solver saw
  std::uint64_t samples_added = 0;     // fresh samples grown for this stage
  double sampling_seconds = 0.0;       // time inside pool.grow()
  double solver_seconds = 0.0;         // time inside the MAXR solve/resume
  double estimate_seconds = 0.0;       // time inside the Dagum Estimate
  std::uint64_t estimate_samples = 0;  // T drawn by the Estimate (0 = none)
  bool warm_start = false;             // solver resumed from previous stage
  bool accepted = false;               // stop-stage test passed here
  // Pipelined-engine accounting (DESIGN.md §15; all zero on the serial
  // schedule). `pipelined` marks a stage whose samples arrived via a
  // committed speculative batch; `overlap_seconds` is the slice of that
  // batch's generation hidden under the PREVIOUS stage's solve/estimate.
  // Discards land on the row of the stage whose stop/deadline/cap exit
  // invalidated the speculation.
  bool pipelined = false;
  double overlap_seconds = 0.0;
  std::uint64_t speculative_samples_committed = 0;
  std::uint64_t speculative_samples_discarded = 0;
};

/// Consumer of per-stage engine telemetry. Implementations must tolerate
/// concurrent record_stage calls (solve_many may interleave queries later);
/// the engine itself calls it from one thread per query.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void record_stage(const StageMetrics& metrics) = 0;
};

/// MetricsSink that buffers every stage row (thread-safe) and can dump the
/// table as JSON — the backing store of `imc_cli solve --metrics-json`.
class RecordingMetricsSink final : public MetricsSink {
 public:
  void record_stage(const StageMetrics& metrics) override;

  [[nodiscard]] std::vector<StageMetrics> stages() const;

  /// Writes `{"stages": [...]}` with one object per recorded row.
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<StageMetrics> stages_;
};

struct ExecutionContext {
  /// Base seed for context-level randomness (substream()); engine sampling
  /// stays driven by ImcafConfig::seed so results are reproducible from the
  /// config alone.
  std::uint64_t seed = 2024;
  /// Workers for parallel phases; nullptr selects default_pool().
  ThreadPool* workers = nullptr;
  /// Wall-clock budget for the whole run; inactive by default. The clock
  /// starts when the Deadline is constructed, not when the run starts —
  /// build the context right before launching.
  Deadline deadline = Deadline();
  /// Optional cooperative cancellation flag (borrowed). Hot loops poll it
  /// at coarse granularity; setting it stops the run at the next poll with
  /// partial results, exactly like an expired deadline.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional per-stage telemetry consumer (borrowed).
  MetricsSink* metrics = nullptr;

  /// Deterministic substream derivation — the same splitmix recipe
  /// RicPool::grow uses per sample, applied at stream granularity, so two
  /// context consumers drawing from distinct stream ids never correlate.
  [[nodiscard]] std::uint64_t substream(std::uint64_t stream) const noexcept;

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  /// True once the run should wind down: deadline expired or cancelled.
  [[nodiscard]] bool stop_requested() const noexcept {
    return deadline.expired() || cancelled();
  }
  /// Records one stage row if a sink is attached (no-op otherwise).
  void record_stage(const StageMetrics& stage) const {
    if (metrics != nullptr) metrics->record_stage(stage);
  }
};

}  // namespace imc
