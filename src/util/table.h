// Result-table formatting for the benchmark harness.
//
// Each experiment prints an aligned plain-text table (mirroring the rows the
// paper reports) and can also dump machine-readable CSV next to it.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace imc {

/// One cell: text, integer or floating point (floats are printed with a
/// per-table precision).
using TableCell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<TableCell> cells);

  void set_float_precision(int digits) noexcept { precision_ = digits; }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Pretty aligned rendering with a title banner and header rule.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& out) const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

  /// JSON rendering: {"title": ..., "columns": [...], "rows": [[...], ...]}
  /// with numbers emitted as JSON numbers and text as escaped strings.
  void write_json(std::ostream& out) const;

 private:
  [[nodiscard]] std::string render_cell(const TableCell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 3;
};

/// Escapes one CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Escapes one JSON string body (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace imc
