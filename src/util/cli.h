// Tiny command-line/environment option parser for examples and benches.
//
// Accepts `--name=value`, `--name value` and boolean `--flag` forms, plus
// environment-variable fallbacks so the benchmark harness can be tuned
// without arguments (e.g. IMC_BENCH_SCALE).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace imc {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if `--name` or `--name=...` was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Non-option (positional) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Environment lookup helpers (empty/unset → fallback; parse errors throw).
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] std::optional<std::string> env_string(const char* name);

}  // namespace imc
