#include "util/context.h"

#include "util/rng.h"

namespace imc {

namespace {

void write_bool(std::ostream& out, bool value) {
  out << (value ? "true" : "false");
}

}  // namespace

void RecordingMetricsSink::record_stage(const StageMetrics& metrics) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stages_.push_back(metrics);
}

std::vector<StageMetrics> RecordingMetricsSink::stages() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

void RecordingMetricsSink::write_json(std::ostream& out) const {
  const std::vector<StageMetrics> rows = stages();
  out << "{\n  \"stages\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StageMetrics& s = rows[i];
    out << "    {\"stage\": " << s.stage << ", \"pool_size\": " << s.pool_size
        << ", \"samples_added\": " << s.samples_added
        << ", \"sampling_seconds\": " << s.sampling_seconds
        << ", \"solver_seconds\": " << s.solver_seconds
        << ", \"estimate_seconds\": " << s.estimate_seconds
        << ", \"estimate_samples\": " << s.estimate_samples
        << ", \"warm_start\": ";
    write_bool(out, s.warm_start);
    out << ", \"accepted\": ";
    write_bool(out, s.accepted);
    out << ", \"pipelined\": ";
    write_bool(out, s.pipelined);
    out << ", \"overlap_seconds\": " << s.overlap_seconds
        << ", \"speculative_samples_committed\": "
        << s.speculative_samples_committed
        << ", \"speculative_samples_discarded\": "
        << s.speculative_samples_discarded;
    out << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

std::uint64_t ExecutionContext::substream(std::uint64_t stream) const noexcept {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(state);
}

}  // namespace imc
