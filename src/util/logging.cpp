#include "util/logging.h"

#include <chrono>
#include <cstdio>

namespace imc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {

[[nodiscard]] const char* tag_of(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void Logger::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%lld.%03lld] [%s] %.*s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), tag_of(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace imc
