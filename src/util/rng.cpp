#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 uint128;
#else
#error "imc::Rng requires 128-bit integer support"
#endif

namespace imc {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = next();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t population, std::uint32_t count) {
  if (count > population) {
    throw std::invalid_argument(
        "sample_without_replacement: count exceeds population");
  }
  std::vector<std::uint32_t> chosen;
  chosen.reserve(count);
  if (count == 0) return chosen;

  // Dense case: shuffle a prefix of the identity permutation.
  if (count * 4 >= population) {
    std::vector<std::uint32_t> all(population);
    std::iota(all.begin(), all.end(), 0U);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto j =
          i + static_cast<std::uint32_t>(below(population - i));
      std::swap(all[i], all[j]);
      chosen.push_back(all[i]);
    }
    return chosen;
  }

  // Sparse case: Floyd's algorithm — expected O(count) inserts.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(count * 2);
  for (std::uint32_t j = population - count; j < population; ++j) {
    auto t = static_cast<std::uint32_t>(below(j + 1));
    if (!seen.insert(t).second) t = j, seen.insert(j);
    chosen.push_back(t);
  }
  return chosen;
}

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteDistribution: empty weights");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    }
  }
  total_weight_ = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument("DiscreteDistribution: zero total weight");
  }

  const std::size_t n = weights.size();
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker/Vose alias construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total_weight_;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::uint32_t DiscreteDistribution::sample(Rng& rng) const noexcept {
  const auto bucket =
      static_cast<std::uint32_t>(rng.below(probability_.size()));
  return rng.uniform() < probability_[bucket] ? bucket : alias_[bucket];
}

double DiscreteDistribution::probability_of(std::uint32_t i) const {
  if (i >= probability_.size()) {
    throw std::out_of_range("DiscreteDistribution::probability_of");
  }
  double p = probability_[i];
  for (std::size_t b = 0; b < alias_.size(); ++b) {
    if (alias_[b] == i && probability_[b] < 1.0) p += 1.0 - probability_[b];
  }
  return p / static_cast<double>(probability_.size());
}

}  // namespace imc
