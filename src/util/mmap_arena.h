// Memory-mapped arena storage: the substrate that lets RicPool's flat
// arenas live outside any single process (DESIGN.md §13, "Pool persistence
// & arena backends").
//
// Two layers:
//   * MmapStorage  — an untyped, growable mapping. Anonymous (a RAM slab
//     the kernel can lazily back and swap), file-backed read-write (an
//     out-of-core slab that IS its on-disk representation), or a read-only
//     view of an existing file (the zero-copy snapshot-attach path).
//     Growth goes through mremap on Linux (the common case: the mapping
//     extends in place or moves without a copy) with a map-copy-unmap
//     fallback elsewhere.
//   * ArenaVector<T> — a std::vector-shaped container for memcpy-safe
//     element types over one of three storages: a 64-byte-aligned heap
//     slab (ArenaBackend::kRam), an anonymous/file MmapStorage slab
//     (ArenaBackend::kMmap), or a BORROWED read-only view into somebody
//     else's mapping (a pool snapshot opened with mmap). Borrowed vectors
//     serve reads zero-copy and materialize an owned copy on the first
//     mutation (copy-on-write), so attaching a multi-gigabyte pool costs
//     page-table setup, not a pass over the data.
//
// Lifetime contract for borrowed vectors: the view pins the mapping via a
// shared_ptr<const MmapStorage> keepalive, so the file mapping lives
// exactly as long as the last vector (or pool) that still reads from it —
// callers never manage the mapping's lifetime by hand.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

namespace imc {

/// Where an ArenaVector keeps its owned bytes.
enum class ArenaBackend {
  kRam,   // 64-byte-aligned heap slab (aligned_alloc)
  kMmap,  // anonymous mmap slab, grown via mremap
};

class MmapStorage {
 public:
  MmapStorage() = default;
  ~MmapStorage();

  MmapStorage(MmapStorage&& other) noexcept;
  MmapStorage& operator=(MmapStorage&& other) noexcept;
  MmapStorage(const MmapStorage&) = delete;
  MmapStorage& operator=(const MmapStorage&) = delete;

  /// Anonymous read-write mapping of at least `bytes` (rounded up to a
  /// 64-byte multiple; zero-filled). Throws std::runtime_error on failure.
  [[nodiscard]] static MmapStorage anonymous(std::size_t bytes);

  /// Creates (or truncates) `path` at `bytes` and maps it read-write,
  /// MAP_SHARED: stores hit the page cache and reach the file without an
  /// explicit write pass. Throws std::runtime_error on failure.
  [[nodiscard]] static MmapStorage create_file(const std::string& path,
                                               std::size_t bytes);

  /// Maps an existing file read-only, whole length. The snapshot-attach
  /// path: reads fault pages straight from the page cache / disk, no copy.
  /// Throws std::runtime_error when the file cannot be opened or mapped.
  [[nodiscard]] static MmapStorage open_readonly(const std::string& path);

  /// Grows the mapping to at least `bytes` (no-op when already that big).
  /// The base address MAY move — callers must refresh their pointers.
  /// File-backed mappings extend the file first. Throws on failure or on a
  /// read-only mapping.
  void grow(std::size_t bytes);

  [[nodiscard]] std::byte* data() noexcept {
    assert(writable_ || address_ == nullptr);
    return static_cast<std::byte*>(address_);
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(address_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_; }
  [[nodiscard]] bool valid() const noexcept { return address_ != nullptr; }
  [[nodiscard]] bool writable() const noexcept { return writable_; }

 private:
  void reset() noexcept;

  void* address_ = nullptr;
  std::size_t bytes_ = 0;
  int fd_ = -1;  // >= 0 only for file-backed mappings
  bool writable_ = false;
};

namespace detail {
/// The arena element contract: memcpy-safe. std::is_trivially_copyable
/// would be the textbook trait, but libstdc++'s std::pair (the sample
/// arena's element type) has a non-trivial assignment operator while still
/// being bitwise-relocatable — so the contract is expressed through the
/// copy-construction/destruction traits that actually license memcpy here.
template <typename T>
inline constexpr bool kArenaSafe = std::is_trivially_copy_constructible_v<T> &&
                                   std::is_trivially_destructible_v<T>;
}  // namespace detail

template <typename T>
class ArenaVector {
  static_assert(detail::kArenaSafe<T>,
                "ArenaVector requires memcpy-safe element types");

 public:
  ArenaVector() = default;
  explicit ArenaVector(ArenaBackend backend) : backend_(backend) {}
  ArenaVector(std::size_t count, const T& value,
              ArenaBackend backend = ArenaBackend::kRam)
      : backend_(backend) {
    resize(count, value);
  }

  /// Zero-copy view over `count` elements inside an externally owned
  /// mapping. Reads are served in place; the first mutation (or an
  /// explicit ensure_owned()) copies the contents into owned storage of
  /// `materialize_backend`. The keepalive pins the mapping while any view
  /// of it is alive.
  [[nodiscard]] static ArenaVector borrowed(
      const T* data, std::size_t count,
      std::shared_ptr<const MmapStorage> keepalive,
      ArenaBackend materialize_backend = ArenaBackend::kMmap) {
    ArenaVector v(materialize_backend);
    v.data_ = const_cast<T*>(data);  // never written while borrowed_
    v.size_ = count;
    v.capacity_ = count;
    v.keepalive_ = std::move(keepalive);
    v.borrowed_ = true;
    return v;
  }

  ~ArenaVector() { release(); }

  ArenaVector(ArenaVector&& other) noexcept { steal(other); }
  ArenaVector& operator=(ArenaVector&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] ArenaBackend backend() const noexcept { return backend_; }
  [[nodiscard]] bool is_borrowed() const noexcept { return borrowed_; }

  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] T* data() {
    ensure_owned();
    return data_;
  }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] T* begin() {
    ensure_owned();
    return data_;
  }
  [[nodiscard]] T* end() {
    ensure_owned();
    return data_ + size_;
  }

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    ensure_owned();
    return data_[i];
  }
  [[nodiscard]] const T& back() const noexcept {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  void reserve(std::size_t count) {
    ensure_owned();
    if (count > capacity_) grow_capacity(count);
  }

  void resize(std::size_t count, const T& value = T{}) {
    ensure_owned();
    if (count > capacity_) grow_capacity(count);
    for (std::size_t i = size_; i < count; ++i) data_[i] = value;
    size_ = count;
  }

  void assign(std::size_t count, const T& value) {
    ensure_owned();
    size_ = 0;
    resize(count, value);
  }

  void clear() {
    ensure_owned();
    size_ = 0;
  }

  void push_back(const T& value) {
    ensure_owned();
    if (size_ == capacity_) grow_capacity(size_ + 1);
    data_[size_++] = value;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  /// Bulk append of a contiguous range (the insert-at-end pattern).
  void append(const T* first, const T* last) {
    const auto count = static_cast<std::size_t>(last - first);
    ensure_owned();
    if (size_ + count > capacity_) grow_capacity(size_ + count);
    // void* casts: GCC's -Wclass-memaccess flags memcpy into types with a
    // non-trivial copy-assignment (std::pair); kArenaSafe licenses it.
    if (count > 0) {
      std::memcpy(static_cast<void*>(data_ + size_),
                  static_cast<const void*>(first), count * sizeof(T));
    }
    size_ += count;
  }

  /// Copy-on-write materialization: after this call the contents live in
  /// owned storage of backend() and the keepalive (if any) is released.
  void ensure_owned() {
    if (borrowed_) materialize();
  }

 private:
  void steal(ArenaVector& other) noexcept {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    backend_ = other.backend_;
    borrowed_ = other.borrowed_;
    heap_ = other.heap_;
    storage_ = std::move(other.storage_);
    keepalive_ = std::move(other.keepalive_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.heap_ = nullptr;
    other.borrowed_ = false;
  }

  void release() noexcept {
    if (heap_ != nullptr) std::free(heap_);
    heap_ = nullptr;
    storage_ = MmapStorage();
    keepalive_.reset();
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    borrowed_ = false;
  }

  void materialize();
  void grow_capacity(std::size_t min_count);

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  ArenaBackend backend_ = ArenaBackend::kRam;
  bool borrowed_ = false;

  void* heap_ = nullptr;     // kRam owned slab (aligned_alloc)
  MmapStorage storage_;      // kMmap owned slab
  std::shared_ptr<const MmapStorage> keepalive_;  // borrowed mode
};

namespace detail {
[[nodiscard]] inline std::size_t round_up_64(std::size_t bytes) noexcept {
  return (bytes + 63) & ~static_cast<std::size_t>(63);
}
[[noreturn]] void throw_bad_arena_alloc(std::size_t bytes);
[[nodiscard]] void* aligned_slab(std::size_t bytes);
}  // namespace detail

template <typename T>
void ArenaVector<T>::grow_capacity(std::size_t min_count) {
  assert(!borrowed_);
  std::size_t target = capacity_ < 8 ? 8 : capacity_ * 2;
  if (target < min_count) target = min_count;
  const std::size_t bytes = detail::round_up_64(target * sizeof(T));
  if (backend_ == ArenaBackend::kRam) {
    void* slab = detail::aligned_slab(bytes);
    if (size_ > 0) {
      std::memcpy(slab, static_cast<const void*>(data_), size_ * sizeof(T));
    }
    if (heap_ != nullptr) std::free(heap_);
    heap_ = slab;
    data_ = static_cast<T*>(slab);
  } else {
    if (!storage_.valid()) {
      storage_ = MmapStorage::anonymous(bytes);
      if (size_ > 0) {
        std::memcpy(storage_.data(), static_cast<const void*>(data_),
                    size_ * sizeof(T));
      }
    } else {
      storage_.grow(bytes);  // may move; contents travel with the mapping
    }
    data_ = reinterpret_cast<T*>(storage_.data());
  }
  capacity_ = bytes / sizeof(T);
}

template <typename T>
void ArenaVector<T>::materialize() {
  assert(borrowed_);
  const T* source = data_;
  const std::size_t count = size_;
  borrowed_ = false;
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  if (count > 0) {
    grow_capacity(count);
    std::memcpy(static_cast<void*>(data_), static_cast<const void*>(source),
                count * sizeof(T));
    size_ = count;
  }
  keepalive_.reset();
}

}  // namespace imc
