// Numeric helpers shared by the sample-complexity bounds (eq. 22, Λ of
// Alg. 5, Λ' of Alg. 6) and by statistics in tests/benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace imc {

/// ln(n choose k), exact-ish via lgamma. Returns 0 for k<=0 or k>=n edges.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

/// Kahan–Babuška compensated summation; tolerates adversarial orderings.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sample mean.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> values);

/// Pearson correlation of two equally sized series; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Integer ceil(a / b) for positive b.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Population count of a 64-bit mask (thin wrapper, keeps call sites tidy).
[[nodiscard]] constexpr int popcount64(std::uint64_t mask) noexcept {
  return __builtin_popcountll(mask);
}

}  // namespace imc
