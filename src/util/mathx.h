// Numeric helpers shared by the sample-complexity bounds (eq. 22, Λ of
// Alg. 5, Λ' of Alg. 6) and by statistics in tests/benches.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace imc {

/// ln(n choose k), exact-ish via lgamma. Returns 0 for k<=0 or k>=n edges.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

/// Kahan–Babuška compensated summation; tolerates adversarial orderings.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sample mean.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> values);

/// Pearson correlation of two equally sized series; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Integer ceil(a / b) for positive b.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Streaming FNV-1a (64-bit): the digest behind Graph/CommunitySet
/// fingerprints and the pool-snapshot payload checksum. Not
/// cryptographic — it guards against corruption and mismatched inputs,
/// not adversaries.
class Fnv1a64 {
 public:
  void add_bytes(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add_u64(std::uint64_t value) noexcept {
    add_bytes(&value, sizeof(value));
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Population count of a 64-bit mask (thin wrapper, keeps call sites tidy).
[[nodiscard]] constexpr int popcount64(std::uint64_t mask) noexcept {
  return __builtin_popcountll(mask);
}

// Software prefetch hints for the pool hot loops: a candidate sweep walks a
// contiguous Touch span but lands on random `covered[sample]` /
// `thresholds[sample]` words, so issuing the loads a few touches ahead
// hides the latency the hardware prefetcher cannot (no stride to learn).
// No-ops on compilers without __builtin_prefetch.
#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_read(const void* address) noexcept {
  __builtin_prefetch(address, 0, 1);
}
inline void prefetch_write(const void* address) noexcept {
  __builtin_prefetch(address, 1, 1);
}
#else
inline void prefetch_read(const void*) noexcept {}
inline void prefetch_write(const void*) noexcept {}
#endif

/// How many touches ahead the sweeps prefetch the covered/threshold words.
inline constexpr std::size_t kCoveredPrefetchDistance = 8;

/// Function-multiversioning attribute for the popcount-heavy kernels. The
/// portable x86-64 baseline has no POPCNT instruction, so popcount64
/// compiles to a ~12-op SWAR sequence — the single largest cost in the
/// marginal-gain sweeps (measured: ~60% of the ν sweep). target_clones
/// emits a second clone of the function with the POPCNT ISA extension and
/// picks the best one once at load time (ifunc), so -march=native is not
/// required for the common case. Results are bit-identical: popcount is
/// exact integer arithmetic either way. Disabled under the sanitizers: the
/// ifunc resolver runs before the sanitizer runtime is initialized and
/// crashes at startup (and the plain build already covers the clones).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define IMC_POPCNT_CLONES __attribute__((target_clones("popcnt", "default")))
#else
#define IMC_POPCNT_CLONES
#endif

/// Largest member count / threshold the ν fraction table covers (matches
/// kMaxCommunityPopulation — the mask representation caps populations).
inline constexpr std::uint32_t kMaxNuThreshold = 64;

/// Row of the precomputed ν fraction table for threshold h:
/// row[count] == min(count / h, 1.0), for count in [0, 64]. The entries are
/// produced by the exact same double division the direct formula performs,
/// so substituting the lookup is bit-identical — it just replaces a ~15
/// cycle fdiv in the marginal-gain inner loop with an L1 load. Rows are
/// contiguous with stride kMaxNuThreshold + 1, so hot loops can hoist
/// nu_fraction_row(0) as the table base and index rows themselves.
/// Requires h <= kMaxNuThreshold (debug-asserted); row 0 is all ones.
[[nodiscard]] const double* nu_fraction_row(std::uint32_t threshold) noexcept;

}  // namespace imc
