#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/cli.h"

namespace imc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace([packaged] { (*packaged)(); });
    ++in_flight_;
  }
  task_ready_.notify_one();
  return result;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();  // packaged_task captures exceptions into the future
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (--in_flight_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

/// Core help-running wait: spins between try_run_one and blocking waits
/// until `f` is ready. A task is always either done, running on some
/// worker, or in the queue — and queued tasks get run by this very loop,
/// so a caller that is itself a pool worker (nested parallel_for, a
/// BackgroundJob joined from a worker) makes progress instead of
/// deadlocking behind its own tasks. Does NOT consume the future.
void help_until_ready(ThreadPool& pool, std::future<void>& f) {
  while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    if (!pool.try_run_one()) {
      // Nothing left to help with: the task is running on a worker that
      // itself never blocks while the queue is non-empty, so this wait
      // terminates.
      f.wait();
    }
  }
}

/// Shared wait loop of the parallel_for variants: help-wait each chunk,
/// surfacing the first exception after all chunks finished.
void help_wait_all(ThreadPool& pool,
                   std::vector<std::future<void>>& pending) {
  std::exception_ptr first_error;
  for (auto& f : pending) {
    help_until_ready(pool, f);
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void help_wait(ThreadPool& pool, std::future<void>& pending) {
  help_until_ready(pool, pending);
  pending.get();
}

BackgroundJob::~BackgroundJob() {
  // Never abandon a running task: the body may reference caller state that
  // dies with this scope (the pipelined engine's staging arena). Cancel,
  // then help-wait it out — this is the exception-unwind safety net; the
  // normal paths join explicitly and observe the body's outcome.
  if (future_.valid()) {
    cancel();
    try {
      join();
    } catch (...) {
      // Destructor must not throw; the exception was the body's last word.
    }
  }
}

bool BackgroundJob::done() const {
  if (!future_.valid()) return true;
  return future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

void BackgroundJob::cancel() noexcept {
  if (state_ != nullptr) {
    state_->cancel.store(true, std::memory_order_release);
  }
}

bool BackgroundJob::cancelled() const noexcept {
  return state_ != nullptr && state_->cancel.load(std::memory_order_acquire);
}

bool BackgroundJob::skipped() const noexcept {
  return state_ != nullptr && state_->skipped.load(std::memory_order_acquire);
}

void BackgroundJob::join() {
  if (!future_.valid()) return;
  help_wait(*pool_, future_);  // consumes the future; rethrows body errors
}

BackgroundJob submit_job(
    ThreadPool& pool,
    std::function<void(const std::atomic<bool>& cancel)> body) {
  BackgroundJob job;
  job.pool_ = &pool;
  job.state_ = std::make_shared<BackgroundJob::State>();
  std::shared_ptr<BackgroundJob::State> state = job.state_;
  job.future_ = pool.submit([state, body = std::move(body)] {
    // Cancel-before-run: a body that never started has no partial output
    // to clean up, so skip it entirely and record that it was skipped.
    if (state->cancel.load(std::memory_order_acquire)) {
      state->skipped.store(true, std::memory_order_release);
      return;
    }
    body(state->cancel);
  });
  return job;
}

void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t, std::uint64_t,
                                           unsigned)>& body) {
  if (count == 0) return;
  const auto workers = static_cast<std::uint64_t>(pool.size());
  // Over-decompose a little for load balance, but never create empty chunks.
  const std::uint64_t chunks = std::min<std::uint64_t>(count, workers * 4);
  const std::uint64_t base = count / chunks;
  const std::uint64_t remainder = count % chunks;

  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  std::uint64_t begin = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t len = base + (c < remainder ? 1 : 0);
    const std::uint64_t end = begin + len;
    pending.push_back(pool.submit(
        [&body, begin, end, c] { body(begin, end, static_cast<unsigned>(c)); }));
    begin = end;
  }
  help_wait_all(pool, pending);
}

void parallel_for_shards(ThreadPool& pool, unsigned shards,
                         const std::function<void(unsigned)>& body) {
  if (shards == 0) return;
  std::vector<std::future<void>> pending;
  pending.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    pending.push_back(pool.submit([&body, s] { body(s); }));
  }
  help_wait_all(pool, pending);
}

namespace {

std::atomic<unsigned>& default_pool_override() {
  static std::atomic<unsigned> threads{0};
  return threads;
}

std::atomic<bool>& default_pool_built() {
  static std::atomic<bool> built{false};
  return built;
}

unsigned default_pool_threads() {
  const unsigned requested = default_pool_override().load();
  if (requested > 0) return requested;
  const auto from_env = env_int("IMC_THREADS", 0);
  if (from_env > 0) return static_cast<unsigned>(from_env);
  return 0;  // ThreadPool ctor falls back to hardware_concurrency
}

}  // namespace

ThreadPool& default_pool() {
  default_pool_built().store(true);
  static ThreadPool pool(default_pool_threads());
  return pool;
}

bool set_default_pool_threads(unsigned threads) {
  if (default_pool_built().load()) return false;
  default_pool_override().store(threads);
  return true;
}

}  // namespace imc
