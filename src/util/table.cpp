#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace imc {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<TableCell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const TableCell& cell) const {
  std::ostringstream out;
  if (const auto* text = std::get_if<std::string>(&cell)) {
    out << *text;
  } else if (const auto* integer = std::get_if<long long>(&cell)) {
    out << *integer;
  } else {
    out << std::fixed << std::setprecision(precision_)
        << std::get<double>(cell);
  }
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& line = rendered.emplace_back();
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], line.back().size());
    }
  }

  out << "== " << title_ << " ==\n";
  const auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << '\n';
  };
  write_line(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& line : rendered) write_line(line);
  out.flush();
}

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void Table::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(render_cell(row[c]));
    }
    out << '\n';
  }
}

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(ch));
          escaped += buffer;
        } else {
          escaped += ch;
        }
    }
  }
  return escaped;
}

void Table::write_json(std::ostream& out) const {
  out << "{\"title\":\"" << json_escape(title_) << "\",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c == 0 ? "" : ",") << '"' << json_escape(columns_[c]) << '"';
  }
  out << "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << (r == 0 ? "" : ",") << '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c != 0) out << ',';
      const TableCell& cell = rows_[r][c];
      if (const auto* text = std::get_if<std::string>(&cell)) {
        out << '"' << json_escape(*text) << '"';
      } else if (const auto* integer = std::get_if<long long>(&cell)) {
        out << *integer;
      } else {
        out << std::get<double>(cell);
      }
    }
    out << ']';
  }
  out << "]}";
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::save_csv: cannot open " + path);
  write_csv(out);
  if (!out) throw std::runtime_error("Table::save_csv: write failed " + path);
}

}  // namespace imc
