// Wall-clock stopwatch used by the benchmark harness and the runtime
// experiments (paper Fig. 7).
#pragma once

#include <chrono>

namespace imc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Soft deadline: algorithms that honour it (e.g. MB on large graphs, which
/// the paper reports as exceeding the runtime limit on Pokec) poll
/// `expired()` and abandon work cleanly.
class Deadline {
 public:
  /// A non-positive budget means "no deadline".
  explicit Deadline(double budget_seconds = 0.0) noexcept
      : budget_seconds_(budget_seconds) {}

  [[nodiscard]] bool active() const noexcept { return budget_seconds_ > 0.0; }
  [[nodiscard]] bool expired() const noexcept {
    return active() && watch_.elapsed_seconds() > budget_seconds_;
  }
  [[nodiscard]] double budget_seconds() const noexcept {
    return budget_seconds_;
  }

 private:
  double budget_seconds_;
  Stopwatch watch_;
};

}  // namespace imc
