// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit `Rng&` (or a
// 64-bit seed) so that experiments and tests are reproducible bit-for-bit.
// The engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64;
// both are tiny, allocation-free and much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace imc {

/// SplitMix64 step: used to expand a single 64-bit seed into engine state
/// and to derive independent per-thread / per-sample substreams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience sampling methods.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x1d872b41ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64 random bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's nearly-divisionless unbiased method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Number of consecutive Bernoulli(p) failures before the next success,
  /// parameterized by 1 / log1p(-p) = 1 / log(1 - p) (precompute once per
  /// p; a multiply here instead of a divide). One uniform draw replaces a
  /// whole run of bernoulli(p) calls — the geometric-skip trick for
  /// realizing sparse live-edge sets. Requires p in (0, 1], i.e.
  /// inv_log1p_neg_p in [-inf, -0.0]; p == 1 (inv == -0.0) always returns
  /// 0. P(skip >= k) = (1-p)^k up to one rounding of 1 - u (glibc's log
  /// is ~2x faster than log1p and u is a fresh draw, so the ulp-level
  /// rounding only perturbs which exact doubles map to each skip, not the
  /// distribution).
  std::uint64_t geometric_skip(double inv_log1p_neg_p) noexcept {
    const double failures = std::log(1.0 - uniform()) * inv_log1p_neg_p;
    return failures < 9.0e18
               ? static_cast<std::uint64_t>(failures)
               : std::numeric_limits<std::uint64_t>::max();
  }

  /// Derives an independent substream; streams with distinct ids never
  /// correlate in practice (SplitMix64 re-expansion of mixed state).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept {
    std::uint64_t mix = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng{splitmix64(mix)};
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct indices from [0, population) (Floyd's method
  /// when count << population, otherwise shuffle of a prefix).
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t population, std::uint32_t count);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
///
/// Used to draw RIC source communities proportionally to their benefit
/// (the ρ distribution of the paper, §III).
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  /// Builds the table from non-negative weights. Throws std::invalid_argument
  /// if weights is empty or sums to zero / contains negatives.
  explicit DiscreteDistribution(std::span<const double> weights);

  /// Draws an index with probability weight[i] / total_weight.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Exact probability assigned to index i (for tests).
  [[nodiscard]] double probability_of(std::uint32_t i) const;

 private:
  std::vector<double> probability_;   // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // alias target per bucket
  double total_weight_ = 0.0;
};

}  // namespace imc
