#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace imc {

namespace {

[[nodiscard]] bool parse_bool(const std::string& text) {
  if (text.empty() || text == "1" || text == "true" || text == "yes" ||
      text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  throw std::invalid_argument("cannot parse boolean option value: " + text);
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      options_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself an option,
    // otherwise a bare boolean flag.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      options_[std::string(body)] = argv[++i];
    } else {
      options_[std::string(body)] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.contains(name);
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return std::stoll(it->second);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return std::stod(it->second);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return parse_bool(it->second);
}

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto text = env_string(name);
  return text ? std::stoll(*text) : fallback;
}

double env_double(const char* name, double fallback) {
  const auto text = env_string(name);
  return text ? std::stod(*text) : fallback;
}

}  // namespace imc
