#include "util/mmap_arena.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace imc {

namespace detail {

void throw_bad_arena_alloc(std::size_t bytes) {
  throw std::runtime_error("mmap_arena: allocation of " +
                           std::to_string(bytes) + " bytes failed");
}

void* aligned_slab(std::size_t bytes) {
  // aligned_alloc demands size % alignment == 0; round_up_64 upstream
  // guarantees it.
  void* slab = std::aligned_alloc(64, bytes);
  if (slab == nullptr) throw_bad_arena_alloc(bytes);
  return slab;
}

}  // namespace detail

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("mmap_arena: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

MmapStorage::~MmapStorage() { reset(); }

void MmapStorage::reset() noexcept {
  if (address_ != nullptr) ::munmap(address_, bytes_);
  if (fd_ >= 0) ::close(fd_);
  address_ = nullptr;
  bytes_ = 0;
  fd_ = -1;
  writable_ = false;
}

MmapStorage::MmapStorage(MmapStorage&& other) noexcept
    : address_(std::exchange(other.address_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      fd_(std::exchange(other.fd_, -1)),
      writable_(std::exchange(other.writable_, false)) {}

MmapStorage& MmapStorage::operator=(MmapStorage&& other) noexcept {
  if (this != &other) {
    reset();
    address_ = std::exchange(other.address_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    fd_ = std::exchange(other.fd_, -1);
    writable_ = std::exchange(other.writable_, false);
  }
  return *this;
}

MmapStorage MmapStorage::anonymous(std::size_t bytes) {
  MmapStorage storage;
  storage.bytes_ = detail::round_up_64(bytes == 0 ? 64 : bytes);
  void* address = ::mmap(nullptr, storage.bytes_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (address == MAP_FAILED) fail_errno("anonymous mmap");
  storage.address_ = address;
  storage.writable_ = true;
  return storage;
}

MmapStorage MmapStorage::create_file(const std::string& path,
                                     std::size_t bytes) {
  MmapStorage storage;
  storage.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (storage.fd_ < 0) fail_errno("cannot create " + path);
  storage.bytes_ = detail::round_up_64(bytes == 0 ? 64 : bytes);
  if (::ftruncate(storage.fd_, static_cast<off_t>(storage.bytes_)) != 0) {
    fail_errno("cannot size " + path);
  }
  void* address = ::mmap(nullptr, storage.bytes_, PROT_READ | PROT_WRITE,
                         MAP_SHARED, storage.fd_, 0);
  if (address == MAP_FAILED) fail_errno("cannot map " + path);
  storage.address_ = address;
  storage.writable_ = true;
  return storage;
}

MmapStorage MmapStorage::open_readonly(const std::string& path) {
  MmapStorage storage;
  storage.fd_ = ::open(path.c_str(), O_RDONLY);
  if (storage.fd_ < 0) fail_errno("cannot open " + path);
  struct stat st{};
  if (::fstat(storage.fd_, &st) != 0) fail_errno("cannot stat " + path);
  if (st.st_size == 0) {
    throw std::runtime_error("mmap_arena: " + path + " is empty");
  }
  storage.bytes_ = static_cast<std::size_t>(st.st_size);
  void* address =
      ::mmap(nullptr, storage.bytes_, PROT_READ, MAP_PRIVATE, storage.fd_, 0);
  if (address == MAP_FAILED) fail_errno("cannot map " + path);
  storage.address_ = address;
  storage.writable_ = false;
  return storage;
}

void MmapStorage::grow(std::size_t bytes) {
  if (!writable_) {
    throw std::runtime_error("mmap_arena: grow on a read-only mapping");
  }
  const std::size_t target = detail::round_up_64(bytes);
  if (target <= bytes_) return;
  if (fd_ >= 0 && ::ftruncate(fd_, static_cast<off_t>(target)) != 0) {
    fail_errno("cannot extend backing file");
  }
#ifdef __linux__
  void* moved = ::mremap(address_, bytes_, target, MREMAP_MAYMOVE);
  if (moved == MAP_FAILED) fail_errno("mremap");
  address_ = moved;
#else
  // Portable fallback: map a fresh region and copy. (Linux — the target
  // platform — always takes the mremap path above.)
  void* fresh = ::mmap(nullptr, target, PROT_READ | PROT_WRITE,
                       fd_ >= 0 ? MAP_SHARED : (MAP_PRIVATE | MAP_ANONYMOUS),
                       fd_, 0);
  if (fresh == MAP_FAILED) fail_errno("mmap (grow)");
  if (fd_ < 0) std::memcpy(fresh, address_, bytes_);
  ::munmap(address_, bytes_);
  address_ = fresh;
#endif
  bytes_ = target;
}

}  // namespace imc
