#include "util/mathx.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace imc {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k == 0 || k >= n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (const double v : values) sum.add(v);
  return sum.value() / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  KahanSum sq;
  for (const double v : values) sq.add((v - m) * (v - m));
  return std::sqrt(sq.value() / static_cast<double>(values.size() - 1));
}

const double* nu_fraction_row(std::uint32_t threshold) noexcept {
  // (kMaxNuThreshold + 1)^2 doubles = ~33 KiB; the few rows a workload's
  // thresholds actually select stay L1-resident. Row 0 (invalid threshold)
  // is all ones so a stray lookup saturates instead of dividing by zero.
  static const std::vector<double> table = [] {
    std::vector<double> t((kMaxNuThreshold + 1) * (kMaxNuThreshold + 1), 1.0);
    for (std::uint32_t h = 1; h <= kMaxNuThreshold; ++h) {
      for (std::uint32_t count = 0; count <= kMaxNuThreshold; ++count) {
        t[h * (kMaxNuThreshold + 1) + count] =
            count >= h ? 1.0
                       : static_cast<double>(count) / static_cast<double>(h);
      }
    }
    return t;
  }();
  assert(threshold <= kMaxNuThreshold);
  return table.data() + threshold * (kMaxNuThreshold + 1);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  KahanSum sxy, sxx, syy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy.add((xs[i] - mx) * (ys[i] - my));
    sxx.add((xs[i] - mx) * (xs[i] - mx));
    syy.add((ys[i] - my) * (ys[i] - my));
  }
  const double denom = std::sqrt(sxx.value() * syy.value());
  return denom > 0.0 ? sxy.value() / denom : 0.0;
}

}  // namespace imc
