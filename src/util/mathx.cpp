#include "util/mathx.h"

#include <cmath>

namespace imc {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k == 0 || k >= n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (const double v : values) sum.add(v);
  return sum.value() / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  KahanSum sq;
  for (const double v : values) sq.add((v - m) * (v - m));
  return std::sqrt(sq.value() / static_cast<double>(values.size() - 1));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  KahanSum sxy, sxx, syy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy.add((xs[i] - mx) * (ys[i] - my));
    sxx.add((xs[i] - mx) * (xs[i] - mx));
    syy.add((ys[i] - my) * (ys[i] - my));
  }
  const double denom = std::sqrt(sxx.value() * syy.value());
  return denom > 0.0 ? sxy.value() / denom : 0.0;
}

}  // namespace imc
