// Fixed-size worker pool with a blocking task queue, plus a `parallel_for`
// helper used for embarrassingly parallel work (RIC/RR sample generation,
// Monte-Carlo replications, greedy marginal-gain sweeps). On a single-core
// host the pool degenerates to one worker and adds negligible overhead.
//
// Nested use is safe: a `parallel_for` caller (including a pool worker whose
// task fans out again) help-runs queued tasks instead of blocking, so chunks
// queued behind the caller can never deadlock it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace imc {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread, if any is
  /// pending. Returns false when the queue was empty. This is the
  /// help-running primitive `parallel_for` uses while waiting on chunks so
  /// nested invocations cannot deadlock.
  bool try_run_one();

  /// Blocks until all tasks submitted so far have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end, chunk_index)` on pool workers; blocks until done.
/// Exceptions from the body propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t begin,
                                           std::uint64_t end,
                                           unsigned chunk_index)>& body);

/// Runs `body(shard)` for each shard in [0, shards) as ONE task per shard
/// — no chunk merging or splitting — and blocks until done. This is the
/// slab-affinity primitive of the sharded selection sweeps (DESIGN.md
/// §14): each shard owns a private accumulator row written by exactly one
/// task, and with shards == pool.size() the queue hands one slab to each
/// worker, so the covered/arena pages a worker faulted in under
/// first-touch are the pages it keeps sweeping. Exceptions propagate to
/// the caller (first one wins); the caller help-runs queued tasks while
/// waiting, so nested use cannot deadlock.
void parallel_for_shards(ThreadPool& pool, unsigned shards,
                         const std::function<void(unsigned shard)>& body);

/// Shared default pool. Lazily constructed on first use, sized from (in
/// priority order) `set_default_pool_threads`, the `IMC_THREADS` environment
/// variable, then std::thread::hardware_concurrency().
ThreadPool& default_pool();

/// Overrides the shared pool's thread count. Must be called before the
/// first `default_pool()` use (CLI startup); later calls are ignored once
/// the pool exists. Returns false when the override arrived too late.
bool set_default_pool_threads(unsigned threads);

}  // namespace imc
