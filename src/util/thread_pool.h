// Fixed-size worker pool with a blocking task queue, plus a `parallel_for`
// helper used for embarrassingly parallel work (RIC/RR sample generation,
// Monte-Carlo replications). On a single-core host the pool degenerates to
// one worker and adds negligible overhead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace imc {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end, chunk_index)` on pool workers; blocks until done.
/// Exceptions from the body propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t begin,
                                           std::uint64_t end,
                                           unsigned chunk_index)>& body);

/// Shared default pool (lazily constructed, sized to the machine).
ThreadPool& default_pool();

}  // namespace imc
