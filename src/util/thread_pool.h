// Fixed-size worker pool with a blocking task queue, plus a `parallel_for`
// helper used for embarrassingly parallel work (RIC/RR sample generation,
// Monte-Carlo replications, greedy marginal-gain sweeps). On a single-core
// host the pool degenerates to one worker and adds negligible overhead.
//
// Nested use is safe: a `parallel_for` caller (including a pool worker whose
// task fans out again) help-runs queued tasks instead of blocking, so chunks
// queued behind the caller can never deadlock it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace imc {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread, if any is
  /// pending. Returns false when the queue was empty. This is the
  /// help-running primitive `parallel_for` uses while waiting on chunks so
  /// nested invocations cannot deadlock.
  bool try_run_one();

  /// Blocks until all tasks submitted so far have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Blocks until `pending` is ready, help-running queued tasks while
/// waiting (same no-deadlock argument as `parallel_for`: the task is
/// either queued — and this loop runs it — or running on a worker that
/// never blocks while the queue is non-empty). Calls `get()`, so the
/// task's exception (if any) rethrows here and the future is consumed.
void help_wait(ThreadPool& pool, std::future<void>& pending);

/// Handle to one cancellable task submitted via `submit_job` — the unit
/// the pipelined engine uses to overlap speculative sample generation
/// with the solve/estimate phases. The handle is the only way to observe
/// the task: `join()` help-runs until it finishes (so waiting from a pool
/// worker cannot deadlock) and rethrows the body's exception, `cancel()`
/// requests cooperative wind-down through the flag the body polls. A job
/// cancelled before a worker picks it up never runs its body at all
/// (`skipped()` reports that case). Destroying a valid handle cancels and
/// joins first (swallowing the body's exception) — the body may reference
/// caller state that dies with the owner's scope, so the handle never
/// abandons a running task; owners that care about the body's outcome
/// must `join()` explicitly.
class BackgroundJob {
 public:
  BackgroundJob() = default;
  BackgroundJob(BackgroundJob&&) noexcept = default;
  BackgroundJob& operator=(BackgroundJob&&) noexcept = default;
  BackgroundJob(const BackgroundJob&) = delete;
  BackgroundJob& operator=(const BackgroundJob&) = delete;
  ~BackgroundJob();

  /// True when this handle owns a submitted, not-yet-joined task.
  [[nodiscard]] bool valid() const noexcept { return future_.valid(); }

  /// Non-blocking: has the task finished (or been skipped)?
  [[nodiscard]] bool done() const;

  /// Requests cooperative cancellation: the body's `cancel` flag flips,
  /// and a body that has not started yet is skipped entirely. Does not
  /// wait — follow with `join()`.
  void cancel() noexcept;

  /// True once cancel() was called.
  [[nodiscard]] bool cancelled() const noexcept;

  /// True when cancel() won the race: the body never ran.
  [[nodiscard]] bool skipped() const noexcept;

  /// Blocks until the task finishes, help-running queued pool tasks while
  /// waiting; rethrows the body's exception. Idempotent (later calls are
  /// no-ops) and safe on a default-constructed handle.
  void join();

 private:
  friend BackgroundJob submit_job(
      ThreadPool& pool,
      std::function<void(const std::atomic<bool>& cancel)> body);

  struct State {
    std::atomic<bool> cancel{false};
    std::atomic<bool> skipped{false};
  };

  std::shared_ptr<State> state_;
  std::future<void> future_;
  ThreadPool* pool_ = nullptr;
};

/// Submits `body` as one pool task and returns its cancellation-aware
/// handle. The body receives the job's cancel flag and should poll it at
/// whatever granularity lets it wind down promptly; a body that ignores
/// the flag simply runs to completion (cancel then only matters for the
/// not-yet-started skip).
[[nodiscard]] BackgroundJob submit_job(
    ThreadPool& pool, std::function<void(const std::atomic<bool>& cancel)> body);

/// Splits [0, count) into contiguous chunks and runs
/// `body(begin, end, chunk_index)` on pool workers; blocks until done.
/// Exceptions from the body propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t begin,
                                           std::uint64_t end,
                                           unsigned chunk_index)>& body);

/// Runs `body(shard)` for each shard in [0, shards) as ONE task per shard
/// — no chunk merging or splitting — and blocks until done. This is the
/// slab-affinity primitive of the sharded selection sweeps (DESIGN.md
/// §14): each shard owns a private accumulator row written by exactly one
/// task, and with shards == pool.size() the queue hands one slab to each
/// worker, so the covered/arena pages a worker faulted in under
/// first-touch are the pages it keeps sweeping. Exceptions propagate to
/// the caller (first one wins); the caller help-runs queued tasks while
/// waiting, so nested use cannot deadlock.
void parallel_for_shards(ThreadPool& pool, unsigned shards,
                         const std::function<void(unsigned shard)>& body);

/// Shared default pool. Lazily constructed on first use, sized from (in
/// priority order) `set_default_pool_threads`, the `IMC_THREADS` environment
/// variable, then std::thread::hardware_concurrency().
ThreadPool& default_pool();

/// Overrides the shared pool's thread count. Must be called before the
/// first `default_pool()` use (CLI startup); later calls are ignored once
/// the pool exists. Returns false when the override arrived too late.
bool set_default_pool_threads(unsigned threads);

}  // namespace imc
