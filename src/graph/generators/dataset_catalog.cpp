#include "graph/generators/dataset_catalog.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "graph/generators/generators.h"
#include "graph/weights.h"

namespace imc {

const std::vector<DatasetInfo>& dataset_catalog() {
  static const std::vector<DatasetInfo> catalog = {
      {DatasetId::kFacebook, "facebook", false, 747, 60050, 747},
      {DatasetId::kWikiVote, "wiki-vote", true, 7115, 103600, 7115},
      {DatasetId::kEpinions, "epinions", true, 76000, 508800, 15000},
      {DatasetId::kDblp, "dblp", false, 317000, 1050000, 30000},
      {DatasetId::kPokec, "pokec", true, 1600000, 30600000, 50000},
  };
  return catalog;
}

const DatasetInfo& dataset_info(DatasetId id) {
  for (const DatasetInfo& info : dataset_catalog()) {
    if (info.id == id) return info;
  }
  throw std::invalid_argument("dataset_info: unknown dataset id");
}

DatasetId dataset_from_name(const std::string& name) {
  std::string lowered(name);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const DatasetInfo& info : dataset_catalog()) {
    if (info.name == lowered) return info.id;
  }
  throw std::invalid_argument("dataset_from_name: unknown dataset '" + name +
                              "'");
}

namespace {

[[nodiscard]] NodeId scaled_nodes(NodeId base, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("make_dataset: scale must be positive");
  }
  const double scaled = static_cast<double>(base) * scale;
  return std::max<NodeId>(64, static_cast<NodeId>(scaled));
}

}  // namespace

Graph make_dataset(DatasetId id, double scale) {
  const DatasetInfo& info = dataset_info(id);
  const NodeId n = scaled_nodes(info.standin_nodes, scale);
  Rng rng(0xD5EA5E00ULL + static_cast<std::uint64_t>(id));

  EdgeList edges;
  switch (id) {
    case DatasetId::kFacebook: {
      // Dense friendship ego-net: undirected PA with high attachment
      // (paper: 60 K directed edges over 747 nodes, mean out-degree ~80).
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 40;
      config.directed = false;
      edges = barabasi_albert_edges(config, rng);
      break;
    }
    case DatasetId::kWikiVote: {
      // Sparse directed voting graph, mean out-degree ~15.
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 12;
      config.directed = true;
      config.reciprocity = 0.1;
      edges = barabasi_albert_edges(config, rng);
      break;
    }
    case DatasetId::kEpinions: {
      // Trust network: directed, some reciprocity, mean degree ~7.
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 6;
      config.directed = true;
      config.reciprocity = 0.25;
      edges = barabasi_albert_edges(config, rng);
      break;
    }
    case DatasetId::kDblp: {
      // Co-authorship: strong planted community structure. SBM base plus a
      // PA overlay for hub authors so the degree tail is heavy.
      SbmConfig sbm;
      sbm.nodes = n;
      sbm.blocks = std::max<std::uint32_t>(8, n / 400);
      // Mean in-block degree ~4 plus the PA overlay (~4) matches DBLP's
      // sparse co-authorship profile (paper: mean degree ~6.6).
      sbm.p_in = std::min(1.0, 4.0 / (static_cast<double>(n) /
                                      static_cast<double>(sbm.blocks)));
      sbm.p_out = 0.4 / static_cast<double>(n);
      edges = sbm_edges(sbm, rng);
      BarabasiAlbertConfig overlay;
      overlay.nodes = n;
      overlay.attach = 2;
      overlay.directed = false;
      EdgeList extra = barabasi_albert_edges(overlay, rng);
      edges.insert(edges.end(), extra.begin(), extra.end());
      break;
    }
    case DatasetId::kPokec: {
      // Large directed friendship network, mean degree ~19 in the paper;
      // we keep attach moderate so the scaled bench stays laptop-friendly.
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 10;
      config.directed = true;
      config.reciprocity = 0.35;
      edges = barabasi_albert_edges(config, rng);
      break;
    }
  }

  apply_weighted_cascade(edges, n);
  return Graph(n, edges);
}

}  // namespace imc
