#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/generators/generators.h"

namespace imc {

namespace {

/// Geometric(p) number of "burn" picks: number of successes before the
/// first failure, mean p / (1 - p).
std::uint32_t geometric_burn_count(double p, Rng& rng) {
  std::uint32_t count = 0;
  while (count < 1024 && rng.bernoulli(p)) ++count;
  return count;
}

}  // namespace

EdgeList forest_fire_edges(const ForestFireConfig& config, Rng& rng) {
  EdgeList edges;
  if (config.nodes == 0) return edges;

  // Adjacency snapshots maintained incrementally for burning.
  std::vector<std::vector<NodeId>> out_links(config.nodes);
  std::vector<std::vector<NodeId>> in_links(config.nodes);

  const auto link = [&](NodeId from, NodeId to) {
    edges.push_back(WeightedEdge{from, to, 1.0});
    out_links[from].push_back(to);
    in_links[to].push_back(from);
  };

  for (NodeId v = 1; v < config.nodes; ++v) {
    const NodeId ambassador = static_cast<NodeId>(rng.below(v));
    std::unordered_set<NodeId> burned{v, ambassador};
    std::vector<NodeId> frontier{ambassador};
    link(v, ambassador);

    while (!frontier.empty()) {
      const NodeId w = frontier.back();
      frontier.pop_back();
      // Burn a geometric number of forward (out) and backward (in) links.
      const std::uint32_t forward =
          geometric_burn_count(config.p_forward, rng);
      const std::uint32_t backward =
          geometric_burn_count(config.p_forward * config.r_backward, rng);

      const auto burn_from = [&](const std::vector<NodeId>& pool,
                                 std::uint32_t want) {
        if (pool.empty() || want == 0) return;
        for (std::uint32_t attempt = 0; attempt < want * 2; ++attempt) {
          const NodeId candidate = pool[rng.below(pool.size())];
          if (burned.insert(candidate).second) {
            link(v, candidate);
            frontier.push_back(candidate);
            if (--want == 0) break;
          }
        }
      };
      burn_from(out_links[w], forward);
      burn_from(in_links[w], backward);
    }
  }
  return edges;
}

}  // namespace imc
