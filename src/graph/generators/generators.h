// Random graph generators.
//
// These stand in for the SNAP datasets of the paper's Table I (the build
// machine is offline — see DESIGN.md §3 for the substitution argument) and
// provide controlled topologies for tests and ablations. Every generator is
// deterministic given the seed. Edges are emitted with weight 1.0; apply a
// scheme from graph/weights.h (the experiments use weighted cascade).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// G(n, p) Erdős–Rényi digraph (each ordered pair independently with
/// probability p). Uses geometric skipping, O(m) expected time.
[[nodiscard]] EdgeList erdos_renyi_edges(NodeId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment. Each new node attaches to
/// `attach` existing nodes chosen ∝ current degree (repeat-sampling without
/// replacement). `directed == false` emits both directions;
/// `directed == true` points each new edge from the new node to the chosen
/// target AND adds a reciprocal edge with probability `reciprocity`
/// (heavy-tailed IN-degree as in Wiki-Vote/Epinions/Pokec).
struct BarabasiAlbertConfig {
  NodeId nodes = 1000;
  std::uint32_t attach = 4;  // edges added per new node (>= 1)
  bool directed = false;
  double reciprocity = 0.2;  // only used when directed
};
[[nodiscard]] EdgeList barabasi_albert_edges(const BarabasiAlbertConfig& config,
                                             Rng& rng);

/// Watts–Strogatz small world: ring lattice with `neighbors_each_side`,
/// rewired with probability `rewire`. Undirected (both directions emitted).
struct WattsStrogatzConfig {
  NodeId nodes = 1000;
  std::uint32_t neighbors_each_side = 4;
  double rewire = 0.1;
};
[[nodiscard]] EdgeList watts_strogatz_edges(const WattsStrogatzConfig& config,
                                            Rng& rng);

/// Stochastic block model: `blocks` planted groups of near-equal size;
/// within-block pairs connect with p_in, across with p_out. Undirected.
/// `block_of(v)` = v % blocks, so the planted partition is recoverable.
struct SbmConfig {
  NodeId nodes = 1000;
  std::uint32_t blocks = 10;
  double p_in = 0.05;
  double p_out = 0.001;
};
[[nodiscard]] EdgeList sbm_edges(const SbmConfig& config, Rng& rng);

/// Planted block of node v under SbmConfig.
[[nodiscard]] constexpr CommunityId sbm_block_of(NodeId v,
                                                 std::uint32_t blocks) noexcept {
  return v % blocks;
}

/// Forest-fire model (Leskovec et al.): new node picks an ambassador and
/// burns through the graph with forward probability `p_forward` and backward
/// ratio `r_backward`. Produces densifying, heavy-tailed, community-rich
/// digraphs similar to citation/social networks.
struct ForestFireConfig {
  NodeId nodes = 1000;
  double p_forward = 0.35;
  double r_backward = 0.3;
};
[[nodiscard]] EdgeList forest_fire_edges(const ForestFireConfig& config,
                                         Rng& rng);

}  // namespace imc
