#include <stdexcept>
#include <vector>

#include "graph/generators/generators.h"

namespace imc {

EdgeList barabasi_albert_edges(const BarabasiAlbertConfig& config, Rng& rng) {
  if (config.attach == 0) {
    throw std::invalid_argument("barabasi_albert_edges: attach must be >= 1");
  }
  if (config.nodes <= config.attach) {
    throw std::invalid_argument(
        "barabasi_albert_edges: nodes must exceed attach");
  }
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(config.nodes) * config.attach * 2);

  // `endpoints` holds every edge endpoint seen so far; drawing a uniform
  // element of it realizes preferential attachment ∝ degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(edges.capacity());

  const auto add = [&](NodeId from, NodeId to) {
    edges.push_back(WeightedEdge{from, to, 1.0});
    if (!config.directed) edges.push_back(WeightedEdge{to, from, 1.0});
    endpoints.push_back(from);
    endpoints.push_back(to);
  };

  // Seed clique over the first (attach + 1) nodes so early draws are varied.
  const NodeId seed_nodes = config.attach + 1;
  for (NodeId a = 0; a < seed_nodes; ++a) {
    for (NodeId b = a + 1; b < seed_nodes; ++b) {
      add(a, b);
      if (config.directed) edges.push_back(WeightedEdge{b, a, 1.0});
    }
  }

  std::vector<NodeId> picks(config.attach);
  for (NodeId v = seed_nodes; v < config.nodes; ++v) {
    // Sample `attach` distinct targets by degree; retry on duplicates
    // (duplicate probability is tiny once the endpoint pool grows).
    for (std::uint32_t slot = 0; slot < config.attach; ++slot) {
      NodeId target;
      bool fresh;
      do {
        target = endpoints[rng.below(endpoints.size())];
        fresh = true;
        for (std::uint32_t prev = 0; prev < slot; ++prev) {
          if (picks[prev] == target) {
            fresh = false;
            break;
          }
        }
      } while (!fresh || target == v);
      picks[slot] = target;
    }
    for (std::uint32_t slot = 0; slot < config.attach; ++slot) {
      add(v, picks[slot]);
      if (config.directed && rng.bernoulli(config.reciprocity)) {
        edges.push_back(WeightedEdge{picks[slot], v, 1.0});
      }
    }
  }
  return edges;
}

}  // namespace imc
