// Synthetic stand-ins for the five SNAP datasets of the paper's Table I.
//
// The evaluation machine has no network access, so instead of downloading
// facebook/wiki-Vote/epinions/dblp/pokec we synthesize graphs of the same
// type (directed/undirected) whose degree distributions are heavy-tailed via
// preferential attachment — see DESIGN.md §3 for the substitution rationale
// and the scaling table. `scale` multiplies node counts (1.0 = the defaults
// below); benches read it from the IMC_BENCH_SCALE environment variable.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace imc {

enum class DatasetId {
  kFacebook,   // undirected,   747 nodes at scale 1
  kWikiVote,   // directed,   7 115 nodes at scale 1
  kEpinions,   // directed,  15 000 nodes at scale 1 (paper: 76 K)
  kDblp,       // undirected, 30 000 nodes at scale 1 (paper: 317 K)
  kPokec,      // directed,  50 000 nodes at scale 1 (paper: 1.6 M)
};

struct DatasetInfo {
  DatasetId id;
  std::string name;        // e.g. "facebook"
  bool directed;
  NodeId paper_nodes;      // as reported in Table I
  EdgeId paper_edges;      // as reported in Table I
  NodeId standin_nodes;    // our default at scale 1
};

/// Metadata for all five datasets, in Table I order.
[[nodiscard]] const std::vector<DatasetInfo>& dataset_catalog();

[[nodiscard]] const DatasetInfo& dataset_info(DatasetId id);

/// Parses "facebook" / "wiki-vote" / "epinions" / "dblp" / "pokec"
/// (case-insensitive); throws std::invalid_argument otherwise.
[[nodiscard]] DatasetId dataset_from_name(const std::string& name);

/// Builds the stand-in graph with weighted-cascade IC weights
/// (w(u,v) = 1/indeg(v), the paper's setting). `scale` in (0, +inf)
/// multiplies the node count; the generator seed is fixed per dataset so
/// repeated calls return identical graphs.
[[nodiscard]] Graph make_dataset(DatasetId id, double scale = 1.0);

}  // namespace imc
