#include <cmath>
#include <stdexcept>

#include "graph/generators/generators.h"

namespace imc {

namespace {

/// Emits each unordered pair {a, b} with a < b, a%blocks==..., using
/// geometric skipping over the pair universe restricted by the predicate
/// "same block" / "different block". For simplicity and correctness we scan
/// pairs with per-pair skip sampling over the two rates; the expected cost
/// is O(n * blocks + m) using row-wise geometric jumps.
class PairSampler {
 public:
  PairSampler(double probability, Rng& rng)
      : log_keep_(probability < 1.0 ? std::log(1.0 - probability) : 0.0),
        probability_(probability),
        rng_(rng) {}

  /// Next success offset >= `from` in a virtual Bernoulli row of length
  /// `length`; returns length if none.
  std::uint64_t next(std::uint64_t from, std::uint64_t length) {
    if (probability_ <= 0.0) return length;
    if (probability_ >= 1.0) return from;
    const double u = 1.0 - rng_.uniform();
    const double jump = std::floor(std::log(u) / log_keep_);
    if (jump >= static_cast<double>(length - from)) return length;
    return from + static_cast<std::uint64_t>(jump);
  }

 private:
  double log_keep_;
  double probability_;
  Rng& rng_;
};

}  // namespace

EdgeList sbm_edges(const SbmConfig& config, Rng& rng) {
  if (config.blocks == 0 || config.nodes == 0) {
    throw std::invalid_argument("sbm_edges: empty model");
  }
  if (config.p_in < 0 || config.p_in > 1 || config.p_out < 0 ||
      config.p_out > 1) {
    throw std::invalid_argument("sbm_edges: probabilities outside [0, 1]");
  }

  EdgeList edges;
  PairSampler in_sampler(config.p_in, rng);
  PairSampler out_sampler(config.p_out, rng);

  // For each node v, scan candidate partners u > v in two virtual rows:
  // same-block partners and cross-block partners. Blocks are v % blocks.
  const std::uint32_t blocks = config.blocks;
  for (NodeId v = 0; v + 1 < config.nodes; ++v) {
    // Same-block: u = v + blocks, v + 2*blocks, ...
    const std::uint64_t same_count =
        (config.nodes - 1 - v) / blocks;  // partners strictly above v
    for (std::uint64_t i = in_sampler.next(0, same_count); i < same_count;
         i = in_sampler.next(i + 1, same_count)) {
      const NodeId u = v + static_cast<NodeId>((i + 1) * blocks);
      edges.push_back(WeightedEdge{v, u, 1.0});
      edges.push_back(WeightedEdge{u, v, 1.0});
    }
    // Cross-block: all u in (v, nodes) minus the same-block ones. Enumerate
    // via a virtual row of length (nodes-1-v) - same_count mapping the i-th
    // cross partner.
    const std::uint64_t above = config.nodes - 1 - v;
    const std::uint64_t cross_count = above - same_count;
    for (std::uint64_t i = out_sampler.next(0, cross_count); i < cross_count;
         i = out_sampler.next(i + 1, cross_count)) {
      // Map cross index i -> actual offset: skip offsets divisible by
      // `blocks` (those are same-block). Offsets run 1..above.
      // Each window of `blocks` consecutive offsets contains exactly
      // blocks-1 cross offsets (when blocks > 1).
      std::uint64_t offset;
      if (blocks == 1) {
        offset = i + 1;  // no same-block partners above v
      } else {
        const std::uint64_t window = i / (blocks - 1);
        const std::uint64_t slot = i % (blocks - 1);
        offset = window * blocks + slot + 1;
        if (offset % blocks == 0) ++offset;  // never lands, defensive
      }
      if (offset > above) continue;  // tail partial window, defensive
      const NodeId u = v + static_cast<NodeId>(offset);
      edges.push_back(WeightedEdge{v, u, 1.0});
      edges.push_back(WeightedEdge{u, v, 1.0});
    }
  }
  return edges;
}

}  // namespace imc
