#include <stdexcept>

#include "graph/generators/generators.h"

namespace imc {

EdgeList watts_strogatz_edges(const WattsStrogatzConfig& config, Rng& rng) {
  const NodeId n = config.nodes;
  const std::uint32_t k = config.neighbors_each_side;
  if (n < 3 || k == 0 || 2 * k >= n) {
    throw std::invalid_argument(
        "watts_strogatz_edges: need nodes >= 3 and 0 < 2*k < nodes");
  }
  if (config.rewire < 0.0 || config.rewire > 1.0) {
    throw std::invalid_argument("watts_strogatz_edges: rewire outside [0,1]");
  }

  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k * 2);
  const auto add_undirected = [&](NodeId a, NodeId b) {
    edges.push_back(WeightedEdge{a, b, 1.0});
    edges.push_back(WeightedEdge{b, a, 1.0});
  };

  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t offset = 1; offset <= k; ++offset) {
      const NodeId ring_target = static_cast<NodeId>((v + offset) % n);
      if (rng.bernoulli(config.rewire)) {
        // Rewire to a uniform non-self target. Parallel edges that may
        // arise are merged (noisy-or) by the Graph constructor; with weight
        // 1.0 the merge keeps probability 1.0, i.e. a plain simple edge.
        NodeId other;
        do {
          other = static_cast<NodeId>(rng.below(n));
        } while (other == v);
        add_undirected(v, other);
      } else {
        add_undirected(v, ring_target);
      }
    }
  }
  return edges;
}

}  // namespace imc
