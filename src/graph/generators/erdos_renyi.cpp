#include <cmath>
#include <stdexcept>

#include "graph/generators/generators.h"

namespace imc {

EdgeList erdos_renyi_edges(NodeId n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi_edges: p outside [0, 1]");
  }
  EdgeList edges;
  if (n == 0 || p == 0.0) return edges;
  edges.reserve(static_cast<std::size_t>(
      p * static_cast<double>(n) * static_cast<double>(n)));

  // Enumerate the n*(n-1) ordered non-loop pairs as one index space and do
  // geometric jumps between successes (Batagelj–Brandes).
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1);
  const double log_keep = std::log(1.0 - p);
  std::uint64_t position = 0;
  const auto emit = [&](std::uint64_t idx) {
    const auto row = static_cast<NodeId>(idx / (n - 1));
    auto col = static_cast<NodeId>(idx % (n - 1));
    if (col >= row) ++col;  // skip the diagonal
    edges.push_back(WeightedEdge{row, col, 1.0});
  };
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) emit(i);
    return edges;
  }
  while (true) {
    const double u = 1.0 - rng.uniform();  // in (0, 1]
    const double jump = std::floor(std::log(u) / log_keep);
    if (jump >= static_cast<double>(total - position)) break;
    position += static_cast<std::uint64_t>(jump);
    emit(position);
    if (++position >= total) break;
  }
  return edges;
}

}  // namespace imc
