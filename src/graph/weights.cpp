#include "graph/weights.h"

#include <stdexcept>
#include <vector>

namespace imc {

void apply_weighted_cascade(EdgeList& edges, NodeId node_count) {
  std::vector<std::uint32_t> indegree(node_count, 0);
  for (const WeightedEdge& e : edges) {
    if (e.target >= node_count) {
      throw std::invalid_argument("apply_weighted_cascade: target out of range");
    }
    ++indegree[e.target];
  }
  for (WeightedEdge& e : edges) {
    e.weight = 1.0 / static_cast<double>(indegree[e.target]);
  }
}

void apply_uniform_weights(EdgeList& edges, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("apply_uniform_weights: p outside [0, 1]");
  }
  for (WeightedEdge& e : edges) e.weight = p;
}

void apply_trivalency_weights(EdgeList& edges, Rng& rng) {
  static constexpr double kLevels[] = {0.1, 0.01, 0.001};
  for (WeightedEdge& e : edges) e.weight = kLevels[rng.below(3)];
}

}  // namespace imc
