#include "graph/delta.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "community/community_set.h"
#include "graph/graph.h"

namespace imc {

namespace {

/// Replays the move sequence against the CURRENT community set without
/// touching it, throwing on the first move that could not apply. Mirrors
/// CommunitySet::move_member's checks exactly, but accounts for earlier
/// moves in the same batch, so a mid-batch failure is detected before
/// anything mutates.
void validate_moves(const CommunitySet& communities,
                    const std::vector<MemberMove>& moves) {
  std::unordered_map<NodeId, CommunityId> where;       // batch overrides
  std::unordered_map<CommunityId, std::int64_t> drift;  // population deltas
  for (const MemberMove& m : moves) {
    if (m.node >= communities.node_count()) {
      throw std::invalid_argument("apply_delta: move node out of range");
    }
    if (m.to >= communities.size()) {
      throw std::invalid_argument(
          "apply_delta: move target community out of range");
    }
    const auto hit = where.find(m.node);
    const CommunityId from =
        hit != where.end() ? hit->second : communities.community_of(m.node);
    if (from == kInvalidCommunity) {
      throw std::invalid_argument(
          "apply_delta: moved node belongs to no community");
    }
    if (from == m.to) {
      throw std::invalid_argument(
          "apply_delta: moved node already in target community");
    }
    const std::int64_t population =
        static_cast<std::int64_t>(communities.population(from)) + drift[from];
    if (population <= 1) {
      throw std::invalid_argument(
          "apply_delta: source community would become empty");
    }
    if (communities.threshold(from) > population - 1) {
      throw std::invalid_argument(
          "apply_delta: source threshold would exceed its shrunken "
          "population");
    }
    where[m.node] = m.to;
    --drift[from];
    ++drift[m.to];
  }
}

}  // namespace

DeltaEffects apply_delta(Graph& graph, CommunitySet& communities,
                         const GraphDelta& delta) {
  // Order of operations gives the batch a strong guarantee: moves are
  // pre-validated (above), apply_edge_updates validates the whole edge
  // batch before its first write, and the moves themselves can no longer
  // fail once the simulation passed.
  validate_moves(communities, delta.moves);

  DeltaEffects effects;
  effects.changed_in_nodes = graph.apply_edge_updates(delta.edges);

  effects.changed_communities.reserve(delta.moves.size() * 2);
  for (const MemberMove& m : delta.moves) {
    const CommunityId from = communities.community_of(m.node);
    communities.move_member(m.node, m.to);
    effects.changed_communities.push_back(from);
    effects.changed_communities.push_back(m.to);
  }
  std::sort(effects.changed_communities.begin(),
            effects.changed_communities.end());
  effects.changed_communities.erase(
      std::unique(effects.changed_communities.begin(),
                  effects.changed_communities.end()),
      effects.changed_communities.end());
  return effects;
}

std::vector<GraphDelta> parse_delta_stream(const std::string& text) {
  std::vector<GraphDelta> batches;
  GraphDelta current;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument("delta stream line " +
                                std::to_string(line_no) + ": " + why);
  };
  while (std::getline(stream, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op)) {  // blank line: batch boundary
      if (!current.empty()) {
        batches.push_back(std::move(current));
        current = GraphDelta{};
      }
      continue;
    }
    if (op.front() == '#') continue;
    const auto reject_trailing = [&] {
      std::string extra;
      if (fields >> extra) fail("unexpected trailing token '" + extra + "'");
    };
    if (op == "E") {
      std::int64_t source = -1;
      std::int64_t target = -1;
      double weight = -1.0;
      if (!(fields >> source >> target >> weight) || source < 0 ||
          target < 0) {
        fail("expected 'E <source> <target> <weight>'");
      }
      reject_trailing();
      current.upsert_edge(static_cast<NodeId>(source),
                          static_cast<NodeId>(target), weight);
    } else if (op == "M") {
      std::int64_t node = -1;
      std::int64_t community = -1;
      if (!(fields >> node >> community) || node < 0 || community < 0) {
        fail("expected 'M <node> <community>'");
      }
      reject_trailing();
      current.move_member(static_cast<NodeId>(node),
                          static_cast<CommunityId>(community));
    } else {
      fail("unknown op '" + op + "' (expected E or M)");
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

}  // namespace imc
