// Structural graph metrics: used by the dataset-validation tests, Table I
// extensions and the CLI `stats` command.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// Local clustering coefficient of `v` on the UNDERLYING UNDIRECTED graph
/// (an edge exists between a, b if either direction exists): fraction of
/// neighbor pairs that are themselves connected. 0 for degree < 2.
[[nodiscard]] double local_clustering_coefficient(const Graph& graph,
                                                  NodeId v);

/// Mean local clustering coefficient over all nodes (Watts–Strogatz C).
[[nodiscard]] double average_clustering_coefficient(const Graph& graph);

/// K-core decomposition on the underlying undirected graph: returns each
/// node's core number (the largest k such that the node survives in the
/// k-core). Linear-time bucket algorithm (Batagelj–Zaveršnik).
[[nodiscard]] std::vector<std::uint32_t> core_numbers(const Graph& graph);

/// Largest core number (the graph's degeneracy).
[[nodiscard]] std::uint32_t degeneracy(const Graph& graph);

/// Out-degree histogram: bucket[d] = #nodes with out-degree d.
[[nodiscard]] std::vector<std::uint64_t> out_degree_histogram(
    const Graph& graph);

/// Estimated power-law exponent of the out-degree tail via the
/// Clauset–Shalizi–Newman MLE with xmin fixed: 1 + n / Σ ln(d_i / (xmin-½)).
/// Returns 0 when fewer than 10 nodes have degree >= xmin.
[[nodiscard]] double power_law_exponent_mle(const Graph& graph,
                                            std::uint32_t xmin = 4);

}  // namespace imc
