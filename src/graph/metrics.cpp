#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace imc {

namespace {

/// Distinct undirected neighbors of v (union of in and out), excluding v.
std::vector<NodeId> undirected_neighbors(const Graph& graph, NodeId v) {
  std::vector<NodeId> neighbors;
  neighbors.reserve(graph.out_degree(v) + graph.in_degree(v));
  for (const Neighbor& nb : graph.out_neighbors(v)) {
    neighbors.push_back(nb.node);
  }
  for (const Neighbor& nb : graph.in_neighbors(v)) {
    neighbors.push_back(nb.node);
  }
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  return neighbors;
}

}  // namespace

double local_clustering_coefficient(const Graph& graph, NodeId v) {
  const std::vector<NodeId> neighbors = undirected_neighbors(graph, v);
  const std::size_t degree = neighbors.size();
  if (degree < 2) return 0.0;

  // Count each *undirected* connected neighbor pair exactly once.
  std::uint64_t closed = 0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
      if (graph.has_edge(neighbors[i], neighbors[j]) ||
          graph.has_edge(neighbors[j], neighbors[i])) {
        ++closed;
      }
    }
  }
  const double pairs =
      static_cast<double>(degree) * static_cast<double>(degree - 1) / 2.0;
  return static_cast<double>(closed) / pairs;
}

double average_clustering_coefficient(const Graph& graph) {
  const NodeId n = graph.node_count();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    total += local_clustering_coefficient(graph, v);
  }
  return total / static_cast<double>(n);
}

std::vector<std::uint32_t> core_numbers(const Graph& graph) {
  const NodeId n = graph.node_count();
  std::vector<std::vector<NodeId>> adjacency(n);
  std::vector<std::uint32_t> degree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    adjacency[v] = undirected_neighbors(graph, v);
    degree[v] = static_cast<std::uint32_t>(adjacency[v].size());
  }

  // Bucket sort nodes by current degree; repeatedly peel the minimum.
  std::uint32_t max_degree = 0;
  for (const std::uint32_t d : degree) max_degree = std::max(max_degree, d);
  std::vector<std::vector<NodeId>> buckets(max_degree + 1);
  for (NodeId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<std::uint32_t> core(n, 0);
  std::vector<std::uint8_t> removed(n, 0);
  std::uint32_t current = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    // Buckets grow as degrees decay; index-based loop tolerates pushes.
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId v = buckets[d][i];
      if (removed[v] || degree[v] != d) continue;
      current = std::max(current, d);
      core[v] = current;
      removed[v] = 1;
      for (const NodeId w : adjacency[v]) {
        if (!removed[w] && degree[w] > d) {
          --degree[w];
          buckets[degree[w]].push_back(w);
        }
      }
    }
  }
  return core;
}

std::uint32_t degeneracy(const Graph& graph) {
  std::uint32_t best = 0;
  for (const std::uint32_t c : core_numbers(graph)) best = std::max(best, c);
  return best;
}

std::vector<std::uint64_t> out_degree_histogram(const Graph& graph) {
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    max_degree = std::max(max_degree, graph.out_degree(v));
  }
  std::vector<std::uint64_t> histogram(max_degree + 1, 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    ++histogram[graph.out_degree(v)];
  }
  return histogram;
}

double power_law_exponent_mle(const Graph& graph, std::uint32_t xmin) {
  if (xmin == 0) xmin = 1;
  double log_sum = 0.0;
  std::uint64_t count = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const std::uint32_t d = graph.out_degree(v);
    if (d >= xmin) {
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(xmin) - 0.5));
      ++count;
    }
  }
  if (count < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(count) / log_sum;
}

}  // namespace imc
