// Incremental construction of Graphs from arbitrary edge streams.
//
// The builder tolerates out-of-order node discovery (it grows the node count
// as edges arrive), supports undirected input (each undirected edge becomes
// two directed edges, matching the paper's treatment of Facebook/DBLP), and
// defers weight assignment so a weighting scheme (graph/weights.h) can be
// applied after the topology is known.
#pragma once

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `count` nodes (ids [0, count)).
  void reserve_nodes(NodeId count);

  /// Adds a directed edge; nodes are created on demand.
  GraphBuilder& add_edge(NodeId source, NodeId target, double weight = 1.0);

  /// Adds both directions with the same weight.
  GraphBuilder& add_undirected_edge(NodeId a, NodeId b, double weight = 1.0);

  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] const EdgeList& edges() const noexcept { return edges_; }

  /// Finalizes into an immutable Graph (the builder can be reused after).
  [[nodiscard]] Graph build() const;

  /// Finalizes after replacing every weight via the weighted-cascade scheme
  /// w(u, v) = 1 / indeg(v) used throughout the paper's experiments (§VI-A).
  [[nodiscard]] Graph build_weighted_cascade() const;

 private:
  NodeId node_count_ = 0;
  EdgeList edges_;
};

}  // namespace imc
