// Immutable directed weighted graph in compressed-sparse-row form.
//
// The graph stores BOTH orientations:
//   * out-adjacency — used by forward diffusion simulation (IC/LT), and
//   * in-adjacency  — used by reverse sampling (RIS RR-sets, RIC samples).
// Edge weights are influence probabilities in [0, 1] (IC model); the LT
// simulator reuses them as incoming weights.
//
// Construction goes through GraphBuilder (graph/builder.h), generators
// (graph/generators/*) or the SNAP edge-list loader (graph/edgelist_io.h).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.h"

namespace imc {

/// One directed neighbor with the probability of the connecting edge.
struct Neighbor {
  NodeId node = 0;
  float weight = 0.0F;
};

class Graph {
 public:
  Graph() = default;

  /// Builds CSR from an edge list. Parallel edges are merged by "noisy-or"
  /// (p = 1 - Π(1-p_i)); self-loops are dropped (they never matter under IC).
  /// Throws std::invalid_argument on endpoints >= node_count or weights
  /// outside [0, 1].
  Graph(NodeId node_count, const EdgeList& edges);

  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(out_offsets_.empty() ? 0
                                                    : out_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId edge_count() const noexcept {
    return static_cast<EdgeId>(out_adjacency_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return node_count() == 0; }

  /// Out-neighbors of u with edge probabilities w(u, v). Inline: the
  /// samplers call these once per dequeued node, millions of times per
  /// pool growth.
  [[nodiscard]] std::span<const Neighbor> out_neighbors(NodeId u) const {
    check_node(u);
    return {out_adjacency_.data() + out_offsets_[u],
            out_adjacency_.data() + out_offsets_[u + 1]};
  }
  /// In-neighbors of v with edge probabilities w(u, v).
  [[nodiscard]] std::span<const Neighbor> in_neighbors(NodeId v) const {
    check_node(v);
    return {in_adjacency_.data() + in_offsets_[v],
            in_adjacency_.data() + in_offsets_[v + 1]};
  }

  /// True when every in-edge of v carries the same probability (trivially
  /// true at in-degree 0). The weighted-cascade scheme (w = 1/indeg)
  /// satisfies this for every node, which is what makes the geometric-skip
  /// sampling path (RicSampler, rr_set) the common case.
  [[nodiscard]] bool in_weights_uniform(NodeId v) const;

  /// The shared in-edge probability of a uniform node; -1 when weights
  /// differ. 0 for isolated-in nodes.
  [[nodiscard]] float in_uniform_weight(NodeId v) const;

  /// 1 / log1p(-p) for the shared in-edge probability p — the precomputed
  /// factor of Rng::geometric_skip (a multiply on the hot path instead of
  /// a divide). -0.0 when p == 1 (the skip formula then yields 0, i.e.
  /// every edge realizes); meaningless (+1) when the node is not uniform.
  [[nodiscard]] double in_uniform_inv_log1p(NodeId v) const;

  /// Hot-path views of the per-node uniformity tables, indexed by node id
  /// (no bounds checks; samplers cache these spans).
  [[nodiscard]] std::span<const float> in_uniform_weights() const noexcept {
    return in_uniform_weight_;
  }
  [[nodiscard]] std::span<const double> in_uniform_inv_log1ps() const noexcept {
    return in_uniform_inv_log1p_;
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId u) const;
  [[nodiscard]] std::uint32_t in_degree(NodeId v) const;

  /// Probability w(u, v); 0 if the edge is absent. O(out_degree(u)).
  [[nodiscard]] double weight(NodeId u, NodeId v) const;

  /// True iff a directed edge u -> v exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return weight(u, v) > 0.0;
  }

  /// Reconstructs the (merged, sorted) edge list — handy for round-trips.
  [[nodiscard]] EdgeList to_edge_list() const;

  /// Applies a batch of edge upserts/removals in place, keeping both CSR
  /// orientations sorted-and-merged and the geometric-skip uniformity
  /// tables consistent (recomputed only for nodes whose in-edges moved).
  /// Within the batch the LAST update per (source, target) pair wins;
  /// self-loops and no-ops (removing an absent edge, rewriting an equal
  /// weight) are dropped. Returns the sorted unique set of nodes whose
  /// in-adjacency actually changed — exactly the heads whose reverse
  /// samples a RicPool repair must regenerate (DESIGN.md §16). Validates
  /// the whole batch before mutating anything (strong guarantee); throws
  /// std::invalid_argument on endpoints >= node_count() or weights
  /// outside [0, 1]. O(n + m + |updates| log |updates|).
  std::vector<NodeId> apply_edge_updates(std::span<const EdgeUpdate> updates);

  /// Aggregate degree statistics; used by Table I and dataset validation.
  struct DegreeStats {
    double mean_out = 0.0;
    std::uint32_t max_out = 0;
    std::uint32_t max_in = 0;
    NodeId isolated = 0;  // nodes with neither in- nor out-edges
  };
  [[nodiscard]] DegreeStats degree_stats() const;

  /// Human-readable one-line summary, e.g. "Graph(n=747, m=60050)".
  [[nodiscard]] std::string summary() const;

  /// Order-stable 64-bit digest of the full structure (CSR offsets,
  /// adjacency, weight bit patterns). Two graphs with equal fingerprints
  /// are byte-identical in CSR form for practical purposes; pool
  /// snapshots (sampling/pool_snapshot.h) store it so a pool can refuse
  /// to attach to the wrong graph. O(n + m), computed on demand.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  void check_node(NodeId v) const {
    if (v >= node_count()) {
      throw std::out_of_range("Graph: node id out of range");
    }
  }

  // CSR, out direction: out_adjacency_[out_offsets_[u] .. out_offsets_[u+1]),
  // sorted by target id per node so weight lookup can binary-search.
  std::vector<EdgeId> out_offsets_;
  std::vector<Neighbor> out_adjacency_;

  // CSR, in direction (sorted by source id per node).
  std::vector<EdgeId> in_offsets_;
  std::vector<Neighbor> in_adjacency_;

  // Per-node uniform in-weight acceleration tables (see in_weights_uniform):
  // the shared probability p (-1 when weights differ) and log1p(-p), both
  // filled at construction so samplers never branch on raw weights.
  std::vector<float> in_uniform_weight_;
  std::vector<double> in_uniform_inv_log1p_;
};

}  // namespace imc
