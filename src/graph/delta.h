// Streaming mutations for dynamic graphs (DESIGN.md §16).
//
// A GraphDelta batches edge upserts/removals, weight changes and community
// membership moves; apply_delta() validates the whole batch, applies it to
// a Graph + CommunitySet pair, and reports the DeltaEffects — the minimal
// description of what changed that RicPool::invalidate_and_repair needs to
// regenerate exactly the affected samples:
//
//   * changed_in_nodes    — nodes whose in-adjacency changed. A reverse
//                           RIC walk only examines a node's in-edges when
//                           it dequeues that node, and every dequeued node
//                           is recorded in the sample's touch set — so the
//                           samples whose realizations could differ are
//                           exactly those touching a changed head.
//   * changed_communities — communities whose member list changed. Their
//                           samples re-derive the source mask / threshold;
//                           the ρ = b_i/b source distribution depends only
//                           on benefits, which moves do not alter, so all
//                           other samples are untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace imc {

class Graph;
class CommunitySet;

/// Moves `node` out of its current community into `to`.
struct MemberMove {
  NodeId node = 0;
  CommunityId to = 0;

  friend bool operator==(const MemberMove&, const MemberMove&) = default;
};

/// One batch of graph/community mutations, applied atomically by
/// apply_delta(). Build with the fluent helpers or fill the vectors
/// directly; within the batch the last edge update per (source, target)
/// wins and moves apply in order.
struct GraphDelta {
  std::vector<EdgeUpdate> edges;
  std::vector<MemberMove> moves;

  GraphDelta& upsert_edge(NodeId source, NodeId target, double weight) {
    edges.push_back(EdgeUpdate{source, target, weight});
    return *this;
  }
  GraphDelta& remove_edge(NodeId source, NodeId target) {
    edges.push_back(EdgeUpdate{source, target, 0.0});
    return *this;
  }
  GraphDelta& move_member(NodeId node, CommunityId to) {
    moves.push_back(MemberMove{node, to});
    return *this;
  }
  [[nodiscard]] bool empty() const noexcept {
    return edges.empty() && moves.empty();
  }
};

/// What a delta actually changed — the repair frontier. Both lists are
/// sorted and deduplicated; an all-no-op delta yields empty().
struct DeltaEffects {
  std::vector<NodeId> changed_in_nodes;
  std::vector<CommunityId> changed_communities;

  [[nodiscard]] bool empty() const noexcept {
    return changed_in_nodes.empty() && changed_communities.empty();
  }
};

/// Validates the whole delta up front (edge endpoints and weights against
/// the graph; the move sequence simulated against the community set so a
/// mid-batch failure cannot leave a half-applied state), then applies edge
/// updates and membership moves. Throws std::invalid_argument without
/// mutating anything when validation fails. Note the ≤64-member community
/// cap lives in RicSampler, not here — a move that overfills a community
/// for sampling purposes passes apply_delta and is rejected by the pool
/// repair's sampler rebuild instead.
DeltaEffects apply_delta(Graph& graph, CommunitySet& communities,
                         const GraphDelta& delta);

/// Parses a delta replay file (imc_cli --apply-deltas): one op per line,
///   E <source> <target> <weight>   upsert (weight 0 removes)
///   M <node> <community>           membership move
///   #...                           comment; blank lines skipped
/// A blank-line-separated group of ops forms ONE GraphDelta batch.
/// Throws std::invalid_argument on malformed lines.
std::vector<GraphDelta> parse_delta_stream(const std::string& text);

}  // namespace imc
