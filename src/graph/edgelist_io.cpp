#include "graph/edgelist_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace imc {

namespace {

[[nodiscard]] std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits on any run of spaces/tabs; returns up to 3 fields.
[[nodiscard]] std::vector<std::string_view> split_fields(
    std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size() && fields.size() < 4) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

[[nodiscard]] std::uint64_t parse_id(std::string_view field,
                                     std::size_t line_number) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error("edge list: bad node id at line " +
                             std::to_string(line_number));
  }
  return value;
}

[[nodiscard]] double parse_weight(std::string_view field,
                                  std::size_t line_number) {
  // std::from_chars for double is flaky pre-GCC11 for some locales; use stod.
  try {
    return std::stod(std::string(field));
  } catch (const std::exception&) {
    throw std::runtime_error("edge list: bad weight at line " +
                             std::to_string(line_number));
  }
}

}  // namespace

LoadedEdgeList read_edge_list(std::istream& in,
                              const EdgeListOptions& options) {
  LoadedEdgeList result;
  std::string line;
  std::size_t line_number = 0;
  std::uint64_t max_raw_id = 0;
  bool saw_edge = false;

  struct RawEdge {
    std::uint64_t src, dst;
    double weight;
  };
  std::vector<RawEdge> raw;

  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#' || body.front() == '%') continue;
    const auto fields = split_fields(body);
    if (fields.size() < 2 || fields.size() > 3) {
      throw std::runtime_error("edge list: expected 2-3 fields at line " +
                               std::to_string(line_number));
    }
    const std::uint64_t src = parse_id(fields[0], line_number);
    const std::uint64_t dst = parse_id(fields[1], line_number);
    const double weight = fields.size() == 3
                              ? parse_weight(fields[2], line_number)
                              : options.default_weight;
    raw.push_back(RawEdge{src, dst, weight});
    max_raw_id = std::max(max_raw_id, std::max(src, dst));
    saw_edge = true;
  }

  if (!saw_edge) return result;

  // Densify ids. If ids are already compact we keep them verbatim so tests
  // and round-trips are intuitive; otherwise assign in order of appearance.
  const bool dense = max_raw_id < raw.size() * 4 + 16;
  const auto map_id = [&](std::uint64_t raw_id) -> NodeId {
    if (dense) {
      result.node_count =
          std::max<NodeId>(result.node_count, static_cast<NodeId>(raw_id) + 1);
      return static_cast<NodeId>(raw_id);
    }
    const auto [it, inserted] =
        result.id_map.try_emplace(raw_id, result.node_count);
    if (inserted) ++result.node_count;
    return it->second;
  };

  result.edges.reserve(raw.size() * (options.undirected ? 2 : 1));
  for (const RawEdge& e : raw) {
    const NodeId s = map_id(e.src);
    const NodeId t = map_id(e.dst);
    result.edges.push_back(WeightedEdge{s, t, e.weight});
    if (options.undirected) {
      result.edges.push_back(WeightedEdge{t, s, e.weight});
    }
  }
  return result;
}

LoadedEdgeList load_edge_list(const std::string& path,
                              const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in, options);
}

void write_edge_list(std::ostream& out, const Graph& graph) {
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      out << u << '\t' << nb.node << '\t' << nb.weight << '\n';
    }
  }
}

void save_edge_list(const std::string& path, const Graph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(out, graph);
  if (!out) throw std::runtime_error("save_edge_list: write failed " + path);
}

}  // namespace imc
