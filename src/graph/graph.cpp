#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/mathx.h"

namespace imc {

namespace {

/// Sorts one adjacency range by neighbor id and merges parallel edges with
/// noisy-or combination. Returns the new end of the valid range.
std::vector<Neighbor> merge_parallel(std::vector<Neighbor>&& raw) {
  std::sort(raw.begin(), raw.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.node < b.node;
  });
  std::vector<Neighbor> merged;
  merged.reserve(raw.size());
  for (const Neighbor& nb : raw) {
    if (!merged.empty() && merged.back().node == nb.node) {
      const double keep = 1.0 - static_cast<double>(merged.back().weight);
      const double fail = keep * (1.0 - static_cast<double>(nb.weight));
      merged.back().weight = static_cast<float>(1.0 - fail);
    } else {
      merged.push_back(nb);
    }
  }
  return merged;
}

}  // namespace

Graph::Graph(NodeId node_count, const EdgeList& edges) {
  for (const WeightedEdge& e : edges) {
    if (e.source >= node_count || e.target >= node_count) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (e.weight < 0.0 || e.weight > 1.0) {
      throw std::invalid_argument("Graph: edge weight outside [0, 1]");
    }
  }

  // Bucket edges per source / per target, then sort+merge each bucket.
  std::vector<std::vector<Neighbor>> out_buckets(node_count);
  std::vector<std::vector<Neighbor>> in_buckets(node_count);
  for (const WeightedEdge& e : edges) {
    if (e.source == e.target) continue;  // self-loops are inert under IC
    out_buckets[e.source].push_back(
        Neighbor{e.target, static_cast<float>(e.weight)});
    in_buckets[e.target].push_back(
        Neighbor{e.source, static_cast<float>(e.weight)});
  }

  out_offsets_.assign(node_count + 1, 0);
  in_offsets_.assign(node_count + 1, 0);
  for (NodeId v = 0; v < node_count; ++v) {
    out_buckets[v] = merge_parallel(std::move(out_buckets[v]));
    in_buckets[v] = merge_parallel(std::move(in_buckets[v]));
    out_offsets_[v + 1] = out_offsets_[v] + out_buckets[v].size();
    in_offsets_[v + 1] = in_offsets_[v] + in_buckets[v].size();
  }
  out_adjacency_.reserve(out_offsets_[node_count]);
  in_adjacency_.reserve(in_offsets_[node_count]);
  for (NodeId v = 0; v < node_count; ++v) {
    out_adjacency_.insert(out_adjacency_.end(), out_buckets[v].begin(),
                          out_buckets[v].end());
    in_adjacency_.insert(in_adjacency_.end(), in_buckets[v].begin(),
                         in_buckets[v].end());
  }

  // Uniformity tables for the geometric-skip samplers: a node whose
  // in-edges all share one probability p gets 1 / log1p(-p) precomputed
  // (the WC scheme makes this every node), so the skip formula is a
  // multiply instead of a divide. Isolated-in nodes count as uniform with
  // p = 0; mixed-weight nodes get the -1 sentinel and fall back to
  // per-edge draws.
  in_uniform_weight_.assign(node_count, 0.0F);
  in_uniform_inv_log1p_.assign(node_count, 0.0);
  for (NodeId v = 0; v < node_count; ++v) {
    const auto& bucket = in_buckets[v];
    if (bucket.empty()) continue;
    const float p = bucket.front().weight;
    bool uniform = true;
    for (const Neighbor& nb : bucket) {
      if (nb.weight != p) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      in_uniform_weight_[v] = p;
      in_uniform_inv_log1p_[v] = 1.0 / std::log1p(-static_cast<double>(p));
    } else {
      in_uniform_weight_[v] = -1.0F;
      in_uniform_inv_log1p_[v] = 1.0;
    }
  }
}

bool Graph::in_weights_uniform(NodeId v) const {
  check_node(v);
  return in_uniform_weight_[v] >= 0.0F;
}

float Graph::in_uniform_weight(NodeId v) const {
  check_node(v);
  return in_uniform_weight_[v];
}

double Graph::in_uniform_inv_log1p(NodeId v) const {
  check_node(v);
  return in_uniform_inv_log1p_[v];
}

std::uint32_t Graph::out_degree(NodeId u) const {
  check_node(u);
  return static_cast<std::uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
}

std::uint32_t Graph::in_degree(NodeId v) const {
  check_node(v);
  return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
}

double Graph::weight(NodeId u, NodeId v) const {
  const auto neighbors = out_neighbors(u);
  const auto it = std::lower_bound(
      neighbors.begin(), neighbors.end(), v,
      [](const Neighbor& nb, NodeId target) { return nb.node < target; });
  if (it != neighbors.end() && it->node == v) {
    return static_cast<double>(it->weight);
  }
  return 0.0;
}

EdgeList Graph::to_edge_list() const {
  EdgeList edges;
  edges.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const Neighbor& nb : out_neighbors(u)) {
      edges.push_back(
          WeightedEdge{u, nb.node, static_cast<double>(nb.weight)});
    }
  }
  return edges;
}

namespace {

/// One canonicalized mutation of a single CSR direction: `owner` is the
/// node whose adjacency range changes, `nb` the neighbor id within it.
/// weight == 0 removes the entry, anything else overwrites-or-inserts.
struct CsrOp {
  NodeId owner = 0;
  NodeId nb = 0;
  float weight = 0.0F;
};

/// Rewrites one CSR direction by merging the (owner, nb)-sorted op list
/// into the sorted per-node ranges — a single O(n + m + |ops|) splice, the
/// same shape as the pool's stitch paths.
void splice_csr(std::vector<EdgeId>& offsets, std::vector<Neighbor>& adjacency,
                const std::vector<CsrOp>& ops) {
  const NodeId n = static_cast<NodeId>(offsets.size() - 1);
  std::vector<Neighbor> merged;
  merged.reserve(adjacency.size() + ops.size());
  std::vector<EdgeId> new_offsets(n + 1, 0);
  std::size_t op = 0;
  for (NodeId v = 0; v < n; ++v) {
    EdgeId i = offsets[v];
    const EdgeId end = offsets[v + 1];
    if (op == ops.size() || ops[op].owner != v) {
      merged.insert(merged.end(), adjacency.begin() + i,
                    adjacency.begin() + end);
    } else {
      while (i < end || (op < ops.size() && ops[op].owner == v)) {
        const bool have_op = op < ops.size() && ops[op].owner == v;
        if (!have_op || (i < end && adjacency[i].node < ops[op].nb)) {
          merged.push_back(adjacency[i++]);
        } else {
          if (i < end && adjacency[i].node == ops[op].nb) ++i;  // replaced
          if (ops[op].weight > 0.0F) {
            merged.push_back(Neighbor{ops[op].nb, ops[op].weight});
          }
          ++op;
        }
      }
    }
    new_offsets[v + 1] = static_cast<EdgeId>(merged.size());
  }
  offsets = std::move(new_offsets);
  adjacency = std::move(merged);
}

}  // namespace

std::vector<NodeId> Graph::apply_edge_updates(
    std::span<const EdgeUpdate> updates) {
  const NodeId n = node_count();
  for (const EdgeUpdate& u : updates) {
    if (u.source >= n || u.target >= n) {
      throw std::invalid_argument("Graph: edge update endpoint out of range");
    }
    if (!(u.weight >= 0.0) || u.weight > 1.0) {
      throw std::invalid_argument("Graph: edge update weight outside [0, 1]");
    }
  }

  // Canonicalize: drop self-loops, keep the LAST update per (source,
  // target), then drop no-ops (removal of an absent edge, overwrite with
  // the weight already stored — float-compared, since that is what the
  // CSR stores and what the samplers consume).
  std::vector<EdgeUpdate> ops(updates.begin(), updates.end());
  std::erase_if(ops, [](const EdgeUpdate& u) { return u.source == u.target; });
  std::stable_sort(ops.begin(), ops.end(),
                   [](const EdgeUpdate& a, const EdgeUpdate& b) {
                     return a.source != b.source ? a.source < b.source
                                                 : a.target < b.target;
                   });
  std::vector<EdgeUpdate> canon;
  canon.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i + 1 < ops.size() && ops[i + 1].source == ops[i].source &&
        ops[i + 1].target == ops[i].target) {
      continue;  // a later update to the same edge supersedes this one
    }
    const float stored = static_cast<float>(weight(ops[i].source,
                                                   ops[i].target));
    const float incoming = static_cast<float>(ops[i].weight);
    if (incoming != stored) canon.push_back(ops[i]);
  }
  if (canon.empty()) return {};

  std::vector<CsrOp> out_ops;
  std::vector<CsrOp> in_ops;
  out_ops.reserve(canon.size());
  in_ops.reserve(canon.size());
  std::vector<NodeId> changed_heads;
  changed_heads.reserve(canon.size());
  for (const EdgeUpdate& u : canon) {
    const float w = static_cast<float>(u.weight);
    out_ops.push_back(CsrOp{u.source, u.target, w});
    in_ops.push_back(CsrOp{u.target, u.source, w});
    changed_heads.push_back(u.target);
  }
  // canon is already (source, target)-sorted == out_ops order.
  std::sort(in_ops.begin(), in_ops.end(), [](const CsrOp& a, const CsrOp& b) {
    return a.owner != b.owner ? a.owner < b.owner : a.nb < b.nb;
  });
  splice_csr(out_offsets_, out_adjacency_, out_ops);
  splice_csr(in_offsets_, in_adjacency_, in_ops);

  std::sort(changed_heads.begin(), changed_heads.end());
  changed_heads.erase(
      std::unique(changed_heads.begin(), changed_heads.end()),
      changed_heads.end());

  // Refresh the geometric-skip tables for the heads whose in-edges moved;
  // everything else is untouched by construction.
  for (const NodeId v : changed_heads) {
    const auto neighbors = in_neighbors(v);
    if (neighbors.empty()) {
      in_uniform_weight_[v] = 0.0F;
      in_uniform_inv_log1p_[v] = 0.0;
      continue;
    }
    const float p = neighbors.front().weight;
    bool uniform = true;
    for (const Neighbor& nb : neighbors) {
      if (nb.weight != p) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      in_uniform_weight_[v] = p;
      in_uniform_inv_log1p_[v] = 1.0 / std::log1p(-static_cast<double>(p));
    } else {
      in_uniform_weight_[v] = -1.0F;
      in_uniform_inv_log1p_[v] = 1.0;
    }
  }
  return changed_heads;
}

Graph::DegreeStats Graph::degree_stats() const {
  DegreeStats stats;
  const NodeId n = node_count();
  if (n == 0) return stats;
  EdgeId total_out = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto dout = out_degree(v);
    const auto din = in_degree(v);
    total_out += dout;
    stats.max_out = std::max(stats.max_out, dout);
    stats.max_in = std::max(stats.max_in, din);
    if (dout == 0 && din == 0) ++stats.isolated;
  }
  stats.mean_out = static_cast<double>(total_out) / static_cast<double>(n);
  return stats;
}

std::string Graph::summary() const {
  std::ostringstream out;
  out << "Graph(n=" << node_count() << ", m=" << edge_count() << ")";
  return out.str();
}

std::uint64_t Graph::fingerprint() const {
  // The out-direction CSR already determines the graph (the in-direction
  // arrays and uniformity tables are derived from it), so digesting
  // offsets + adjacency + weight bits pins the whole structure.
  Fnv1a64 digest;
  digest.add_u64(node_count());
  digest.add_u64(edge_count());
  digest.add_bytes(out_offsets_.data(),
                   out_offsets_.size() * sizeof(EdgeId));
  digest.add_bytes(out_adjacency_.data(),
                   out_adjacency_.size() * sizeof(Neighbor));
  return digest.value();
}

}  // namespace imc
