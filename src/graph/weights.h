// Edge-weighting schemes for the IC model.
//
// The paper's experiments use the standard *weighted cascade* scheme:
// w(u, v) = 1 / indeg(v), so each node is activated by one in-neighbor in
// expectation. We also provide uniform and trivalency schemes which are
// common in the IM literature and useful for ablations.
#pragma once

#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Replaces all weights in-place with 1 / indeg(target) computed on the
/// multigraph as given (parallel edges each count toward the in-degree).
void apply_weighted_cascade(EdgeList& edges, NodeId node_count);

/// Sets every weight to `p`. Precondition: 0 <= p <= 1.
void apply_uniform_weights(EdgeList& edges, double p);

/// Classic trivalency: each weight drawn uniformly from {0.1, 0.01, 0.001}.
void apply_trivalency_weights(EdgeList& edges, Rng& rng);

}  // namespace imc
