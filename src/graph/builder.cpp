#include "graph/builder.h"

#include <algorithm>

#include "graph/weights.h"

namespace imc {

void GraphBuilder::reserve_nodes(NodeId count) {
  node_count_ = std::max(node_count_, count);
}

GraphBuilder& GraphBuilder::add_edge(NodeId source, NodeId target,
                                     double weight) {
  node_count_ = std::max(node_count_, std::max(source, target) + 1);
  edges_.push_back(WeightedEdge{source, target, weight});
  return *this;
}

GraphBuilder& GraphBuilder::add_undirected_edge(NodeId a, NodeId b,
                                                double weight) {
  add_edge(a, b, weight);
  add_edge(b, a, weight);
  return *this;
}

Graph GraphBuilder::build() const { return Graph(node_count_, edges_); }

Graph GraphBuilder::build_weighted_cascade() const {
  EdgeList weighted = edges_;
  apply_weighted_cascade(weighted, node_count_);
  return Graph(node_count_, weighted);
}

}  // namespace imc
