#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace imc {

namespace {

/// Shared BFS over a direction-selectable adjacency.
template <typename NeighborsFn>
std::vector<NodeId> reachable_from(const Graph& graph,
                                   std::span<const NodeId> roots,
                                   NeighborsFn&& neighbors_of) {
  std::vector<bool> seen(graph.node_count(), false);
  std::vector<NodeId> frontier;
  std::vector<NodeId> visited;
  for (const NodeId r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      frontier.push_back(r);
      visited.push_back(r);
    }
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Neighbor& nb : neighbors_of(u)) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        frontier.push_back(nb.node);
        visited.push_back(nb.node);
      }
    }
  }
  std::sort(visited.begin(), visited.end());
  return visited;
}

}  // namespace

std::vector<NodeId> forward_reachable(const Graph& graph,
                                      std::span<const NodeId> sources) {
  return reachable_from(graph, sources,
                        [&](NodeId u) { return graph.out_neighbors(u); });
}

std::vector<NodeId> backward_reachable(const Graph& graph,
                                       std::span<const NodeId> targets) {
  return reachable_from(graph, targets,
                        [&](NodeId u) { return graph.in_neighbors(u); });
}

std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source) {
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (dist[nb.node] == kUnreachable) {
        dist[nb.node] = dist[u] + 1;
        queue.push_back(nb.node);
      }
    }
  }
  return dist;
}

std::vector<std::vector<NodeId>> Components::groups() const {
  std::vector<std::vector<NodeId>> result(count);
  for (NodeId v = 0; v < component_of.size(); ++v) {
    result[component_of[v]].push_back(v);
  }
  return result;
}

Components strongly_connected_components(const Graph& graph) {
  const NodeId n = graph.node_count();
  Components result;
  result.component_of.assign(n, kInvalidCommunity);
  if (n == 0) return result;

  constexpr std::uint32_t kUnvisited = 0xffffffffU;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;

  // Explicit DFS frame: node + position within its neighbor list.
  struct Frame {
    NodeId node;
    std::uint32_t next_neighbor;
  };
  std::vector<Frame> call_stack;
  std::uint32_t next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto neighbors = graph.out_neighbors(frame.node);
      if (frame.next_neighbor < neighbors.size()) {
        const NodeId w = neighbors[frame.next_neighbor++].node;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[w]);
        }
        continue;
      }
      // Post-order: pop frame, fold lowlink into parent, emit SCC if root.
      const NodeId v = frame.node;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        lowlink[call_stack.back().node] =
            std::min(lowlink[call_stack.back().node], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        const CommunityId id = result.count++;
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = id;
        } while (w != v);
      }
    }
  }
  return result;
}

Components weakly_connected_components(const Graph& graph) {
  const NodeId n = graph.node_count();
  Components result;
  result.component_of.assign(n, kInvalidCommunity);
  std::vector<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (result.component_of[root] != kInvalidCommunity) continue;
    const CommunityId id = result.count++;
    result.component_of[root] = id;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId u = frontier.back();
      frontier.pop_back();
      const auto visit = [&](NodeId w) {
        if (result.component_of[w] == kInvalidCommunity) {
          result.component_of[w] = id;
          frontier.push_back(w);
        }
      };
      for (const Neighbor& nb : graph.out_neighbors(u)) visit(nb.node);
      for (const Neighbor& nb : graph.in_neighbors(u)) visit(nb.node);
    }
  }
  return result;
}

}  // namespace imc
