// Classic graph algorithms used as substrates: traversal, reachability,
// strongly/weakly connected components. All iterative (no recursion) so they
// handle million-node graphs without stack growth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// Nodes reachable from `sources` following OUT-edges (ignores weights —
/// structural reachability). Result includes the sources, sorted ascending.
[[nodiscard]] std::vector<NodeId> forward_reachable(
    const Graph& graph, std::span<const NodeId> sources);

/// Nodes that can REACH `targets` following edges forward (i.e. reachable
/// from `targets` along IN-edges). Includes the targets, sorted ascending.
[[nodiscard]] std::vector<NodeId> backward_reachable(
    const Graph& graph, std::span<const NodeId> targets);

/// BFS hop distance from `source` to every node; kUnreachable if unreached.
inline constexpr std::uint32_t kUnreachable = 0xffffffffU;
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& graph,
                                                       NodeId source);

/// Result of a components decomposition.
struct Components {
  std::vector<CommunityId> component_of;  // node -> component id
  std::uint32_t count = 0;

  [[nodiscard]] std::vector<std::vector<NodeId>> groups() const;
};

/// Strongly connected components via iterative Tarjan. Component ids are in
/// reverse topological order of the condensation (Tarjan's natural order).
[[nodiscard]] Components strongly_connected_components(const Graph& graph);

/// Weakly connected components (treat all edges as undirected).
[[nodiscard]] Components weakly_connected_components(const Graph& graph);

}  // namespace imc
