// SNAP-compatible edge-list I/O.
//
// Reads the plain-text format used by the Stanford Network Analysis Project
// datasets the paper evaluates on (one "src<ws>dst[<ws>weight]" pair per
// line, '#' comment lines). Node ids in the file may be arbitrary integers;
// the loader densifies them and returns the id mapping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

struct LoadedEdgeList {
  NodeId node_count = 0;
  EdgeList edges;
  /// original file id -> dense id (only populated when densification ran).
  std::unordered_map<std::uint64_t, NodeId> id_map;
};

struct EdgeListOptions {
  /// Treat each line as an undirected edge (emit both directions).
  bool undirected = false;
  /// Weight for lines without an explicit third column.
  double default_weight = 1.0;
};

/// Parses a SNAP edge list from a stream. Throws std::runtime_error with the
/// offending line number on malformed input.
[[nodiscard]] LoadedEdgeList read_edge_list(std::istream& in,
                                            const EdgeListOptions& options = {});

/// Parses a SNAP edge list file. Throws std::runtime_error if unreadable.
[[nodiscard]] LoadedEdgeList load_edge_list(const std::string& path,
                                            const EdgeListOptions& options = {});

/// Writes "src\tdst\tweight" lines (no comments). Round-trips with the
/// reader when ids are already dense.
void write_edge_list(std::ostream& out, const Graph& graph);

/// Writes an edge-list file; throws std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& graph);

}  // namespace imc
