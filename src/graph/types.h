// Fundamental identifiers shared across the library.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace imc {

/// Node identifier: dense 0-based index into the graph.
using NodeId = std::uint32_t;

/// Edge identifier: dense 0-based index into the CSR edge arrays.
using EdgeId = std::uint64_t;

/// Community identifier: dense 0-based index into a CommunitySet.
using CommunityId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr CommunityId kInvalidCommunity =
    std::numeric_limits<CommunityId>::max();

/// A directed weighted edge as supplied to the builder / loader.
struct WeightedEdge {
  NodeId source = 0;
  NodeId target = 0;
  double weight = 0.0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

using EdgeList = std::vector<WeightedEdge>;

/// One streaming edge mutation (graph/delta.h): weight in (0, 1] upserts
/// the edge (insert or overwrite), weight == 0 removes it. Self-loops are
/// inert, exactly as in the builder.
struct EdgeUpdate {
  NodeId source = 0;
  NodeId target = 0;
  double weight = 0.0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

}  // namespace imc
