// Live-edge (deterministic sample) graphs.
//
// The IC process is distributionally equivalent to: flip every edge once
// (live with probability w(u,v)), then activate everything reachable from
// the seeds through live edges (paper §II-A, "sample graph of G"). Tests use
// this equivalence to validate both the simulator and the RIC sampler.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// A realized deterministic graph: out-adjacency of the surviving edges.
struct LiveEdgeGraph {
  std::vector<std::vector<NodeId>> out;

  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(out.size());
  }
  [[nodiscard]] EdgeId edge_count() const noexcept;

  /// Nodes reachable from `sources` through live edges (sorted, includes
  /// the sources).
  [[nodiscard]] std::vector<NodeId> reachable(
      std::span<const NodeId> sources) const;
};

/// Flips every edge of `graph` independently.
[[nodiscard]] LiveEdgeGraph sample_live_edges(const Graph& graph, Rng& rng);

}  // namespace imc
