#include "diffusion/live_edge.h"

#include <algorithm>

namespace imc {

EdgeId LiveEdgeGraph::edge_count() const noexcept {
  EdgeId total = 0;
  for (const auto& adjacency : out) total += adjacency.size();
  return total;
}

std::vector<NodeId> LiveEdgeGraph::reachable(
    std::span<const NodeId> sources) const {
  std::vector<std::uint8_t> seen(out.size(), 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> visited;
  for (const NodeId s : sources) {
    if (!seen[s]) {
      seen[s] = 1;
      stack.push_back(s);
      visited.push_back(s);
    }
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : out[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
        visited.push_back(v);
      }
    }
  }
  std::sort(visited.begin(), visited.end());
  return visited;
}

LiveEdgeGraph sample_live_edges(const Graph& graph, Rng& rng) {
  LiveEdgeGraph sample;
  sample.out.resize(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (rng.bernoulli(static_cast<double>(nb.weight))) {
        sample.out[u].push_back(nb.node);
      }
    }
  }
  return sample;
}

}  // namespace imc
