#include "diffusion/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"
#include "util/mathx.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imc {

namespace {

/// Runs `simulations` replications; `per_run` maps the active bitmap to a
/// scalar, results are averaged. Each chunk gets an independent RNG stream.
double mc_average(
    const Graph& graph, std::span<const NodeId> seeds,
    const MonteCarloOptions& options,
    const std::function<double(const std::vector<std::uint8_t>&)>& per_run) {
  if (options.simulations == 0) return 0.0;
  const Rng master(options.seed);

  const auto run_chunk = [&](std::uint64_t begin, std::uint64_t end,
                             unsigned chunk_index) -> double {
    Rng rng = master.split(chunk_index);
    std::vector<std::uint8_t> active;
    std::vector<NodeId> frontier;
    KahanSum sum;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (options.model == DiffusionModel::kIndependentCascade) {
        simulate_ic_into(graph, seeds, rng, active, frontier);
      } else {
        const std::vector<NodeId> result = simulate_lt(graph, seeds, rng);
        active.assign(graph.node_count(), 0);
        for (const NodeId v : result) active[v] = 1;
      }
      sum.add(per_run(active));
    }
    return sum.value();
  };

  if (!options.parallel) {
    return run_chunk(0, options.simulations, 0) /
           static_cast<double>(options.simulations);
  }

  std::mutex mutex;
  KahanSum total;
  parallel_for(default_pool(), options.simulations,
               [&](std::uint64_t begin, std::uint64_t end, unsigned chunk) {
                 const double partial = run_chunk(begin, end, chunk);
                 const std::lock_guard<std::mutex> lock(mutex);
                 total.add(partial);
               });
  return total.value() / static_cast<double>(options.simulations);
}

}  // namespace

double mc_expected_spread(const Graph& graph, std::span<const NodeId> seeds,
                          const MonteCarloOptions& options) {
  return mc_average(graph, seeds, options,
                    [](const std::vector<std::uint8_t>& active) {
                      return static_cast<double>(
                          std::count(active.begin(), active.end(), 1));
                    });
}

double mc_expected_benefit(const Graph& graph,
                           const CommunitySet& communities,
                           std::span<const NodeId> seeds,
                           const MonteCarloOptions& options) {
  return mc_average(
      graph, seeds, options, [&](const std::vector<std::uint8_t>& active) {
        double benefit = 0.0;
        for (CommunityId c = 0; c < communities.size(); ++c) {
          std::uint32_t hit = 0;
          for (const NodeId v : communities.members(c)) hit += active[v];
          if (hit >= communities.threshold(c)) {
            benefit += communities.benefit(c);
          }
        }
        return benefit;
      });
}

double mc_expected_nu(const Graph& graph, const CommunitySet& communities,
                      std::span<const NodeId> seeds,
                      const MonteCarloOptions& options) {
  return mc_average(
      graph, seeds, options, [&](const std::vector<std::uint8_t>& active) {
        double value = 0.0;
        for (CommunityId c = 0; c < communities.size(); ++c) {
          std::uint32_t hit = 0;
          for (const NodeId v : communities.members(c)) hit += active[v];
          const double fraction =
              std::min(1.0, static_cast<double>(hit) /
                                static_cast<double>(communities.threshold(c)));
          value += communities.benefit(c) * fraction;
        }
        return value;
      });
}

}  // namespace imc
