#include "diffusion/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"
#include "util/mathx.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imc {

namespace {

/// Runs `simulations` replications; `per_run` maps the active bitmap to a
/// scalar, results are averaged. Each chunk gets an independent RNG stream.
double mc_average(
    const Graph& graph, std::span<const NodeId> seeds,
    const MonteCarloOptions& options,
    const std::function<double(const std::vector<std::uint8_t>&)>& per_run) {
  if (options.info != nullptr) *options.info = McRunInfo{};
  if (options.simulations == 0) return 0.0;
  const Rng master(options.seed);

  // One poll per replication: a full cascade dwarfs the check. With no
  // deadline/cancel attached this is a pair of null tests — completed ==
  // simulations and the division below matches pre-truncation builds
  // exactly.
  const auto stopped = [&]() -> bool {
    return (options.deadline != nullptr && options.deadline->expired()) ||
           (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed));
  };

  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> truncated{false};
  const auto run_chunk = [&](std::uint64_t begin, std::uint64_t end,
                             unsigned chunk_index) -> double {
    Rng rng = master.split(chunk_index);
    std::vector<std::uint8_t> active;
    std::vector<NodeId> frontier;
    KahanSum sum;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (stopped()) {
        truncated.store(true, std::memory_order_relaxed);
        break;
      }
      if (options.model == DiffusionModel::kIndependentCascade) {
        simulate_ic_into(graph, seeds, rng, active, frontier);
      } else {
        const std::vector<NodeId> result = simulate_lt(graph, seeds, rng);
        active.assign(graph.node_count(), 0);
        for (const NodeId v : result) active[v] = 1;
      }
      sum.add(per_run(active));
      completed.fetch_add(1, std::memory_order_relaxed);
    }
    return sum.value();
  };

  double total_value = 0.0;
  if (!options.parallel) {
    total_value = run_chunk(0, options.simulations, 0);
  } else {
    std::mutex mutex;
    KahanSum total;
    parallel_for(default_pool(), options.simulations,
                 [&](std::uint64_t begin, std::uint64_t end, unsigned chunk) {
                   const double partial = run_chunk(begin, end, chunk);
                   const std::lock_guard<std::mutex> lock(mutex);
                   total.add(partial);
                 });
    total_value = total.value();
  }

  const std::uint64_t runs = completed.load(std::memory_order_relaxed);
  if (options.info != nullptr) {
    options.info->completed = runs;
    options.info->truncated = truncated.load(std::memory_order_relaxed);
  }
  // Average over what actually ran, so a truncated call still reports an
  // unbiased (if noisier) estimate instead of a deflated one.
  return runs == 0 ? 0.0 : total_value / static_cast<double>(runs);
}

}  // namespace

double mc_expected_spread(const Graph& graph, std::span<const NodeId> seeds,
                          const MonteCarloOptions& options) {
  return mc_average(graph, seeds, options,
                    [](const std::vector<std::uint8_t>& active) {
                      return static_cast<double>(
                          std::count(active.begin(), active.end(), 1));
                    });
}

double mc_expected_benefit(const Graph& graph,
                           const CommunitySet& communities,
                           std::span<const NodeId> seeds,
                           const MonteCarloOptions& options) {
  return mc_average(
      graph, seeds, options, [&](const std::vector<std::uint8_t>& active) {
        double benefit = 0.0;
        for (CommunityId c = 0; c < communities.size(); ++c) {
          std::uint32_t hit = 0;
          for (const NodeId v : communities.members(c)) hit += active[v];
          if (hit >= communities.threshold(c)) {
            benefit += communities.benefit(c);
          }
        }
        return benefit;
      });
}

double mc_expected_nu(const Graph& graph, const CommunitySet& communities,
                      std::span<const NodeId> seeds,
                      const MonteCarloOptions& options) {
  return mc_average(
      graph, seeds, options, [&](const std::vector<std::uint8_t>& active) {
        double value = 0.0;
        for (CommunityId c = 0; c < communities.size(); ++c) {
          std::uint32_t hit = 0;
          for (const NodeId v : communities.members(c)) hit += active[v];
          const double fraction =
              std::min(1.0, static_cast<double>(hit) /
                                static_cast<double>(communities.threshold(c)));
          value += communities.benefit(c) * fraction;
        }
        return value;
      });
}

}  // namespace imc
