#include "diffusion/lt_model.h"

#include <algorithm>
#include <stdexcept>

namespace imc {

bool lt_weights_valid(const Graph& graph) {
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    double total = 0.0;
    for (const Neighbor& nb : graph.in_neighbors(v)) {
      total += static_cast<double>(nb.weight);
    }
    // Edge weights are stored as float; allow float-level rounding slack
    // (weighted cascade sums to exactly 1 in real arithmetic).
    if (total > 1.0 + 1e-5) return false;
  }
  return true;
}

std::vector<NodeId> simulate_lt(const Graph& graph,
                                std::span<const NodeId> seeds, Rng& rng) {
  const NodeId n = graph.node_count();
  if (!lt_weights_valid(graph)) {
    throw std::invalid_argument(
        "simulate_lt: incoming weights must sum to <= 1 per node");
  }
  std::vector<std::uint8_t> active(n, 0);
  std::vector<double> incoming(n, 0.0);   // active in-weight accumulated
  std::vector<double> threshold(n, 2.0);  // lazily drawn on first touch
  std::vector<NodeId> frontier;

  const auto activate = [&](NodeId v) {
    active[v] = 1;
    frontier.push_back(v);
  };
  for (const NodeId s : seeds) {
    if (s >= n) throw std::out_of_range("simulate_lt: seed out of range");
    if (!active[s]) activate(s);
  }

  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      const NodeId v = nb.node;
      if (active[v]) continue;
      if (threshold[v] > 1.0) threshold[v] = rng.uniform();
      incoming[v] += static_cast<double>(nb.weight);
      if (incoming[v] >= threshold[v]) activate(v);
    }
  }

  std::vector<NodeId> result;
  for (NodeId v = 0; v < n; ++v) {
    if (active[v]) result.push_back(v);
  }
  return result;
}

}  // namespace imc
