// Independent Cascade forward simulation (Kempe–Kleinberg–Tardos), the
// paper's diffusion model (§II-A): seeds are active at round 0; each newly
// active u gets one chance to activate each inactive out-neighbor v with
// probability w(u, v); active nodes stay active.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// One IC realization. Returns the final active set as a sorted node list.
/// Duplicate seeds are tolerated; out-of-range seeds throw.
[[nodiscard]] std::vector<NodeId> simulate_ic(const Graph& graph,
                                              std::span<const NodeId> seeds,
                                              Rng& rng);

/// Same cascade, but writes into a caller-provided active bitmap (resized
/// and cleared internally) and returns the number of active nodes — avoids
/// allocation churn in tight Monte-Carlo loops.
std::size_t simulate_ic_into(const Graph& graph, std::span<const NodeId> seeds,
                             Rng& rng, std::vector<std::uint8_t>& active,
                             std::vector<NodeId>& frontier_scratch);

}  // namespace imc
