#include "diffusion/ic_model.h"

#include <algorithm>
#include <stdexcept>

namespace imc {

std::size_t simulate_ic_into(const Graph& graph, std::span<const NodeId> seeds,
                             Rng& rng, std::vector<std::uint8_t>& active,
                             std::vector<NodeId>& frontier_scratch) {
  const NodeId n = graph.node_count();
  active.assign(n, 0);
  frontier_scratch.clear();
  std::size_t active_count = 0;
  for (const NodeId s : seeds) {
    if (s >= n) throw std::out_of_range("simulate_ic: seed out of range");
    if (!active[s]) {
      active[s] = 1;
      frontier_scratch.push_back(s);
      ++active_count;
    }
  }
  // Order within the frontier does not affect the final active set under IC
  // (each edge is tried at most once), so a LIFO stack is fine.
  while (!frontier_scratch.empty()) {
    const NodeId u = frontier_scratch.back();
    frontier_scratch.pop_back();
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (!active[nb.node] &&
          rng.bernoulli(static_cast<double>(nb.weight))) {
        active[nb.node] = 1;
        frontier_scratch.push_back(nb.node);
        ++active_count;
      }
    }
  }
  return active_count;
}

std::vector<NodeId> simulate_ic(const Graph& graph,
                                std::span<const NodeId> seeds, Rng& rng) {
  std::vector<std::uint8_t> active;
  std::vector<NodeId> frontier;
  simulate_ic_into(graph, seeds, rng, active, frontier);
  std::vector<NodeId> result;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (active[v]) result.push_back(v);
  }
  return result;
}

}  // namespace imc
