// Linear Threshold forward simulation. The paper notes (§II-A) that all of
// its machinery extends from IC to LT; we provide the simulator so the
// library supports both models end-to-end.
//
// Each node v draws a threshold θ_v ~ U[0,1] per realization and activates
// once the summed weight of its active in-neighbors reaches θ_v. For LT to
// be a proper distribution the incoming weights of every node must sum to
// at most 1 — the weighted-cascade scheme (1/indeg) satisfies this exactly.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// One LT realization; returns the final active set, sorted.
/// Throws std::invalid_argument if some node's in-weights sum to > 1 (up
/// to float-precision slack; weights are stored as float).
[[nodiscard]] std::vector<NodeId> simulate_lt(const Graph& graph,
                                              std::span<const NodeId> seeds,
                                              Rng& rng);

/// Validates the LT weight precondition (Σ_in w <= 1 per node).
[[nodiscard]] bool lt_weights_valid(const Graph& graph);

}  // namespace imc
