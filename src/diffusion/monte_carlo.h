// Monte-Carlo estimators over forward simulations. These are the slow but
// unbiased ground truth against which the RIC-based estimators are tested,
// and they implement the paper's final-evaluation step for baseline seeds.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/stopwatch.h"

namespace imc {

enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

/// Outcome report for one mc_* call (see MonteCarloOptions::info).
struct McRunInfo {
  std::uint64_t completed = 0;  // replications actually simulated
  bool truncated = false;       // deadline/cancel fired before all ran
};

struct MonteCarloOptions {
  std::uint64_t seed = 7;
  std::uint32_t simulations = 1000;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  bool parallel = true;  // spread replications across default_pool()
  /// Optional wall-clock budget (borrowed): replication loops poll it
  /// before every simulation and stop early, averaging over the
  /// replications that completed. Null = run all `simulations`.
  const Deadline* deadline = nullptr;
  /// Optional cooperative cancellation flag (borrowed); same effect as an
  /// expired deadline.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional out-param filled with what actually ran. With no deadline or
  /// cancellation the estimate is bit-identical to pre-truncation builds
  /// (all replications complete, same division).
  McRunInfo* info = nullptr;
};

/// Expected influence spread E[|active|] of the seed set.
[[nodiscard]] double mc_expected_spread(const Graph& graph,
                                        std::span<const NodeId> seeds,
                                        const MonteCarloOptions& options = {});

/// Expected benefit of influenced communities, c(S) of the paper
/// (a community counts iff |active ∩ C_i| >= h_i; contributes b_i).
[[nodiscard]] double mc_expected_benefit(const Graph& graph,
                                         const CommunitySet& communities,
                                         std::span<const NodeId> seeds,
                                         const MonteCarloOptions& options = {});

/// Expected value of the fractional upper-bound objective ν(S) of the paper
/// (eq. 6): E[ Σ_i b_i · min(|active ∩ C_i| / h_i, 1) ].
[[nodiscard]] double mc_expected_nu(const Graph& graph,
                                    const CommunitySet& communities,
                                    std::span<const NodeId> seeds,
                                    const MonteCarloOptions& options = {});

}  // namespace imc
