// Monte-Carlo estimators over forward simulations. These are the slow but
// unbiased ground truth against which the RIC-based estimators are tested,
// and they implement the paper's final-evaluation step for baseline seeds.
#pragma once

#include <cstdint>
#include <span>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

struct MonteCarloOptions {
  std::uint64_t seed = 7;
  std::uint32_t simulations = 1000;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  bool parallel = true;  // spread replications across default_pool()
};

/// Expected influence spread E[|active|] of the seed set.
[[nodiscard]] double mc_expected_spread(const Graph& graph,
                                        std::span<const NodeId> seeds,
                                        const MonteCarloOptions& options = {});

/// Expected benefit of influenced communities, c(S) of the paper
/// (a community counts iff |active ∩ C_i| >= h_i; contributes b_i).
[[nodiscard]] double mc_expected_benefit(const Graph& graph,
                                         const CommunitySet& communities,
                                         std::span<const NodeId> seeds,
                                         const MonteCarloOptions& options = {});

/// Expected value of the fractional upper-bound objective ν(S) of the paper
/// (eq. 6): E[ Σ_i b_i · min(|active ∩ C_i| / h_i, 1) ].
[[nodiscard]] double mc_expected_nu(const Graph& graph,
                                    const CommunitySet& communities,
                                    std::span<const NodeId> seeds,
                                    const MonteCarloOptions& options = {});

}  // namespace imc
