// Umbrella header: the full public API of the imc library.
//
//   #include <imc/imc.h>
//
// Quickstart (see examples/quickstart.cpp for the runnable version):
//
//   imc::Graph graph = imc::make_dataset(imc::DatasetId::kFacebook);
//   imc::CommunitySet com = imc::build_communities(graph, {});
//   imc::UbgSolver solver;
//   imc::ImcafResult result = imc::imcaf_solve(graph, com, /*k=*/10, solver);
//
#pragma once

// util
#include "util/cli.h"
#include "util/context.h"
#include "util/logging.h"
#include "util/mathx.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

// graph substrate
#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/edgelist_io.h"
#include "graph/generators/dataset_catalog.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/types.h"
#include "graph/weights.h"

// communities
#include "community/community_io.h"
#include "community/community_set.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/metrics.h"
#include "community/modularity.h"
#include "community/random_partition.h"
#include "community/size_cap.h"
#include "community/threshold_policy.h"

// diffusion
#include "diffusion/ic_model.h"
#include "diffusion/live_edge.h"
#include "diffusion/lt_model.h"
#include "diffusion/monte_carlo.h"

// sampling
#include "sampling/pool_io.h"
#include "sampling/pool_snapshot.h"
#include "sampling/ric_pool.h"
#include "sampling/ric_sample.h"
#include "sampling/rr_set.h"

// estimation
#include "estimation/benefit_oracle.h"
#include "estimation/concentration.h"
#include "estimation/dagum.h"
#include "estimation/dklr_aa.h"

// core algorithms
#include "core/baselines/centrality.h"
#include "core/baselines/hbc.h"
#include "core/baselines/im_ris.h"
#include "core/baselines/imm.h"
#include "core/baselines/ks.h"
#include "core/baselines/simple.h"
#include "core/brute_force.h"
#include "core/bt.h"
#include "core/engine.h"
#include "core/greedy.h"
#include "core/imcaf.h"
#include "core/maf.h"
#include "core/maxr_solver.h"
#include "core/mb.h"
#include "core/objective.h"
#include "core/problem.h"
#include "core/reductions.h"
#include "core/ubg.h"
