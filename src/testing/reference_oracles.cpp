#include "testing/reference_oracles.h"

#include <algorithm>
#include <stdexcept>

namespace imc::testing {

namespace {

/// Live out-adjacency realized for one sample: live[u] lists heads v with
/// a realized edge u -> v.
using LiveEdges = std::vector<std::vector<NodeId>>;

/// Realizes the WHOLE graph's live-edge sample (not just the backward
/// region the optimized sampler restricts itself to — unrealized edges
/// outside the region never influence the touching set, so the
/// distributions coincide while the implementations share nothing).
LiveEdges realize_live_edges(const Graph& graph, DiffusionModel model,
                             Rng& rng) {
  LiveEdges live(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (model == DiffusionModel::kIndependentCascade) {
      for (const Neighbor& nb : graph.in_neighbors(v)) {
        if (rng.bernoulli(static_cast<double>(nb.weight))) {
          live[nb.node].push_back(v);
        }
      }
    } else {
      // LT: each node keeps at most one live in-edge, picked with
      // probability equal to its weight.
      double x = rng.uniform();
      for (const Neighbor& nb : graph.in_neighbors(v)) {
        x -= static_cast<double>(nb.weight);
        if (x < 0.0) {
          live[nb.node].push_back(v);
          break;
        }
      }
    }
  }
  return live;
}

/// Nodes forward-reachable from `start` over the live edges (iterative
/// DFS; includes `start`).
void forward_reach(const LiveEdges& live, NodeId start,
                   std::vector<std::uint8_t>& seen,
                   std::vector<NodeId>& stack) {
  std::fill(seen.begin(), seen.end(), 0);
  stack.clear();
  stack.push_back(start);
  seen[start] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : live[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
}

}  // namespace

RicSample naive_ric_sample(const Graph& graph,
                           const CommunitySet& communities,
                           DiffusionModel model, CommunityId community,
                           Rng& rng) {
  const auto members = communities.members(community);
  if (members.size() > kMaxCommunityPopulation) {
    throw std::invalid_argument("naive_ric_sample: community too large");
  }
  RicSample sample;
  sample.community = community;
  sample.threshold = communities.threshold(community);
  sample.member_count = static_cast<std::uint32_t>(members.size());

  const LiveEdges live = realize_live_edges(graph, model, rng);

  // One forward DFS per node: bit j set iff the node reaches members[j].
  std::vector<std::uint8_t> seen(graph.node_count(), 0);
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    forward_reach(live, v, seen, stack);
    std::uint64_t mask = 0;
    for (std::uint32_t j = 0; j < members.size(); ++j) {
      if (seen[members[j]]) mask |= 1ULL << j;
    }
    if (mask != 0) sample.touching.emplace_back(v, mask);
  }
  return sample;  // touching is sorted by node id by construction
}

RicSample naive_ric_sample(const Graph& graph,
                           const CommunitySet& communities,
                           DiffusionModel model, Rng& rng) {
  // Plain CDF scan over benefits (the alias-table-free rho draw).
  const auto benefits = communities.benefits();
  double total = 0.0;
  for (const double b : benefits) total += b;
  double x = rng.uniform() * total;
  CommunityId community = 0;
  for (CommunityId c = 0; c < communities.size(); ++c) {
    x -= benefits[c];
    if (x < 0.0) {
      community = c;
      break;
    }
    if (c + 1 == communities.size()) community = c;  // rounding tail
  }
  return naive_ric_sample(graph, communities, model, community, rng);
}

ReferencePool::ReferencePool(const Graph& graph,
                             const CommunitySet& communities)
    : graph_(&graph),
      communities_(&communities),
      total_benefit_(communities.total_benefit()),
      index_(graph.node_count()) {}

void ReferencePool::add(RicSample sample) {
  const auto id = static_cast<std::uint32_t>(samples_.size());
  for (const auto& [node, mask] : sample.touching) {
    index_.at(node).push_back(Touch{id, sample.threshold, mask});
  }
  samples_.push_back(std::move(sample));
}

std::uint32_t ReferencePool::community_frequency(CommunityId c) const {
  std::uint32_t count = 0;
  for (const RicSample& sample : samples_) {
    if (sample.community == c) ++count;
  }
  return count;
}

std::uint32_t ReferencePool::members_reached(std::span<const NodeId> seeds,
                                             std::uint32_t g) const {
  return samples_[g].members_reached(seeds);
}

std::uint64_t ReferencePool::influenced_count(
    std::span<const NodeId> seeds) const {
  std::uint64_t influenced = 0;
  for (std::uint32_t g = 0; g < samples_.size(); ++g) {
    if (members_reached(seeds, g) >= samples_[g].threshold) ++influenced;
  }
  return influenced;
}

double ReferencePool::c_hat(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  return total_benefit_ * static_cast<double>(influenced_count(seeds)) /
         static_cast<double>(samples_.size());
}

double ReferencePool::nu_sum(std::span<const NodeId> seeds) const {
  double sum = 0.0;
  for (std::uint32_t g = 0; g < samples_.size(); ++g) {
    const double fraction = static_cast<double>(members_reached(seeds, g)) /
                            static_cast<double>(samples_[g].threshold);
    sum += std::min(fraction, 1.0);
  }
  return sum;
}

double ReferencePool::nu(std::span<const NodeId> seeds) const {
  if (samples_.empty()) return 0.0;
  return total_benefit_ * nu_sum(seeds) /
         static_cast<double>(samples_.size());
}

std::uint64_t ReferencePool::marginal_influenced(
    std::span<const NodeId> seeds, NodeId v) const {
  for (const NodeId s : seeds) {
    if (s == v) return 0;
  }
  std::vector<NodeId> with(seeds.begin(), seeds.end());
  with.push_back(v);
  std::uint64_t gain = 0;
  for (std::uint32_t g = 0; g < samples_.size(); ++g) {
    const std::uint32_t h = samples_[g].threshold;
    if (members_reached(seeds, g) < h && members_reached(with, g) >= h) {
      ++gain;
    }
  }
  return gain;
}

double ReferencePool::marginal_nu(std::span<const NodeId> seeds,
                                  NodeId v) const {
  for (const NodeId s : seeds) {
    if (s == v) return 0.0;
  }
  // Accumulate over v's touches in ascending sample id with the exact
  // per-sample delta the optimized sweep adds, so ties resolve the same.
  double gain = 0.0;
  for (const Touch& touch : index_.at(v)) {
    const RicSample& sample = samples_[touch.sample];
    std::uint64_t covered = 0;
    for (const NodeId s : seeds) covered |= sample.mask_of(s);
    const auto before =
        static_cast<std::uint32_t>(__builtin_popcountll(covered));
    const std::uint32_t h = sample.threshold;
    if (before >= h) continue;  // saturated: exactly 0
    const std::uint64_t after = covered | touch.mask;
    if (after == covered) continue;
    const auto count = static_cast<std::uint32_t>(__builtin_popcountll(after));
    const double before_frac =
        std::min(static_cast<double>(before) / static_cast<double>(h), 1.0);
    const double after_frac =
        std::min(static_cast<double>(count) / static_cast<double>(h), 1.0);
    gain += after_frac - before_frac;
  }
  return gain;
}

namespace {

struct RefScore {
  NodeId node = kInvalidNode;
  std::uint64_t influenced_gain = 0;
  double nu_gain = 0.0;
  std::uint32_t appearance = 0;
};

/// The documented ĉ tie-break: influenced gain, ν gain, appearance count,
/// smaller node id (greedy.h).
bool ref_beats_c_hat(const RefScore& a, const RefScore& b) {
  if (b.node == kInvalidNode) return a.node != kInvalidNode;
  if (a.node == kInvalidNode) return false;
  if (a.influenced_gain != b.influenced_gain) {
    return a.influenced_gain > b.influenced_gain;
  }
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  if (a.appearance != b.appearance) return a.appearance > b.appearance;
  return a.node < b.node;
}

bool ref_beats_nu(const RefScore& a, const RefScore& b) {
  if (b.node == kInvalidNode) return a.node != kInvalidNode;
  if (a.node == kInvalidNode) return false;
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  return a.node < b.node;
}

std::vector<NodeId> candidate_nodes(const ReferencePool& pool) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    if (pool.appearance_count(v) > 0) candidates.push_back(v);
  }
  return candidates;
}

void fill_to_k(const ReferencePool& pool, std::uint32_t k,
               std::vector<NodeId>& seeds) {
  std::vector<std::uint8_t> used(pool.graph().node_count(), 0);
  for (const NodeId v : seeds) used[v] = 1;
  for (NodeId v = 0; v < pool.graph().node_count() && seeds.size() < k;
       ++v) {
    if (!used[v]) seeds.push_back(v);
  }
}

std::vector<NodeId> reference_greedy(const ReferencePool& pool,
                                     std::uint32_t k, bool on_c_hat) {
  if (k == 0 || k > pool.graph().node_count()) {
    throw std::invalid_argument(
        "reference_greedy: need 1 <= k <= node count");
  }
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  std::vector<NodeId> seeds;
  std::vector<std::uint8_t> is_seed(pool.graph().node_count(), 0);
  for (std::uint32_t round = 0;
       round < k && seeds.size() < candidates.size(); ++round) {
    RefScore best;
    for (const NodeId v : candidates) {
      if (is_seed[v]) continue;
      RefScore score;
      score.node = v;
      score.influenced_gain =
          on_c_hat ? pool.marginal_influenced(seeds, v) : 0;
      score.nu_gain = pool.marginal_nu(seeds, v);
      score.appearance = pool.appearance_count(v);
      if (on_c_hat ? ref_beats_c_hat(score, best)
                   : ref_beats_nu(score, best)) {
        best = score;
      }
    }
    if (best.node == kInvalidNode) break;
    seeds.push_back(best.node);
    is_seed[best.node] = 1;
  }
  fill_to_k(pool, k, seeds);
  return seeds;
}

}  // namespace

std::vector<NodeId> reference_greedy_c_hat(const ReferencePool& pool,
                                           std::uint32_t k) {
  return reference_greedy(pool, k, /*on_c_hat=*/true);
}

std::vector<NodeId> reference_greedy_nu(const ReferencePool& pool,
                                        std::uint32_t k) {
  return reference_greedy(pool, k, /*on_c_hat=*/false);
}

namespace {

/// Evaluates both objectives for one fully determined live-edge outcome.
void accumulate_outcome(const Graph& graph, const CommunitySet& communities,
                        std::span<const NodeId> seeds, const LiveEdges& live,
                        double probability, ExactObjectives& totals) {
  // Forward BFS from the seed set over the live edges.
  std::vector<std::uint8_t> active(graph.node_count(), 0);
  std::vector<NodeId> queue;
  for (const NodeId s : seeds) {
    if (!active[s]) {
      active[s] = 1;
      queue.push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId v : live[queue[head]]) {
      if (!active[v]) {
        active[v] = 1;
        queue.push_back(v);
      }
    }
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    std::uint32_t reached = 0;
    for (const NodeId member : communities.members(c)) {
      reached += active[member];
    }
    const std::uint32_t h = communities.threshold(c);
    const double b = communities.benefit(c);
    if (reached >= h) totals.c += probability * b;
    totals.nu +=
        probability * b *
        std::min(static_cast<double>(reached) / static_cast<double>(h), 1.0);
  }
}

}  // namespace

std::optional<ExactObjectives> enumerate_exact(
    const Graph& graph, const CommunitySet& communities,
    std::span<const NodeId> seeds, DiffusionModel model,
    std::uint64_t max_outcomes) {
  ExactObjectives totals;
  if (model == DiffusionModel::kIndependentCascade) {
    const EdgeList edges = graph.to_edge_list();  // merged, self-loop-free
    if (edges.size() >= 63 ||
        (1ULL << edges.size()) > max_outcomes) {
      return std::nullopt;
    }
    const std::uint64_t outcomes = 1ULL << edges.size();
    for (std::uint64_t outcome = 0; outcome < outcomes; ++outcome) {
      double probability = 1.0;
      LiveEdges live(graph.node_count());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if ((outcome >> e) & 1ULL) {
          probability *= edges[e].weight;
          live[edges[e].source].push_back(edges[e].target);
        } else {
          probability *= 1.0 - edges[e].weight;
        }
      }
      if (probability == 0.0) continue;
      accumulate_outcome(graph, communities, seeds, live, probability,
                         totals);
    }
    return totals;
  }

  // LT: each node independently keeps one live in-edge (or none); the
  // outcome space is the mixed-radix product of per-node choices. The
  // per-choice probability must mirror the samplers' CDF walk (one uniform
  // u in [0, 1), subtract weights until u goes negative): when the CSR's
  // FLOAT weights sum to slightly more than 1 the walk silently truncates
  // the tail, so choice i gets min(prefix_{i+1}, 1) - min(prefix_i, 1),
  // not its raw weight — otherwise the "exact" mass exceeds 1 and the
  // oracle flags correct samplers.
  std::uint64_t outcomes = 1;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const std::uint64_t radix = graph.in_neighbors(v).size() + 1;
    if (outcomes > max_outcomes / radix) return std::nullopt;
    outcomes *= radix;
  }
  const auto choice_probability = [&graph](NodeId v, std::uint32_t choice) {
    const auto in = graph.in_neighbors(v);
    double prefix = 0.0;
    for (std::uint32_t i = 0; i + 1 < choice; ++i) {
      prefix += static_cast<double>(in[i].weight);
    }
    if (choice == 0) {  // no live in-edge
      for (const Neighbor& nb : in) prefix += static_cast<double>(nb.weight);
      return 1.0 - std::min(prefix, 1.0);
    }
    const double next = prefix + static_cast<double>(in[choice - 1].weight);
    return std::min(next, 1.0) - std::min(prefix, 1.0);
  };
  std::vector<std::uint32_t> choice(graph.node_count(), 0);  // 0 = none
  for (std::uint64_t outcome = 0; outcome < outcomes; ++outcome) {
    double probability = 1.0;
    LiveEdges live(graph.node_count());
    for (NodeId v = 0; v < graph.node_count() && probability > 0.0; ++v) {
      probability *= choice_probability(v, choice[v]);
      if (choice[v] != 0) {
        live[graph.in_neighbors(v)[choice[v] - 1].node].push_back(v);
      }
    }
    if (probability > 0.0) {
      accumulate_outcome(graph, communities, seeds, live, probability,
                         totals);
    }
    // Increment the mixed-radix counter.
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      if (++choice[v] <= graph.in_neighbors(v).size()) break;
      choice[v] = 0;
    }
  }
  return totals;
}

}  // namespace imc::testing
