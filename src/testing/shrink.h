// Greedy instance shrinking for the differential fuzz harness.
//
// When a differential check fails on a random instance, the raw
// counterexample is usually a 40-node graph with dozens of edges — too big
// to debug by staring. `shrink_instance` repeatedly applies structural
// reductions (halve the edge list, drop a community, drop a node and remap
// ids, drop single edges) and keeps any reduction on which the check STILL
// fails, until no reduction helps or the evaluation budget runs out. The
// result is typically a handful of nodes.
//
// `repro_snippet` prints a spec as a self-contained C++ fragment (explicit
// edge list, member lists, thresholds, benefits, model, case seed) so a
// failure can be replayed in a scratch test without the harness.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "testing/instance_gen.h"

namespace imc::testing {

/// Returns true when the instance FAILS the property under test (i.e. the
/// bug reproduces). Receives the case seed so checks can re-derive their
/// sample streams deterministically. Must be a pure function of
/// (spec, seed): the shrinker calls it on many candidate reductions.
using FailurePredicate =
    std::function<bool(const InstanceSpec&, std::uint64_t seed)>;

struct ShrinkResult {
  InstanceSpec spec;               // smallest failing spec found
  std::uint32_t evaluations = 0;   // predicate calls spent
  std::uint32_t reductions = 0;    // accepted shrink steps
};

/// Greedily shrinks `spec` while `fails(spec, seed)` stays true. The input
/// spec must itself fail. At most `max_evaluations` predicate calls are
/// spent; candidate reductions that leave the spec structurally invalid
/// (InstanceSpec::valid) are discarded without charging the budget.
[[nodiscard]] ShrinkResult shrink_instance(const InstanceSpec& spec,
                                           const FailurePredicate& fails,
                                           std::uint64_t seed,
                                           std::uint32_t max_evaluations = 600);

/// Self-contained C++ snippet reconstructing the instance: paste into a
/// test, no harness required.
[[nodiscard]] std::string repro_snippet(const InstanceSpec& spec,
                                        std::uint64_t seed,
                                        const std::string& check_name);

}  // namespace imc::testing
