#include "testing/instance_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_sample.h"

namespace imc::testing {

namespace {

/// Per-target sum of in-edge weights on the raw edge list (parallel edges
/// each count, matching the lt_weights_valid check after the noisy-or
/// merge only approximately — we keep raw sums <= 1, which implies the
/// merged sums are too, since noisy-or never exceeds the plain sum).
std::vector<double> in_weight_sums(const InstanceSpec& spec) {
  std::vector<double> sums(spec.node_count, 0.0);
  for (const WeightedEdge& e : spec.edges) {
    if (e.target < spec.node_count && e.source != e.target) {
      sums[e.target] += e.weight;
    }
  }
  return sums;
}

}  // namespace

bool InstanceSpec::valid() const {
  if (node_count == 0) return false;
  if (groups.empty()) return false;
  if (groups.size() != thresholds.size() || groups.size() != benefits.size()) {
    return false;
  }
  std::vector<std::uint8_t> claimed(node_count, 0);
  double total_benefit = 0.0;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto& members = groups[c];
    if (members.empty() || members.size() > kMaxCommunityPopulation) {
      return false;
    }
    for (const NodeId v : members) {
      if (v >= node_count || claimed[v]) return false;
      claimed[v] = 1;
    }
    if (thresholds[c] == 0 || thresholds[c] > members.size()) return false;
    if (!(benefits[c] >= 0.0)) return false;
    total_benefit += benefits[c];
  }
  if (!(total_benefit > 0.0)) return false;  // rho distribution needs mass
  for (const WeightedEdge& e : edges) {
    if (e.source >= node_count || e.target >= node_count) return false;
    if (!(e.weight >= 0.0) || !(e.weight <= 1.0)) return false;
  }
  if (model == DiffusionModel::kLinearThreshold) {
    for (const double sum : in_weight_sums(*this)) {
      if (sum > 1.0 + 1e-12) return false;
    }
  }
  return true;
}

Graph InstanceSpec::build_graph() const {
  return Graph(node_count, edges);
}

CommunitySet InstanceSpec::build_communities() const {
  CommunitySet communities(node_count, groups);
  for (CommunityId c = 0; c < communities.size(); ++c) {
    communities.set_threshold(c, thresholds[c]);
    communities.set_benefit(c, benefits[c]);
  }
  return communities;
}

std::string InstanceSpec::summary() const {
  std::ostringstream out;
  out << topology << " n=" << node_count << " m=" << edges.size()
      << " r=" << groups.size()
      << (model == DiffusionModel::kLinearThreshold ? " lt" : " ic");
  return out.str();
}

namespace {

EdgeList random_topology(const InstanceDistribution& dist, NodeId n, Rng& rng,
                         std::string& label) {
  const double total =
      dist.p_erdos_renyi + dist.p_planted_partition + dist.p_power_law;
  const double pick = rng.uniform() * (total > 0.0 ? total : 1.0);
  if (pick < dist.p_erdos_renyi || total <= 0.0) {
    label = "er";
    // Expected out-degree between ~1 and ~4, denser on tiny graphs so they
    // are not all edgeless.
    const double p =
        std::min(1.0, rng.uniform(1.0, 4.0) / std::max<NodeId>(1, n - 1));
    return erdos_renyi_edges(n, p, rng);
  }
  if (pick < dist.p_erdos_renyi + dist.p_planted_partition) {
    label = "sbm";
    SbmConfig config;
    config.nodes = n;
    config.blocks = static_cast<std::uint32_t>(
        rng.between(2, std::max<std::int64_t>(2, n / 4)));
    config.p_in = rng.uniform(0.1, 0.5);
    config.p_out = rng.uniform(0.0, 0.05);
    return sbm_edges(config, rng);
  }
  label = "ba";
  BarabasiAlbertConfig config;
  config.nodes = n;
  config.attach = static_cast<std::uint32_t>(
      rng.between(1, std::max<std::int64_t>(1, std::min<NodeId>(4, n - 1))));
  config.directed = rng.bernoulli(0.5);
  config.reciprocity = rng.uniform(0.0, 0.5);
  return barabasi_albert_edges(config, rng);
}

void random_weights(const InstanceDistribution& dist, InstanceSpec& spec,
                    Rng& rng) {
  const bool mixed = rng.bernoulli(dist.p_mixed_weights);
  if (!mixed) {
    // The paper's weighted-cascade scheme: w = 1/indeg(target). Uniform
    // per-node in-weights => the geometric-skip realization path; LT-legal
    // by construction (sums are exactly 1).
    apply_weighted_cascade(spec.edges, spec.node_count);
    return;
  }
  // Mixed per-edge weights: distinct in-weights at (almost) every node
  // force the per-edge Bernoulli fallback. For LT, normalize per target so
  // in-weight sums stay <= 1.
  for (WeightedEdge& e : spec.edges) e.weight = rng.uniform(0.05, 0.95);
  if (spec.model == DiffusionModel::kLinearThreshold) {
    std::vector<double> sums = in_weight_sums(spec);
    std::vector<double> scale(spec.node_count, 1.0);
    for (NodeId v = 0; v < spec.node_count; ++v) {
      if (sums[v] > 1.0) scale[v] = rng.uniform(0.5, 1.0) / sums[v];
    }
    for (WeightedEdge& e : spec.edges) e.weight *= scale[e.target];
  }
}

void random_communities(const InstanceDistribution& dist, InstanceSpec& spec,
                        Rng& rng) {
  // Shuffle the nodes, leave a random prefix uncovered, then cut the rest
  // into communities of random size in [1, max_community_size].
  std::vector<NodeId> order(spec.node_count);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<NodeId>(order));
  const auto uncovered = static_cast<NodeId>(
      rng.uniform() * dist.max_uncovered_fraction *
      static_cast<double>(spec.node_count));
  // Always keep at least one node for the mandatory first community.
  std::size_t next = std::min<std::size_t>(uncovered, spec.node_count - 1);
  while (next < order.size()) {
    const auto want = static_cast<std::size_t>(
        rng.between(1, static_cast<std::int64_t>(dist.max_community_size)));
    const std::size_t take = std::min(want, order.size() - next);
    std::vector<NodeId> members(order.begin() + static_cast<std::ptrdiff_t>(next),
                                order.begin() +
                                    static_cast<std::ptrdiff_t>(next + take));
    // Sorted member lists keep repro snippets readable; CommunitySet does
    // not care about order.
    std::sort(members.begin(), members.end());
    spec.groups.push_back(std::move(members));
    next += take;
  }
  for (const auto& group : spec.groups) {
    const auto population = static_cast<std::uint32_t>(group.size());
    // Mix of the paper's regimes: h = 1 (submodular boundary), constant
    // h = 2 (bounded), and a random fraction of the population.
    const double pick = rng.uniform();
    std::uint32_t h = 1;
    if (pick < 0.3) {
      h = 1;
    } else if (pick < 0.6) {
      h = std::min<std::uint32_t>(2, population);
    } else {
      h = static_cast<std::uint32_t>(
          rng.between(1, static_cast<std::int64_t>(population)));
    }
    spec.thresholds.push_back(h);
    // Population benefits (the paper) vs arbitrary positive weights.
    spec.benefits.push_back(rng.bernoulli(0.5)
                                ? static_cast<double>(population)
                                : rng.uniform(0.1, 4.0));
  }
}

}  // namespace

InstanceSpec random_instance(const InstanceDistribution& dist, Rng& rng) {
  InstanceSpec spec;
  spec.node_count = static_cast<NodeId>(
      rng.between(dist.min_nodes, dist.max_nodes));
  spec.model = rng.bernoulli(dist.p_linear_threshold)
                   ? DiffusionModel::kLinearThreshold
                   : DiffusionModel::kIndependentCascade;
  spec.edges = random_topology(dist, spec.node_count, rng, spec.topology);
  random_weights(dist, spec, rng);
  random_communities(dist, spec, rng);
  return spec;
}

}  // namespace imc::testing
