// Deterministic random IMC instance generation for the differential fuzz
// harness (DESIGN.md §10, "Testing architecture").
//
// An InstanceSpec is the *explicit* form of a problem instance — node
// count, edge list, community member lists, thresholds, benefits, model —
// rather than a (generator, seed) pair. The shrinker needs this: dropping
// an edge or a community from a seed is meaningless, but dropping it from
// the explicit lists while the failure still reproduces is exactly how a
// 48-node counterexample collapses to a 6-node repro. Specs build real
// Graph/CommunitySet values on demand and can print themselves as a
// self-contained C++ snippet (shrink.h) so a failing case survives outside
// the harness.
//
// `random_instance` draws a spec from a configurable distribution using
// the project Rng, covering the regimes the optimized hot paths branch on:
// Erdős–Rényi / planted-partition / power-law topologies, uniform in-edge
// weights (the geometric-skip sampler path) and mixed per-edge weights
// (the per-edge Bernoulli fallback), IC and LT diffusion, and community
// structures with varying thresholds h_i and benefits b_i.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc::testing {

/// Explicit, shrinkable problem instance.
struct InstanceSpec {
  NodeId node_count = 0;
  EdgeList edges;
  std::vector<std::vector<NodeId>> groups;  // community member lists
  std::vector<std::uint32_t> thresholds;    // h_i, parallel to groups
  std::vector<double> benefits;             // b_i, parallel to groups
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  std::string topology;  // human label for repro printing ("er", "sbm", ...)

  /// Structural validity — what Graph/CommunitySet/RicSampler construction
  /// would enforce, checked cheaply up front so the shrinker can discard
  /// candidate reductions that left the spec unbuildable (empty community,
  /// dangling node id, LT weight sums > 1, ...) without relying on
  /// exceptions for control flow.
  [[nodiscard]] bool valid() const;

  /// Materializes the graph (noisy-or merge of parallel edges, as always).
  [[nodiscard]] Graph build_graph() const;

  /// Materializes the community set with thresholds and benefits applied.
  [[nodiscard]] CommunitySet build_communities() const;

  /// One-line shape summary, e.g. "er n=12 m=31 r=3 ic".
  [[nodiscard]] std::string summary() const;
};

/// Distribution the fuzz cases are drawn from. The defaults keep instances
/// small enough that a 200-case run (with oracles that recompute
/// everything from scratch) finishes in seconds, while still covering
/// every generator/weight/model regime.
struct InstanceDistribution {
  NodeId min_nodes = 4;
  NodeId max_nodes = 48;
  /// Probability of drawing each topology (normalized internally).
  double p_erdos_renyi = 0.4;
  double p_planted_partition = 0.3;
  double p_power_law = 0.3;
  /// Probability that edge weights are mixed per-edge draws instead of the
  /// uniform weighted-cascade scheme (mixed weights force the sampler off
  /// the geometric-skip fast path).
  double p_mixed_weights = 0.35;
  /// Probability of the linear-threshold model (else independent cascade).
  double p_linear_threshold = 0.25;
  /// Community size cap (must stay <= 64 for the mask representation).
  NodeId max_community_size = 8;
  /// Fraction of nodes left outside every community, drawn per instance
  /// from [0, max_uncovered_fraction].
  double max_uncovered_fraction = 0.3;
};

/// Draws one instance. Deterministic given the rng state; every draw goes
/// through the passed Rng, so a single case seed reproduces the instance.
[[nodiscard]] InstanceSpec random_instance(const InstanceDistribution& dist,
                                           Rng& rng);

}  // namespace imc::testing
