#include "testing/shrink.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace imc::testing {

namespace {

/// Remaps node ids after deleting `victim`: ids above it shift down by one.
NodeId remap(NodeId v, NodeId victim) { return v > victim ? v - 1 : v; }

/// Spec with node `victim` removed: its edges vanish, its community (if
/// any) loses the member, all other ids shift down.
InstanceSpec drop_node(const InstanceSpec& spec, NodeId victim) {
  InstanceSpec out;
  out.node_count = spec.node_count - 1;
  out.model = spec.model;
  out.topology = spec.topology;
  for (const WeightedEdge& e : spec.edges) {
    if (e.source == victim || e.target == victim) continue;
    out.edges.push_back(
        {remap(e.source, victim), remap(e.target, victim), e.weight});
  }
  for (std::size_t c = 0; c < spec.groups.size(); ++c) {
    std::vector<NodeId> members;
    for (const NodeId v : spec.groups[c]) {
      if (v != victim) members.push_back(remap(v, victim));
    }
    if (members.empty()) continue;  // community died with its last member
    const auto population = static_cast<std::uint32_t>(members.size());
    out.groups.push_back(std::move(members));
    out.thresholds.push_back(std::min(spec.thresholds[c], population));
    out.benefits.push_back(spec.benefits[c]);
  }
  return out;
}

InstanceSpec drop_community(const InstanceSpec& spec, std::size_t victim) {
  InstanceSpec out = spec;
  out.groups.erase(out.groups.begin() + static_cast<std::ptrdiff_t>(victim));
  out.thresholds.erase(out.thresholds.begin() +
                       static_cast<std::ptrdiff_t>(victim));
  out.benefits.erase(out.benefits.begin() +
                     static_cast<std::ptrdiff_t>(victim));
  return out;
}

InstanceSpec drop_edge_range(const InstanceSpec& spec, std::size_t begin,
                             std::size_t end) {
  InstanceSpec out = spec;
  out.edges.erase(out.edges.begin() + static_cast<std::ptrdiff_t>(begin),
                  out.edges.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

/// Tries one candidate; accepts it into `current` when it is valid, still
/// fails, and the budget allows the predicate call.
bool try_accept(InstanceSpec&& candidate, InstanceSpec& current,
                const FailurePredicate& fails, std::uint64_t seed,
                std::uint32_t max_evaluations, ShrinkResult& result) {
  if (!candidate.valid()) return false;
  if (result.evaluations >= max_evaluations) return false;
  ++result.evaluations;
  if (!fails(candidate, seed)) return false;
  current = std::move(candidate);
  ++result.reductions;
  return true;
}

}  // namespace

ShrinkResult shrink_instance(const InstanceSpec& spec,
                             const FailurePredicate& fails,
                             std::uint64_t seed,
                             std::uint32_t max_evaluations) {
  ShrinkResult result;
  InstanceSpec current = spec;
  bool progressed = true;
  while (progressed && result.evaluations < max_evaluations) {
    progressed = false;

    // 1. Halve the edge list (front half, back half) — the cheapest way to
    //    slash instance size when the failure does not depend on topology.
    while (current.edges.size() >= 2) {
      const std::size_t half = current.edges.size() / 2;
      if (try_accept(drop_edge_range(current, half, current.edges.size()),
                     current, fails, seed, max_evaluations, result) ||
          try_accept(drop_edge_range(current, 0, half), current, fails, seed,
                     max_evaluations, result)) {
        progressed = true;
        continue;
      }
      break;
    }

    // 2. Drop whole communities (last to first so indices stay stable).
    for (std::size_t c = current.groups.size(); c-- > 0;) {
      if (current.groups.size() <= 1) break;
      if (try_accept(drop_community(current, c), current, fails, seed,
                     max_evaluations, result)) {
        progressed = true;
      }
    }

    // 3. Drop nodes, highest id first (cheapest remap).
    for (NodeId v = current.node_count; v-- > 0;) {
      if (current.node_count <= 1) break;
      if (try_accept(drop_node(current, v), current, fails, seed,
                     max_evaluations, result)) {
        progressed = true;
      }
    }

    // 4. Drop single edges.
    for (std::size_t e = current.edges.size(); e-- > 0;) {
      if (try_accept(drop_edge_range(current, e, e + 1), current, fails,
                     seed, max_evaluations, result)) {
        progressed = true;
      }
    }
  }
  result.spec = std::move(current);
  return result;
}

std::string repro_snippet(const InstanceSpec& spec, std::uint64_t seed,
                          const std::string& check_name) {
  std::ostringstream out;
  out.precision(17);
  out << "// Differential fuzz failure: check `" << check_name << "` on "
      << spec.summary() << "\n";
  out << "// Replay: IMC_FUZZ_CASE_SEED=" << seed
      << " ctest -L fuzz, or paste below.\n";
  out << "const imc::NodeId node_count = " << spec.node_count << ";\n";
  out << "const imc::EdgeList edges = {\n";
  for (const WeightedEdge& e : spec.edges) {
    out << "    {" << e.source << ", " << e.target << ", " << e.weight
        << "},\n";
  }
  out << "};\n";
  out << "std::vector<std::vector<imc::NodeId>> groups = {\n";
  for (const auto& group : spec.groups) {
    out << "    {";
    for (std::size_t i = 0; i < group.size(); ++i) {
      out << (i ? ", " : "") << group[i];
    }
    out << "},\n";
  }
  out << "};\n";
  out << "imc::Graph graph(node_count, edges);\n";
  out << "imc::CommunitySet communities(node_count, groups);\n";
  for (std::size_t c = 0; c < spec.groups.size(); ++c) {
    out << "communities.set_threshold(" << c << ", " << spec.thresholds[c]
        << ");\n";
    out << "communities.set_benefit(" << c << ", " << spec.benefits[c]
        << ");\n";
  }
  out << "const auto model = imc::DiffusionModel::"
      << (spec.model == DiffusionModel::kLinearThreshold
              ? "kLinearThreshold"
              : "kIndependentCascade")
      << ";\n";
  out << "const std::uint64_t case_seed = " << seed << "ULL;\n";
  return out.str();
}

}  // namespace imc::testing
