// Slow, obviously-correct reference implementations the differential fuzz
// harness pits against the optimized hot paths (DESIGN.md §10).
//
// Everything here is written straight from the paper's definitions with no
// arenas, no epoch tricks, no geometric skipping and no bit-parallel
// propagation — O(n·m) per sample and O(|R|·k·n) greedy rounds are fine,
// because fuzz instances are tiny. The point is an independent second
// implementation whose agreement (exact where the contract is exact,
// statistical where only the distribution is shared) certifies the fast
// paths:
//
//   * naive_ric_sample       — per-edge-Bernoulli live-edge realization +
//                              one forward DFS per node (vs the
//                              geometric-skip / bit-parallel RicSampler).
//   * ReferencePool          — nested-vector pool with from-scratch
//                              evaluators (vs the CSR/SoA RicPool and the
//                              epoch-trick CoverageState).
//   * reference_greedy_*     — serial greedy under the documented
//                              tie-break (vs the slab-reduced parallel
//                              sweeps in core/greedy.cpp).
//   * enumerate_exact        — exhaustive live-edge enumeration of the
//                              exact c(S) and ν(S) on tiny graphs (the
//                              ground truth both samplers must estimate).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "sampling/ric_sample.h"
#include "util/rng.h"

namespace imc::testing {

/// Draws one RIC sample for `community` by (1) realizing EVERY edge of the
/// graph with an independent Bernoulli(w) flip (IC) or one live in-edge
/// per node chosen with probability equal to its weight (LT), then (2)
/// running one forward DFS per node to find which members it reaches.
/// Same distribution as RicSampler for the same community — by a different
/// algorithm and a different RNG consumption pattern.
[[nodiscard]] RicSample naive_ric_sample(const Graph& graph,
                                         const CommunitySet& communities,
                                         DiffusionModel model,
                                         CommunityId community, Rng& rng);

/// Draws the source community ∝ benefit via a plain CDF scan (vs the
/// Walker alias table), then defers to naive_ric_sample.
[[nodiscard]] RicSample naive_ric_sample(const Graph& graph,
                                         const CommunitySet& communities,
                                         DiffusionModel model, Rng& rng);

/// The pre-refactor pool representation: a flat vector of samples plus a
/// nested vector-of-vectors inverted index, with evaluators that recompute
/// everything from scratch on every call.
class ReferencePool {
 public:
  struct Touch {
    std::uint32_t sample = 0;
    std::uint32_t threshold = 0;
    std::uint64_t mask = 0;
  };

  ReferencePool(const Graph& graph, const CommunitySet& communities);

  void add(RicSample sample);

  [[nodiscard]] std::uint64_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const RicSample& sample(std::uint32_t g) const {
    return samples_.at(g);
  }
  [[nodiscard]] const std::vector<Touch>& touches_of(NodeId v) const {
    return index_.at(v);
  }
  [[nodiscard]] std::uint32_t appearance_count(NodeId v) const {
    return static_cast<std::uint32_t>(index_.at(v).size());
  }
  [[nodiscard]] std::uint32_t community_frequency(CommunityId c) const;

  /// Number of samples g with |I_g(S)| >= h_g, by direct recomputation.
  [[nodiscard]] std::uint64_t influenced_count(
      std::span<const NodeId> seeds) const;
  /// ĉ_R(S) = (b / |R|) · influenced_count(S).
  [[nodiscard]] double c_hat(std::span<const NodeId> seeds) const;
  /// ν_R(S) = (b / |R|) Σ_g min(|I_g(S)| / h_g, 1), plain summation.
  [[nodiscard]] double nu(std::span<const NodeId> seeds) const;
  /// Unnormalized Σ_g min(|I_g(S)| / h_g, 1) (CoverageState::nu_sum twin).
  [[nodiscard]] double nu_sum(std::span<const NodeId> seeds) const;

  /// Candidate marginals by recomputation (exact integer / plain double).
  [[nodiscard]] std::uint64_t marginal_influenced(
      std::span<const NodeId> seeds, NodeId v) const;
  /// Mirrors the accumulation order of CoverageState::marginal_nu — the
  /// node's touches in ascending sample id, plain double adds of
  /// min(after/h, 1) − min(before/h, 1) — so ν tie-breaks in the reference
  /// greedy resolve bit-identically to the optimized sweep.
  [[nodiscard]] double marginal_nu(std::span<const NodeId> seeds,
                                   NodeId v) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const CommunitySet& communities() const noexcept {
    return *communities_;
  }
  [[nodiscard]] double total_benefit() const noexcept {
    return total_benefit_;
  }

 private:
  /// popcount of the member mask S reaches in sample g.
  [[nodiscard]] std::uint32_t members_reached(std::span<const NodeId> seeds,
                                              std::uint32_t g) const;

  const Graph* graph_;
  const CommunitySet* communities_;
  double total_benefit_ = 0.0;
  std::vector<RicSample> samples_;
  std::vector<std::vector<Touch>> index_;  // node -> touches, nested
};

/// Serial reference greedy on ĉ_R under the documented tie-break order
/// (influenced gain, then ν gain, then appearance count, then smaller node
/// id), topping up to k with untouched nodes in ascending id — the
/// contract core/greedy.cpp's optimized sweeps must reproduce seed-for-
/// seed. Throws std::invalid_argument unless 1 <= k <= node count.
[[nodiscard]] std::vector<NodeId> reference_greedy_c_hat(
    const ReferencePool& pool, std::uint32_t k);

/// Same for the ν objective (ν gain, then smaller node id) — the contract
/// of plain_greedy_nu and celf_greedy_nu.
[[nodiscard]] std::vector<NodeId> reference_greedy_nu(
    const ReferencePool& pool, std::uint32_t k);

/// Exact objectives by exhaustive live-edge enumeration.
struct ExactObjectives {
  double c = 0.0;   // exact c(S), paper eq. 1
  double nu = 0.0;  // exact ν(S), paper eq. 6
};

/// Enumerates every live-edge outcome (2^m under IC, Π(indeg_v + 1) under
/// LT on the merged graph) and integrates both objectives exactly.
/// Returns nullopt when the outcome count exceeds `max_outcomes` — the
/// caller should then skip exact checks for the instance.
[[nodiscard]] std::optional<ExactObjectives> enumerate_exact(
    const Graph& graph, const CommunitySet& communities,
    std::span<const NodeId> seeds, DiffusionModel model,
    std::uint64_t max_outcomes = 1ULL << 14);

}  // namespace imc::testing
