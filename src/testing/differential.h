// The differential fuzz runner: random instances (instance_gen.h) are fed
// through a battery of checks, each pitting one optimized hot path against
// its slow reference oracle (reference_oracles.h). A failing case is
// greedily shrunk (shrink.h) and printed as a self-contained repro snippet
// with the seed that regenerates it.
//
// The battery (default_checks) covers, per DESIGN.md §10:
//   * pool_layout   — CSR/SoA RicPool growth (serial AND parallel parts,
//                     split across two grow() calls) vs a nested-vector
//                     reference pool fed the same per-sample RNG
//                     substreams, compared sample-for-sample and
//                     touch-for-touch.
//   * append_path   — RicPool::append + materialize-on-demand index vs the
//                     grow()-built index, including interleaved reads.
//   * evaluators    — c_hat/nu/influenced_count, CoverageState increments,
//                     node marginals (ν compared BIT-FOR-BIT to pin the
//                     accumulation-order contract) and the chunked /
//                     full-range batch gain passes vs from-scratch
//                     recomputation.
//   * greedy        — greedy_c_hat / plain_greedy_nu / celf_greedy_nu,
//                     serial and parallel at several thread counts (with
//                     min_parallel_candidates = 1 to force the parallel
//                     reduction), vs the serial reference greedy:
//                     seed-for-seed equality.
//   * delta_vs_rebuild — random GraphDelta streams (edge upserts/removals
//                     and membership moves) interleaved with solves: pools
//                     repaired in place at threads {1, 2, 8} vs a
//                     from-scratch rebuild on the mutated structures,
//                     compared bit-for-bit (arenas, counters, CSR index)
//                     plus UBG/MAF seed/ĉ/ν equality (DESIGN.md §16).
//   * sampler_distribution — on enumerably small instances, the naive
//                     per-edge-Bernoulli sampler AND the geometric-skip /
//                     bit-parallel RicSampler against exhaustive live-edge
//                     ground truth (6σ bands), plus binomial checks on the
//                     source-community frequencies.
//
// Runs are driven by (base seed, case index): case i's instance derives
// from fuzz_case_seed(base, i), so any failure is pinned by a single
// 64-bit number. Environment knobs (read by fuzz_config_from_env):
//   IMC_FUZZ_CASES      — number of cases (default FuzzConfig::cases)
//   IMC_FUZZ_SEED       — base seed
//   IMC_FUZZ_CASE_SEED  — run exactly ONE case with this literal case seed
//                         (the replay line printed with every failure)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "testing/instance_gen.h"
#include "testing/shrink.h"

namespace imc::testing {

/// One differential check: returns nullopt on agreement, a human-readable
/// mismatch description on failure. Exceptions thrown by `run` are treated
/// as failures by the runner (a crash IS a differential result). Must be
/// deterministic in (spec, case_seed) — the shrinker replays it.
struct FuzzCheck {
  std::string name;
  std::function<std::optional<std::string>(const InstanceSpec&,
                                           std::uint64_t case_seed)>
      run;
};

struct FuzzConfig {
  std::uint32_t cases = 200;
  std::uint64_t base_seed = 0x1c0a11ab1eULL;
  /// Stop after this many failing (check, case) pairs.
  std::uint32_t max_failures = 5;
  /// Predicate-call budget per shrink (0 disables shrinking).
  std::uint32_t max_shrink_evaluations = 600;
  InstanceDistribution distribution;
  /// When set, run exactly one case with this literal case seed.
  std::optional<std::uint64_t> case_seed_override;
};

struct FuzzFailure {
  std::string check;
  std::uint64_t case_seed = 0;
  std::string message;        // mismatch description from the check
  InstanceSpec shrunk;        // smallest spec that still fails
  std::uint32_t shrink_evaluations = 0;
  std::string repro;          // self-contained C++ snippet
};

struct FuzzReport {
  std::uint32_t cases_run = 0;
  std::uint64_t checks_run = 0;
  std::uint64_t checks_skipped = 0;  // distribution checks on non-tiny cases
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Per-case seed derivation — the same splitmix recipe the pool uses for
/// per-sample substreams, applied at case granularity.
[[nodiscard]] std::uint64_t fuzz_case_seed(std::uint64_t base_seed,
                                           std::uint64_t index) noexcept;

/// The standard battery described in the header comment.
[[nodiscard]] std::vector<FuzzCheck> default_checks();

/// FuzzConfig with IMC_FUZZ_CASES / IMC_FUZZ_SEED / IMC_FUZZ_CASE_SEED
/// applied over the defaults.
[[nodiscard]] FuzzConfig fuzz_config_from_env();

/// Runs the battery over `config.cases` random instances. Failures are
/// shrunk and logged to `log` (when non-null) as they happen, repro
/// snippet included.
[[nodiscard]] FuzzReport run_differential_fuzz(
    const FuzzConfig& config, std::span<const FuzzCheck> checks,
    std::ostream* log = nullptr);

}  // namespace imc::testing
