#include "testing/differential.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/engine.h"
#include "core/gain_kernels.h"
#include "graph/delta.h"
#include "core/greedy.h"
#include "core/maf.h"
#include "core/objective.h"
#include "core/ubg.h"
#include "util/context.h"
#include "sampling/pool_io.h"
#include "sampling/pool_snapshot.h"
#include "sampling/ric_pool.h"
#include "sampling/ric_sample.h"
#include "testing/reference_oracles.h"
#include "util/thread_pool.h"

namespace imc::testing {

std::uint64_t fuzz_case_seed(std::uint64_t base_seed,
                             std::uint64_t index) noexcept {
  std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return splitmix64(state);
}

namespace {

/// Pool size for the exact-level checks: small enough that from-scratch
/// oracles stay cheap, large enough to hit multi-part growth and index
/// merges.
std::uint64_t pool_size_for(std::uint64_t case_seed) {
  return 40 + case_seed % 33;
}

/// Builds the reference pool by replaying the pool's documented RNG
/// contract — one substream Rng(fuzz_case_seed(seed, i)) per sample index,
/// identical to RicPool::grow's splitmix_of — through the AoS
/// RicSampler::generate path (which shares generate_into's consumption).
/// The CONTAINER and everything downstream of it is independent; only the
/// sample stream is shared, which is what makes the layout/evaluator/
/// greedy comparisons exact.
ReferencePool contract_reference_pool(const Graph& graph,
                                      const CommunitySet& communities,
                                      DiffusionModel model,
                                      std::uint64_t count,
                                      std::uint64_t seed) {
  ReferencePool ref(graph, communities);
  RicSampler sampler(graph, communities, model);
  for (std::uint64_t i = 0; i < count; ++i) {
    Rng rng(fuzz_case_seed(seed, i));
    ref.add(sampler.generate(rng));
  }
  return ref;
}

/// All gain-kernel variants the host can run — kScalar is always first.
std::vector<GainKernelKind> supported_kernels() {
  std::vector<GainKernelKind> kinds;
  for (const GainKernelKind kind :
       {GainKernelKind::kScalar, GainKernelKind::kPopcnt,
        GainKernelKind::kAvx2, GainKernelKind::kAvx512}) {
    if (gain_kernel_supported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

/// Forces one kernel for a check's scope and restores the previous one on
/// every exit path, so a failing case never leaks its variant into later
/// cases (which would make single-seed repro runs diverge from sweeps).
class KernelGuard {
 public:
  explicit KernelGuard(GainKernelKind kind) : saved_(active_gain_kernel()) {
    set_gain_kernel(kind);
  }
  ~KernelGuard() { set_gain_kernel(saved_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  GainKernelKind saved_;
};

/// Case-seeded kernel draw: optimized paths must hold under EVERY variant,
/// so the fuzz population distributes across whatever the host supports.
GainKernelKind kernel_for(std::uint64_t case_seed) {
  const std::vector<GainKernelKind> kinds = supported_kernels();
  return kinds[(case_seed >> 7) % kinds.size()];
}

std::string describe_nodes(std::span<const NodeId> nodes) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << (i ? "," : "") << nodes[i];
  }
  out << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Check: pool_layout
// ---------------------------------------------------------------------------

std::optional<std::string> check_pool_layout(const InstanceSpec& spec,
                                             std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  // Split growth across a serial call and a parallel multi-part call: the
  // contract says grow(a); grow(b) == grow(a + b) for any parallelism.
  RicPool pool(graph, communities, spec.model);
  ThreadPool workers(3);
  pool.grow(count / 2, case_seed, /*parallel=*/false);
  pool.grow(count - count / 2, case_seed, /*parallel=*/true, &workers);

  const ReferencePool ref = contract_reference_pool(
      graph, communities, spec.model, count, case_seed);

  if (pool.size() != ref.size()) {
    return "pool size " + std::to_string(pool.size()) + " != reference " +
           std::to_string(ref.size());
  }
  for (std::uint32_t g = 0; g < count; ++g) {
    const RicSample got = pool.sample(g);
    const RicSample& want = ref.sample(g);
    if (got.community != want.community ||
        got.threshold != want.threshold ||
        got.member_count != want.member_count ||
        got.touching != want.touching) {
      return "sample " + std::to_string(g) +
             " mismatch (community/threshold/touching)";
    }
    const auto arena = pool.sample_touches(g);
    if (!std::equal(arena.begin(), arena.end(), want.touching.begin(),
                    want.touching.end())) {
      return "sample-major arena mismatch at sample " + std::to_string(g);
    }
  }
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const auto got = pool.touches_of(v);
    const auto& want = ref.touches_of(v);
    if (got.size() != want.size()) {
      return "node " + std::to_string(v) + " touch count " +
             std::to_string(got.size()) + " != reference " +
             std::to_string(want.size());
    }
    for (std::size_t t = 0; t < want.size(); ++t) {
      if (got[t].sample != want[t].sample ||
          got[t].threshold != want[t].threshold ||
          got[t].mask != want[t].mask) {
        return "node " + std::to_string(v) + " touch " + std::to_string(t) +
               " mismatch";
      }
    }
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    if (pool.community_frequency(c) != ref.community_frequency(c)) {
      return "community_frequency(" + std::to_string(c) + ") " +
             std::to_string(pool.community_frequency(c)) + " != reference " +
             std::to_string(ref.community_frequency(c));
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: append_path
// ---------------------------------------------------------------------------

std::optional<std::string> check_append_path(const InstanceSpec& spec,
                                             std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  RicPool grown(graph, communities, spec.model);
  grown.grow(count, case_seed, /*parallel=*/false);

  // Rebuild sample-by-sample through append(); interleave an index read so
  // the materialize-on-demand merge runs more than once.
  RicPool appended(graph, communities, spec.model);
  for (std::uint32_t g = 0; g < count; ++g) {
    appended.append(grown.sample(g));
    if (g == count / 2) {
      (void)appended.appearance_count(0);  // force a mid-stream materialize
    }
  }
  if (appended.size() != grown.size()) {
    return "appended pool size mismatch";
  }
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const auto got = appended.touches_of(v);
    const auto want = grown.touches_of(v);
    if (got.size() != want.size()) {
      return "append: node " + std::to_string(v) + " touch count mismatch";
    }
    for (std::size_t t = 0; t < want.size(); ++t) {
      if (got[t].sample != want[t].sample ||
          got[t].threshold != want[t].threshold ||
          got[t].mask != want[t].mask) {
        return "append: node " + std::to_string(v) + " touch " +
               std::to_string(t) + " mismatch";
      }
    }
  }
  const auto got_freq = appended.community_frequencies();
  const auto want_freq = grown.community_frequencies();
  if (!std::equal(got_freq.begin(), got_freq.end(), want_freq.begin(),
                  want_freq.end())) {
    return "append: community_frequencies mismatch";
  }
  // Evaluators must agree exactly: same arenas, same sweep.
  Rng rng(case_seed ^ 0xa99e4dULL);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));
  const std::vector<std::uint32_t> seeds =
      rng.sample_without_replacement(graph.node_count(), k);
  const std::span<const NodeId> view(seeds);
  if (appended.influenced_count(view) != grown.influenced_count(view) ||
      appended.c_hat(view) != grown.c_hat(view) ||
      appended.nu(view) != grown.nu(view)) {
    return "append: evaluator mismatch on seeds " + describe_nodes(view);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: evaluators
// ---------------------------------------------------------------------------

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

std::optional<std::string> check_evaluators(const InstanceSpec& spec,
                                            std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  RicPool pool(graph, communities, spec.model);
  pool.grow(count, case_seed, /*parallel=*/false);
  const ReferencePool ref = contract_reference_pool(
      graph, communities, spec.model, count, case_seed);

  // The bit-identity claims below must hold under every gain-kernel
  // variant; rotate through them case by case.
  const KernelGuard kernel(kernel_for(case_seed));

  // KahanSum vs plain double summation: agreement to ~1e-12 relative on
  // these pool sizes; 1e-9 leaves slack without hiding real bugs.
  constexpr double kTol = 1e-9;

  Rng rng(case_seed ^ 0x5eed5e75ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const auto size = static_cast<std::uint32_t>(
        rng.between(0, std::min<std::int64_t>(6, graph.node_count())));
    const std::vector<std::uint32_t> seeds =
        rng.sample_without_replacement(graph.node_count(), size);
    const std::span<const NodeId> view(seeds);

    if (pool.influenced_count(view) != ref.influenced_count(view)) {
      return "influenced_count mismatch on " + describe_nodes(view);
    }
    if (!close(pool.c_hat(view), ref.c_hat(view), kTol)) {
      return "c_hat mismatch on " + describe_nodes(view);
    }
    if (!close(pool.nu(view), ref.nu(view), kTol)) {
      return "nu mismatch on " + describe_nodes(view);
    }

    // Incremental CoverageState vs from-scratch recomputation after every
    // add_seed, then candidate marginals on the final state.
    CoverageState state(pool);
    std::vector<NodeId> prefix;
    for (const NodeId s : view) {
      state.add_seed(s);
      prefix.push_back(s);
      if (state.influenced() != ref.influenced_count(prefix)) {
        return "CoverageState::influenced mismatch at prefix " +
               describe_nodes(prefix);
      }
      if (!close(state.nu_sum(), ref.nu_sum(prefix), kTol)) {
        return "CoverageState::nu_sum mismatch at prefix " +
               describe_nodes(prefix);
      }
    }
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      if (state.marginal_influenced(v) != ref.marginal_influenced(view, v)) {
        return "marginal_influenced(" + std::to_string(v) +
               ") mismatch on " + describe_nodes(view);
      }
      // Bit-for-bit: the reference replays the documented accumulation
      // order, and the fraction table holds exact count/h doubles. Any
      // difference means the order contract broke.
      if (state.marginal_nu(v) != ref.marginal_nu(view, v)) {
        return "marginal_nu(" + std::to_string(v) +
               ") not bit-identical on " + describe_nodes(view);
      }
    }

    // Batch passes: chunked influenced gains must SUM to the marginals for
    // any partition; the full-range nu pass must match bit-for-bit.
    const auto n = graph.node_count();
    std::vector<std::uint64_t> influenced_gains(n, 0);
    const auto r = static_cast<std::uint32_t>(pool.size());
    const std::uint32_t cut1 = r / 3;
    const std::uint32_t cut2 = 2 * r / 3;
    state.accumulate_influenced_gains(0, cut1, influenced_gains.data());
    state.accumulate_influenced_gains(cut1, cut2, influenced_gains.data());
    state.accumulate_influenced_gains(cut2, r, influenced_gains.data());
    std::vector<double> nu_gains(n, 0.0);
    state.accumulate_nu_gains(0, r, nu_gains.data());
    for (NodeId v = 0; v < n; ++v) {
      const bool is_seed =
          std::find(view.begin(), view.end(), v) != view.end();
      const std::uint64_t want_influenced =
          is_seed ? 0 : ref.marginal_influenced(view, v);
      if (influenced_gains[v] != want_influenced) {
        return "accumulate_influenced_gains(" + std::to_string(v) +
               ") mismatch on " + describe_nodes(view);
      }
      const double want_nu = is_seed ? 0.0 : ref.marginal_nu(view, v);
      if (nu_gains[v] != want_nu) {
        return "accumulate_nu_gains(" + std::to_string(v) +
               ") not bit-identical on " + describe_nodes(view);
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: greedy
// ---------------------------------------------------------------------------

std::optional<std::string> check_greedy(const InstanceSpec& spec,
                                        std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  RicPool pool(graph, communities, spec.model);
  pool.grow(count, case_seed, /*parallel=*/false);
  const ReferencePool ref = contract_reference_pool(
      graph, communities, spec.model, count, case_seed);

  // Selection must be invariant across gain kernel x slab decomposition x
  // thread count; draw a kernel and a shard override from the case seed so
  // the population covers the grid.
  const KernelGuard kernel(kernel_for(case_seed));
  ThreadPool two(2);
  ThreadPool eight(8);
  const GreedyOptions serial{};
  // min_parallel_candidates = 1 forces the parallel reduction even on tiny
  // candidate sets — otherwise every fuzz instance would take the serial
  // escape hatch and the slab reduction would go untested.
  GreedyOptions par2{/*parallel=*/true, &two,
                     /*min_parallel_candidates=*/1};
  GreedyOptions par8{/*parallel=*/true, &eight,
                     /*min_parallel_candidates=*/1};
  par2.shards = 1 + (case_seed >> 11) % 5;  // 1..5 slabs
  par8.shards = (case_seed >> 17) % 8;      // 0 (= one per worker) ..7
  const GreedyOptions* const option_grid[] = {&serial, &par2, &par8};
  constexpr double kTol = 1e-9;

  const std::uint32_t n = graph.node_count();
  std::vector<std::uint32_t> ks{1, std::min<std::uint32_t>(3, n), n};
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  for (const std::uint32_t k : ks) {
    const std::vector<NodeId> want_c = reference_greedy_c_hat(ref, k);
    const std::vector<NodeId> want_nu = reference_greedy_nu(ref, k);
    for (const GreedyOptions* options : option_grid) {
      const GreedyResult got_c = greedy_c_hat(pool, k, *options);
      if (got_c.seeds != want_c) {
        return "greedy_c_hat(k=" + std::to_string(k) + ") seeds " +
               describe_nodes(got_c.seeds) + " != reference " +
               describe_nodes(want_c);
      }
      if (!close(got_c.c_hat, ref.c_hat(want_c), kTol) ||
          !close(got_c.nu, ref.nu(want_c), kTol)) {
        return "greedy_c_hat(k=" + std::to_string(k) + ") metric mismatch";
      }
      const GreedyResult got_plain = plain_greedy_nu(pool, k, *options);
      const GreedyResult got_celf = celf_greedy_nu(pool, k, *options);
      if (got_plain.seeds != want_nu) {
        return "plain_greedy_nu(k=" + std::to_string(k) + ") seeds " +
               describe_nodes(got_plain.seeds) + " != reference " +
               describe_nodes(want_nu);
      }
      if (got_celf.seeds != want_nu) {
        return "celf_greedy_nu(k=" + std::to_string(k) + ") seeds " +
               describe_nodes(got_celf.seeds) + " != reference " +
               describe_nodes(want_nu);
      }
      if (!close(got_plain.nu, ref.nu(want_nu), kTol) ||
          !close(got_celf.nu, ref.nu(want_nu), kTol)) {
        return "greedy_nu(k=" + std::to_string(k) + ") metric mismatch";
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: kernel_variants
// ---------------------------------------------------------------------------

/// The gain-kernel dispatch contract (DESIGN.md §14): every SIMD variant
/// the host supports must be BIT-IDENTICAL to the scalar reference on the
/// same instance — sweep gain arrays, ν marginals, and end-to-end greedy
/// selections. Unlike check_evaluators (one kernel per case), this runs
/// ALL variants against each other on one pool, so a divergence between
/// two non-scalar kernels can never slip through the per-case rotation.
std::optional<std::string> check_kernel_variants(const InstanceSpec& spec,
                                                 std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  RicPool pool(graph, communities, spec.model);
  pool.grow(count, case_seed, /*parallel=*/false);

  Rng rng(case_seed ^ 0x51b3a7ULL);
  const auto seed_count = static_cast<std::uint32_t>(
      rng.between(0, std::min<std::int64_t>(3, graph.node_count())));
  const std::vector<std::uint32_t> seeds =
      rng.sample_without_replacement(graph.node_count(), seed_count);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));

  const std::uint32_t n = graph.node_count();
  const auto r = static_cast<std::uint32_t>(pool.size());
  CoverageState state(pool);
  for (const NodeId s : seeds) state.add_seed(s);

  // Scalar reference for every surface the kernels own.
  std::vector<std::uint64_t> ref_influenced(n, 0);
  std::vector<double> ref_nu(n, 0.0);
  std::vector<double> ref_marginal(n, 0.0);
  GreedyResult ref_c;
  GreedyResult ref_celf;
  {
    const KernelGuard guard(GainKernelKind::kScalar);
    state.accumulate_influenced_gains(0, r, ref_influenced.data());
    state.accumulate_nu_gains(0, r, ref_nu.data());
    for (NodeId v = 0; v < n; ++v) ref_marginal[v] = state.marginal_nu(v);
    ref_c = greedy_c_hat(pool, k, GreedyOptions{});
    ref_celf = celf_greedy_nu(pool, k, GreedyOptions{});
  }

  for (const GainKernelKind kind : supported_kernels()) {
    if (kind == GainKernelKind::kScalar) continue;
    const KernelGuard guard(kind);
    const std::string tag =
        std::string(" [") + gain_kernel_name(kind) + "] on seeds " +
        describe_nodes(seeds);
    std::vector<std::uint64_t> influenced(n, 0);
    std::vector<double> nu(n, 0.0);
    state.accumulate_influenced_gains(0, r, influenced.data());
    state.accumulate_nu_gains(0, r, nu.data());
    for (NodeId v = 0; v < n; ++v) {
      if (influenced[v] != ref_influenced[v]) {
        return "accumulate_influenced_gains(" + std::to_string(v) +
               ") != scalar" + tag;
      }
      if (nu[v] != ref_nu[v]) {
        return "accumulate_nu_gains(" + std::to_string(v) +
               ") not bit-identical to scalar" + tag;
      }
      if (state.marginal_nu(v) != ref_marginal[v]) {
        return "marginal_nu(" + std::to_string(v) +
               ") not bit-identical to scalar" + tag;
      }
    }
    const GreedyResult got_c = greedy_c_hat(pool, k, GreedyOptions{});
    if (got_c.seeds != ref_c.seeds || got_c.c_hat != ref_c.c_hat ||
        got_c.nu != ref_c.nu) {
      return "greedy_c_hat(k=" + std::to_string(k) + ") diverged" + tag;
    }
    const GreedyResult got_celf = celf_greedy_nu(pool, k, GreedyOptions{});
    if (got_celf.seeds != ref_celf.seeds || got_celf.nu != ref_celf.nu) {
      return "celf_greedy_nu(k=" + std::to_string(k) + ") diverged" + tag;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: warm_vs_cold
// ---------------------------------------------------------------------------

/// The MaxrSolver::resume / CoverageState::extend contracts under random
/// growth schedules: after every pool growth, a warm-started UBG/MAF solve
/// must be BIT-IDENTICAL to a cold solve on the same pool, and an extended
/// CoverageState must be operator== to a from-scratch rebuild. Cold paths
/// are the oracles — they are themselves pinned against the slow reference
/// oracles by check_greedy.
std::optional<std::string> check_warm_vs_cold(const InstanceSpec& spec,
                                              std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  ThreadPool two(2);
  const GreedyOptions serial{};
  const GreedyOptions par2{/*parallel=*/true, &two,
                           /*min_parallel_candidates=*/1};

  Rng rng(case_seed ^ 0xc01d57a7ULL);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));
  const std::vector<std::uint32_t> tracked_seeds =
      rng.sample_without_replacement(
          graph.node_count(),
          std::min<std::uint32_t>(2, graph.node_count()));

  // Uneven growth slices so the stages are not a clean doubling.
  const std::uint64_t slices[3] = {count / 2 + 1, count / 3 + 1,
                                   count / 4 + 1};

  for (const GreedyOptions* options : {&serial, &par2}) {
    RicPool pool(graph, communities, spec.model);
    UbgResume ubg_state;
    MafResume maf_state;
    CoverageState tracked(pool);
    for (const NodeId v : tracked_seeds) tracked.add_seed(v);
    RicPool::PoolEpoch epoch = pool.grow_epoch();

    bool parallel_grow = false;
    for (const std::uint64_t slice : slices) {
      pool.grow(slice, case_seed, parallel_grow,
                parallel_grow ? &two : nullptr);
      parallel_grow = !parallel_grow;
      const std::string at = " at |R|=" + std::to_string(pool.size()) +
                             ", k=" + std::to_string(k) +
                             (options->parallel ? ", parallel" : ", serial");

      const UbgSolution warm = ubg_resume(pool, k, *options, ubg_state);
      const UbgSolution cold = ubg_solve(pool, k, *options);
      if (warm.seeds != cold.seeds) {
        return "ubg_resume seeds " + describe_nodes(warm.seeds) +
               " != cold " + describe_nodes(cold.seeds) + at;
      }
      if (warm.c_hat != cold.c_hat || warm.from_nu.nu != cold.from_nu.nu ||
          warm.from_c_hat.c_hat != cold.from_c_hat.c_hat) {
        return "ubg_resume metrics not bit-identical to cold solve" + at;
      }

      const MafSolution maf_warm =
          maf_resume(pool, k, /*seed=*/case_seed, *options, maf_state);
      const MafSolution maf_cold =
          maf_solve(pool, k, /*seed=*/case_seed, *options);
      if (maf_warm.seeds != maf_cold.seeds ||
          maf_warm.c_hat != maf_cold.c_hat) {
        return "maf_resume diverged from cold solve" + at;
      }

      tracked.extend(pool, epoch);
      epoch = pool.grow_epoch();
      CoverageState rebuilt(pool);
      for (const NodeId v : tracked.seeds()) rebuilt.add_seed(v);
      if (!(tracked == rebuilt)) {
        return "CoverageState::extend != full rebuild on seeds " +
               describe_nodes(tracked.seeds()) + at;
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: pipelined_vs_serial
// ---------------------------------------------------------------------------

/// The pipelined engine schedule (ImcafConfig::pipeline, DESIGN.md §15)
/// against the serial one: same instance, same config, overlap on vs off,
/// must agree bit-for-bit — seeds, ĉ and the independent estimate, final
/// |R|, stop-stage count, the PoolEpoch watermark, and the per-stage
/// sample accounting rows. The thread count rotates across the case
/// population ({1, 2, 8} by case seed), so the contract is exercised under
/// no concurrency, mild concurrency and oversubscription. Shrunk ε/δ
/// bounds keep Λ small enough that the doubling loop runs 2–3 real stages
/// per case.
std::optional<std::string> check_pipelined_vs_serial(const InstanceSpec& spec,
                                                     std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();

  Rng rng(case_seed ^ 0x9191e11eULL);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));

  ImcafConfig config;
  config.params.epsilon = 0.8;  // Λ ≈ 143: multiple doubling stages, fast
  config.params.delta = 0.4;
  config.seed = case_seed;
  config.model = spec.model;
  config.max_samples = 300 + case_seed % 101;  // 2–3 stages before the cap
  config.parallel_sampling = true;

  const unsigned threads = std::array<unsigned, 3>{1, 2, 8}[
      (case_seed >> 11) % 3];
  ThreadPool workers(threads);
  ExecutionContext context;
  context.workers = &workers;

  const UbgSolver solver;
  struct Run {
    ImcafResult result;
    std::vector<StageMetrics> rows;
    RicPool::PoolEpoch epoch;
  };
  const auto run_engine = [&](bool pipeline) {
    RecordingMetricsSink sink;
    ExecutionContext run_context = context;
    run_context.metrics = &sink;
    ImcafConfig run_config = config;
    run_config.pipeline = pipeline;
    ImcEngine engine(graph, communities, run_config, run_context);
    Run run;
    run.result = engine.solve(k, solver);
    run.rows = sink.stages();
    run.epoch = engine.pool().grow_epoch();
    return run;
  };

  const Run serial = run_engine(false);
  const Run pipelined = run_engine(true);
  const std::string at = " at k=" + std::to_string(k) +
                         ", threads=" + std::to_string(threads) +
                         ", cap=" + std::to_string(config.max_samples);

  if (pipelined.result.seeds != serial.result.seeds) {
    return "pipelined seeds " + describe_nodes(pipelined.result.seeds) +
           " != serial " + describe_nodes(serial.result.seeds) + at;
  }
  if (pipelined.result.c_hat != serial.result.c_hat) {
    return "pipelined c_hat not bit-identical to serial" + at;
  }
  if (pipelined.result.estimated_benefit != serial.result.estimated_benefit) {
    return "pipelined estimated_benefit not bit-identical to serial" + at;
  }
  if (pipelined.result.samples_used != serial.result.samples_used ||
      pipelined.result.stop_stages != serial.result.stop_stages ||
      pipelined.result.reached_cap != serial.result.reached_cap) {
    return "pipelined stage/sample schedule diverged from serial" + at;
  }
  if (!(pipelined.epoch == serial.epoch)) {
    return "pipelined PoolEpoch {" + std::to_string(pipelined.epoch.samples) +
           "," + std::to_string(pipelined.epoch.grows) + "} != serial {" +
           std::to_string(serial.epoch.samples) + "," +
           std::to_string(serial.epoch.grows) + "}" + at;
  }
  if (pipelined.rows.size() != serial.rows.size()) {
    return "pipelined metrics row count diverged" + at;
  }
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const StageMetrics& p = pipelined.rows[i];
    const StageMetrics& s = serial.rows[i];
    if (p.pool_size != s.pool_size || p.samples_added != s.samples_added ||
        p.estimate_samples != s.estimate_samples ||
        p.warm_start != s.warm_start || p.accepted != s.accepted) {
      return "stage " + std::to_string(i + 1) +
             " metrics diverged between schedules" + at;
    }
  }
  // Sanity on the serial baseline: it must never report speculation.
  if (serial.result.speculative_samples_committed != 0 ||
      serial.result.overlap_seconds != 0.0) {
    return "serial schedule reported speculative work" + at;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: pool_roundtrip
// ---------------------------------------------------------------------------

/// Bit-level pool equality over everything persistence must preserve: the
/// SoA metadata, both arenas and the CSR index. Deliberately NOT the grow
/// epoch — the text v1 loader rebuilds through append() (one "grow" per
/// sample), which is its documented behavior.
std::string pool_content_diff(const RicPool& got, const RicPool& want) {
  if (got.size() != want.size()) return "size mismatch";
  if (got.model() != want.model()) return "model tag mismatch";
  const auto same = [](const auto& a, const auto& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  if (!same(got.thresholds(), want.thresholds())) {
    return "thresholds mismatch";
  }
  if (!same(got.source_communities(), want.source_communities())) {
    return "source_communities mismatch";
  }
  if (!same(got.community_frequencies(), want.community_frequencies())) {
    return "community_frequencies mismatch";
  }
  for (std::uint32_t g = 0; g < want.size(); ++g) {
    const auto mine = got.sample_touches(g);
    const auto theirs = want.sample_touches(g);
    if (!std::equal(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                    [](const auto& a, const auto& b) {
                      return a.first == b.first && a.second == b.second;
                    })) {
      return "sample-major arena mismatch at sample " + std::to_string(g);
    }
  }
  if (!same(got.touch_offsets(), want.touch_offsets())) {
    return "CSR touch_offsets mismatch";
  }
  const auto mine = got.touch_arena();
  const auto theirs = want.touch_arena();
  for (std::size_t i = 0; i < theirs.size(); ++i) {
    if (mine[i].sample != theirs[i].sample ||
        mine[i].threshold != theirs[i].threshold ||
        mine[i].mask != theirs[i].mask) {
      return "CSR touch arena mismatch at slot " + std::to_string(i);
    }
  }
  return "";
}

/// Every persistence path — text v1 re-parse, binary v2 streamed read,
/// binary v2 zero-copy mmap attach — must hand back the ORIGINAL pool
/// bit-for-bit, and solves on the reloaded pools must be bit-identical to
/// solves on the original at every parallelism level. This is the
/// round-trip certificate behind `imc_cli --save-pool/--load-pool`.
std::optional<std::string> check_pool_roundtrip(const InstanceSpec& spec,
                                                std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  RicPool original(graph, communities, spec.model);
  original.grow(count, case_seed, /*parallel=*/false);

  // Leg 1: text v1 through a string stream.
  std::stringstream text;
  write_ric_pool(text, original);
  const RicPool from_text = read_ric_pool(text, graph, communities);

  // Leg 2: binary v2, streamed read with full validation.
  std::stringstream binary;
  write_ric_pool_snapshot(binary, original);
  const RicPool from_stream =
      read_ric_pool_snapshot(binary, graph, communities);

  // Leg 3: binary v2, zero-copy mmap attach from a real file. The file is
  // unlinked immediately after the attach — the mapping must pin it.
  char path[] = "/tmp/imc_fuzz_pool_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return "mkstemp failed for the mmap round-trip leg";
  ::close(fd);
  std::optional<RicPool> from_mmap;
  std::string attach_error;
  try {
    save_ric_pool_snapshot(path, original);
    from_mmap.emplace(attach_ric_pool_snapshot(path, graph, communities));
  } catch (const std::exception& e) {
    attach_error = e.what();
  }
  std::remove(path);
  if (!from_mmap) return "mmap attach leg failed: " + attach_error;
  if (!from_mmap->attached()) {
    return "mmap attach leg did not produce a zero-copy attached pool";
  }

  const struct {
    const char* name;
    const RicPool* pool;
  } legs[] = {{"text-v1", &from_text},
              {"binary-v2-streamed", &from_stream},
              {"binary-v2-mmap", &*from_mmap}};
  for (const auto& leg : legs) {
    const std::string diff = pool_content_diff(*leg.pool, original);
    if (!diff.empty()) {
      return std::string(leg.name) + " round-trip not bit-identical: " +
             diff;
    }
  }
  // The binary format persists the epoch watermark exactly.
  if (from_stream.grow_epoch().samples != original.grow_epoch().samples ||
      from_stream.grow_epoch().grows != original.grow_epoch().grows ||
      from_mmap->grow_epoch().grows != original.grow_epoch().grows) {
    return "binary v2 round-trip lost the epoch watermark";
  }

  // Solves on the reloaded pools, across the thread grid {1, 2, 8}: same
  // arenas must mean the same deterministic selection, bit for bit.
  ThreadPool two(2);
  ThreadPool eight(8);
  const GreedyOptions serial{};
  const GreedyOptions par2{/*parallel=*/true, &two,
                           /*min_parallel_candidates=*/1};
  const GreedyOptions par8{/*parallel=*/true, &eight,
                           /*min_parallel_candidates=*/1};
  Rng rng(case_seed ^ 0x9001f11eULL);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));
  for (const GreedyOptions* options : {&serial, &par2, &par8}) {
    const UbgSolution want_ubg = ubg_solve(original, k, *options);
    const MafSolution want_maf =
        maf_solve(original, k, /*seed=*/case_seed, *options);
    for (const auto& leg : legs) {
      const UbgSolution got_ubg = ubg_solve(*leg.pool, k, *options);
      if (got_ubg.seeds != want_ubg.seeds ||
          got_ubg.c_hat != want_ubg.c_hat) {
        return std::string(leg.name) + ": ubg_solve diverged (seeds " +
               describe_nodes(got_ubg.seeds) + " vs " +
               describe_nodes(want_ubg.seeds) + ", " +
               (options->parallel ? "parallel" : "serial") + ")";
      }
      const MafSolution got_maf =
          maf_solve(*leg.pool, k, /*seed=*/case_seed, *options);
      if (got_maf.seeds != want_maf.seeds ||
          got_maf.c_hat != want_maf.c_hat) {
        return std::string(leg.name) + ": maf_solve diverged (seeds " +
               describe_nodes(got_maf.seeds) + " vs " +
               describe_nodes(want_maf.seeds) + ", " +
               (options->parallel ? "parallel" : "serial") + ")";
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: delta_vs_rebuild
// ---------------------------------------------------------------------------

/// Draws a random GraphDelta that keeps the instance valid for sampling:
/// removals and weight decreases of existing edges, insertions bounded by
/// the target's LT in-weight headroom (conservative under IC too), and
/// membership moves that keep every community non-empty, at or under the
/// 64-member cap and above its threshold.
GraphDelta random_delta(const Graph& graph, const CommunitySet& communities,
                        Rng& rng) {
  GraphDelta delta;
  const NodeId n = graph.node_count();
  const auto edge_ops = static_cast<int>(rng.between(1, 3));
  for (int i = 0; i < edge_ops; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const auto out = graph.out_neighbors(u);
    if (!out.empty() && rng.bernoulli(0.6)) {
      const Neighbor nb = out[rng.below(out.size())];
      if (rng.bernoulli(0.5)) {
        delta.remove_edge(u, nb.node);
      } else {
        delta.upsert_edge(u, nb.node,
                          static_cast<double>(nb.weight) *
                              rng.uniform(0.3, 0.9));
      }
      continue;
    }
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    double in_sum = 0.0;
    for (const Neighbor& in : graph.in_neighbors(v)) in_sum += in.weight;
    const double headroom = 1.0 - in_sum;
    if (headroom <= 0.01) continue;
    delta.upsert_edge(u, v, headroom * rng.uniform(0.1, 0.5));
  }

  std::vector<NodeId> population(communities.size());
  for (CommunityId c = 0; c < communities.size(); ++c) {
    population[c] = communities.population(c);
  }
  std::vector<bool> moved(n, false);
  const auto move_ops = static_cast<int>(rng.between(0, 2));
  for (int i = 0; i < move_ops; ++i) {
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (moved[v]) continue;
    const CommunityId from = communities.community_of(v);
    if (from == kInvalidCommunity) continue;
    const auto to = static_cast<CommunityId>(rng.below(communities.size()));
    if (to == from) continue;
    if (population[from] < 2 ||
        communities.threshold(from) > population[from] - 1) {
      continue;
    }
    if (population[to] + 1 > kMaxCommunityPopulation) continue;
    delta.move_member(v, to);
    moved[v] = true;
    --population[from];
    ++population[to];
  }
  return delta;
}

/// Random delta streams interleaved with solves: three live pools repaired
/// at threads {1, 2, 8} must each stay bit-identical to a from-scratch
/// rebuild on the mutated structures — arenas, counters AND the CSR index
/// — and UBG/MAF selections on the repaired pools must match the rebuilt
/// pool seed-for-seed, ĉ- and ν-exactly, at every parallelism level. This
/// is the differential certificate behind RicPool::invalidate_and_repair
/// (DESIGN.md §16).
std::optional<std::string> check_delta_vs_rebuild(const InstanceSpec& spec,
                                                  std::uint64_t case_seed) {
  Graph graph = spec.build_graph();
  CommunitySet communities = spec.build_communities();
  const std::uint64_t count = pool_size_for(case_seed);

  ThreadPool two(2);
  ThreadPool eight(8);
  struct Leg {
    const char* name;
    bool parallel;
    ThreadPool* workers;
    GreedyOptions options;
    RicPool pool;
  };
  Leg legs[] = {
      {"threads=1", false, nullptr, GreedyOptions{},
       RicPool(graph, communities, spec.model)},
      {"threads=2", true, &two,
       GreedyOptions{/*parallel=*/true, &two, /*min_parallel_candidates=*/1},
       RicPool(graph, communities, spec.model)},
      {"threads=8", true, &eight,
       GreedyOptions{/*parallel=*/true, &eight,
                     /*min_parallel_candidates=*/1},
       RicPool(graph, communities, spec.model)},
  };
  for (Leg& leg : legs) {
    leg.pool.grow(count, case_seed, leg.parallel, leg.workers);
  }

  Rng rng(case_seed ^ 0xde17a5ULL);
  const auto k = static_cast<std::uint32_t>(
      rng.between(1, std::min<std::int64_t>(4, graph.node_count())));
  for (int round = 0; round < 2; ++round) {
    const std::string at = " (round " + std::to_string(round + 1) + ")";
    const GraphDelta delta = random_delta(graph, communities, rng);
    const DeltaEffects effects = apply_delta(graph, communities, delta);

    std::uint64_t repaired[3];
    for (std::size_t i = 0; i < 3; ++i) {
      repaired[i] = legs[i]
                        .pool
                        .invalidate_and_repair(effects, case_seed,
                                               legs[i].parallel,
                                               legs[i].workers)
                        .repaired;
    }
    if (repaired[1] != repaired[0] || repaired[2] != repaired[0]) {
      return "repair count diverged across thread counts" + at;
    }

    RicPool rebuilt(graph, communities, spec.model);
    rebuilt.grow(count, case_seed, /*parallel=*/false);
    for (const Leg& leg : legs) {
      const std::string diff = pool_content_diff(leg.pool, rebuilt);
      if (!diff.empty()) {
        return std::string(leg.name) +
               " repaired pool not bit-identical to rebuild: " + diff + at;
      }
    }

    // Interleaved solves: the repaired pools must select exactly what the
    // rebuilt pool selects, at their own parallelism level.
    const UbgSolution want_ubg = ubg_solve(rebuilt, k, GreedyOptions{});
    const MafSolution want_maf =
        maf_solve(rebuilt, k, /*seed=*/case_seed, GreedyOptions{});
    for (const Leg& leg : legs) {
      const UbgSolution got_ubg = ubg_solve(leg.pool, k, leg.options);
      if (got_ubg.seeds != want_ubg.seeds ||
          got_ubg.c_hat != want_ubg.c_hat ||
          got_ubg.from_nu.seeds != want_ubg.from_nu.seeds ||
          got_ubg.from_nu.nu != want_ubg.from_nu.nu) {
        return std::string(leg.name) + ": ubg_solve on repaired pool " +
               "diverged from rebuild (seeds " +
               describe_nodes(got_ubg.seeds) + " vs " +
               describe_nodes(want_ubg.seeds) + ")" + at;
      }
      const MafSolution got_maf =
          maf_solve(leg.pool, k, /*seed=*/case_seed, leg.options);
      if (got_maf.seeds != want_maf.seeds ||
          got_maf.c_hat != want_maf.c_hat) {
        return std::string(leg.name) + ": maf_solve on repaired pool " +
               "diverged from rebuild (seeds " +
               describe_nodes(got_maf.seeds) + " vs " +
               describe_nodes(want_maf.seeds) + ")" + at;
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Check: sampler_distribution
// ---------------------------------------------------------------------------

std::optional<std::string> check_sampler_distribution(
    const InstanceSpec& spec, std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();

  // Only enumerably tiny instances have ground truth; everything else is
  // counted as skipped by the runner (we signal that with nullopt after
  // zero work — the runner inspects instance size itself for accounting).
  const std::vector<NodeId> seeds =
      graph.node_count() >= 2 ? std::vector<NodeId>{0, 1}
                              : std::vector<NodeId>{0};
  const auto exact = enumerate_exact(graph, communities, seeds, spec.model,
                                     1ULL << 12);
  if (!exact) return std::nullopt;

  constexpr std::uint64_t kSamples = 1200;
  const double b = communities.total_benefit();

  // Mean bands: 6σ using the exact per-sample variance for ĉ (Bernoulli)
  // and the [0,1]-variable bound var <= q(1-q) for ν. False-trigger odds
  // per band are ~1e-9 — negligible across any plausible number of runs.
  const double p = std::clamp(exact->c / b, 0.0, 1.0);
  const double q = std::clamp(exact->nu / b, 0.0, 1.0);
  const double c_tol =
      6.0 * b * std::sqrt(p * (1.0 - p) / static_cast<double>(kSamples)) +
      1e-9;
  const double nu_tol =
      6.0 * b * std::sqrt(q * (1.0 - q) / static_cast<double>(kSamples)) +
      1e-9;

  // Naive per-edge-Bernoulli sampler vs ground truth.
  ReferencePool naive(graph, communities);
  Rng rng(case_seed ^ 0x9a17eULL);
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    naive.add(naive_ric_sample(graph, communities, spec.model, rng));
  }
  if (std::abs(naive.c_hat(seeds) - exact->c) > c_tol) {
    return "naive sampler c_hat " + std::to_string(naive.c_hat(seeds)) +
           " outside 6-sigma of exact " + std::to_string(exact->c);
  }
  if (std::abs(naive.nu(seeds) - exact->nu) > nu_tol) {
    return "naive sampler nu " + std::to_string(naive.nu(seeds)) +
           " outside 6-sigma of exact " + std::to_string(exact->nu);
  }

  // Optimized sampler (geometric skip + bit-parallel masks) vs the same
  // ground truth — the distribution-level certificate for the fast paths.
  RicPool pool(graph, communities, spec.model);
  pool.grow(kSamples, case_seed ^ 0x0911edULL, /*parallel=*/false);
  if (std::abs(pool.c_hat(seeds) - exact->c) > c_tol) {
    return "RicSampler c_hat " + std::to_string(pool.c_hat(seeds)) +
           " outside 6-sigma of exact " + std::to_string(exact->c);
  }
  if (std::abs(pool.nu(seeds) - exact->nu) > nu_tol) {
    return "RicSampler nu " + std::to_string(pool.nu(seeds)) +
           " outside 6-sigma of exact " + std::to_string(exact->nu);
  }

  // Source communities ~ Binomial(kSamples, b_c / b) for both samplers
  // (alias table and CDF scan must draw the same rho distribution).
  for (CommunityId c = 0; c < communities.size(); ++c) {
    const double pc = communities.benefit(c) / b;
    const double expectation = static_cast<double>(kSamples) * pc;
    const double band =
        6.0 * std::sqrt(static_cast<double>(kSamples) * pc * (1.0 - pc)) +
        1.0;
    for (const std::uint32_t freq :
         {naive.community_frequency(c), pool.community_frequency(c)}) {
      if (std::abs(static_cast<double>(freq) - expectation) > band) {
        return std::string("community_frequency(") + std::to_string(c) +
               ") outside binomial band";
      }
    }
  }
  return std::nullopt;
}

/// True when the instance is small enough for enumerate_exact to succeed —
/// used only for skip accounting, mirroring check_sampler_distribution.
bool distribution_checkable(const InstanceSpec& spec) {
  if (spec.model == DiffusionModel::kIndependentCascade) {
    const Graph graph = spec.build_graph();
    return graph.edge_count() <= 12;
  }
  const Graph graph = spec.build_graph();
  std::uint64_t outcomes = 1;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const std::uint64_t radix = graph.in_neighbors(v).size() + 1;
    if (outcomes > (1ULL << 12) / radix) return false;
    outcomes *= radix;
  }
  return true;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

}  // namespace

std::vector<FuzzCheck> default_checks() {
  return {
      {"pool_layout", check_pool_layout},
      {"append_path", check_append_path},
      {"evaluators", check_evaluators},
      {"greedy", check_greedy},
      {"kernel_variants", check_kernel_variants},
      {"warm_vs_cold", check_warm_vs_cold},
      {"pipelined_vs_serial", check_pipelined_vs_serial},
      {"pool_roundtrip", check_pool_roundtrip},
      {"delta_vs_rebuild", check_delta_vs_rebuild},
      {"sampler_distribution", check_sampler_distribution},
  };
}

FuzzConfig fuzz_config_from_env() {
  FuzzConfig config;
  config.cases =
      static_cast<std::uint32_t>(env_u64("IMC_FUZZ_CASES", config.cases));
  config.base_seed = env_u64("IMC_FUZZ_SEED", config.base_seed);
  if (std::getenv("IMC_FUZZ_CASE_SEED") != nullptr) {
    config.case_seed_override = env_u64("IMC_FUZZ_CASE_SEED", 0);
  }
  return config;
}

std::string FuzzReport::summary() const {
  std::ostringstream out;
  out << cases_run << " cases, " << checks_run << " checks ("
      << checks_skipped << " skipped), " << failures.size() << " failure"
      << (failures.size() == 1 ? "" : "s");
  for (const FuzzFailure& f : failures) {
    out << "\n  [" << f.check << "] seed=" << f.case_seed << " "
        << f.shrunk.summary() << ": " << f.message;
  }
  return out.str();
}

namespace {

/// Runs one check, folding exceptions into failure messages: a throw from
/// an optimized path on a valid instance is a finding, not a harness
/// error.
std::optional<std::string> run_check(const FuzzCheck& check,
                                     const InstanceSpec& spec,
                                     std::uint64_t case_seed) {
  try {
    return check.run(spec, case_seed);
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
}

}  // namespace

FuzzReport run_differential_fuzz(const FuzzConfig& config,
                                 std::span<const FuzzCheck> checks,
                                 std::ostream* log) {
  FuzzReport report;
  const std::uint32_t cases =
      config.case_seed_override ? 1 : config.cases;
  for (std::uint32_t i = 0; i < cases; ++i) {
    const std::uint64_t case_seed =
        config.case_seed_override ? *config.case_seed_override
                                  : fuzz_case_seed(config.base_seed, i);
    Rng rng(case_seed);
    const InstanceSpec spec = random_instance(config.distribution, rng);
    ++report.cases_run;
    if (!spec.valid()) {
      FuzzFailure failure;
      failure.check = "instance_generator";
      failure.case_seed = case_seed;
      failure.message = "random_instance produced an invalid spec";
      failure.shrunk = spec;
      failure.repro = repro_snippet(spec, case_seed, failure.check);
      report.failures.push_back(std::move(failure));
      if (report.failures.size() >= config.max_failures) break;
      continue;
    }
    for (const FuzzCheck& check : checks) {
      if (check.name == "sampler_distribution" &&
          !distribution_checkable(spec)) {
        ++report.checks_skipped;
        continue;
      }
      ++report.checks_run;
      std::optional<std::string> message = run_check(check, spec, case_seed);
      if (!message) continue;

      FuzzFailure failure;
      failure.check = check.name;
      failure.case_seed = case_seed;
      failure.message = *message;
      failure.shrunk = spec;
      if (config.max_shrink_evaluations > 0) {
        const ShrinkResult shrunk = shrink_instance(
            spec,
            [&check](const InstanceSpec& candidate, std::uint64_t seed) {
              return run_check(check, candidate, seed).has_value();
            },
            case_seed, config.max_shrink_evaluations);
        failure.shrunk = shrunk.spec;
        failure.shrink_evaluations = shrunk.evaluations;
        // Report the message of the SHRUNK instance — it names the exact
        // node/sample of the minimal counterexample.
        if (auto small = run_check(check, shrunk.spec, case_seed)) {
          failure.message = *small;
        }
      }
      failure.repro =
          repro_snippet(failure.shrunk, case_seed, failure.check);
      if (log != nullptr) {
        *log << "[fuzz] FAIL " << failure.check
             << " case_seed=" << failure.case_seed << "\n"
             << "  original: " << spec.summary() << "\n"
             << "  shrunk:   " << failure.shrunk.summary() << " ("
             << failure.shrink_evaluations << " shrink evals)\n"
             << "  " << failure.message << "\n"
             << failure.repro;
      }
      report.failures.push_back(std::move(failure));
      if (report.failures.size() >= config.max_failures) return report;
    }
  }
  return report;
}

}  // namespace imc::testing
