// Sample-complexity bounds from the paper §V-A:
//   * Lemma 6 martingale tail bounds on ĉ_R vs c,
//   * Corollaries 1 & 2 minimum |R| values,
//   * Theorem 6 / eq. (22): the hard cap Ψ on the number of RIC samples,
//     using the optimum lower bound c(S*) >= β·k/h,
//   * Λ of Alg. 5 (SSA stop-stage trigger) and Λ' of Alg. 6 (Dagum).
#pragma once

#include <cstdint>

namespace imc {

/// ε/δ split used by IMCAF. Paper §VI-A uses ε = δ = 0.2,
/// ε1 = ε2 = ε/2 for the Ψ bound and ε1 = ε2 = ε3 = ε/4 in the SSA loop.
struct ApproxParams {
  double epsilon = 0.2;
  double delta = 0.2;

  [[nodiscard]] double eps1() const noexcept { return epsilon / 2; }
  [[nodiscard]] double eps2() const noexcept { return epsilon / 2; }
  [[nodiscard]] double delta1() const noexcept { return delta / 2; }
  [[nodiscard]] double delta2() const noexcept { return delta / 2; }

  // SSA-loop split (line 3 of Alg. 5): ε >= ε1 + ε2 + ε3 + ε1·ε2.
  [[nodiscard]] double ssa_eps1() const noexcept { return epsilon / 4; }
  [[nodiscard]] double ssa_eps2() const noexcept { return epsilon / 4; }
  [[nodiscard]] double ssa_eps3() const noexcept { return epsilon / 4; }
};

/// Lemma 6 upper-tail bound: Pr[ĉ(S) > (1+ε)·c(S)] <= exp(−R ε² c(S) / (3b)).
[[nodiscard]] double lemma6_upper_tail(double samples, double eps, double b,
                                       double c_of_s);

/// Lemma 6 lower-tail bound: Pr[ĉ(S) < (1−ε)·c(S)] <= exp(−R ε² c(S) / (2b)).
[[nodiscard]] double lemma6_lower_tail(double samples, double eps, double b,
                                       double c_of_s);

/// Corollary 1: |R| >= 2 b ln(1/δ1) / (ε1² c(S*)).
[[nodiscard]] double corollary1_samples(double b, double c_opt_lower,
                                        double eps1, double delta1);

/// Corollary 2: |R| >= 3 b ln(C(n,k)/δ2) / (α² ε2² c(S*)).
[[nodiscard]] double corollary2_samples(std::uint64_t n, std::uint32_t k,
                                        double b, double c_opt_lower,
                                        double alpha, double eps2,
                                        double delta2);

/// Ψ of eq. (22): the max of the two corollary bounds with the optimum
/// replaced by its lower bound c(S*) >= β·k/h (β = min benefit, h = max
/// threshold). Requires k >= 1; saturates instead of overflowing.
[[nodiscard]] std::uint64_t psi_sample_cap(std::uint64_t n, std::uint32_t k,
                                           double b, double beta,
                                           std::uint32_t h, double alpha,
                                           const ApproxParams& params);

/// Λ of Alg. 5 line 4: (1+ε1)(1+ε2) · (3/ε3²) · ln(3/(2δ)); the minimum
/// number of INFLUENCED samples required before a stop-stage check fires.
[[nodiscard]] double ssa_lambda(const ApproxParams& params);

/// Λ' of Alg. 6 (Dagum stopping rule):
/// 1 + 4(e−2)·ln(2/δ')·(1+ε')/ε'².
[[nodiscard]] double dagum_lambda_prime(double eps_prime, double delta_prime);

}  // namespace imc
