// Uniform façade for evaluating the quality of a seed set, used by the
// benchmark harness so every algorithm (ours and baselines) is scored by
// the same estimator, exactly as the paper does ("to evaluate the benefit
// of influenced communities, we used Dagum estimation with the same ε, δ").
#pragma once

#include <span>

#include "community/community_set.h"
#include "estimation/dagum.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

class BenefitOracle {
 public:
  BenefitOracle(const Graph& graph, const CommunitySet& communities,
                DagumOptions options = {})
      : graph_(&graph), communities_(&communities), options_(options) {}

  /// Dagum-estimated c(S); falls back to the running mean when T_max hits.
  [[nodiscard]] double benefit(std::span<const NodeId> seeds) const {
    return dagum_estimate_benefit(*graph_, *communities_, seeds, options_)
        .value;
  }

  [[nodiscard]] const DagumOptions& options() const noexcept {
    return options_;
  }

 private:
  const Graph* graph_;
  const CommunitySet* communities_;
  DagumOptions options_;
};

}  // namespace imc
