#include "estimation/dagum.h"

#include <cmath>
#include <vector>

#include "estimation/concentration.h"
#include "sampling/ric_sample.h"
#include "util/rng.h"

namespace imc {

namespace {

DagumEstimate dagum_estimate_impl(const Graph& graph,
                                  const CommunitySet& communities,
                                  std::span<const NodeId> seeds,
                                  const DagumOptions& options,
                                  const ExecutionContext* context) {
  DagumEstimate result;
  if (communities.empty()) return result;

  const double lambda_prime =
      dagum_lambda_prime(options.eps_prime, options.delta_prime);
  const double b = communities.total_benefit();

  // Dense seed bitmap for O(1) membership tests inside the sample scan.
  std::vector<std::uint8_t> is_seed(graph.node_count(), 0);
  for (const NodeId v : seeds) is_seed.at(v) = 1;

  RicSampler sampler(graph, communities, options.model);
  Rng rng(options.seed);

  std::uint64_t influenced = 0;
  for (std::uint64_t t = 1; t <= options.max_samples; ++t) {
    // Coarse cooperative polling: one stop_requested() check per 64 draws
    // keeps the overhead invisible next to the sample generation itself.
    if (context != nullptr && t % 64 == 0 && context->stop_requested()) {
      result.reached_deadline = true;
      break;
    }
    const RicSample g = sampler.generate(rng);
    // tmp of Alg. 6: members of C_g reached by the seed set.
    std::uint64_t covered = 0;
    for (const auto& [node, mask] : g.touching) {
      if (is_seed[node]) covered |= mask;
    }
    if (static_cast<std::uint32_t>(__builtin_popcountll(covered)) >=
        g.threshold) {
      ++influenced;
    }
    result.samples = t;
    if (static_cast<double>(influenced) >= lambda_prime) {
      result.value = b * lambda_prime / static_cast<double>(t);
      result.converged = true;
      return result;
    }
  }
  // T_max exhausted (or the deadline hit): report the plain unbiased
  // running estimate.
  result.value = result.samples == 0
                     ? 0.0
                     : b * static_cast<double>(influenced) /
                           static_cast<double>(result.samples);
  result.converged = false;
  return result;
}

}  // namespace

DagumEstimate dagum_estimate_benefit(const Graph& graph,
                                     const CommunitySet& communities,
                                     std::span<const NodeId> seeds,
                                     const DagumOptions& options) {
  return dagum_estimate_impl(graph, communities, seeds, options, nullptr);
}

DagumEstimate dagum_estimate_benefit(const Graph& graph,
                                     const CommunitySet& communities,
                                     std::span<const NodeId> seeds,
                                     const DagumOptions& options,
                                     const ExecutionContext& context) {
  return dagum_estimate_impl(graph, communities, seeds, options, &context);
}

}  // namespace imc
