// The full Dagum–Karp–Luby–Ross "Approximation Algorithm" (AA) — the
// optimal Monte-Carlo estimator of which the Stopping Rule (Alg. 6 /
// estimation/dagum.h) is only the first phase.
//
// Three phases (DKLR 2000, §2):
//   1. Stopping Rule with (min(1/2, √ε), δ/3) -> rough mean μ̂.
//   2. Variance estimation from paired samples  -> ρ̂ = max(S/N, ε·μ̂).
//   3. Final run with N = Υ₂·ρ̂/μ̂² samples      -> μ̃, the output.
// Guarantees Pr[|μ̃ − μ| <= ε·μ] >= 1 − δ with an expected sample count
// within a constant factor of optimal — better than the plain stopping
// rule when the per-sample variance is far below the mean.
//
// Here the random variable is X_g(S) ∈ {0, 1} over random RIC samples, so
// μ = c(S)/b (Lemma 1) and the returned estimate is scaled back by b.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

struct DklrAaOptions {
  double epsilon = 0.1;  // relative error
  double delta = 0.1;    // failure probability
  std::uint64_t max_samples = 5'000'000;  // total across all phases
  std::uint64_t seed = 131;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
};

struct DklrAaEstimate {
  double value = 0.0;            // estimated c(S)
  double mu_hat = 0.0;           // phase-1 rough mean (of X, unscaled)
  double rho_hat = 0.0;          // phase-2 variance proxy
  std::uint64_t samples = 0;     // total samples drawn
  bool converged = false;
};

/// Generic AA over a [0, 1]-valued sampler. `draw()` must return fresh
/// i.i.d. realizations.
[[nodiscard]] DklrAaEstimate dklr_aa_estimate(
    const std::function<double()>& draw, const DklrAaOptions& options);

/// AA instantiated for the expected community benefit c(S).
[[nodiscard]] DklrAaEstimate dklr_aa_estimate_benefit(
    const Graph& graph, const CommunitySet& communities,
    std::span<const NodeId> seeds, const DklrAaOptions& options = {});

}  // namespace imc
