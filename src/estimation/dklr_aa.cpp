#include "estimation/dklr_aa.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sampling/ric_sample.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace imc {

namespace {

constexpr double kE = 2.718281828459045;

struct Budget {
  std::uint64_t remaining;
  bool exhausted = false;

  bool take() noexcept {
    if (remaining == 0) {
      exhausted = true;
      return false;
    }
    --remaining;
    return true;
  }
};

/// Phase 1: DKLR stopping rule for mean estimation with (eps, delta).
/// Returns 0 mean if the budget dies first.
double stopping_rule(const std::function<double()>& draw, double eps,
                     double delta, Budget& budget, std::uint64_t& used) {
  const double upsilon =
      4.0 * (kE - 2.0) * std::log(2.0 / delta) / (eps * eps);
  const double upsilon1 = 1.0 + (1.0 + eps) * upsilon;
  double sum = 0.0;
  std::uint64_t t = 0;
  while (sum < upsilon1) {
    if (!budget.take()) return 0.0;
    sum += draw();
    ++t;
  }
  used += t;
  return upsilon1 / static_cast<double>(t);
}

}  // namespace

DklrAaEstimate dklr_aa_estimate(const std::function<double()>& draw,
                                const DklrAaOptions& options) {
  const double eps = options.epsilon;
  const double delta = options.delta;
  if (eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("dklr_aa_estimate: eps, delta in (0, 1)");
  }

  DklrAaEstimate result;
  Budget budget{options.max_samples};
  std::uint64_t used = 0;

  // --- Phase 1: rough mean with loosened accuracy min(1/2, sqrt(eps)).
  const double eps1 = std::min(0.5, std::sqrt(eps));
  result.mu_hat = stopping_rule(draw, eps1, delta / 3.0, budget, used);
  if (budget.exhausted || result.mu_hat <= 0.0) {
    result.samples = options.max_samples - budget.remaining;
    return result;  // converged stays false
  }

  // --- Phase 2: variance proxy from paired differences.
  const double upsilon =
      4.0 * (kE - 2.0) * std::log(2.0 / (delta / 3.0)) / (eps * eps);
  const double upsilon2 = 2.0 * (1.0 + std::sqrt(eps)) *
                          (1.0 + 2.0 * std::sqrt(eps)) *
                          (1.0 + std::log(1.5) / std::log(2.0 / delta)) *
                          upsilon;
  const auto pairs = static_cast<std::uint64_t>(
      std::ceil(std::max(1.0, upsilon2 * eps / result.mu_hat)));
  KahanSum spread;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    if (!budget.take() || !budget.take()) {
      result.samples = options.max_samples - budget.remaining;
      return result;
    }
    const double a = draw();
    const double b = draw();
    spread.add((a - b) * (a - b) / 2.0);
    used += 2;
  }
  result.rho_hat = std::max(spread.value() / static_cast<double>(pairs),
                            eps * result.mu_hat);

  // --- Phase 3: final mean with the variance-tuned sample count.
  const auto final_count = static_cast<std::uint64_t>(std::ceil(
      std::max(1.0, upsilon2 * result.rho_hat /
                        (result.mu_hat * result.mu_hat))));
  KahanSum total;
  for (std::uint64_t i = 0; i < final_count; ++i) {
    if (!budget.take()) {
      result.samples = options.max_samples - budget.remaining;
      return result;
    }
    total.add(draw());
    ++used;
  }
  result.value = total.value() / static_cast<double>(final_count);
  result.samples = used;
  result.converged = true;
  return result;
}

DklrAaEstimate dklr_aa_estimate_benefit(const Graph& graph,
                                        const CommunitySet& communities,
                                        std::span<const NodeId> seeds,
                                        const DklrAaOptions& options) {
  DklrAaEstimate empty;
  if (communities.empty()) return empty;

  std::vector<std::uint8_t> is_seed(graph.node_count(), 0);
  for (const NodeId v : seeds) is_seed.at(v) = 1;

  RicSampler sampler(graph, communities, options.model);
  Rng rng(options.seed);
  const auto draw = [&]() -> double {
    const RicSample g = sampler.generate(rng);
    std::uint64_t covered = 0;
    for (const auto& [node, mask] : g.touching) {
      if (is_seed[node]) covered |= mask;
    }
    return popcount64(covered) >= static_cast<int>(g.threshold) ? 1.0 : 0.0;
  };

  DklrAaEstimate result = dklr_aa_estimate(draw, options);
  const double b = communities.total_benefit();
  result.value *= b;  // Lemma 1 scaling: c(S) = b·E[X]
  return result;
}

}  // namespace imc
