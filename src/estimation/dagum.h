// Dagum–Karp–Luby–Ross optimal Monte-Carlo estimation (their Stopping Rule
// Algorithm), instantiated for the expected community benefit c(S) — the
// paper's Estimate procedure (Alg. 6).
//
// Fresh RIC samples are drawn one at a time; we stop when the number of
// samples influenced by S reaches Λ' = 1 + 4(e−2)·ln(2/δ')·(1+ε')/ε'².
// The estimate b·Λ'/T is then within (1±ε')·c(S) with probability >= 1−δ'.
// (Alg. 6 in the paper prints rΛ'/T; the scale factor must be the total
// benefit b by Lemma 1 — with the paper's population benefits and unit
// community sizes the two coincide, so we treat `r` as a typo for `b`.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "community/community_set.h"
#include "diffusion/monte_carlo.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/context.h"

namespace imc {

struct DagumOptions {
  double eps_prime = 0.1;
  double delta_prime = 0.1;
  std::uint64_t max_samples = 2'000'000;  // T_max of Alg. 6
  std::uint64_t seed = 99;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
};

struct DagumEstimate {
  double value = 0.0;        // estimated c(S)
  std::uint64_t samples = 0; // T, samples actually drawn
  bool converged = false;    // false iff T_max hit first (paper returns -1)
  /// The context's deadline expired (or its cancel flag was set) before
  /// Λ' or T_max was reached; `value` is the partial running estimate.
  bool reached_deadline = false;
};

/// Runs the stopping-rule estimator for c(S). A failure to converge leaves
/// `value` at the best running estimate (b·Inf/T) with converged == false.
[[nodiscard]] DagumEstimate dagum_estimate_benefit(
    const Graph& graph, const CommunitySet& communities,
    std::span<const NodeId> seeds, const DagumOptions& options = {});

/// Deadline/cancellation-aware variant: polls context.stop_requested()
/// every 64 draws and winds down with reached_deadline == true and the
/// partial running estimate. With an inactive context this is
/// bit-identical to the overload above (the seed stream is untouched).
[[nodiscard]] DagumEstimate dagum_estimate_benefit(
    const Graph& graph, const CommunitySet& communities,
    std::span<const NodeId> seeds, const DagumOptions& options,
    const ExecutionContext& context);

}  // namespace imc
