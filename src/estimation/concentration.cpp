#include "estimation/concentration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/mathx.h"

namespace imc {

namespace {

void check_eps_delta(double eps, double delta, const char* where) {
  if (eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument(std::string(where) +
                                ": eps and delta must be in (0, 1)");
  }
}

}  // namespace

double lemma6_upper_tail(double samples, double eps, double b,
                         double c_of_s) {
  if (b <= 0.0 || c_of_s <= 0.0) return 1.0;
  return std::exp(-samples * eps * eps * c_of_s / (3.0 * b));
}

double lemma6_lower_tail(double samples, double eps, double b,
                         double c_of_s) {
  if (b <= 0.0 || c_of_s <= 0.0) return 1.0;
  return std::exp(-samples * eps * eps * c_of_s / (2.0 * b));
}

double corollary1_samples(double b, double c_opt_lower, double eps1,
                          double delta1) {
  check_eps_delta(eps1, delta1, "corollary1_samples");
  if (b <= 0.0 || c_opt_lower <= 0.0) {
    throw std::invalid_argument("corollary1_samples: b, c(S*) must be > 0");
  }
  return 2.0 * b * std::log(1.0 / delta1) / (eps1 * eps1 * c_opt_lower);
}

double corollary2_samples(std::uint64_t n, std::uint32_t k, double b,
                          double c_opt_lower, double alpha, double eps2,
                          double delta2) {
  check_eps_delta(eps2, delta2, "corollary2_samples");
  if (b <= 0.0 || c_opt_lower <= 0.0 || alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument(
        "corollary2_samples: b, c(S*) > 0 and alpha in (0, 1] required");
  }
  const double log_choose = log_binomial(n, k);
  return 3.0 * b * (log_choose + std::log(1.0 / delta2)) /
         (alpha * alpha * eps2 * eps2 * c_opt_lower);
}

std::uint64_t psi_sample_cap(std::uint64_t n, std::uint32_t k, double b,
                             double beta, std::uint32_t h, double alpha,
                             const ApproxParams& params) {
  if (k == 0 || h == 0) {
    throw std::invalid_argument("psi_sample_cap: k and h must be >= 1");
  }
  // c(S*) >= β·k/h (paper §V-A): with k seeds we can fully pay the
  // threshold of at least floor(k/h) communities, each worth >= β.
  const double c_opt_lower =
      beta * static_cast<double>(k) / static_cast<double>(h);
  const double bound =
      std::max(corollary1_samples(b, c_opt_lower, params.eps1(),
                                  params.delta1()),
               corollary2_samples(n, k, b, c_opt_lower, alpha, params.eps2(),
                                  params.delta2()));
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::uint64_t>::max() / 2);
  if (!(bound < kMax)) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(std::ceil(bound));
}

double ssa_lambda(const ApproxParams& params) {
  const double e1 = params.ssa_eps1();
  const double e2 = params.ssa_eps2();
  const double e3 = params.ssa_eps3();
  return (1.0 + e1) * (1.0 + e2) * (3.0 / (e3 * e3)) *
         std::log(3.0 / (2.0 * params.delta));
}

double dagum_lambda_prime(double eps_prime, double delta_prime) {
  check_eps_delta(eps_prime, delta_prime, "dagum_lambda_prime");
  constexpr double kE = 2.718281828459045;
  return 1.0 + 4.0 * (kE - 2.0) * std::log(2.0 / delta_prime) *
                   (1.0 + eps_prime) / (eps_prime * eps_prime);
}

}  // namespace imc
