// BenefitOracle is header-only; this translation unit exists so the module
// has a home for future out-of-line additions and keeps the build uniform.
#include "estimation/benefit_oracle.h"
