// Strategy interface for MAXR solvers (paper §IV), pluggable into the
// IMCAF framework (Alg. 5): UBG, MAF, BT, MB — and any future algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"

namespace imc {

struct MaxrSolution {
  std::vector<NodeId> seeds;
  double c_hat = 0.0;  // ĉ_R(seeds) on the pool it was solved against
};

/// Opaque warm-start state a solver may carry across the doubling stages
/// of one IMCAF run (the pool only ever GROWS between stages; appended
/// samples never change existing ids or touches). Concrete solvers define
/// derived types; the engine just ferries the pointer back to the same
/// solver each stage.
struct MaxrResume {
  virtual ~MaxrResume() = default;
};

class MaxrSolver {
 public:
  virtual ~MaxrSolver() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Approximation guarantee α for the MAXR problem, used by the Ψ sample
  /// cap (eq. 22). May depend on k and instance parameters (r, h).
  [[nodiscard]] virtual double alpha(const RicPool& pool,
                                     std::uint32_t k) const = 0;

  [[nodiscard]] virtual MaxrSolution solve(const RicPool& pool,
                                           std::uint32_t k) const = 0;

  /// Solve on a pool that has only grown since `state` was written by this
  /// solver's previous resume() call (null/foreign state means "start
  /// fresh"). Contract: the returned solution is BIT-IDENTICAL to
  /// solve(pool, k) — warm-starting is purely a time optimization, so
  /// implementations without an incremental formulation keep this default,
  /// which discards the state and solves cold.
  [[nodiscard]] virtual MaxrSolution resume(
      const RicPool& pool, std::uint32_t k,
      std::unique_ptr<MaxrResume>& state) const {
    state.reset();
    return solve(pool, k);
  }
};

enum class MaxrAlgorithm { kUbg, kMaf, kBt, kMb };

/// Cross-cutting solver knobs the factory threads into the per-algorithm
/// configs (UBG's greedy sweeps, MAF's evaluation overlap). Algorithms
/// without a parallelizable selection step (BT, MB) ignore `parallel`.
struct MaxrSolverOptions {
  /// Deterministic-parallel marginal-gain sweeps where supported; seed
  /// sets are bit-identical to the serial path for any thread count.
  bool parallel = false;
  /// MAF's in-community member picks (Alg. 3 line 5).
  std::uint64_t maf_seed = 1234;
};

/// Factory with default configurations (see the per-algorithm headers for
/// tunable variants).
[[nodiscard]] std::unique_ptr<MaxrSolver> make_maxr_solver(
    MaxrAlgorithm algorithm, const MaxrSolverOptions& options = {});

[[nodiscard]] std::string to_string(MaxrAlgorithm algorithm);

}  // namespace imc
