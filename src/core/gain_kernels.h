// Explicitly vectorized marginal-gain kernels for the MAXR selection hot
// loops (DESIGN.md §14, "Gain kernels & slab sharding").
//
// Every greedy/CELF round reduces to one of three sweep primitives:
//
//   * accumulate_influenced_gains — sample-major ĉ pass: for each live
//     (non-saturated) sample, bump gains[v] for every toucher v whose mask
//     lifts the sample past its threshold (popcount(cov | mask) >= h).
//   * accumulate_nu_gains — sample-major ν pass: add each touch's
//     fraction-table delta row[popcount(cov | mask)] - base_g into
//     gains[v], where base_g is the PRECOMPUTED per-sample base fraction
//     (CoverageState maintains nu_base so the kernel is a pure
//     gather-subtract — no per-sample popcount of the covered word).
//   * marginal_nu — node-major CSR probe: one node's ν gain, accumulated
//     left-to-right over its (sample-sorted) touch span.
//
// All three are memory/popcount-bound over 64-bit member masks, so this
// layer provides explicit SIMD variants selected once at runtime:
//
//   kScalar  portable baseline — THE reference implementation every other
//            variant is pinned against (bit-identical, enforced by
//            tests/core/gain_kernel_test.cpp and the differential fuzzer)
//   kPopcnt  same code compiled with the POPCNT ISA extension (hardware
//            popcount instead of the ~12-op SWAR sequence)
//   kAvx2    cov | mask + popcount batched 4 samples per iteration via the
//            vpshufb nibble-LUT popcount
//   kAvx512  8 per iteration via native vpopcntq (requires AVX-512
//            F/BW/VL + VPOPCNTDQ)
//
// Shared by all variants: a word-at-a-time saturation skip — the outer
// loop walks the saturation bitmap one 64-sample word at a time and
// early-continues on all-saturated words, so dead slabs cost one load per
// 64 samples instead of one test per sample.
//
// Dispatch: the best supported variant wins by default; the IMC_KERNEL
// environment variable (scalar|popcnt|avx2|avx512) overrides it for
// testing, and set_gain_kernel() overrides it programmatically. Variants
// are bit-identical by construction — integer popcounts are exact, the ν
// deltas are the same table doubles subtracted in the same per-node
// order — so selection results never depend on the dispatch decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

#include "graph/types.h"
#include "sampling/ric_pool.h"

namespace imc {

/// Which implementation family a kernel table uses. Order is "strength":
/// dispatch picks the highest supported value.
enum class GainKernelKind : std::uint8_t {
  kScalar = 0,
  kPopcnt = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Sample-major sweep inputs: per-sample state owned by CoverageState plus
/// the pool's sample-major arena. Raw pointers — the kernel layer sits
/// below CoverageState and borrows everything for the duration of a call.
struct SampleGainView {
  const std::uint64_t* covered = nullptr;    // per sample: reached mask
  const std::uint64_t* saturated = nullptr;  // bitmap, 1 bit per sample
  const std::uint32_t* thresholds = nullptr;         // per sample: h_g
  const double* nu_base = nullptr;  // per sample: row_h[popcount(covered)]
  const std::uint64_t* sample_offsets = nullptr;     // size+1 entries
  const std::pair<NodeId, std::uint64_t>* sample_arena = nullptr;
  const double* fraction_table = nullptr;    // nu_fraction_row(0)
};

/// Node-major probe inputs (the CSR touch span comes per call).
struct TouchGainView {
  const std::uint64_t* covered = nullptr;
  const std::uint64_t* saturated = nullptr;
  const double* nu_base = nullptr;           // row_h[popcount(covered)]
  const double* fraction_table = nullptr;
};

/// One variant's entry points. Function pointers, not virtuals: the calls
/// are per-slab / per-candidate, so one indirect call amortizes over
/// thousands of touches.
struct GainKernelOps {
  GainKernelKind kind = GainKernelKind::kScalar;
  const char* name = "scalar";
  void (*accumulate_influenced)(const SampleGainView& view,
                                std::uint32_t begin, std::uint32_t end,
                                std::uint64_t* gains) = nullptr;
  void (*accumulate_nu)(const SampleGainView& view, std::uint32_t begin,
                        std::uint32_t end, double* gains) = nullptr;
  double (*marginal_nu)(const TouchGainView& view,
                        const RicPool::Touch* touches,
                        std::size_t count) = nullptr;
};

/// Whether `kind` can run on this host (kScalar is always true).
[[nodiscard]] bool gain_kernel_supported(GainKernelKind kind) noexcept;

/// The ops table of a SPECIFIC variant. Precondition: supported — throws
/// std::invalid_argument otherwise (tests exercise exactly the supported
/// set via gain_kernel_supported).
[[nodiscard]] const GainKernelOps& gain_kernel_ops(GainKernelKind kind);

/// The active ops table: resolved once on first use from IMC_KERNEL (an
/// unsupported or unrecognized value falls back to the best supported
/// variant with a one-time stderr note), overridable via set_gain_kernel.
[[nodiscard]] const GainKernelOps& active_gain_kernel_ops() noexcept;

/// Kind of the active table.
[[nodiscard]] GainKernelKind active_gain_kernel() noexcept;

/// Forces the active kernel (tests / differential fuzzing). Returns false
/// — leaving the active kernel unchanged — when `kind` is unsupported on
/// this host. Not synchronized against concurrently RUNNING sweeps; call
/// between selections, as the tests do.
bool set_gain_kernel(GainKernelKind kind) noexcept;

/// Display name ("scalar", "popcnt", "avx2", "avx512").
[[nodiscard]] const char* gain_kernel_name(GainKernelKind kind) noexcept;

/// Parses an IMC_KERNEL-style name; nullopt for anything unrecognized.
[[nodiscard]] std::optional<GainKernelKind> parse_gain_kernel(
    std::string_view name) noexcept;

}  // namespace imc
