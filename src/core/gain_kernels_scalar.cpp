// Scalar gain-kernel variant: compiled with the project's baseline flags
// only, so it is the portable reference implementation every SIMD variant
// is pinned against. See gain_kernels_impl.h for the shared code.
#include "core/gain_kernels_registry.h"

#define IMC_GK_NAMESPACE scalar
#define IMC_GK_NAME "scalar"
#define IMC_GK_KIND GainKernelKind::kScalar
#define IMC_GK_VECTOR 0
#include "core/gain_kernels_impl.h"

namespace imc {
namespace gain_detail {

const GainKernelOps* scalar_ops() noexcept { return &scalar::ops(); }

}  // namespace gain_detail
}  // namespace imc
