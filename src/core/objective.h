// Incremental evaluation of the two MAXR objectives over a RicPool:
//   ĉ_R(S)  — count of influenced samples (paper eq. 3, non-submodular),
//   ν_R(S)  — fractional upper bound Σ min(|I_g|/h_g, 1) (eq. 7, submodular).
//
// CoverageState keeps, per sample, the mask of community members currently
// reached by the seed set, so adding one seed and querying one candidate's
// marginal are both O(#samples the node touches).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"

namespace imc {

class CoverageState {
 public:
  explicit CoverageState(const RicPool& pool);

  /// Clears back to the empty seed set.
  void reset();

  /// Adds one seed (idempotent — re-adding is a no-op).
  void add_seed(NodeId v);

  [[nodiscard]] const std::vector<NodeId>& seeds() const noexcept {
    return seeds_;
  }

  // -- current values ------------------------------------------------------
  /// Number of samples with popcount(covered) >= threshold.
  [[nodiscard]] std::uint64_t influenced() const noexcept {
    return influenced_;
  }
  /// Σ_g min(covered_g / h_g, 1) (unnormalized ν; multiply by b/|R|).
  [[nodiscard]] double nu_sum() const noexcept { return nu_sum_; }

  /// ĉ_R(current seeds) in benefit units.
  [[nodiscard]] double c_hat() const noexcept;
  /// ν_R(current seeds) in benefit units.
  [[nodiscard]] double nu() const noexcept;

  // -- candidate marginals (no mutation) ------------------------------------
  /// Increase of influenced() if v were added.
  [[nodiscard]] std::uint64_t marginal_influenced(NodeId v) const;
  /// Increase of nu_sum() if v were added.
  [[nodiscard]] double marginal_nu(NodeId v) const;

  /// Member mask currently covered in sample g.
  [[nodiscard]] std::uint64_t covered_mask(std::uint32_t g) const {
    return covered_.at(g);
  }

  [[nodiscard]] const RicPool& pool() const noexcept { return *pool_; }

 private:
  const RicPool* pool_;
  std::vector<std::uint64_t> covered_;   // per sample: reached member mask
  std::vector<std::uint8_t> is_seed_;    // per node
  std::vector<NodeId> seeds_;
  std::uint64_t influenced_ = 0;
  double nu_sum_ = 0.0;
};

}  // namespace imc
