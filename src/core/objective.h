// Incremental evaluation of the two MAXR objectives over a RicPool:
//   ĉ_R(S)  — count of influenced samples (paper eq. 3, non-submodular),
//   ν_R(S)  — fractional upper bound Σ min(|I_g|/h_g, 1) (eq. 7, submodular).
//
// CoverageState keeps, per sample, the mask of community members currently
// reached by the seed set, so adding one seed and querying one candidate's
// marginal are both O(#samples the node touches).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"
#include "util/mathx.h"

namespace imc {

/// One candidate's marginal gains plus its static tie-break keys. The
/// comparators below define a strict total order (node ids are distinct),
/// so combining per-chunk winners in ANY order yields the same argmax the
/// serial left-to-right sweep finds — the keystone of the deterministic
/// parallel selection.
struct CandidateScore {
  NodeId node = kInvalidNode;
  std::uint64_t influenced_gain = 0;  // Δ #influenced samples (ĉ primary)
  double nu_gain = 0.0;               // Δ ν_sum (ĉ tie-break / ν primary)
  std::uint32_t appearance = 0;       // #samples touched (ĉ tie-break)

  [[nodiscard]] bool valid() const noexcept { return node != kInvalidNode; }
};

/// ĉ order: influenced gain, then ν gain, then appearance count, then
/// smaller node id. An invalid score loses to any valid one.
[[nodiscard]] bool beats_c_hat(const CandidateScore& a,
                               const CandidateScore& b) noexcept;

/// ν order: ν gain, then smaller node id (matches the CELF heap order).
[[nodiscard]] bool beats_nu(const CandidateScore& a,
                            const CandidateScore& b) noexcept;

class CoverageState {
 public:
  explicit CoverageState(const RicPool& pool);

  /// Clears back to the empty seed set.
  void reset();

  /// Adds one seed (idempotent — re-adding is a no-op).
  void add_seed(NodeId v);

  /// Catches the state up with samples grown into the pool since
  /// `from_epoch` (the RicPool::grow_epoch() captured when this state was
  /// last constructed/extended). `pool` must be the state's own pool and
  /// `from_epoch.samples` must equal the sample count the state currently
  /// covers; a stale or foreign epoch throws std::invalid_argument.
  ///
  /// ν accumulation-order contract: the extended state is BITWISE equal
  /// (operator==) to a fresh CoverageState on the grown pool replaying
  /// add_seed over the same seeds in insertion order. Kahan compensation
  /// makes nu_sum_ sensitive to summation order, so extend() does not
  /// splice "new-sample deltas" into the old sum — it replays every seed's
  /// full CSR touch run seed-major (exactly the rebuild's accumulation
  /// sequence) and REPLACES influenced_/nu_sum_ with the replayed values.
  /// Cost is O(Σ touches of the seeds), independent of |R|, via the
  /// epoch-marked scratch below.
  void extend(const RicPool& pool, RicPool::PoolEpoch from_epoch);

  [[nodiscard]] const std::vector<NodeId>& seeds() const noexcept {
    return seeds_;
  }

  /// Whether v is in the current seed set. Hot path: debug-asserted bounds.
  [[nodiscard]] bool is_seed(NodeId v) const {
    assert(v < is_seed_.size());
    return is_seed_[v] != 0;
  }

  // -- current values ------------------------------------------------------
  /// Number of samples with popcount(covered) >= threshold.
  [[nodiscard]] std::uint64_t influenced() const noexcept {
    return influenced_;
  }
  /// Σ_g min(covered_g / h_g, 1) (unnormalized ν; multiply by b/|R|).
  /// Kahan-compensated so hundreds of incremental add_seed deltas stay
  /// within ~1e-12 relative of a from-scratch recomputation (RicPool::nu).
  [[nodiscard]] double nu_sum() const noexcept { return nu_sum_.value(); }

  /// ĉ_R(current seeds) in benefit units.
  [[nodiscard]] double c_hat() const noexcept;
  /// ν_R(current seeds) in benefit units.
  [[nodiscard]] double nu() const noexcept;

  // -- candidate marginals (no mutation) ------------------------------------
  /// Increase of influenced() if v were added.
  [[nodiscard]] std::uint64_t marginal_influenced(NodeId v) const;
  /// Increase of nu_sum() if v were added.
  [[nodiscard]] double marginal_nu(NodeId v) const;

  // -- batch chunk evaluation (no mutation) ---------------------------------
  /// Scores candidates[begin, end) (current seeds skipped) and returns the
  /// slice winner under `beats_c_hat`; invalid when the slice is empty or
  /// all seeds. Each parallel_for chunk runs this over its slice; gains are
  /// computed per node independent of the chunking, so reducing chunk
  /// winners with `beats_c_hat` reproduces the serial sweep bit-for-bit.
  [[nodiscard]] CandidateScore best_candidate_c_hat(
      std::span<const NodeId> candidates, std::size_t begin,
      std::size_t end) const;
  /// Same contract for the ν objective under `beats_nu`.
  [[nodiscard]] CandidateScore best_candidate_nu(
      std::span<const NodeId> candidates, std::size_t begin,
      std::size_t end) const;

  /// Sample-major ĉ marginal pass over samples [begin, end): for every
  /// not-yet-influenced sample, bumps gains[v] by one for each toucher v
  /// whose mask lifts the sample past its threshold. Summed over any
  /// partition of [0, pool size) this reproduces marginal_influenced(v)
  /// exactly for every node (current seeds get 0: their masks are already
  /// folded into covered). The inversion reads each covered mask once
  /// sequentially instead of once per touch at random, and skips dead
  /// samples wholesale; integer accumulation makes chunk sums independent
  /// of the partition, so parallel callers stay deterministic. Executed by
  /// the active gain kernel (core/gain_kernels.h) — SIMD variants are
  /// bit-identical to scalar, so the dispatch never affects results.
  void accumulate_influenced_gains(std::uint32_t begin, std::uint32_t end,
                                   std::uint64_t* gains) const;

  /// Sample-major ν marginal pass over samples [begin, end): adds each
  /// touch's fraction-table delta into gains[v]. Over the FULL range
  /// [0, pool size) in ONE serial call this is bit-identical to
  /// marginal_nu(v) for every node: a node's CSR touches are sorted by
  /// sample id, so the per-node accumulation order — and hence the exact
  /// floating-point association — matches the node-major loop. Chunked
  /// invocations summed slab-wise do NOT reproduce that association;
  /// parallel callers must keep the node-major path instead. Executed by
  /// the active gain kernel, same bit-identity guarantee as above.
  void accumulate_nu_gains(std::uint32_t begin, std::uint32_t end,
                           double* gains) const;

  /// Member mask currently covered in sample g. Hot path: bounds are
  /// debug-asserted, not checked in release builds.
  [[nodiscard]] std::uint64_t covered_mask(std::uint32_t g) const {
    assert(g < covered_.size());
    return covered_[g];
  }

  [[nodiscard]] const RicPool& pool() const noexcept { return *pool_; }

  /// Observable-state equality: same pool, same per-sample coverage and
  /// saturation, same seed set, and the same influenced_/nu_sum_ values
  /// (nu compared by value() — the invariant extend() guarantees
  /// bitwise). The extend-vs-rebuild tests assert with this.
  friend bool operator==(const CoverageState& a, const CoverageState& b);

 private:
  /// (Re)derives nu_base_[from, pool size) from the current covered masks
  /// (row_h[popcount(covered)]; row_h[0] for untouched samples).
  void init_nu_base(std::size_t from);

  const RicPool* pool_;
  /// Base of the precomputed ν fraction table (nu_fraction_row(0)); rows
  /// have stride kMaxNuThreshold + 1. Replaces the per-touch fdiv with an
  /// L1 load — entries are the same doubles the division would produce.
  const double* fraction_table_ = nullptr;
  std::vector<std::uint64_t> covered_;   // per sample: reached member mask
  /// One bit per sample, set once covered reaches the threshold. Saturated
  /// samples contribute exactly 0 to every marginal, so the node-major
  /// sweeps skip them with an L1-resident bit test (the bitmap is |R|/8
  /// bytes) instead of a covered_ load that misses to L2/L3.
  std::vector<std::uint64_t> saturated_;
  /// Per sample: the CURRENT base fraction row_h[popcount(covered)],
  /// maintained on every covered change. The sample-major ν kernel then
  /// does a pure lookup-subtract per touch — no per-sample popcount of the
  /// covered word. Exact invariant (checked by operator==): rows are flat
  /// at 1.0 past h, so skipping updates once saturated still leaves the
  /// stored value equal to the recomputed one.
  std::vector<double> nu_base_;
  std::vector<std::uint8_t> is_seed_;    // per node
  std::vector<NodeId> seeds_;
  std::uint64_t influenced_ = 0;
  KahanSum nu_sum_;  // compensated: matches RicPool::nu's KahanSum
  /// extend() scratch: extend_mark_[g] == extend_epoch_ means covered_[g]
  /// already holds the current replay's running mask (so `before` reads it
  /// instead of 0). Epoch-bumped per extend — no O(|R|) clearing.
  std::vector<std::uint32_t> extend_mark_;
  std::uint32_t extend_epoch_ = 0;
};

}  // namespace imc
