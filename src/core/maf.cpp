#include "core/maf.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace imc {

MafSolution maf_solve(const RicPool& pool, std::uint32_t k,
                      std::uint64_t seed, const GreedyOptions& options) {
  // Same contract as the greedy selectors and bt_solve: an empty budget is
  // a caller bug, not an empty solution (it would silently score 0 and win
  // no max(), masking the mistake downstream in MB).
  if (k == 0) throw std::invalid_argument("maf_solve: k must be >= 1");
  const CommunitySet& communities = pool.communities();
  const NodeId n = pool.graph().node_count();
  Rng rng(seed);

  // -- S_1: communities by source frequency ---------------------------------
  // O(r) read of the counters RicPool maintains during growth (was a full
  // O(|R|) sample scan).
  const std::span<const std::uint32_t> frequency =
      pool.community_frequencies();
  std::vector<CommunityId> order(communities.size());
  for (CommunityId c = 0; c < communities.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](CommunityId a, CommunityId b) {
    if (frequency[a] != frequency[b]) return frequency[a] > frequency[b];
    return a < b;
  });

  MafSolution solution;
  for (const CommunityId c : order) {
    if (solution.s1.size() >= k) break;
    const auto members = communities.members(c);
    const std::uint32_t h = communities.threshold(c);
    // Line 5-6 of Alg. 3: take h random members iff they fit in the budget.
    if (solution.s1.size() + h > k) continue;
    std::vector<NodeId> shuffled(members.begin(), members.end());
    rng.shuffle(std::span<NodeId>(shuffled));
    solution.s1.insert(solution.s1.end(), shuffled.begin(),
                       shuffled.begin() + h);
  }

  // -- S_2: k nodes with the highest appearance counts ----------------------
  // Appearance counts are adjacent CSR offset differences; reading the
  // offsets span directly keeps the sort comparator free of span setup.
  const std::span<const std::uint64_t> offsets = pool.touch_offsets();
  const auto appearance = [&](NodeId v) { return offsets[v + 1] - offsets[v]; };
  std::vector<NodeId> by_appearance;
  by_appearance.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (appearance(v) > 0) by_appearance.push_back(v);
  }
  std::sort(by_appearance.begin(), by_appearance.end(),
            [&](NodeId a, NodeId b) {
              const auto ca = appearance(a);
              const auto cb = appearance(b);
              if (ca != cb) return ca > cb;
              return a < b;
            });
  if (by_appearance.size() > k) by_appearance.resize(k);
  solution.s2 = std::move(by_appearance);

  // -- Line 8: keep the better under ĉ_R ------------------------------------
  double c1 = 0.0;
  double c2 = 0.0;
  if (options.parallel) {
    // The two evaluations are independent full-pool scans; overlap them.
    ThreadPool& workers =
        options.pool != nullptr ? *options.pool : default_pool();
    auto first = workers.submit([&] { c1 = pool.c_hat(solution.s1); });
    c2 = pool.c_hat(solution.s2);
    first.get();
  } else {
    c1 = pool.c_hat(solution.s1);
    c2 = pool.c_hat(solution.s2);
  }
  solution.chose_s1 = c1 >= c2;
  solution.seeds = solution.chose_s1 ? solution.s1 : solution.s2;
  solution.c_hat = solution.chose_s1 ? c1 : c2;
  return solution;
}

double MafSolver::alpha(const RicPool& pool, std::uint32_t k) const {
  const CommunitySet& communities = pool.communities();
  const double r = static_cast<double>(std::max<CommunityId>(
      1, communities.size()));
  const double h =
      static_cast<double>(std::max<std::uint32_t>(1, communities.max_threshold()));
  const double ratio =
      std::floor(static_cast<double>(k) / h) / r;
  return std::clamp(ratio, 1e-12, 1.0);
}

}  // namespace imc
