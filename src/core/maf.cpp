#include "core/maf.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace imc {

namespace {

/// Communities in descending source-frequency order (ties: smaller id).
/// O(r) read of the counters RicPool maintains during growth (was a full
/// O(|R|) sample scan).
[[nodiscard]] std::vector<CommunityId> source_frequency_order(
    const RicPool& pool) {
  const std::span<const std::uint32_t> frequency =
      pool.community_frequencies();
  std::vector<CommunityId> order(pool.communities().size());
  for (CommunityId c = 0; c < order.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](CommunityId a, CommunityId b) {
    if (frequency[a] != frequency[b]) return frequency[a] > frequency[b];
    return a < b;
  });
  return order;
}

/// S_1 of Alg. 3: walk `order`, claiming h_C random members per community
/// while they fit in the budget (lines 5-6). A pure function of
/// (order, k, seed) — the thresholds and members it reads are static.
[[nodiscard]] std::vector<NodeId> build_s1(
    const RicPool& pool, std::uint32_t k, std::uint64_t seed,
    const std::vector<CommunityId>& order) {
  const CommunitySet& communities = pool.communities();
  Rng rng(seed);
  std::vector<NodeId> s1;
  for (const CommunityId c : order) {
    if (s1.size() >= k) break;
    const auto members = communities.members(c);
    const std::uint32_t h = communities.threshold(c);
    if (s1.size() + h > k) continue;
    std::vector<NodeId> shuffled(members.begin(), members.end());
    rng.shuffle(std::span<NodeId>(shuffled));
    s1.insert(s1.end(), shuffled.begin(), shuffled.begin() + h);
  }
  return s1;
}

/// S_2 of Alg. 3: the k nodes with the highest appearance counts.
/// Appearance counts are adjacent CSR offset differences; reading the
/// offsets span directly keeps the sort comparator free of span setup.
[[nodiscard]] std::vector<NodeId> build_s2(const RicPool& pool,
                                           std::uint32_t k) {
  const NodeId n = pool.graph().node_count();
  const std::span<const std::uint64_t> offsets = pool.touch_offsets();
  const auto appearance = [&](NodeId v) { return offsets[v + 1] - offsets[v]; };
  std::vector<NodeId> by_appearance;
  by_appearance.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (appearance(v) > 0) by_appearance.push_back(v);
  }
  std::sort(by_appearance.begin(), by_appearance.end(),
            [&](NodeId a, NodeId b) {
              const auto ca = appearance(a);
              const auto cb = appearance(b);
              if (ca != cb) return ca > cb;
              return a < b;
            });
  if (by_appearance.size() > k) by_appearance.resize(k);
  return by_appearance;
}

/// Line 8: evaluate both sets under ĉ_R and keep the better.
void pick_better(const RicPool& pool, const GreedyOptions& options,
                 MafSolution& solution) {
  double c1 = 0.0;
  double c2 = 0.0;
  if (options.parallel) {
    // The two evaluations are independent full-pool scans; overlap them.
    ThreadPool& workers =
        options.pool != nullptr ? *options.pool : default_pool();
    auto first = workers.submit([&] { c1 = pool.c_hat(solution.s1); });
    c2 = pool.c_hat(solution.s2);
    first.get();
  } else {
    c1 = pool.c_hat(solution.s1);
    c2 = pool.c_hat(solution.s2);
  }
  solution.chose_s1 = c1 >= c2;
  solution.seeds = solution.chose_s1 ? solution.s1 : solution.s2;
  solution.c_hat = solution.chose_s1 ? c1 : c2;
}

void check_maf_k(std::uint32_t k) {
  // Same contract as the greedy selectors and bt_solve: an empty budget is
  // a caller bug, not an empty solution (it would silently score 0 and win
  // no max(), masking the mistake downstream in MB).
  if (k == 0) throw std::invalid_argument("maf_solve: k must be >= 1");
}

}  // namespace

MafSolution maf_solve(const RicPool& pool, std::uint32_t k,
                      std::uint64_t seed, const GreedyOptions& options) {
  check_maf_k(k);
  MafSolution solution;
  solution.s1 = build_s1(pool, k, seed, source_frequency_order(pool));
  solution.s2 = build_s2(pool, k);
  pick_better(pool, options, solution);
  return solution;
}

MafSolution maf_resume(const RicPool& pool, std::uint32_t k,
                       std::uint64_t seed, const GreedyOptions& options,
                       MafResume& state) {
  check_maf_k(k);
  std::vector<CommunityId> order = source_frequency_order(pool);

  bool reusable = state.k == k && state.order == order && !state.s1.empty();
  if (reusable) {
    try {
      (void)pool.samples_since(state.epoch);  // validates the carried epoch
    } catch (const std::invalid_argument&) {
      reusable = false;
    }
  }

  MafSolution solution;
  // Same (order, k, seed) ⇒ build_s1 would reproduce the stored set
  // verbatim; skip the shuffles. Growth that reorders the frequencies
  // rebuilds from scratch.
  solution.s1 = reusable ? state.s1 : build_s1(pool, k, seed, order);
  solution.s2 = build_s2(pool, k);
  pick_better(pool, options, solution);

  state.epoch = pool.grow_epoch();
  state.order = std::move(order);
  state.s1 = solution.s1;
  state.k = k;
  return solution;
}

double MafSolver::alpha(const RicPool& pool, std::uint32_t k) const {
  const CommunitySet& communities = pool.communities();
  const double r = static_cast<double>(std::max<CommunityId>(
      1, communities.size()));
  const double h =
      static_cast<double>(std::max<std::uint32_t>(1, communities.max_threshold()));
  const double ratio =
      std::floor(static_cast<double>(k) / h) / r;
  return std::clamp(ratio, 1e-12, 1.0);
}

}  // namespace imc
