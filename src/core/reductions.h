// The Densest-k-Subgraph → IMC reduction from the paper's Theorem 1
// (inapproximability): given an undirected DkS instance G_D, build an IMC
// instance where
//   * every edge e = {a, b} of G_D becomes a community C_e = {a_e, b_e}
//     with threshold 2 and unit benefit,
//   * all copies of the same original node a (the set U_a) are wired into
//     a strongly-connected cluster with weight-1 edges,
// so that seeding any one copy of a activates every copy, and a community
// C_e is influenced iff both endpoints of e were selected — hence
// e(S_D) = c(S_I) and any IMC approximation transfers to DkS.
//
// Exposed as a library component so tests can machine-check the proof's
// equality on concrete instances (and as a worked example of encoding
// combinatorial problems in IMC).
#pragma once

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// An undirected DkS instance: n nodes, edge list (unordered pairs).
struct DksInstance {
  NodeId nodes = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// The constructed IMC instance plus the bookkeeping needed to map
/// solutions back and forth.
struct DksToImcResult {
  Graph graph;               // deterministic (weight-1) IMC graph
  CommunitySet communities;  // one 2-member community per DkS edge, h = 2
  /// copy_of[v] = original DkS node of IMC node v.
  std::vector<NodeId> copy_of;
  /// copies_of[a] = the IMC nodes U_a representing DkS node a.
  std::vector<std::vector<NodeId>> copies_of;
};

/// Builds the Theorem-1 instance. Throws std::invalid_argument on empty
/// edge sets or out-of-range endpoints.
[[nodiscard]] DksToImcResult dks_to_imc(const DksInstance& instance);

/// e(S): number of edges of the DkS instance inside the induced subgraph.
[[nodiscard]] std::uint64_t dks_edges_inside(
    const DksInstance& instance, const std::vector<NodeId>& chosen);

/// Maps an IMC seed set back to DkS nodes (corresponding-node projection,
/// deduplicated).
[[nodiscard]] std::vector<NodeId> project_seeds_to_dks(
    const DksToImcResult& reduction, const std::vector<NodeId>& imc_seeds);

/// Lifts a DkS node set to IMC seeds (one arbitrary copy per node).
[[nodiscard]] std::vector<NodeId> lift_seeds_to_imc(
    const DksToImcResult& reduction, const std::vector<NodeId>& dks_nodes);

}  // namespace imc
