// ImcEngine — the staged IMCAF driver (paper Alg. 5) behind imcaf_solve.
//
// The engine owns the RIC sample pool and runs the SSA-style doubling loop
// as three cooperating layers:
//   sampling   — RicPool growth, watermarked by PoolEpoch so downstream
//                consumers know exactly which sample range is new;
//   core       — the MAXR solver, warm-started across stages through
//                MaxrSolver::resume (bit-identical to cold solves by
//                contract; ImcafConfig::warm_start turns it off);
//   estimation — the stop-stage Dagum Estimate, deadline-aware through
//                the ExecutionContext.
// Keeping the pool in the engine (instead of a local of imcaf_solve) is
// what enables solve_many: several (k, solver) queries amortize one
// sample pool, each paying only the growth its own stop stages demand.
//
// Determinism: for a fresh engine, solve(k, solver) reproduces the
// pre-engine imcaf_solve bit-for-bit — same seed derivations, same growth
// schedule, same stage math; golden pins in tests/core/engine_test.cpp
// hold the recorded outputs. The ExecutionContext adds only *optional*
// behavior (deadline, cancellation, metrics) that is inert by default.
//
// Pipelining (ImcafConfig::pipeline, DESIGN.md §15): each stage's solve
// and stop-estimate overlap with speculative background generation of the
// next doubling batch into a PoolStagingArena; the stage boundary commits
// the batch through the regular merge (or discards it when the stop
// condition fired first). The speculative batch uses the same per-sample
// RNG substreams and stitched order as the grow() it replaces, so the
// pipelined schedule is bit-identical to the serial one — the golden pins
// hold with the pipeline on and off, at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "community/community_set.h"
#include "core/imcaf.h"
#include "core/maxr_solver.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "sampling/pool_snapshot.h"
#include "sampling/ric_pool.h"
#include "util/context.h"

namespace imc {

/// One (k, solver) query for ImcEngine::solve_many. The solver pointer is
/// borrowed and must outlive the call.
struct EngineQuery {
  std::uint32_t k = 0;
  const MaxrSolver* solver = nullptr;
};

class ImcEngine {
 public:
  /// Throws std::invalid_argument on empty communities. The graph,
  /// community set, and context-referenced objects are borrowed and must
  /// outlive the engine.
  ImcEngine(const Graph& graph, const CommunitySet& communities,
            ImcafConfig config = {},
            ExecutionContext context = ExecutionContext{});

  /// Runs Alg. 5 for one query on the shared pool. Throws
  /// std::invalid_argument on k = 0 or k > |V|. The pool keeps whatever
  /// size the run grew it to; a later query starts from there (its stage-1
  /// solve simply sees a larger |R|).
  [[nodiscard]] ImcafResult solve(std::uint32_t k, const MaxrSolver& solver);

  /// Runs the queries in order against the shared pool. Solver warm-start
  /// state is per-query (a solver appearing twice gets fresh state each
  /// time — the pool size differs between its runs).
  [[nodiscard]] std::vector<ImcafResult> solve_many(
      std::span<const EngineQuery> queries);

  /// Replaces the engine's pool with one loaded from `path` — a binary v2
  /// snapshot (attached zero-copy via mmap) or a text v1 pool file.
  /// The file must have been saved against the SAME graph and community
  /// structure (fingerprint-checked for snapshots) and the same diffusion
  /// model as config().model. Snapshot payloads are checksum- and
  /// invariant-verified by default; pass SnapshotTrust::kTrustPayload for
  /// files this host wrote to keep attach cost independent of pool size.
  /// Post-attach growth allocates from config().pool_backend either way.
  /// The restored PoolEpoch watermark means solver warm-start carriers
  /// captured against the saved pool validate against the reloaded one.
  /// Throws std::runtime_error / std::invalid_argument on any mismatch;
  /// the current pool is untouched on failure.
  void attach_pool(const std::string& path,
                   SnapshotTrust trust = SnapshotTrust::kVerifyPayload);

  /// Streaming update: mutates the graph/community structure through the
  /// free apply_delta(), then repairs the shared pool in place with
  /// RicPool::invalidate_and_repair so the next solve() sees a pool
  /// bit-identical to a from-scratch rebuild on the mutated inputs.
  /// `graph` and `communities` MUST be the exact objects this engine was
  /// constructed over (identity-checked; the engine holds const views, so
  /// the caller supplies the mutable aliases) — std::invalid_argument
  /// otherwise, nothing mutated. A repair bumps PoolEpoch::repairs, which
  /// invalidates every outstanding warm-start carrier (solvers fall back
  /// cold via their samples_since guard) and any staged speculative batch
  /// (the pipeline's commit check rejects it and regrows synchronously).
  /// Basic guarantee only: if the repair itself throws (sampler invariant
  /// broken by the delta, e.g. a community grown past 64 members or LT
  /// in-weights summing past 1), the graph/communities are already
  /// mutated but the pool is untouched — and now inconsistent with them;
  /// the engine must not be used further. Not thread-safe against a
  /// concurrent solve(). Returns the repair statistics (samples
  /// regenerated vs pool size).
  RicPool::RepairStats apply_delta(Graph& graph, CommunitySet& communities,
                                   const GraphDelta& delta);

  [[nodiscard]] const RicPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const ImcafConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ExecutionContext& context() const noexcept {
    return context_;
  }

 private:
  /// All growth funnels through here: throughput accounting + debug log.
  void timed_grow(std::uint64_t count, ImcafResult& result);

  const Graph* graph_;
  const CommunitySet* communities_;
  ImcafConfig config_;
  ExecutionContext context_;
  RicPool pool_;
};

}  // namespace imc
