// AVX-512 gain-kernel variant: 8 samples per iteration with native
// vpopcntq, plus a gather-based marginal_nu batch. Compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq -mpopcnt (see
// src/CMakeLists.txt); the dispatcher only selects this table after
// __builtin_cpu_supports confirms all four AVX-512 features.
#include "core/gain_kernels_registry.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__AVX512VPOPCNTDQ__)

#define IMC_GK_NAMESPACE avx512
#define IMC_GK_NAME "avx512"
#define IMC_GK_KIND GainKernelKind::kAvx512
#define IMC_GK_VECTOR 512
#include "core/gain_kernels_impl.h"

namespace imc {
namespace gain_detail {

const GainKernelOps* avx512_ops() noexcept { return &avx512::ops(); }

}  // namespace gain_detail
}  // namespace imc

#else  // AVX-512 flags not applied to this TU

namespace imc {
namespace gain_detail {

const GainKernelOps* avx512_ops() noexcept { return nullptr; }

}  // namespace gain_detail
}  // namespace imc

#endif
