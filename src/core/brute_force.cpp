#include "core/brute_force.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/mathx.h"

namespace imc {

BruteForceResult brute_force_maxr(const RicPool& pool, std::uint32_t k,
                                  std::uint64_t max_subsets) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    if (pool.appearance_count(v) > 0) candidates.push_back(v);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(candidates.size());
  if (k == 0) throw std::invalid_argument("brute_force_maxr: k must be >= 1");
  if (k >= n) {
    // Every candidate fits in the budget: the whole candidate set is optimal
    // (the objective is monotone).
    BruteForceResult all;
    all.seeds = candidates;
    all.influenced = pool.influenced_count(all.seeds);
    all.c_hat = pool.c_hat(all.seeds);
    return all;
  }
  const double log_subsets = log_binomial(n, k);
  if (log_subsets > std::log(static_cast<double>(max_subsets))) {
    throw std::invalid_argument(
        "brute_force_maxr: instance too large to enumerate");
  }

  // Lexicographic k-combination walk over candidate indices.
  std::vector<std::uint32_t> pick(k);
  for (std::uint32_t i = 0; i < k; ++i) pick[i] = i;

  BruteForceResult best;
  std::vector<NodeId> seeds(k);
  for (;;) {
    for (std::uint32_t i = 0; i < k; ++i) seeds[i] = candidates[pick[i]];
    const std::uint64_t influenced = pool.influenced_count(seeds);
    if (influenced > best.influenced || best.seeds.empty()) {
      best.influenced = influenced;
      best.seeds = seeds;
    }
    // Advance to the next combination.
    std::int64_t slot = static_cast<std::int64_t>(k) - 1;
    while (slot >= 0 && pick[slot] == n - k + static_cast<std::uint32_t>(slot)) {
      --slot;
    }
    if (slot < 0) break;
    ++pick[slot];
    for (std::uint32_t j = static_cast<std::uint32_t>(slot) + 1; j < k; ++j) {
      pick[j] = pick[j - 1] + 1;
    }
  }
  best.c_hat = pool.c_hat(best.seeds);
  return best;
}

}  // namespace imc
