#include "core/baselines/im_ris.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace imc {

namespace {

struct CelfEntry {
  std::uint64_t gain;
  NodeId node;
  std::uint32_t round;
};

struct CelfLess {
  bool operator()(const CelfEntry& a, const CelfEntry& b) const noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  }
};

}  // namespace

std::vector<NodeId> rr_greedy_max_coverage(const RrPool& pool,
                                           std::uint32_t k) {
  const NodeId n = pool.graph().node_count();
  if (k == 0 || k > n) {
    throw std::invalid_argument("rr_greedy_max_coverage: bad k");
  }
  std::vector<std::uint8_t> covered(pool.size(), 0);
  std::vector<NodeId> seeds;

  std::priority_queue<CelfEntry, std::vector<CelfEntry>, CelfLess> heap;
  for (NodeId v = 0; v < n; ++v) {
    const auto degree =
        static_cast<std::uint64_t>(pool.sets_containing(v).size());
    if (degree > 0) heap.push(CelfEntry{degree, v, 0});
  }

  const auto marginal = [&](NodeId v) {
    std::uint64_t gain = 0;
    for (const std::uint32_t id : pool.sets_containing(v)) {
      if (!covered[id]) ++gain;
    }
    return gain;
  };

  std::uint32_t round = 0;
  while (round < k && !heap.empty()) {
    CelfEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      top.gain = marginal(top.node);
      top.round = round;
      heap.push(top);
      continue;
    }
    seeds.push_back(top.node);
    for (const std::uint32_t id : pool.sets_containing(top.node)) {
      covered[id] = 1;
    }
    ++round;
  }
  // Top up with arbitrary nodes if the candidate pool was too small.
  std::vector<std::uint8_t> used(n, 0);
  for (const NodeId v : seeds) used[v] = 1;
  for (NodeId v = 0; v < n && seeds.size() < k; ++v) {
    if (!used[v]) seeds.push_back(v);
  }
  return seeds;
}

ImRisResult im_ris_select(const Graph& graph, std::uint32_t k,
                          const ImRisConfig& config) {
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("im_ris_select: need 1 <= k <= |V|");
  }
  // SSA-style stop condition: the greedy solution must cover at least
  // Λ = (2 + 2ε/3)·ln(3/δ)·(1/ε²) RR sets before we trust the estimate.
  const double eps = config.epsilon;
  const double delta = config.delta;
  const double lambda =
      (2.0 + 2.0 * eps / 3.0) * std::log(3.0 / delta) / (eps * eps);

  RrPool pool(graph);
  Rng rng(config.seed);
  pool.generate(static_cast<std::uint64_t>(std::ceil(lambda)), rng);

  ImRisResult result;
  for (;;) {
    result.seeds = rr_greedy_max_coverage(pool, k);
    // Covered count = spread estimate * |pool| / n.
    std::uint64_t covered = 0;
    {
      std::vector<std::uint8_t> hit(pool.size(), 0);
      for (const NodeId v : result.seeds) {
        for (const std::uint32_t id : pool.sets_containing(v)) {
          if (!hit[id]) {
            hit[id] = 1;
            ++covered;
          }
        }
      }
    }
    if (static_cast<double>(covered) >= lambda ||
        pool.size() >= config.max_rr_sets) {
      result.estimated_spread = pool.estimate_spread(result.seeds);
      result.rr_sets_used = pool.size();
      return result;
    }
    pool.generate(pool.size(), rng);  // double
  }
}

}  // namespace imc
