// KS — Knapsack-like baseline (paper §VI-A).
//
// Treats each community's activation threshold h_i as the cost of
// influencing it and its benefit b_i as the value; solves the 0/1 knapsack
// with capacity k EXACTLY by dynamic programming (capacity is the seed
// budget, an integer), then seeds h_i members of each chosen community.
// KS ignores topology and diffusion entirely — which is exactly why the
// paper uses it as the "structure-only" strawman.
#pragma once

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

struct KnapsackPlan {
  std::vector<CommunityId> chosen;
  double total_value = 0.0;
  std::uint32_t total_cost = 0;
};

/// Exact 0/1 knapsack over communities (cost h_i, value b_i, capacity k).
[[nodiscard]] KnapsackPlan knapsack_communities(const CommunitySet& communities,
                                                std::uint32_t k);

/// Full KS baseline: solve the knapsack, then pick h_i random members of
/// each chosen community (paper line: "we selected h nodes in C").
[[nodiscard]] std::vector<NodeId> ks_select(const CommunitySet& communities,
                                            std::uint32_t k, Rng& rng);

}  // namespace imc
