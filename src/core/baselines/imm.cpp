#include "core/baselines/imm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/baselines/im_ris.h"
#include "sampling/rr_set.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace imc {

namespace {

/// Fraction of RR sets covered by `seeds`.
double coverage_fraction(const RrPool& pool,
                         const std::vector<NodeId>& seeds) {
  if (pool.size() == 0) return 0.0;
  std::vector<std::uint8_t> hit(pool.size(), 0);
  std::uint64_t covered = 0;
  for (const NodeId v : seeds) {
    for (const std::uint32_t id : pool.sets_containing(v)) {
      if (!hit[id]) {
        hit[id] = 1;
        ++covered;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(pool.size());
}

}  // namespace

ImmResult imm_select(const Graph& graph, std::uint32_t k,
                     const ImmConfig& config) {
  const auto n = static_cast<double>(graph.node_count());
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("imm_select: need 1 <= k <= |V|");
  }
  const double eps = config.epsilon;
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("imm_select: epsilon in (0, 1)");
  }
  // Effective ℓ so the union bound over the sampling phase holds
  // (IMM paper, Theorem 2 discussion): ℓ' = ℓ·(1 + log 2 / log n).
  const double ell = config.ell * (1.0 + std::log(2.0) / std::log(n));

  const double log_nk = log_binomial(graph.node_count(), k);
  const double eps_prime = std::sqrt(2.0) * eps;

  ImmResult result;
  RrPool pool(graph);
  Rng rng(config.seed);

  // --- Phase 1: estimate a lower bound LB of OPT --------------------------
  double lower_bound = 1.0;
  const auto max_rounds =
      static_cast<std::uint32_t>(std::max(1.0, std::log2(n) - 1.0));
  const double lambda_prime =
      (2.0 + 2.0 * eps_prime / 3.0) *
      (log_nk + ell * std::log(n) + std::log(std::log2(n))) * n /
      (eps_prime * eps_prime);

  bool certified = false;
  for (std::uint32_t i = 1; i <= max_rounds; ++i) {
    const double x = n / std::pow(2.0, static_cast<double>(i));
    const auto theta_i = static_cast<std::uint64_t>(
        std::min(static_cast<double>(config.max_rr_sets),
                 std::ceil(lambda_prime / x)));
    if (pool.size() < theta_i) pool.generate(theta_i - pool.size(), rng);
    const std::vector<NodeId> greedy_seeds = rr_greedy_max_coverage(pool, k);
    const double fraction = coverage_fraction(pool, greedy_seeds);
    if (n * fraction >= (1.0 + eps_prime) * x) {
      lower_bound = n * fraction / (1.0 + eps_prime);
      certified = true;
      break;
    }
    if (pool.size() >= config.max_rr_sets) break;
  }
  if (!certified) lower_bound = std::max(1.0, static_cast<double>(k));
  result.opt_lower_bound = lower_bound;

  // --- Phase 2: final sample count θ = λ* / LB -----------------------------
  const double alpha = std::sqrt(ell * std::log(n) + std::log(2.0));
  const double beta = std::sqrt((1.0 - 1.0 / 2.718281828459045) *
                                (log_nk + ell * std::log(n) + std::log(2.0)));
  const double lambda_star =
      2.0 * n *
      ((1.0 - 1.0 / 2.718281828459045) * alpha + beta) *
      ((1.0 - 1.0 / 2.718281828459045) * alpha + beta) / (eps * eps);
  const auto theta = static_cast<std::uint64_t>(
      std::min(static_cast<double>(config.max_rr_sets),
               std::ceil(lambda_star / lower_bound)));
  if (pool.size() < theta) pool.generate(theta - pool.size(), rng);

  result.seeds = rr_greedy_max_coverage(pool, k);
  result.estimated_spread = pool.estimate_spread(result.seeds);
  result.rr_sets_used = pool.size();
  return result;
}

}  // namespace imc
