#include "core/baselines/ks.h"

#include <algorithm>
#include <stdexcept>

namespace imc {

KnapsackPlan knapsack_communities(const CommunitySet& communities,
                                  std::uint32_t k) {
  KnapsackPlan plan;
  const CommunityId r = communities.size();
  if (r == 0 || k == 0) return plan;

  // dp[c][w] compressed to rolling rows, with choice bits for backtracking.
  std::vector<double> best(k + 1, 0.0);
  std::vector<std::vector<std::uint8_t>> take(
      r, std::vector<std::uint8_t>(k + 1, 0));

  for (CommunityId c = 0; c < r; ++c) {
    const std::uint32_t cost = communities.threshold(c);
    const double value = communities.benefit(c);
    if (cost > k) continue;
    for (std::uint32_t w = k; w >= cost; --w) {
      const double candidate = best[w - cost] + value;
      if (candidate > best[w]) {
        best[w] = candidate;
        take[c][w] = 1;
      }
      if (w == cost) break;  // unsigned underflow guard
    }
  }

  // Backtrack from the best capacity.
  std::uint32_t w = static_cast<std::uint32_t>(
      std::max_element(best.begin(), best.end()) - best.begin());
  plan.total_value = best[w];
  for (CommunityId c = r; c-- > 0;) {
    if (take[c][w]) {
      plan.chosen.push_back(c);
      plan.total_cost += communities.threshold(c);
      w -= communities.threshold(c);
    }
  }
  std::reverse(plan.chosen.begin(), plan.chosen.end());
  return plan;
}

std::vector<NodeId> ks_select(const CommunitySet& communities,
                              std::uint32_t k, Rng& rng) {
  if (k == 0) throw std::invalid_argument("ks_select: k must be >= 1");
  const KnapsackPlan plan = knapsack_communities(communities, k);
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  for (const CommunityId c : plan.chosen) {
    const auto members = communities.members(c);
    std::vector<NodeId> shuffled(members.begin(), members.end());
    rng.shuffle(std::span<NodeId>(shuffled));
    const std::uint32_t h = communities.threshold(c);
    seeds.insert(seeds.end(), shuffled.begin(), shuffled.begin() + h);
  }
  return seeds;
}

}  // namespace imc
