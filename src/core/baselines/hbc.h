// HBC — High Beneficial Connection baseline (paper §VI-A).
//
// Scores every node by its one-hop "beneficial connection"
//   B(u) = Σ_{v ∈ N⁺(u)} w(u, v) · b_{C(v)} / h_{C(v)}
// (out-neighbors v that belong to some community; u's own membership also
// counts as a zero-distance connection with weight 1) and seeds the top k.
#pragma once

#include <vector>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// Per-node HBC score (exposed for tests/ablations).
[[nodiscard]] std::vector<double> hbc_scores(const Graph& graph,
                                             const CommunitySet& communities);

/// Top-k nodes by score (ties by smaller id).
[[nodiscard]] std::vector<NodeId> hbc_select(const Graph& graph,
                                             const CommunitySet& communities,
                                             std::uint32_t k);

}  // namespace imc
