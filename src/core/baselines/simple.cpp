#include "core/baselines/simple.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace imc {

std::vector<NodeId> degree_select(const Graph& graph, std::uint32_t k) {
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("degree_select: need 1 <= k <= |V|");
  }
  std::vector<NodeId> nodes(graph.node_count());
  std::iota(nodes.begin(), nodes.end(), 0U);
  std::partial_sort(nodes.begin(), nodes.begin() + k, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      const auto da = graph.out_degree(a);
                      const auto db = graph.out_degree(b);
                      if (da != db) return da > db;
                      return a < b;
                    });
  nodes.resize(k);
  return nodes;
}

std::vector<NodeId> random_select(const Graph& graph, std::uint32_t k,
                                  Rng& rng) {
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("random_select: need 1 <= k <= |V|");
  }
  return rng.sample_without_replacement(graph.node_count(), k);
}

}  // namespace imc
