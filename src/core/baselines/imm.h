// IMM — Influence Maximization via Martingales (Tang, Shi, Xiao, SIGMOD
// 2015), the paper's reference [4] and the second state-of-the-art IM
// framework it cites alongside SSA.
//
// Two phases:
//   1. Sampling: guess OPT by halving x = n/2^i; for each guess generate
//      θ_i = λ'/x_i RR sets and test whether the greedy cover certifies
//      a lower bound LB; then top up to θ = λ*/LB sets.
//   2. Node selection: greedy max coverage over the final pool.
// Returns a (1 − 1/e − ε)-approximate seed set w.p. >= 1 − n^−ℓ.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

struct ImmConfig {
  double epsilon = 0.2;
  double ell = 1.0;  // failure probability exponent: 1 − 1/n^ℓ
  std::uint64_t seed = 271828;
  std::uint64_t max_rr_sets = 4'000'000;
};

struct ImmResult {
  std::vector<NodeId> seeds;
  double estimated_spread = 0.0;
  double opt_lower_bound = 0.0;  // LB from the sampling phase
  std::uint64_t rr_sets_used = 0;
};

/// Full IMM run under the IC model.
[[nodiscard]] ImmResult imm_select(const Graph& graph, std::uint32_t k,
                                   const ImmConfig& config = {});

}  // namespace imc
