#include "core/baselines/hbc.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace imc {

std::vector<double> hbc_scores(const Graph& graph,
                               const CommunitySet& communities) {
  if (communities.node_count() != graph.node_count()) {
    throw std::invalid_argument("hbc_scores: node count mismatch");
  }
  std::vector<double> score(graph.node_count(), 0.0);
  const auto value_of = [&](NodeId v) -> double {
    const CommunityId c = communities.community_of(v);
    if (c == kInvalidCommunity) return 0.0;
    return communities.benefit(c) /
           static_cast<double>(communities.threshold(c));
  };
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    double total = value_of(u);  // activating u hits its own community
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      total += static_cast<double>(nb.weight) * value_of(nb.node);
    }
    score[u] = total;
  }
  return score;
}

std::vector<NodeId> hbc_select(const Graph& graph,
                               const CommunitySet& communities,
                               std::uint32_t k) {
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("hbc_select: need 1 <= k <= |V|");
  }
  const std::vector<double> score = hbc_scores(graph, communities);
  std::vector<NodeId> nodes(graph.node_count());
  std::iota(nodes.begin(), nodes.end(), 0U);
  std::partial_sort(nodes.begin(), nodes.begin() + k, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  nodes.resize(k);
  return nodes;
}

}  // namespace imc
