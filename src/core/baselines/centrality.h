// Centrality-based seeders: PageRank and DegreeDiscountIC — the classic
// cheap heuristics of the IM literature (Chen et al. KDD'09), rounding out
// the baseline suite beyond the paper's HBC/KS/IM.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

struct PageRankConfig {
  double damping = 0.85;
  std::uint32_t max_iterations = 100;
  double tolerance = 1e-10;  // L1 change per iteration to stop
};

/// Standard power-iteration PageRank (dangling mass redistributed
/// uniformly). Returns per-node scores summing to 1.
[[nodiscard]] std::vector<double> pagerank(const Graph& graph,
                                           const PageRankConfig& config = {});

/// Top-k nodes by PageRank (ties by smaller id).
[[nodiscard]] std::vector<NodeId> pagerank_select(
    const Graph& graph, std::uint32_t k, const PageRankConfig& config = {});

/// DegreeDiscountIC (Chen–Wang–Yang 2009): greedy degree selection where
/// each pick discounts its neighbors' effective degrees
///   dd(v) = d(v) − 2 t(v) − (d(v) − t(v)) t(v) p,
/// with t(v) = #already-selected in-neighbors of v and p the assumed
/// uniform propagation probability (use the graph's mean edge weight by
/// passing p <= 0).
[[nodiscard]] std::vector<NodeId> degree_discount_select(const Graph& graph,
                                                         std::uint32_t k,
                                                         double p = -1.0);

}  // namespace imc
