// IM — the classic Influence Maximization baseline (paper §VI-A): pick the
// k nodes maximizing the expected influence SPREAD (ignoring communities),
// then score their community benefit separately.
//
// This is a complete RIS-based IM solver in its own right: RR-set pool +
// CELF lazy greedy max-coverage (submodular, (1 − 1/e − ε) guarantee), with
// SSA-style doubling until the greedy solution covers enough RR sets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "sampling/rr_set.h"

namespace imc {

struct ImRisConfig {
  double epsilon = 0.2;
  double delta = 0.2;
  std::uint64_t seed = 31337;
  std::uint64_t max_rr_sets = 4'000'000;  // hard memory/time cap
};

struct ImRisResult {
  std::vector<NodeId> seeds;
  double estimated_spread = 0.0;  // RIS estimate E[|active|]
  std::uint64_t rr_sets_used = 0;
};

/// CELF max-coverage over an existing pool (exposed for tests/ablations).
[[nodiscard]] std::vector<NodeId> rr_greedy_max_coverage(const RrPool& pool,
                                                         std::uint32_t k);

/// Full IM solver with doubling.
[[nodiscard]] ImRisResult im_ris_select(const Graph& graph, std::uint32_t k,
                                        const ImRisConfig& config = {});

}  // namespace imc
