#include "core/baselines/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace imc {

std::vector<double> pagerank(const Graph& graph,
                             const PageRankConfig& config) {
  const NodeId n = graph.node_count();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0) return rank;
  if (config.damping < 0.0 || config.damping >= 1.0) {
    throw std::invalid_argument("pagerank: damping must be in [0, 1)");
  }

  std::vector<double> next(n, 0.0);
  for (std::uint32_t iteration = 0; iteration < config.max_iterations;
       ++iteration) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto out = graph.out_neighbors(u);
      if (out.empty()) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(out.size());
      for (const Neighbor& nb : out) next[nb.node] += share;
    }
    const double teleport =
        (1.0 - config.damping) / static_cast<double>(n) +
        config.damping * dangling_mass / static_cast<double>(n);
    double change = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double updated = teleport + config.damping * next[v];
      change += std::abs(updated - rank[v]);
      rank[v] = updated;
    }
    if (change < config.tolerance) break;
  }
  return rank;
}

std::vector<NodeId> pagerank_select(const Graph& graph, std::uint32_t k,
                                    const PageRankConfig& config) {
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("pagerank_select: need 1 <= k <= |V|");
  }
  const std::vector<double> rank = pagerank(graph, config);
  std::vector<NodeId> nodes(graph.node_count());
  std::iota(nodes.begin(), nodes.end(), 0U);
  std::partial_sort(nodes.begin(), nodes.begin() + k, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      if (rank[a] != rank[b]) return rank[a] > rank[b];
                      return a < b;
                    });
  nodes.resize(k);
  return nodes;
}

std::vector<NodeId> degree_discount_select(const Graph& graph,
                                           std::uint32_t k, double p) {
  const NodeId n = graph.node_count();
  if (k == 0 || k > n) {
    throw std::invalid_argument("degree_discount_select: need 1 <= k <= |V|");
  }
  if (p <= 0.0) {
    // Default: mean edge probability of the graph.
    double total = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      for (const Neighbor& nb : graph.out_neighbors(u)) {
        total += static_cast<double>(nb.weight);
      }
    }
    p = graph.edge_count() > 0
            ? total / static_cast<double>(graph.edge_count())
            : 0.01;
  }

  std::vector<double> discounted(n);
  std::vector<std::uint32_t> selected_neighbors(n, 0);
  std::vector<std::uint8_t> chosen(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    discounted[v] = static_cast<double>(graph.out_degree(v));
  }

  // Lazy max-heap keyed by the discounted degree at push time.
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) heap.emplace(discounted[v], v);

  std::vector<NodeId> seeds;
  seeds.reserve(k);
  while (seeds.size() < k && !heap.empty()) {
    const auto [score, v] = heap.top();
    heap.pop();
    if (chosen[v]) continue;
    if (score > discounted[v] + 1e-12) {
      heap.emplace(discounted[v], v);  // stale entry: refresh
      continue;
    }
    chosen[v] = 1;
    seeds.push_back(v);
    // Discount all out-neighbors of the chosen seed.
    for (const Neighbor& nb : graph.out_neighbors(v)) {
      const NodeId w = nb.node;
      if (chosen[w]) continue;
      ++selected_neighbors[w];
      const double d = static_cast<double>(graph.out_degree(w));
      const double t = static_cast<double>(selected_neighbors[w]);
      discounted[w] = d - 2.0 * t - (d - t) * t * p;
      heap.emplace(discounted[w], w);
    }
  }
  // Degenerate graphs (k > non-chosen candidates) — top up.
  for (NodeId v = 0; v < n && seeds.size() < k; ++v) {
    if (!chosen[v]) {
      chosen[v] = 1;
      seeds.push_back(v);
    }
  }
  return seeds;
}

}  // namespace imc
