// Trivial seeders: highest out-degree and uniform random. Not in the
// paper's baseline list but standard sanity anchors for the benches and
// tests (every serious algorithm must beat Random; Degree approximates IM
// on heavy-tailed graphs).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Top-k nodes by out-degree (ties by smaller id).
[[nodiscard]] std::vector<NodeId> degree_select(const Graph& graph,
                                                std::uint32_t k);

/// k distinct uniform nodes.
[[nodiscard]] std::vector<NodeId> random_select(const Graph& graph,
                                                std::uint32_t k, Rng& rng);

}  // namespace imc
