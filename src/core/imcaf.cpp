#include "core/imcaf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "estimation/dagum.h"
#include "sampling/ric_pool.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace imc {

ImcafResult imcaf_solve(const Graph& graph, const CommunitySet& communities,
                        std::uint32_t k, const MaxrSolver& solver,
                        const ImcafConfig& config) {
  if (communities.empty()) {
    throw std::invalid_argument("imcaf_solve: no communities");
  }
  if (k == 0 || k > graph.node_count()) {
    throw std::invalid_argument("imcaf_solve: need 1 <= k <= |V|");
  }

  const Stopwatch watch;
  ImcafResult result;
  const ApproxParams& params = config.params;

  RicPool pool(graph, communities, config.model);
  const double alpha = solver.alpha(pool, k);
  const double b = communities.total_benefit();
  const double beta = communities.min_benefit();
  const std::uint32_t h = communities.max_threshold();

  result.lambda = ssa_lambda(params);
  result.psi = static_cast<double>(
      psi_sample_cap(graph.node_count(), k, b, beta, h, alpha, params));

  std::uint64_t cap = static_cast<std::uint64_t>(
      std::min(result.psi, 1e18));
  if (config.max_samples > 0) cap = std::min(cap, config.max_samples);

  // Number of doubling rounds bounds the union-bound split of δ for the
  // per-stage Estimate calls (paper: δ / (3 log2(Ψ/Λ))).
  const double stages_bound = std::max(
      1.0, std::log2(std::max(2.0, result.psi / result.lambda)));
  const double delta_stage = params.delta / (3.0 * stages_bound);

  // All growth funnels through this wrapper so the result carries the
  // realized sampling throughput and each stage logs its own rate.
  const auto timed_grow = [&](std::uint64_t count) {
    const Stopwatch grow_watch;
    pool.grow(count, config.seed, config.parallel_sampling);
    const double seconds = grow_watch.elapsed_seconds();
    result.sampling_seconds += seconds;
    result.samples_generated += count;
    log(LogLevel::kDebug) << "IMCAF grow: " << count << " samples in "
                          << seconds << " s ("
                          << (seconds > 0.0
                                  ? static_cast<double>(count) / seconds
                                  : 0.0)
                          << " samples/s), |R|=" << pool.size();
  };

  const auto initial = static_cast<std::uint64_t>(
      std::ceil(result.lambda));
  timed_grow(std::min(initial, cap));

  MaxrSolution solution;
  for (;;) {
    ++result.stop_stages;
    solution = solver.solve(pool, k);
    log(LogLevel::kDebug) << "IMCAF stage " << result.stop_stages << ": |R|="
                          << pool.size() << " c_hat=" << solution.c_hat;

    // Line 8 of Alg. 5: (|R|/b)·ĉ_R(S) = #influenced samples >= Λ.
    const std::uint64_t influenced = pool.influenced_count(solution.seeds);
    if (static_cast<double>(influenced) >= result.lambda) {
      // Line 9: independent estimate of c(S) on FRESH samples (Alg. 6).
      DagumOptions dagum;
      dagum.eps_prime = params.ssa_eps2();
      dagum.delta_prime = delta_stage;
      dagum.seed = config.seed ^ (0xABCD1234ULL * result.stop_stages);
      dagum.model = config.model;
      const double e2 = params.ssa_eps2();
      const double e3 = params.ssa_eps3();
      dagum.max_samples = static_cast<std::uint64_t>(std::ceil(
          static_cast<double>(pool.size()) * (1.0 + e2) / (1.0 - e2) *
          (e3 * e3) / (e2 * e2)));
      dagum.max_samples = std::max<std::uint64_t>(dagum.max_samples, 1000);
      const DagumEstimate estimate = dagum_estimate_benefit(
          graph, communities, solution.seeds, dagum);
      // Line 10: accept when the pool does not over-estimate the benefit.
      if (estimate.converged &&
          solution.c_hat <= (1.0 + params.ssa_eps1()) * estimate.value) {
        result.estimated_benefit = estimate.value;
        break;
      }
    }

    if (pool.size() >= cap) {
      result.reached_cap = true;
      break;
    }
    const std::uint64_t target = std::min(cap, pool.size() * 2);
    timed_grow(target - pool.size());
  }

  result.seeds = std::move(solution.seeds);
  result.c_hat = solution.c_hat;
  result.samples_used = pool.size();
  if (result.estimated_benefit == 0.0 && !result.seeds.empty()) {
    // Cap exit: still report an independent estimate for the caller.
    DagumOptions dagum;
    dagum.eps_prime = params.ssa_eps2();
    dagum.delta_prime = delta_stage;
    dagum.seed = config.seed ^ 0xFEEDFACEULL;
    dagum.model = config.model;
    dagum.max_samples = std::max<std::uint64_t>(pool.size(), 10'000);
    result.estimated_benefit =
        dagum_estimate_benefit(graph, communities, result.seeds, dagum).value;
  }
  result.runtime_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace imc
