#include "core/imcaf.h"

#include "core/engine.h"

namespace imc {

ImcafResult imcaf_solve(const Graph& graph, const CommunitySet& communities,
                        std::uint32_t k, const MaxrSolver& solver,
                        const ImcafConfig& config) {
  // Thin wrapper over the staged engine with an inert default context —
  // deadline, cancellation, and metrics all off, so the output is exactly
  // the classic single-query Alg. 5 run.
  ImcEngine engine(graph, communities, config);
  return engine.solve(k, solver);
}

}  // namespace imc
