// Greedy seed-selection engines over a RicPool.
//
// * greedy_c_hat — plain re-evaluating greedy on the NON-submodular ĉ_R.
//   Lazy (CELF) evaluation is unsound here: a node's marginal can GROW as
//   seeds accumulate (supermodular behavior near thresholds), so every
//   round re-scans all candidates. Ties on the primary objective are broken
//   by the ν marginal (progress toward thresholds), then appearance count —
//   without this, early rounds of the bounded-threshold case (h >= 2, where
//   no single node can cross any threshold) would pick arbitrarily.
// * celf_greedy_nu — CELF lazy greedy on the submodular ν_R (Lemma 3),
//   giving the classic (1 − 1/e) guarantee for the relaxed objective.
//
// Every engine accepts GreedyOptions to run its marginal-gain sweep on a
// thread pool. The parallel path reduces per-chunk winners under the exact
// serial tie-break order (a strict total order), so parallel and serial
// selection return BIT-IDENTICAL seed sets for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"
#include "util/thread_pool.h"

namespace imc {

struct GreedyResult {
  std::vector<NodeId> seeds;
  double c_hat = 0.0;  // ĉ_R(seeds)
  double nu = 0.0;     // ν_R(seeds)
};

struct GreedyOptions {
  /// Run the per-round argmax sweep on a thread pool. Selection stays
  /// bit-identical to the serial path regardless of thread count.
  bool parallel = false;
  /// Pool for the sweep; nullptr selects default_pool().
  ThreadPool* pool = nullptr;
  /// Candidate sets smaller than this run serially even when `parallel`
  /// is set (chunking overhead dominates below it). Does not affect the
  /// selected seeds, only where the sweep executes.
  std::size_t min_parallel_candidates = 64;
};

/// Plain greedy on ĉ_R; O(k · Σ_v |touches(v)|).
[[nodiscard]] GreedyResult greedy_c_hat(const RicPool& pool, std::uint32_t k,
                                        const GreedyOptions& options = {});

/// CELF lazy greedy on ν_R; near-linear in practice. With `parallel` the
/// stale-entry refreshes at each round run as batched bursts on the pool.
[[nodiscard]] GreedyResult celf_greedy_nu(const RicPool& pool,
                                          std::uint32_t k,
                                          const GreedyOptions& options = {});

/// Plain (non-lazy) greedy on ν_R — ablation twin of celf_greedy_nu; the
/// two must pick identical seed sets (asserted in tests).
[[nodiscard]] GreedyResult plain_greedy_nu(const RicPool& pool,
                                           std::uint32_t k,
                                           const GreedyOptions& options = {});

}  // namespace imc
