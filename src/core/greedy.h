// Greedy seed-selection engines over a RicPool.
//
// * greedy_c_hat — plain re-evaluating greedy on the NON-submodular ĉ_R.
//   Lazy (CELF) evaluation is unsound here: a node's marginal can GROW as
//   seeds accumulate (supermodular behavior near thresholds), so every
//   round re-scans all candidates. Ties on the primary objective are broken
//   by the ν marginal (progress toward thresholds), then appearance count —
//   without this, early rounds of the bounded-threshold case (h >= 2, where
//   no single node can cross any threshold) would pick arbitrarily.
// * celf_greedy_nu — CELF lazy greedy on the submodular ν_R (Lemma 3),
//   giving the classic (1 − 1/e) guarantee for the relaxed objective.
//
// Every engine accepts GreedyOptions to run its marginal-gain sweep on a
// thread pool. The parallel path reduces per-chunk winners under the exact
// serial tie-break order (a strict total order), so parallel and serial
// selection return BIT-IDENTICAL seed sets for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"
#include "util/thread_pool.h"

namespace imc {

struct GreedyResult {
  std::vector<NodeId> seeds;
  double c_hat = 0.0;  // ĉ_R(seeds)
  double nu = 0.0;     // ν_R(seeds)
};

struct GreedyOptions {
  /// Run the per-round argmax sweep on a thread pool. Selection stays
  /// bit-identical to the serial path regardless of thread count.
  bool parallel = false;
  /// Pool for the sweep; nullptr selects default_pool().
  ThreadPool* pool = nullptr;
  /// Candidate sets smaller than this run serially even when `parallel`
  /// is set (chunking overhead dominates below it). Does not affect the
  /// selected seeds, only where the sweep executes.
  std::size_t min_parallel_candidates = 64;
  /// Number of sample slabs the parallel sample-major ĉ sweep splits the
  /// pool into (0 = one per worker thread; see
  /// RicPool::selection_shards). Per-slab gain rows are reduced in
  /// ascending slab order — a fixed accumulation sequence — so the value
  /// never affects the selected seeds; it exists so tests and the
  /// differential fuzzer can randomize the decomposition.
  std::size_t shards = 0;
};

/// Plain greedy on ĉ_R; O(k · Σ_v |touches(v)|).
[[nodiscard]] GreedyResult greedy_c_hat(const RicPool& pool, std::uint32_t k,
                                        const GreedyOptions& options = {});

/// Carried state that lets greedy_c_hat warm-start after the pool grows
/// (append-only — old sample ids and their touches never change).
/// `gain_snapshots` row r holds EVERY node's influenced gain over the full
/// pool as of `epoch`, evaluated against the seed prefix winners[0..r).
/// Resuming copies row r and accumulates only the appended sample range on
/// top; influenced gains are exact integer sums over any sample partition,
/// so the result is bit-identical to a cold full-range pass — and the
/// resumed rows become next stage's snapshots for free.
struct CHatResume {
  RicPool::PoolEpoch epoch;  // pool state the snapshot rows cover
  std::vector<NodeId> winners;                // per-round selected seed
  std::vector<std::uint64_t> gain_snapshots;  // row-major |winners| x nodes
  std::size_t nodes = 0;                      // row stride
  [[nodiscard]] bool empty() const noexcept { return winners.empty(); }
};

/// Warm-startable greedy_c_hat. Returns bit-identical results to
/// greedy_c_hat on the same pool for ANY resume state: stored rounds whose
/// extended-gains winner still matches are replayed (paying only the
/// appended sample range); the first mismatch — ĉ is non-submodular, so
/// growth CAN reorder winners — discards the stale tail and continues with
/// cold full-range rounds. `resume` is rewritten to describe this run
/// (cleared when the snapshot matrix would exceed the internal memory cap,
/// making the next call cold).
[[nodiscard]] GreedyResult greedy_c_hat_resumable(const RicPool& pool,
                                                  std::uint32_t k,
                                                  const GreedyOptions& options,
                                                  CHatResume& resume);

/// CELF lazy greedy on ν_R; near-linear in practice. With `parallel` the
/// stale-entry refreshes at each round run as batched bursts on the pool.
[[nodiscard]] GreedyResult celf_greedy_nu(const RicPool& pool,
                                          std::uint32_t k,
                                          const GreedyOptions& options = {});

/// Plain (non-lazy) greedy on ν_R — ablation twin of celf_greedy_nu; the
/// two must pick identical seed sets (asserted in tests).
[[nodiscard]] GreedyResult plain_greedy_nu(const RicPool& pool,
                                           std::uint32_t k,
                                           const GreedyOptions& options = {});

/// Carried state that lets celf_greedy_nu warm-start its heap build after
/// the pool grows. `init_gains[v]` is node v's ν marginal w.r.t. the EMPTY
/// seed set over the pool as of `epoch`, produced by the serial
/// sample-major pass — a per-node left-associated chain in ascending
/// sample order, so appending the new range's deltas onto the stored
/// values continues the exact chain a cold full-range pass would run
/// (bitwise-equal doubles). CELF rounds themselves always run fresh; the
/// stale-bound argument needs only the init values, which Lemma 3
/// (submodularity of ν) keeps valid upper bounds under sample append.
struct NuCelfResume {
  RicPool::PoolEpoch epoch;        // pool state the gains cover
  std::vector<double> init_gains;  // per node, w.r.t. the empty seed set
  [[nodiscard]] bool empty() const noexcept { return init_gains.empty(); }
};

/// Warm-startable celf_greedy_nu; bit-identical to celf_greedy_nu on the
/// same pool for ANY resume state. `resume` is rewritten to describe this
/// run.
[[nodiscard]] GreedyResult celf_greedy_nu_resumable(
    const RicPool& pool, std::uint32_t k, const GreedyOptions& options,
    NuCelfResume& resume);

}  // namespace imc
