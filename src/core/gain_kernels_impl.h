// Implementation template for ONE gain-kernel variant. This header is
// textually included by the per-variant translation units
// (gain_kernels_{scalar,popcnt,avx2,avx512}.cpp), each of which is
// compiled with exactly the ISA flags its variant requires — that is what
// lets the batched loops use intrinsics and lets the compiler lower
// popcount64 to the hardware instruction, without making the rest of the
// library machine-specific. The dispatcher (gain_kernels.cpp) only calls
// into a variant after __builtin_cpu_supports confirms the host.
//
// The includer must define:
//   IMC_GK_NAMESPACE  token  — variant namespace under imc::gain_detail
//   IMC_GK_NAME       string — display name ("scalar", "avx2", ...)
//   IMC_GK_KIND       expr   — the GainKernelKind enumerator
//   IMC_GK_VECTOR     0 | 256 | 512 — batched-inner-loop width (bits)
//
// Bit-identity contract (enforced by tests/core/gain_kernel_test.cpp and
// the kernel_variants differential fuzz check): every variant produces
// results bitwise equal to the scalar variant. Integer popcounts are
// exact; the ν deltas are the same fraction-table doubles subtracted and
// accumulated per node in the same ascending-sample order; and the only
// "skipped" contributions (saturated samples, mask ⊆ covered) are exactly
// +0.0, which never changes a non-negative accumulator's bit pattern.
//
// All variants share the word-at-a-time saturation skip: the outer loop
// walks the saturation bitmap one 64-sample word at a time, so a fully
// saturated slab costs one load + one compare per 64 samples (late greedy
// rounds, where most samples are dead, become bitmap-speed scans).

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/gain_kernels.h"
#include "util/mathx.h"

#if IMC_GK_VECTOR != 0
#include <immintrin.h>
#endif

namespace imc {
namespace gain_detail {
namespace IMC_GK_NAMESPACE {
namespace {

// The strided SIMD mask loads assume the sample-arena pair layout
// {NodeId node; (pad); uint64_t mask} with the mask at byte offset 8.
using ArenaPair = std::pair<NodeId, std::uint64_t>;
static_assert(sizeof(ArenaPair) == 16, "arena pair must stay 16 bytes");
static_assert(std::is_standard_layout_v<ArenaPair>,
              "mask-offset assumption needs standard layout");
static_assert(offsetof(ArenaPair, second) == 8,
              "arena masks must sit at byte offset 8");

/// Walks samples [begin, end) in ascending order, skipping saturated ones
/// via their bitmap — one word per 64 samples, early-continue when the
/// whole word is saturated. `body(g)` runs for every live sample.
template <typename Body>
[[gnu::always_inline]] inline void for_each_live_sample(
    const std::uint64_t* saturated, std::uint32_t begin, std::uint32_t end,
    Body&& body) {
  if (begin >= end) return;
  const std::uint32_t first_word = begin >> 6;
  const std::uint32_t last_word = (end - 1) >> 6;
  for (std::uint32_t w = first_word; w <= last_word; ++w) {
    std::uint64_t live = ~saturated[w];
    if (w == first_word && (begin & 63) != 0) {
      live &= ~0ULL << (begin & 63);
    }
    if (w == last_word) {
      const std::uint32_t top = end - (w << 6);  // samples in this word
      if (top < 64) live &= (1ULL << top) - 1;
    }
    while (live != 0) {
      const std::uint32_t g =
          (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(live));
      live &= live - 1;
      body(g);
    }
  }
}

#if IMC_GK_VECTOR == 256

/// 4 x 64-bit popcount via the classic vpshufb nibble LUT + psadbw.
[[gnu::always_inline]] inline __m256i popcount_epi64_x4(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_nibble);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
  const __m256i per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
}

/// Masks of 4 consecutive arena pairs, in touch order. Two 256-bit loads
/// hold [n0 m0 n1 m1] and [n2 m2 n3 m3]; unpackhi gives [m0 m2 m1 m3] and
/// the permute restores [m0 m1 m2 m3].
[[gnu::always_inline]] inline __m256i load_arena_masks_x4(
    const ArenaPair* pairs) {
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs + 2));
  return _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(a, b), 0xD8);
}

#elif IMC_GK_VECTOR == 512

/// Masks of 8 consecutive arena pairs, in touch order: the odd 64-bit
/// lanes of two 512-bit loads.
[[gnu::always_inline]] inline __m512i load_arena_masks_x8(
    const ArenaPair* pairs) {
  const __m512i a = _mm512_loadu_si512(pairs);
  const __m512i b = _mm512_loadu_si512(pairs + 4);
  const __m512i odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  return _mm512_permutex2var_epi64(a, odd, b);
}

#endif  // IMC_GK_VECTOR

void accumulate_influenced(const SampleGainView& view, std::uint32_t begin,
                           std::uint32_t end, std::uint64_t* gains) {
  for_each_live_sample(view.saturated, begin, end, [&](std::uint32_t g) {
    const std::uint64_t cov = view.covered[g];
    const std::uint32_t h = view.thresholds[g];
    const std::uint64_t first = view.sample_offsets[g];
    const ArenaPair* pairs = view.sample_arena + first;
    const std::size_t count =
        static_cast<std::size_t>(view.sample_offsets[g + 1] - first);
    std::size_t i = 0;
#if IMC_GK_VECTOR == 256
    const __m256i cov_v = _mm256_set1_epi64x(static_cast<long long>(cov));
    const __m256i h_minus_1 =
        _mm256_set1_epi64x(static_cast<long long>(h) - 1);
    for (; i + 4 <= count; i += 4) {
      const __m256i counts = popcount_epi64_x4(
          _mm256_or_si256(cov_v, load_arena_masks_x4(pairs + i)));
      // counts >= h  ⇔  counts > h - 1 (both sides fit well inside i64).
      unsigned hits = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(counts, h_minus_1))));
      while (hits != 0) {
        const unsigned j = static_cast<unsigned>(__builtin_ctz(hits));
        hits &= hits - 1;
        ++gains[pairs[i + j].first];
      }
    }
#elif IMC_GK_VECTOR == 512
    const __m512i cov_v = _mm512_set1_epi64(static_cast<long long>(cov));
    const __m512i h_v = _mm512_set1_epi64(static_cast<long long>(h));
    for (; i + 8 <= count; i += 8) {
      const __m512i counts = _mm512_popcnt_epi64(
          _mm512_or_si512(cov_v, load_arena_masks_x8(pairs + i)));
      unsigned hits = _mm512_cmpge_epu64_mask(counts, h_v);
      while (hits != 0) {
        const unsigned j = static_cast<unsigned>(__builtin_ctz(hits));
        hits &= hits - 1;
        ++gains[pairs[i + j].first];
      }
    }
#endif
    for (; i < count; ++i) {
      if (static_cast<std::uint32_t>(popcount64(cov | pairs[i].second)) >=
          h) {
        ++gains[pairs[i].first];
      }
    }
  });
}

void accumulate_nu(const SampleGainView& view, std::uint32_t begin,
                   std::uint32_t end, double* gains) {
  for_each_live_sample(view.saturated, begin, end, [&](std::uint32_t g) {
    const std::uint64_t cov = view.covered[g];
    const double* row = view.fraction_table +
                        view.thresholds[g] * (kMaxNuThreshold + 1);
    // Precomputed base fraction: row[popcount(cov)], maintained by
    // CoverageState — the per-touch work is a pure lookup-subtract.
    const double base = view.nu_base[g];
    const std::uint64_t first = view.sample_offsets[g];
    const ArenaPair* pairs = view.sample_arena + first;
    const std::size_t count =
        static_cast<std::size_t>(view.sample_offsets[g + 1] - first);
    std::size_t i = 0;
#if IMC_GK_VECTOR != 0
    // after ⊇ cov, so popcount(after) == popcount(cov) ⇔ after == cov —
    // the batched loops compare counts instead of re-deriving the union.
    const std::uint64_t base_count =
        static_cast<std::uint64_t>(popcount64(cov));
#endif
#if IMC_GK_VECTOR == 256
    const __m256i cov_v = _mm256_set1_epi64x(static_cast<long long>(cov));
    alignas(32) std::uint64_t counts[4];
    for (; i + 4 <= count; i += 4) {
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(counts),
          popcount_epi64_x4(
              _mm256_or_si256(cov_v, load_arena_masks_x4(pairs + i))));
      for (unsigned j = 0; j < 4; ++j) {
        if (counts[j] == base_count) continue;  // mask ⊆ covered: delta 0
        gains[pairs[i + j].first] += row[counts[j]] - base;
      }
    }
#elif IMC_GK_VECTOR == 512
    const __m512i cov_v = _mm512_set1_epi64(static_cast<long long>(cov));
    alignas(64) std::uint64_t counts[8];
    for (; i + 8 <= count; i += 8) {
      _mm512_store_si512(
          counts, _mm512_popcnt_epi64(_mm512_or_si512(
                      cov_v, load_arena_masks_x8(pairs + i))));
      for (unsigned j = 0; j < 8; ++j) {
        if (counts[j] == base_count) continue;  // mask ⊆ covered: delta 0
        gains[pairs[i + j].first] += row[counts[j]] - base;
      }
    }
#endif
    for (; i < count; ++i) {
      const std::uint64_t after = cov | pairs[i].second;
      if (after == cov) continue;
      gains[pairs[i].first] +=
          row[static_cast<std::uint32_t>(popcount64(after))] - base;
    }
  });
}

/// One touch's ν delta: exactly +0.0 for saturated samples (the fraction
/// row is flat at 1.0 past the threshold) and for masks already covered,
/// so unconditionally accumulating the return value reproduces the
/// skip-based reference sum bit for bit.
[[gnu::always_inline]] inline double touch_nu_delta(
    const TouchGainView& view, const RicPool::Touch& touch) {
  if ((view.saturated[touch.sample >> 6] >> (touch.sample & 63)) & 1ULL) {
    return 0.0;  // dead sample: skip before the covered load can miss
  }
  const std::uint64_t before = view.covered[touch.sample];
  const std::uint64_t after = before | touch.mask;
  if (after == before) return 0.0;
  const double* row =
      view.fraction_table + touch.threshold * (kMaxNuThreshold + 1);
  return row[static_cast<std::uint32_t>(popcount64(after))] -
         row[static_cast<std::uint32_t>(popcount64(before))];
}

double marginal_nu(const TouchGainView& view,
                   const RicPool::Touch* touches, std::size_t count) {
  double gain = 0.0;
  std::size_t i = 0;
#if IMC_GK_VECTOR == 512
  // Gather-based batch: 8 touches per iteration. Lane deltas are added
  // into `gain` in lane (= touch) order, so the accumulation chain is the
  // exact left-to-right sequence the scalar loop runs. Saturated samples
  // are NOT pre-skipped here — their gathered delta is exactly +0.0 (row
  // flat at 1.0), preserving bit-identity; the gathers hide the random
  // covered[] latency the scalar path can only prefetch.
  const __m512i even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  alignas(64) double deltas[8];
  for (; i + 8 <= count; i += 8) {
    const __m512i a = _mm512_loadu_si512(touches + i);
    const __m512i b = _mm512_loadu_si512(touches + i + 4);
    // Touch layout {u32 sample, u32 threshold, u64 mask}: even 64-bit
    // lanes hold sample | threshold << 32, odd lanes hold the mask.
    const __m512i meta = _mm512_permutex2var_epi64(a, even, b);
    const __m512i masks = _mm512_permutex2var_epi64(a, odd, b);
    const __m256i samples = _mm512_cvtepi64_epi32(meta);
    const __m512i h64 = _mm512_srli_epi64(meta, 32);
    const __m512i before =
        _mm512_i32gather_epi64(samples, view.covered, 8);
    const __m512i after = _mm512_or_si512(before, masks);
    // Row offset h * 65 == (h << 6) + h; entries are doubles (scale 8).
    const __m512i row_base =
        _mm512_add_epi64(_mm512_slli_epi64(h64, 6), h64);
    const __m512d val_before = _mm512_i64gather_pd(
        _mm512_add_epi64(row_base, _mm512_popcnt_epi64(before)),
        view.fraction_table, 8);
    const __m512d val_after = _mm512_i64gather_pd(
        _mm512_add_epi64(row_base, _mm512_popcnt_epi64(after)),
        view.fraction_table, 8);
    _mm512_store_pd(deltas, _mm512_sub_pd(val_after, val_before));
    for (unsigned j = 0; j < 8; ++j) gain += deltas[j];
  }
#endif
  const std::size_t prefetched =
      count > kCoveredPrefetchDistance ? count - kCoveredPrefetchDistance
                                       : i;
  for (; i < prefetched; ++i) {
    prefetch_read(
        &view.covered[touches[i + kCoveredPrefetchDistance].sample]);
    gain += touch_nu_delta(view, touches[i]);
  }
  for (; i < count; ++i) gain += touch_nu_delta(view, touches[i]);
  return gain;
}

}  // namespace

const GainKernelOps& ops() {
  static const GainKernelOps kOps{IMC_GK_KIND, IMC_GK_NAME,
                                  &accumulate_influenced, &accumulate_nu,
                                  &marginal_nu};
  return kOps;
}

}  // namespace IMC_GK_NAMESPACE
}  // namespace gain_detail
}  // namespace imc
