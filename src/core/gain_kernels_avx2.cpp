// AVX2 gain-kernel variant: cov | mask + popcount batched 4 samples per
// iteration using the vpshufb nibble-LUT popcount. Compiled with
// -mavx2 -mpopcnt (see src/CMakeLists.txt); the dispatcher only selects
// this table after __builtin_cpu_supports("avx2") confirms the host.
#include "core/gain_kernels_registry.h"

#if defined(__AVX2__) && defined(__POPCNT__)

#define IMC_GK_NAMESPACE avx2
#define IMC_GK_NAME "avx2"
#define IMC_GK_KIND GainKernelKind::kAvx2
#define IMC_GK_VECTOR 256
#include "core/gain_kernels_impl.h"

namespace imc {
namespace gain_detail {

const GainKernelOps* avx2_ops() noexcept { return &avx2::ops(); }

}  // namespace gain_detail
}  // namespace imc

#else  // AVX2 flags not applied to this TU

namespace imc {
namespace gain_detail {

const GainKernelOps* avx2_ops() noexcept { return nullptr; }

}  // namespace gain_detail
}  // namespace imc

#endif
