// Most Appearance First (paper Alg. 3).
//
// S_1: walk communities in descending order of how often they are the
// SOURCE of a sample in R; for each, claim h_C random members until the k
// seats are filled. S_2: the k nodes that appear in (touch) the most
// samples. Return the better of the two under ĉ_R. Theorem 3:
// ĉ_R(S) >= (1/r)·⌊k/h⌋·ĉ_R(OPT) (driven by S_1; S_2 carries no guarantee
// but often wins in practice — both facts are covered by tests).
#pragma once

#include "core/greedy.h"
#include "core/maxr_solver.h"
#include "util/rng.h"

namespace imc {

struct MafSolution : MaxrSolution {
  std::vector<NodeId> s1;  // community-frequency seeds
  std::vector<NodeId> s2;  // node-appearance seeds
  bool chose_s1 = false;
};

/// `seed` drives the random member picks inside communities (line 5).
/// MAF has no marginal-gain sweep; `options.parallel` only overlaps the
/// two independent ĉ_R evaluations of line 8 (selection is unaffected).
[[nodiscard]] MafSolution maf_solve(const RicPool& pool, std::uint32_t k,
                                    std::uint64_t seed = 1234,
                                    const GreedyOptions& options = {});

/// Warm-start state for MAF across IMCAF doubling stages. S_1 is a pure
/// function of (source-frequency order, k, seed): the shuffles consume a
/// fresh Rng(seed) in visit order and the budget-fit skips depend only on
/// the static thresholds, so when the grown pool yields the SAME order
/// under the same k the stored S_1 is reused verbatim (skipping the
/// shuffles). S_2 and the line-8 evaluations always rerun on the grown
/// pool.
struct MafResume final : MaxrResume {
  RicPool::PoolEpoch epoch;
  std::vector<CommunityId> order;  // source-frequency order at epoch
  std::vector<NodeId> s1;          // S_1 built from that order
  std::uint32_t k = 0;             // budget S_1 was built for
};

/// maf_solve with S_1 reuse; bit-identical to maf_solve on the same pool
/// for any `state`. `state` is rewritten to describe this run.
[[nodiscard]] MafSolution maf_resume(const RicPool& pool, std::uint32_t k,
                                     std::uint64_t seed,
                                     const GreedyOptions& options,
                                     MafResume& state);

class MafSolver final : public MaxrSolver {
 public:
  explicit MafSolver(std::uint64_t seed = 1234,
                     const GreedyOptions& options = {})
      : seed_(seed), options_(options) {}
  [[nodiscard]] std::string name() const override { return "MAF"; }
  /// Theorem 3: α = (1/r)·⌊k/h⌋ (clamped into (0, 1]).
  [[nodiscard]] double alpha(const RicPool& pool,
                             std::uint32_t k) const override;
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return maf_solve(pool, k, seed_, options_);
  }
  [[nodiscard]] MaxrSolution resume(
      const RicPool& pool, std::uint32_t k,
      std::unique_ptr<MaxrResume>& state) const override {
    auto* carried = dynamic_cast<MafResume*>(state.get());
    if (carried == nullptr) {
      state = std::make_unique<MafResume>();
      carried = static_cast<MafResume*>(state.get());
    }
    return maf_resume(pool, k, seed_, options_, *carried);
  }

 private:
  std::uint64_t seed_;
  GreedyOptions options_;
};

}  // namespace imc
