// Most Appearance First (paper Alg. 3).
//
// S_1: walk communities in descending order of how often they are the
// SOURCE of a sample in R; for each, claim h_C random members until the k
// seats are filled. S_2: the k nodes that appear in (touch) the most
// samples. Return the better of the two under ĉ_R. Theorem 3:
// ĉ_R(S) >= (1/r)·⌊k/h⌋·ĉ_R(OPT) (driven by S_1; S_2 carries no guarantee
// but often wins in practice — both facts are covered by tests).
#pragma once

#include "core/greedy.h"
#include "core/maxr_solver.h"
#include "util/rng.h"

namespace imc {

struct MafSolution : MaxrSolution {
  std::vector<NodeId> s1;  // community-frequency seeds
  std::vector<NodeId> s2;  // node-appearance seeds
  bool chose_s1 = false;
};

/// `seed` drives the random member picks inside communities (line 5).
/// MAF has no marginal-gain sweep; `options.parallel` only overlaps the
/// two independent ĉ_R evaluations of line 8 (selection is unaffected).
[[nodiscard]] MafSolution maf_solve(const RicPool& pool, std::uint32_t k,
                                    std::uint64_t seed = 1234,
                                    const GreedyOptions& options = {});

class MafSolver final : public MaxrSolver {
 public:
  explicit MafSolver(std::uint64_t seed = 1234,
                     const GreedyOptions& options = {})
      : seed_(seed), options_(options) {}
  [[nodiscard]] std::string name() const override { return "MAF"; }
  /// Theorem 3: α = (1/r)·⌊k/h⌋ (clamped into (0, 1]).
  [[nodiscard]] double alpha(const RicPool& pool,
                             std::uint32_t k) const override;
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return maf_solve(pool, k, seed_, options_);
  }

 private:
  std::uint64_t seed_;
  GreedyOptions options_;
};

}  // namespace imc
