// MB — the MAF ∧ BT combination (paper §IV-C "Combining with MAF").
//
// Runs both MAF and BT and keeps the better seed set under ĉ_R. Theorem 5:
// for thresholds <= 2 this is a Θ(√((1−1/e)/r)) approximation — tight to
// the Theorem 1 inapproximability bound under the exponential time
// hypothesis.
#pragma once

#include "core/bt.h"
#include "core/maf.h"
#include "core/maxr_solver.h"

namespace imc {

struct MbSolution : MaxrSolution {
  MafSolution maf;
  BtSolution bt;
  bool chose_bt = false;
};

[[nodiscard]] MbSolution mb_solve(const RicPool& pool, std::uint32_t k,
                                  const BtConfig& bt_config = {},
                                  std::uint64_t maf_seed = 1234);

class MbSolver final : public MaxrSolver {
 public:
  explicit MbSolver(BtConfig bt_config = {}, std::uint64_t maf_seed = 1234)
      : bt_config_(bt_config), maf_seed_(maf_seed) {}
  [[nodiscard]] std::string name() const override { return "MB"; }
  /// Theorem 5: α = sqrt((1 − 1/e)·⌊k/2⌋ / (r·k)).
  [[nodiscard]] double alpha(const RicPool& pool,
                             std::uint32_t k) const override;
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return mb_solve(pool, k, bt_config_, maf_seed_);
  }

 private:
  BtConfig bt_config_;
  std::uint64_t maf_seed_;
};

}  // namespace imc
