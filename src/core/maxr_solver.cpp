#include "core/maxr_solver.h"

#include <stdexcept>

#include "core/bt.h"
#include "core/maf.h"
#include "core/mb.h"
#include "core/ubg.h"

namespace imc {

std::unique_ptr<MaxrSolver> make_maxr_solver(MaxrAlgorithm algorithm,
                                             const MaxrSolverOptions& options) {
  GreedyOptions greedy;
  greedy.parallel = options.parallel;
  switch (algorithm) {
    case MaxrAlgorithm::kUbg: return std::make_unique<UbgSolver>(greedy);
    case MaxrAlgorithm::kMaf:
      return std::make_unique<MafSolver>(options.maf_seed, greedy);
    case MaxrAlgorithm::kBt: return std::make_unique<BtSolver>();
    case MaxrAlgorithm::kMb: return std::make_unique<MbSolver>();
  }
  throw std::invalid_argument("make_maxr_solver: bad algorithm");
}

std::string to_string(MaxrAlgorithm algorithm) {
  switch (algorithm) {
    case MaxrAlgorithm::kUbg: return "UBG";
    case MaxrAlgorithm::kMaf: return "MAF";
    case MaxrAlgorithm::kBt: return "BT";
    case MaxrAlgorithm::kMb: return "MB";
  }
  throw std::invalid_argument("to_string: bad MaxrAlgorithm");
}

}  // namespace imc
