// Problem bundling and experiment-setup helpers.
//
// An ImcProblem ties together the three inputs of Definition 1 — graph,
// community structure, budget k — plus the accuracy parameters. The factory
// functions reproduce the paper's experimental setup (§VI-A): Louvain or
// Random partition, size cap s, population benefits, and either fractional
// (h = 50% pop) or constant (h = 2) activation thresholds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "community/community_set.h"
#include "estimation/concentration.h"
#include "graph/graph.h"

namespace imc {

struct ImcProblem {
  const Graph* graph = nullptr;
  CommunitySet communities;
  std::uint32_t k = 10;
  ApproxParams params;

  [[nodiscard]] bool valid() const noexcept {
    return graph != nullptr && !communities.empty() && k >= 1;
  }
};

/// Community formation method of the experiments.
enum class CommunityMethod { kLouvain, kRandom, kLabelPropagation };

/// Threshold regime of the experiments.
enum class ThresholdRegime {
  kFractionOfPopulation,  // h_i = ceil(fraction · |C_i|) — "regular" case
  kConstantBounded,       // h_i = min(h, |C_i|)          — "bounded" case
};

struct CommunityBuildConfig {
  CommunityMethod method = CommunityMethod::kLouvain;
  NodeId size_cap = 8;         // the paper's s (default s = 8)
  ThresholdRegime regime = ThresholdRegime::kFractionOfPopulation;
  double threshold_fraction = 0.5;  // used by kFractionOfPopulation
  std::uint32_t threshold_constant = 2;  // used by kConstantBounded
  /// For kRandom: number of communities before capping; 0 = n / size_cap.
  CommunityId random_communities = 0;
  std::uint64_t seed = 42;
};

/// Builds a CommunitySet per the paper's §VI-A recipe: detect (Louvain /
/// Random / LPA), split to the size cap, set b_i = |C_i| and the chosen
/// threshold policy.
[[nodiscard]] CommunitySet build_communities(const Graph& graph,
                                             const CommunityBuildConfig& config);

[[nodiscard]] std::string to_string(CommunityMethod method);
[[nodiscard]] std::string to_string(ThresholdRegime regime);

}  // namespace imc
