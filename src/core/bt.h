// BT — the Bounded-Threshold algorithm (paper Alg. 4) and its recursive
// extension BT(d) (§IV-C).
//
// For every candidate center u, BT restricts the pool to G_R(u) — the
// samples u touches — discounts each sample's threshold by the members u
// already reaches, and greedily selects k−1 more nodes on the reduced
// instance (for h <= 2 the reduction leaves thresholds <= 1, i.e. plain
// submodular coverage). It returns the K(u) = {u} ∪ T with the largest
// |D_R(K(u), u)|. Guarantees: (1−1/e)/k for h <= 2 (Theorem 4) and
// (1−1/e)/k^{d−1} for h <= d by recursion.
//
// BT enumerates O(|V|) subproblems — the paper reports it exceeding the
// runtime limit on Pokec — so the config carries an optional deadline and
// an optional candidate cap (both off by default) used by the runtime
// experiments (Fig. 7) and ablations.
#pragma once

#include <cstdint>

#include "core/maxr_solver.h"

namespace imc {

struct BtConfig {
  /// Recursion depth d; correct for instances whose thresholds are <= d.
  std::uint32_t depth = 2;
  /// Abort enumeration after this many seconds (0 = no deadline); the best
  /// K(u) found so far is returned with `timed_out` set.
  double deadline_seconds = 0.0;
  /// Consider only the `candidate_limit` nodes of highest appearance count
  /// as centers (0 = all touching nodes). Ablation/runtime knob.
  std::uint32_t candidate_limit = 0;
};

struct BtSolution : MaxrSolution {
  NodeId center = kInvalidNode;  // the winning u of line 10
  std::uint64_t d_value = 0;     // |D_R(K(u), u)|
  bool timed_out = false;
  std::uint64_t centers_tried = 0;
};

/// Throws std::invalid_argument if some community threshold exceeds
/// `config.depth` (the guarantee precondition, enforced for safety).
[[nodiscard]] BtSolution bt_solve(const RicPool& pool, std::uint32_t k,
                                  const BtConfig& config = {});

class BtSolver final : public MaxrSolver {
 public:
  explicit BtSolver(BtConfig config = {}) : config_(config) {}
  [[nodiscard]] std::string name() const override { return "BT"; }
  /// Theorem 4 / §IV-C: α = (1 − 1/e) / k^{d−1}.
  [[nodiscard]] double alpha(const RicPool&, std::uint32_t k) const override;
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return bt_solve(pool, k, config_);
  }

 private:
  BtConfig config_;
};

}  // namespace imc
