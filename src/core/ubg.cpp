#include "core/ubg.h"

namespace imc {

namespace {

/// Line 3 of Alg. 2: keep whichever seed set scores higher under ĉ_R.
void pick_better(UbgSolution& solution) {
  solution.sandwich_ratio =
      solution.from_nu.nu > 0.0
          ? solution.from_nu.c_hat / solution.from_nu.nu
          : 0.0;
  if (solution.from_c_hat.c_hat >= solution.from_nu.c_hat) {
    solution.seeds = solution.from_c_hat.seeds;
    solution.c_hat = solution.from_c_hat.c_hat;
  } else {
    solution.seeds = solution.from_nu.seeds;
    solution.c_hat = solution.from_nu.c_hat;
  }
}

}  // namespace

UbgSolution ubg_solve(const RicPool& pool, std::uint32_t k,
                      const GreedyOptions& options) {
  UbgSolution solution;
  solution.from_c_hat = greedy_c_hat(pool, k, options);
  solution.from_nu = celf_greedy_nu(pool, k, options);
  pick_better(solution);
  return solution;
}

UbgSolution ubg_resume(const RicPool& pool, std::uint32_t k,
                       const GreedyOptions& options, UbgResume& state) {
  UbgSolution solution;
  solution.from_c_hat = greedy_c_hat_resumable(pool, k, options, state.c_hat);
  solution.from_nu = celf_greedy_nu_resumable(pool, k, options, state.nu);
  pick_better(solution);
  return solution;
}

}  // namespace imc
