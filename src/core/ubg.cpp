#include "core/ubg.h"

namespace imc {

UbgSolution ubg_solve(const RicPool& pool, std::uint32_t k,
                      const GreedyOptions& options) {
  UbgSolution solution;
  solution.from_c_hat = greedy_c_hat(pool, k, options);
  solution.from_nu = celf_greedy_nu(pool, k, options);
  solution.sandwich_ratio =
      solution.from_nu.nu > 0.0
          ? solution.from_nu.c_hat / solution.from_nu.nu
          : 0.0;
  // Line 3 of Alg. 2: keep whichever scores higher under ĉ_R.
  if (solution.from_c_hat.c_hat >= solution.from_nu.c_hat) {
    solution.seeds = solution.from_c_hat.seeds;
    solution.c_hat = solution.from_c_hat.c_hat;
  } else {
    solution.seeds = solution.from_nu.seeds;
    solution.c_hat = solution.from_nu.c_hat;
  }
  return solution;
}

}  // namespace imc
