#include "core/problem.h"

#include <stdexcept>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/random_partition.h"
#include "community/size_cap.h"
#include "community/threshold_policy.h"
#include "util/rng.h"

namespace imc {

CommunitySet build_communities(const Graph& graph,
                               const CommunityBuildConfig& config) {
  Rng rng(config.seed);
  CommunitySet communities;
  switch (config.method) {
    case CommunityMethod::kLouvain: {
      LouvainConfig louvain;
      louvain.seed = config.seed;
      const LouvainResult result = louvain_communities(graph, louvain);
      communities =
          CommunitySet::from_assignment(graph.node_count(), result.assignment);
      break;
    }
    case CommunityMethod::kRandom: {
      CommunityId count = config.random_communities;
      if (count == 0) {
        count = std::max<CommunityId>(
            1, graph.node_count() / std::max<NodeId>(1, config.size_cap));
      }
      communities = CommunitySet::from_assignment(
          graph.node_count(),
          random_partition(graph.node_count(), count, rng));
      break;
    }
    case CommunityMethod::kLabelPropagation: {
      LabelPropagationConfig lpa;
      lpa.seed = config.seed;
      communities = CommunitySet::from_assignment(
          graph.node_count(), label_propagation_communities(graph, lpa));
      break;
    }
  }

  if (config.size_cap > 0) {
    communities = cap_community_sizes(communities, config.size_cap, rng);
  }

  apply_population_benefits(communities);
  switch (config.regime) {
    case ThresholdRegime::kFractionOfPopulation:
      apply_fraction_thresholds(communities, config.threshold_fraction);
      break;
    case ThresholdRegime::kConstantBounded:
      apply_constant_thresholds(communities, config.threshold_constant);
      break;
  }
  return communities;
}

std::string to_string(CommunityMethod method) {
  switch (method) {
    case CommunityMethod::kLouvain: return "louvain";
    case CommunityMethod::kRandom: return "random";
    case CommunityMethod::kLabelPropagation: return "lpa";
  }
  throw std::invalid_argument("to_string: bad CommunityMethod");
}

std::string to_string(ThresholdRegime regime) {
  switch (regime) {
    case ThresholdRegime::kFractionOfPopulation: return "regular";
    case ThresholdRegime::kConstantBounded: return "bounded";
  }
  throw std::invalid_argument("to_string: bad ThresholdRegime");
}

}  // namespace imc
