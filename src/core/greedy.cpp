#include "core/greedy.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "core/objective.h"

namespace imc {

namespace {

/// Nodes that touch at least one sample — the only useful candidates.
[[nodiscard]] std::vector<NodeId> candidate_nodes(const RicPool& pool) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    if (pool.appearance_count(v) > 0) candidates.push_back(v);
  }
  return candidates;
}

/// Tops the seed set up to k with untouched nodes (deterministically) when
/// there are fewer candidates than seats; marginals there are all zero.
void fill_to_k(const RicPool& pool, std::uint32_t k,
               std::vector<NodeId>& seeds) {
  std::vector<std::uint8_t> used(pool.graph().node_count(), 0);
  for (const NodeId v : seeds) used[v] = 1;
  for (NodeId v = 0; v < pool.graph().node_count() && seeds.size() < k; ++v) {
    if (!used[v]) seeds.push_back(v);
  }
}

void check_k(const RicPool& pool, std::uint32_t k) {
  if (k == 0 || k > pool.graph().node_count()) {
    throw std::invalid_argument("greedy: need 1 <= k <= node count");
  }
}

GreedyResult finish(const RicPool& pool, std::vector<NodeId> seeds) {
  GreedyResult result;
  result.c_hat = pool.c_hat(seeds);
  result.nu = pool.nu(seeds);
  result.seeds = std::move(seeds);
  return result;
}

}  // namespace

GreedyResult greedy_c_hat(const RicPool& pool, std::uint32_t k) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  std::vector<std::uint8_t> chosen(pool.graph().node_count(), 0);

  for (std::uint32_t round = 0;
       round < k && state.seeds().size() < candidates.size(); ++round) {
    NodeId best = kInvalidNode;
    std::uint64_t best_primary = 0;
    double best_secondary = -1.0;
    std::uint32_t best_appearance = 0;
    for (const NodeId v : candidates) {
      if (chosen[v]) continue;
      const std::uint64_t primary = state.marginal_influenced(v);
      if (best != kInvalidNode && primary < best_primary) continue;
      const double secondary = state.marginal_nu(v);
      const std::uint32_t appearance = pool.appearance_count(v);
      const bool better =
          best == kInvalidNode || primary > best_primary ||
          (primary == best_primary &&
           (secondary > best_secondary ||
            (secondary == best_secondary && appearance > best_appearance)));
      if (better) {
        best = v;
        best_primary = primary;
        best_secondary = secondary;
        best_appearance = appearance;
      }
    }
    if (best == kInvalidNode) break;
    chosen[best] = 1;
    state.add_seed(best);
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

namespace {

struct CelfEntry {
  double gain;
  NodeId node;
  std::uint32_t round;  // round at which `gain` was computed
};

struct CelfLess {
  bool operator()(const CelfEntry& a, const CelfEntry& b) const noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;  // max-heap on gain
    return a.node > b.node;  // ties: smaller node id pops first
  }
};

}  // namespace

GreedyResult celf_greedy_nu(const RicPool& pool, std::uint32_t k) {
  check_k(pool, k);
  CoverageState state(pool);
  std::priority_queue<CelfEntry, std::vector<CelfEntry>, CelfLess> heap;
  for (const NodeId v : candidate_nodes(pool)) {
    heap.push(CelfEntry{state.marginal_nu(v), v, 0});
  }

  std::uint32_t round = 0;
  while (round < k && !heap.empty()) {
    CelfEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      // Stale: submodularity guarantees the true gain only shrank, so a
      // refreshed entry can be pushed back and the heap order stays valid.
      top.gain = state.marginal_nu(top.node);
      top.round = round;
      heap.push(top);
      continue;
    }
    state.add_seed(top.node);
    ++round;
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

GreedyResult plain_greedy_nu(const RicPool& pool, std::uint32_t k) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  std::vector<std::uint8_t> chosen(pool.graph().node_count(), 0);

  for (std::uint32_t round = 0;
       round < k && state.seeds().size() < candidates.size(); ++round) {
    NodeId best = kInvalidNode;
    double best_gain = -1.0;
    for (const NodeId v : candidates) {
      if (chosen[v]) continue;
      const double gain = state.marginal_nu(v);
      if (best == kInvalidNode || gain > best_gain) {
        best = v;
        best_gain = gain;
      }
    }
    if (best == kInvalidNode) break;
    chosen[best] = 1;
    state.add_seed(best);
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

}  // namespace imc
