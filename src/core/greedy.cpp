#include "core/greedy.h"

#include <algorithm>
#include <mutex>
#include <queue>
#include <stdexcept>

#include "core/objective.h"

namespace imc {

namespace {

/// Nodes that touch at least one sample — the only useful candidates.
/// One linear walk over the CSR offsets, no per-node span construction.
[[nodiscard]] std::vector<NodeId> candidate_nodes(const RicPool& pool) {
  const std::span<const std::uint64_t> offsets = pool.touch_offsets();
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    if (offsets[v + 1] > offsets[v]) candidates.push_back(v);
  }
  return candidates;
}

/// Tops the seed set up to k with untouched nodes (deterministically) when
/// there are fewer candidates than seats; marginals there are all zero.
void fill_to_k(const RicPool& pool, std::uint32_t k,
               std::vector<NodeId>& seeds) {
  std::vector<std::uint8_t> used(pool.graph().node_count(), 0);
  for (const NodeId v : seeds) used[v] = 1;
  for (NodeId v = 0; v < pool.graph().node_count() && seeds.size() < k; ++v) {
    if (!used[v]) seeds.push_back(v);
  }
}

void check_k(const RicPool& pool, std::uint32_t k) {
  if (k == 0 || k > pool.graph().node_count()) {
    throw std::invalid_argument("greedy: need 1 <= k <= node count");
  }
}

GreedyResult finish(const RicPool& pool, std::vector<NodeId> seeds) {
  GreedyResult result;
  result.c_hat = pool.c_hat(seeds);
  result.nu = pool.nu(seeds);
  result.seeds = std::move(seeds);
  return result;
}

/// Resolves the sweep pool and whether the parallel path applies to a
/// candidate set of `count` entries.
[[nodiscard]] ThreadPool* sweep_pool(const GreedyOptions& options,
                                     std::size_t count) {
  if (!options.parallel || count < options.min_parallel_candidates) {
    return nullptr;
  }
  return options.pool != nullptr ? options.pool : &default_pool();
}

using BestFn = CandidateScore (CoverageState::*)(std::span<const NodeId>,
                                                 std::size_t,
                                                 std::size_t) const;
using BeatsFn = bool (*)(const CandidateScore&,
                         const CandidateScore&) noexcept;

/// One argmax sweep over `candidates`, serial or chunked on `pool`. The
/// per-chunk winners are merged under `beats` — a strict total order — so
/// the merged winner is chunking-independent and equals the serial result.
[[nodiscard]] CandidateScore sweep_best(const CoverageState& state,
                                        std::span<const NodeId> candidates,
                                        ThreadPool* pool, BestFn best_of,
                                        BeatsFn beats) {
  if (pool == nullptr) {
    return (state.*best_of)(candidates, 0, candidates.size());
  }
  CandidateScore best;
  std::mutex merge_mutex;
  parallel_for(*pool, candidates.size(),
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 const CandidateScore chunk_best = (state.*best_of)(
                     candidates, static_cast<std::size_t>(begin),
                     static_cast<std::size_t>(end));
                 const std::lock_guard<std::mutex> lock(merge_mutex);
                 if (beats(chunk_best, best)) best = chunk_best;
               });
  return best;
}

/// One ĉ argmax round, sample-major: accumulate every node's influenced
/// gain in one sequential pass over the samples (or over per-shard slabs
/// reduced in slab order — integer adds, so the totals are identical for
/// any sharding), then run the ν/appearance tie-break only on the nodes
/// that achieve the maximum gain. Equivalent to the candidate-major sweep:
/// `beats_c_hat` orders by influenced gain first, so the winner is always
/// among the max-gain candidates, and their ν gains / appearance counts are
/// computed exactly as the serial sweep computes them.
///
/// Parallel path (DESIGN.md §14): the pool is cut into 64-aligned sample
/// slabs (RicPool::selection_shards, one per worker by default so slab ->
/// worker affinity is stable round over round), each slab sweeps into its
/// own private gain row via the active gain kernel, and the rows are
/// folded node-by-node in ascending slab order — a fixed left-to-right
/// accumulation sequence independent of execution timing — with the fold
/// itself parallelized across the node dimension.
void compute_c_hat_gains(const CoverageState& state, ThreadPool* sweep,
                         std::size_t shard_count,
                         std::vector<std::uint64_t>& gains,
                         std::vector<std::uint64_t>& scratch) {
  const RicPool& pool = state.pool();
  const auto samples = static_cast<std::uint32_t>(pool.size());
  const std::size_t n = pool.graph().node_count();
  gains.assign(n, 0);
  if (sweep == nullptr) {
    state.accumulate_influenced_gains(0, samples, gains.data());
    return;
  }
  const std::vector<RicPool::SampleShard> shards =
      RicPool::selection_shards(
          samples, shard_count != 0 ? static_cast<unsigned>(shard_count)
                                    : sweep->size());
  if (shards.size() <= 1) {
    state.accumulate_influenced_gains(0, samples, gains.data());
    return;
  }
  scratch.assign(shards.size() * n, 0);
  parallel_for_shards(
      *sweep, static_cast<unsigned>(shards.size()), [&](unsigned s) {
        state.accumulate_influenced_gains(
            shards[s].begin, shards[s].end,
            scratch.data() + static_cast<std::size_t>(s) * n);
      });
  // The fold is a handful of streaming adds per node — below this many
  // cells the submit/wake/wait round trip of a second parallel_for costs
  // more than the fold itself, so run it inline. Either way the order is
  // ascending slab, ascending node: bit-identical totals.
  constexpr std::size_t kSerialFoldCells = std::size_t{1} << 22;
  if (shards.size() * n <= kSerialFoldCells) {
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const std::uint64_t* slab = scratch.data() + s * n;
      for (std::size_t v = 0; v < n; ++v) gains[v] += slab[v];
    }
    return;
  }
  parallel_for(*sweep, n,
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 for (std::size_t s = 0; s < shards.size(); ++s) {
                   const std::uint64_t* slab = scratch.data() + s * n;
                   for (std::uint64_t v = begin; v < end; ++v) {
                     gains[v] += slab[v];
                   }
                 }
               });
}

/// The ν/appearance tie-break over the max-gain candidates, given every
/// node's influenced gain for the round.
[[nodiscard]] CandidateScore best_from_gains(
    const CoverageState& state, std::span<const NodeId> candidates,
    const std::vector<std::uint64_t>& gains) {
  const RicPool& pool = state.pool();
  std::uint64_t max_gain = 0;
  bool any = false;
  for (const NodeId v : candidates) {
    if (state.is_seed(v)) continue;
    any = true;
    max_gain = std::max(max_gain, gains[v]);
  }
  CandidateScore best;
  if (!any) return best;
  for (const NodeId v : candidates) {
    if (state.is_seed(v) || gains[v] != max_gain) continue;
    CandidateScore score;
    score.node = v;
    score.influenced_gain = max_gain;
    score.nu_gain = state.marginal_nu(v);
    score.appearance = pool.appearance_count(v);
    if (beats_c_hat(score, best)) best = score;
  }
  return best;
}

[[nodiscard]] CandidateScore best_c_hat_sample_major(
    const CoverageState& state, std::span<const NodeId> candidates,
    ThreadPool* sweep, std::size_t shard_count,
    std::vector<std::uint64_t>& gains,
    std::vector<std::uint64_t>& scratch) {
  compute_c_hat_gains(state, sweep, shard_count, gains, scratch);
  return best_from_gains(state, candidates, gains);
}

GreedyResult greedy_rounds(const RicPool& pool, std::uint32_t k,
                           const GreedyOptions& options, BestFn best_of,
                           BeatsFn beats) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  ThreadPool* sweep = sweep_pool(options, candidates.size());

  for (std::uint32_t round = 0;
       round < k && state.seeds().size() < candidates.size(); ++round) {
    const CandidateScore best =
        sweep_best(state, candidates, sweep, best_of, beats);
    if (!best.valid()) break;
    state.add_seed(best.node);
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

}  // namespace

GreedyResult greedy_c_hat(const RicPool& pool, std::uint32_t k,
                          const GreedyOptions& options) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  ThreadPool* sweep = sweep_pool(options, candidates.size());
  std::vector<std::uint64_t> gains;
  std::vector<std::uint64_t> scratch;

  for (std::uint32_t round = 0;
       round < k && state.seeds().size() < candidates.size(); ++round) {
    const CandidateScore best = best_c_hat_sample_major(
        state, candidates, sweep, options.shards, gains, scratch);
    if (!best.valid()) break;
    state.add_seed(best.node);
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

namespace {

/// Snapshot-matrix memory cap for CHatResume: k rows of n 8-byte gains.
/// Past this, recording is skipped and every stage solves cold — warm
/// start is a time/space trade, never a correctness requirement.
inline constexpr std::size_t kCHatSnapshotCapBytes = 256u << 20;

}  // namespace

GreedyResult greedy_c_hat_resumable(const RicPool& pool, std::uint32_t k,
                                    const GreedyOptions& options,
                                    CHatResume& resume) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  ThreadPool* sweep = sweep_pool(options, candidates.size());
  const std::size_t n = pool.graph().node_count();
  const bool record =
      static_cast<std::size_t>(k) * n * sizeof(std::uint64_t) <=
      kCHatSnapshotCapBytes;

  // A resume from a different graph, a reset pool, or an overwritten epoch
  // is silently discarded — the cold path below is always correct.
  bool warm = resume.nodes == n && !resume.winners.empty() &&
              resume.gain_snapshots.size() == resume.winners.size() * n;
  std::uint64_t old_samples = 0;
  if (warm) {
    try {
      (void)pool.samples_since(resume.epoch);  // validates the carried epoch
      old_samples = resume.epoch.samples;
    } catch (const std::invalid_argument&) {
      warm = false;
    }
  }
  if (!warm) {
    resume.winners.clear();
    resume.gain_snapshots.clear();
  }

  std::vector<std::uint64_t> gains;
  std::vector<std::uint64_t> scratch;
  const std::size_t stored = resume.winners.size();
  std::size_t rounds_done = 0;
  bool diverged = false;
  for (std::uint32_t round = 0;
       round < k && state.seeds().size() < candidates.size(); ++round) {
    if (!diverged && round < stored) {
      // Warm round: the snapshot row already holds the [0, old) portion of
      // every node's gain against this exact seed prefix (append never
      // alters old samples' touches or coverage), so only the grown tail
      // is accumulated. Integer adds over any sample partition reproduce
      // the cold full-range totals exactly.
      gains.assign(resume.gain_snapshots.begin() + round * n,
                   resume.gain_snapshots.begin() + (round + 1) * n);
      state.accumulate_influenced_gains(
          static_cast<std::uint32_t>(old_samples),
          static_cast<std::uint32_t>(pool.size()), gains.data());
    } else {
      compute_c_hat_gains(state, sweep, options.shards, gains, scratch);
    }
    const CandidateScore best = best_from_gains(state, candidates, gains);
    if (!best.valid()) break;
    if (!diverged && round < stored && resume.winners[round] != best.node) {
      // ĉ is non-submodular: the grown pool legitimately reorders winners
      // here. The stale tail was computed against the old prefix — drop it
      // and continue cold (the gains just computed are still this round's
      // snapshot).
      diverged = true;
      resume.winners.resize(round);
      resume.gain_snapshots.resize(round * n);
    }
    if (record) {
      if (round < resume.winners.size()) {
        resume.winners[round] = best.node;
        std::copy(gains.begin(), gains.end(),
                  resume.gain_snapshots.begin() + round * n);
      } else {
        resume.winners.push_back(best.node);
        resume.gain_snapshots.insert(resume.gain_snapshots.end(),
                                     gains.begin(), gains.end());
      }
      rounds_done = round + 1;
    }
    state.add_seed(best.node);
  }

  if (record) {
    // Rows past the rounds actually run this call would be stale against
    // the epoch below — drop them.
    resume.winners.resize(rounds_done);
    resume.gain_snapshots.resize(rounds_done * n);
    resume.nodes = n;
    resume.epoch = pool.grow_epoch();
  } else {
    resume = CHatResume{};
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

GreedyResult plain_greedy_nu(const RicPool& pool, std::uint32_t k,
                             const GreedyOptions& options) {
  return greedy_rounds(pool, k, options, &CoverageState::best_candidate_nu,
                       &beats_nu);
}

namespace {

struct CelfEntry {
  double gain;
  NodeId node;
  std::uint32_t round;  // round at which `gain` was computed
};

struct CelfLess {
  bool operator()(const CelfEntry& a, const CelfEntry& b) const noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;  // max-heap on gain
    return a.node > b.node;  // ties: smaller node id pops first
  }
};

/// Relative width of the stale-bound drift guard. ν marginals are
/// non-increasing in exact arithmetic (submodularity), but marginal_nu is
/// a plain-double sum of fraction-table deltas, so a node's true gain can
/// drift a few ulps ABOVE its cached CELF bound as the covered masks
/// change underneath it (relative error of a non-negative T-term sum is
/// O(T·eps), ~1e-11 for the largest pools). A fresh heap top may then beat
/// a buried near-tie whose true gain is actually higher, diverging from
/// plain_greedy_nu. Before trusting a fresh top, every stale entry within
/// this band of it is refreshed; 1e-9 is ~100x the worst-case drift while
/// still far below any meaningful gain difference, so the extra refreshes
/// only hit (near-)exact ties.
inline constexpr double kCelfDriftGuard = 1e-9;

using CelfHeap = std::priority_queue<CelfEntry, std::vector<CelfEntry>,
                                     CelfLess>;

/// The CELF selection loop proper, shared by the cold and resumable entry
/// points: given a heap of round-0 bounds it picks k seeds and finishes.
GreedyResult celf_rounds(const RicPool& pool, std::uint32_t k,
                         CoverageState& state, ThreadPool* sweep,
                         CelfHeap& heap);

}  // namespace

GreedyResult celf_greedy_nu(const RicPool& pool, std::uint32_t k,
                            const GreedyOptions& options) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  ThreadPool* sweep = sweep_pool(options, candidates.size());

  CelfHeap heap;
  {
    // Initial gains are chunking-independent per node, so the parallel
    // build feeds the heap the exact values the serial build would. The
    // serial build itself goes sample-major — one sequential pass over the
    // pool instead of a random covered probe per touch — which is
    // bit-identical to per-node marginal_nu over the full range (see
    // CoverageState::accumulate_nu_gains).
    std::vector<double> gains(candidates.size(), 0.0);
    if (sweep != nullptr) {
      parallel_for(*sweep, candidates.size(),
                   [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                     for (std::uint64_t i = begin; i < end; ++i) {
                       gains[i] = state.marginal_nu(candidates[i]);
                     }
                   });
    } else {
      std::vector<double> node_gains(pool.graph().node_count(), 0.0);
      state.accumulate_nu_gains(0, static_cast<std::uint32_t>(pool.size()),
                                node_gains.data());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        gains[i] = node_gains[candidates[i]];
      }
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      heap.push(CelfEntry{gains[i], candidates[i], 0});
    }
  }
  return celf_rounds(pool, k, state, sweep, heap);
}

GreedyResult celf_greedy_nu_resumable(const RicPool& pool, std::uint32_t k,
                                      const GreedyOptions& options,
                                      NuCelfResume& resume) {
  check_k(pool, k);
  CoverageState state(pool);
  const std::vector<NodeId> candidates = candidate_nodes(pool);
  ThreadPool* sweep = sweep_pool(options, candidates.size());
  const std::size_t n = pool.graph().node_count();

  // Continue (or start) the per-node init-gain chains. Always the serial
  // sample-major pass, even under `parallel`: its per-node values equal
  // the parallel per-candidate marginals bit-for-bit (see
  // accumulate_nu_gains), and seriality is what makes the stored array a
  // resumable left-associated chain.
  bool warm = resume.init_gains.size() == n;
  std::uint64_t old_samples = 0;
  if (warm) {
    try {
      (void)pool.samples_since(resume.epoch);  // validates the carried epoch
      old_samples = resume.epoch.samples;
    } catch (const std::invalid_argument&) {
      warm = false;
    }
  }
  if (!warm) {
    resume.init_gains.assign(n, 0.0);
    old_samples = 0;
  }
  state.accumulate_nu_gains(static_cast<std::uint32_t>(old_samples),
                            static_cast<std::uint32_t>(pool.size()),
                            resume.init_gains.data());
  resume.epoch = pool.grow_epoch();

  CelfHeap heap;
  for (const NodeId v : candidates) {
    heap.push(CelfEntry{resume.init_gains[v], v, 0});
  }
  return celf_rounds(pool, k, state, sweep, heap);
}

namespace {

GreedyResult celf_rounds(const RicPool& pool, std::uint32_t k,
                         CoverageState& state, ThreadPool* sweep,
                         CelfHeap& heap) {
  // Refresh burst size: enough stale entries per batch to feed every
  // worker, small enough to avoid refreshing far below the eventual
  // winner. Purely a scheduling knob — selection is unaffected.
  const std::size_t burst =
      sweep != nullptr ? std::max<std::size_t>(32, sweep->size() * 8) : 1;
  std::vector<CelfEntry> stale;
  stale.reserve(burst);
  std::vector<CelfEntry> band;

  std::uint32_t round = 0;
  while (round < k && !heap.empty()) {
    if (heap.top().round == round) {
      // Fresh top: stale entries cache upper bounds (submodularity), BUT
      // floating-point drift can push a buried entry's true gain a few
      // ulps above its cached bound (see kCelfDriftGuard). Drain the whole
      // guard band — including fresh ties, which can hide a one-ulp-lower
      // stale bound beneath them — refresh the stale ones, and only trust
      // the top once no refresh outranked it.
      //
      // Zero-gain top short-circuits the drain: a zero marginal is a sum
      // whose every term is zero (the fraction-table deltas are exact
      // doubles), so neither cached nor fresh zeros carry drift, and the
      // heap's id tie-break already matches the reference ordering. This
      // keeps the exhausted tail O(log n) per pick instead of re-draining
      // every zero entry each round.
      CelfEntry top = heap.top();
      heap.pop();
      if (top.gain > 0.0) {
        bool refreshed_stale = false;
        const double guard = kCelfDriftGuard * (1.0 + top.gain);
        band.clear();
        while (!heap.empty() && heap.top().gain >= top.gain - guard) {
          CelfEntry entry = heap.top();
          heap.pop();
          if (entry.round != round) {
            entry.gain = state.marginal_nu(entry.node);
            entry.round = round;
            refreshed_stale = true;
          }
          band.push_back(entry);
        }
        for (const CelfEntry& entry : band) heap.push(entry);
        if (refreshed_stale && !heap.empty() &&
            CelfLess{}(top, heap.top())) {
          heap.push(top);  // a refreshed entry won; pick it next iteration
          continue;
        }
      }
      state.add_seed(top.node);
      ++round;
      continue;
    }
    // Pop a burst of stale tops and recompute their gains — serially one
    // at a time, or batched across the pool. Re-pushed entries carry
    // chunking-independent gains, so both paths select identical seeds.
    stale.clear();
    while (!heap.empty() && heap.top().round != round &&
           stale.size() < burst) {
      stale.push_back(heap.top());
      heap.pop();
    }
    const auto refresh_range = [&](std::uint64_t begin, std::uint64_t end,
                                   unsigned) {
      for (std::uint64_t i = begin; i < end; ++i) {
        stale[i].gain = state.marginal_nu(stale[i].node);
        stale[i].round = round;
      }
    };
    if (sweep != nullptr && stale.size() >= sweep->size()) {
      parallel_for(*sweep, stale.size(), refresh_range);
    } else {
      refresh_range(0, stale.size(), 0);
    }
    for (const CelfEntry& entry : stale) heap.push(entry);
  }

  std::vector<NodeId> seeds = state.seeds();
  fill_to_k(pool, k, seeds);
  return finish(pool, std::move(seeds));
}

}  // namespace

}  // namespace imc
