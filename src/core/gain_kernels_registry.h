// Internal registry contract between the gain-kernel dispatcher
// (gain_kernels.cpp) and the per-variant translation units. Each variant
// TU implements its getter unconditionally: it returns the variant's ops
// table when the TU was compiled with the required ISA flags, and nullptr
// otherwise (non-x86 hosts, or a toolchain where the per-file flags were
// not applied). Runtime __builtin_cpu_supports gating happens in the
// dispatcher on top of this build-time availability check.
#pragma once

#include "core/gain_kernels.h"

namespace imc {
namespace gain_detail {

const GainKernelOps* scalar_ops() noexcept;  // never nullptr
const GainKernelOps* popcnt_ops() noexcept;
const GainKernelOps* avx2_ops() noexcept;
const GainKernelOps* avx512_ops() noexcept;

}  // namespace gain_detail
}  // namespace imc
