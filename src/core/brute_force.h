// Exhaustive MAXR solver — the test oracle for optimality gaps (Theorems
// 3–5 are asserted against it on tiny instances). Exponential; refuses
// instances beyond a work limit instead of hanging.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "sampling/ric_pool.h"

namespace imc {

struct BruteForceResult {
  std::vector<NodeId> seeds;
  std::uint64_t influenced = 0;  // influenced samples (raw MAXR objective)
  double c_hat = 0.0;
};

/// Enumerates all k-subsets of the candidate nodes (nodes touching >= 1
/// sample). Throws std::invalid_argument if C(candidates, k) exceeds
/// `max_subsets`.
[[nodiscard]] BruteForceResult brute_force_maxr(
    const RicPool& pool, std::uint32_t k,
    std::uint64_t max_subsets = 5'000'000);

}  // namespace imc
