#include "core/mb.h"

#include <algorithm>
#include <cmath>

namespace imc {

MbSolution mb_solve(const RicPool& pool, std::uint32_t k,
                    const BtConfig& bt_config, std::uint64_t maf_seed) {
  MbSolution solution;
  solution.maf = maf_solve(pool, k, maf_seed);
  solution.bt = bt_solve(pool, k, bt_config);
  solution.chose_bt = solution.bt.c_hat > solution.maf.c_hat;
  const MaxrSolution& winner =
      solution.chose_bt ? static_cast<const MaxrSolution&>(solution.bt)
                        : static_cast<const MaxrSolution&>(solution.maf);
  solution.seeds = winner.seeds;
  solution.c_hat = winner.c_hat;
  return solution;
}

double MbSolver::alpha(const RicPool& pool, std::uint32_t k) const {
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  const double r =
      static_cast<double>(std::max<CommunityId>(1, pool.communities().size()));
  const double floor_half_k = std::floor(static_cast<double>(k) / 2.0);
  const double value =
      kOneMinusInvE * std::max(1.0, floor_half_k) /
      (r * static_cast<double>(std::max(1U, k)));
  return std::clamp(std::sqrt(value), 1e-12, 1.0);
}

}  // namespace imc
