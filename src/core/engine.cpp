#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "estimation/concentration.h"
#include "estimation/dagum.h"
#include "sampling/pool_snapshot.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace imc {

namespace {

const CommunitySet& require_communities(const CommunitySet& communities) {
  if (communities.empty()) {
    throw std::invalid_argument("imcaf_solve: no communities");
  }
  return communities;
}

}  // namespace

ImcEngine::ImcEngine(const Graph& graph, const CommunitySet& communities,
                     ImcafConfig config, ExecutionContext context)
    : graph_(&graph),
      communities_(&require_communities(communities)),
      config_(config),
      context_(context),
      pool_(graph, communities, config_.model, config_.pool_backend) {}

void ImcEngine::attach_pool(const std::string& path, SnapshotTrust trust) {
  RicPool loaded = load_ric_pool_any(path, *graph_, *communities_,
                                     config_.pool_backend, trust);
  if (loaded.model() != config_.model) {
    throw std::invalid_argument(
        "ImcEngine::attach_pool: pool file was sampled under a different "
        "diffusion model than the engine is configured for");
  }
  pool_ = std::move(loaded);
  log(LogLevel::kDebug) << "IMCAF attach: |R|=" << pool_.size()
                        << (pool_.attached() ? " (zero-copy mmap)"
                                             : " (owned arenas)");
}

RicPool::RepairStats ImcEngine::apply_delta(Graph& graph,
                                            CommunitySet& communities,
                                            const GraphDelta& delta) {
  if (&graph != graph_ || &communities != communities_) {
    throw std::invalid_argument(
        "ImcEngine::apply_delta: graph/communities must be the exact "
        "objects this engine was constructed over");
  }
  const DeltaEffects effects = imc::apply_delta(graph, communities, delta);
  const Stopwatch watch;
  const RicPool::RepairStats stats = pool_.invalidate_and_repair(
      effects, config_.seed, config_.parallel_sampling, context_.workers);
  log(LogLevel::kDebug) << "IMCAF delta: repaired " << stats.repaired << "/"
                        << stats.total << " samples in "
                        << watch.elapsed_seconds() << " s, |R|="
                        << pool_.size();
  return stats;
}

void ImcEngine::timed_grow(std::uint64_t count, ImcafResult& result) {
  const Stopwatch grow_watch;
  pool_.grow(count, config_.seed, config_.parallel_sampling,
             context_.workers);
  const double seconds = grow_watch.elapsed_seconds();
  result.sampling_seconds += seconds;
  result.samples_generated += count;
  log(LogLevel::kDebug) << "IMCAF grow: " << count << " samples in "
                        << seconds << " s ("
                        << (seconds > 0.0
                                ? static_cast<double>(count) / seconds
                                : 0.0)
                        << " samples/s), |R|=" << pool_.size();
}

ImcafResult ImcEngine::solve(std::uint32_t k, const MaxrSolver& solver) {
  if (k == 0 || k > graph_->node_count()) {
    throw std::invalid_argument("imcaf_solve: need 1 <= k <= |V|");
  }

  const Stopwatch watch;
  ImcafResult result;
  const ApproxParams& params = config_.params;

  const double alpha = solver.alpha(pool_, k);
  const double b = communities_->total_benefit();
  const double beta = communities_->min_benefit();
  const std::uint32_t h = communities_->max_threshold();

  result.lambda = ssa_lambda(params);
  result.psi = static_cast<double>(
      psi_sample_cap(graph_->node_count(), k, b, beta, h, alpha, params));

  std::uint64_t cap = static_cast<std::uint64_t>(
      std::min(result.psi, 1e18));
  if (config_.max_samples > 0) cap = std::min(cap, config_.max_samples);

  // Number of doubling rounds bounds the union-bound split of δ for the
  // per-stage Estimate calls (paper: δ / (3 log2(Ψ/Λ))).
  const double stages_bound = std::max(
      1.0, std::log2(std::max(2.0, result.psi / result.lambda)));
  const double delta_stage = params.delta / (3.0 * stages_bound);

  // Stage 1 grows the pool up to Λ (capped). A shared pool a previous
  // query already grew past that point is reused as-is — the per-sample
  // RNG substreams make any grow partitioning produce the identical pool,
  // so a fresh engine reproduces the single-shot growth bit-for-bit.
  const auto initial = static_cast<std::uint64_t>(
      std::ceil(result.lambda));
  const std::uint64_t first_target = std::min(initial, cap);
  std::uint64_t stage_samples = 0;
  double stage_sampling = 0.0;
  if (pool_.size() < first_target) {
    const double before = result.sampling_seconds;
    stage_samples = first_target - pool_.size();
    timed_grow(stage_samples, result);
    stage_sampling = result.sampling_seconds - before;
  }

  // Pipelined schedule state (DESIGN.md §15). While this stage's solve and
  // estimate run, the NEXT doubling batch generates in the background into
  // `staging` — a sampler-owned buffer that never touches the live pool —
  // and the stage boundary either commits it (bit-identical to the grow()
  // it replaces: same substreams, same stitched order, one watermark bump)
  // or discards it when the stop condition won the race. Declaration order
  // matters: `spec_job` must die before the staging locals its body writes,
  // and its destructor cancel+joins, so an exception unwinding out of the
  // solver or the Estimate can never leave the job running over freed
  // state.
  PoolStagingArena staging;
  double staged_seconds = 0.0;  // generation wall time inside the job
  BackgroundJob spec_job;
  ThreadPool* const spec_workers =
      context_.workers != nullptr ? context_.workers : &default_pool();

  // Speculation policy: the next target is min(cap, |R|·2) — computable
  // before the solve because the pool is immutable until the boundary —
  // so a committed batch always matches the grow() the serial schedule
  // would have issued. No launch when the pool is already at cap (the next
  // stage, if any, grows nothing) or the run is winding down.
  const auto launch_speculation = [&]() {
    if (!config_.pipeline || spec_job.valid()) return;
    if (pool_.size() >= cap || context_.stop_requested()) return;
    const std::uint64_t count = std::min(cap, pool_.size() * 2) - pool_.size();
    spec_job = submit_job(
        *spec_workers,
        [this, count, &staging, &staged_seconds](
            const std::atomic<bool>& cancel) {
          const Stopwatch stage_watch;
          pool_.stage_samples(
              count, config_.seed, config_.parallel_sampling,
              context_.workers,
              [this, &cancel] {
                return cancel.load(std::memory_order_acquire) ||
                       context_.stop_requested();
              },
              staging);
          staged_seconds = stage_watch.elapsed_seconds();
        });
  };

  // Terminal stages (accept/deadline/cap) invalidate the in-flight
  // speculation: cancel, join, and account the partial batch as discarded
  // on the breaking stage's row. Regenerating later (a subsequent query on
  // the shared pool) reproduces the identical samples by the substream
  // contract, so discarding loses work, never determinism.
  const auto discard_speculation = [&](StageMetrics& metrics) {
    if (!spec_job.valid()) return;
    spec_job.cancel();
    spec_job.join();
    const std::uint64_t discarded = staging.staged_count();
    metrics.speculative_samples_discarded += discarded;
    result.speculative_samples_discarded += discarded;
    staging.clear();
  };

  // Pipeline fields of the NEXT stage's metrics row, set at the boundary
  // that feeds it (mirrors the stage_samples/stage_sampling carry).
  bool stage_pipelined = false;
  double stage_overlap = 0.0;
  std::uint64_t stage_committed = 0;
  std::uint64_t stage_discarded = 0;

  std::unique_ptr<MaxrResume> carry;
  MaxrSolution solution;
  for (;;) {
    ++result.stop_stages;
    StageMetrics metrics;
    metrics.stage = result.stop_stages;
    metrics.pool_size = pool_.size();
    metrics.samples_added = stage_samples;
    metrics.sampling_seconds = stage_sampling;
    metrics.warm_start = config_.warm_start && result.stop_stages > 1;
    metrics.pipelined = stage_pipelined;
    metrics.overlap_seconds = stage_overlap;
    metrics.speculative_samples_committed = stage_committed;
    metrics.speculative_samples_discarded = stage_discarded;
    stage_samples = 0;
    stage_sampling = 0.0;
    stage_pipelined = false;
    stage_overlap = 0.0;
    stage_committed = 0;
    stage_discarded = 0;

    launch_speculation();

    const Stopwatch solve_watch;
    solution = config_.warm_start ? solver.resume(pool_, k, carry)
                                  : solver.solve(pool_, k);
    metrics.solver_seconds = solve_watch.elapsed_seconds();
    result.solver_seconds += metrics.solver_seconds;
    log(LogLevel::kDebug) << "IMCAF stage " << result.stop_stages << ": |R|="
                          << pool_.size() << " c_hat=" << solution.c_hat;

    // Line 8 of Alg. 5: (|R|/b)·ĉ_R(S) = #influenced samples >= Λ.
    const std::uint64_t influenced = pool_.influenced_count(solution.seeds);
    if (static_cast<double>(influenced) >= result.lambda) {
      // Line 9: independent estimate of c(S) on FRESH samples (Alg. 6).
      DagumOptions dagum;
      dagum.eps_prime = params.ssa_eps2();
      dagum.delta_prime = delta_stage;
      dagum.seed = config_.seed ^ (0xABCD1234ULL * result.stop_stages);
      dagum.model = config_.model;
      const double e2 = params.ssa_eps2();
      const double e3 = params.ssa_eps3();
      dagum.max_samples = static_cast<std::uint64_t>(std::ceil(
          static_cast<double>(pool_.size()) * (1.0 + e2) / (1.0 - e2) *
          (e3 * e3) / (e2 * e2)));
      dagum.max_samples = std::max<std::uint64_t>(dagum.max_samples, 1000);
      const Stopwatch estimate_watch;
      const DagumEstimate estimate = dagum_estimate_benefit(
          *graph_, *communities_, solution.seeds, dagum, context_);
      metrics.estimate_seconds = estimate_watch.elapsed_seconds();
      metrics.estimate_samples = estimate.samples;
      result.estimate_seconds += metrics.estimate_seconds;
      // Line 10: accept when the pool does not over-estimate the benefit.
      if (estimate.converged &&
          solution.c_hat <= (1.0 + params.ssa_eps1()) * estimate.value) {
        result.estimated_benefit = estimate.value;
        metrics.accepted = true;
        discard_speculation(metrics);
        context_.record_stage(metrics);
        break;
      }
    }

    // Wind-down checks run only after a completed solve, so the partial
    // result always carries a real candidate seed set.
    if (context_.stop_requested()) {
      result.reached_deadline = true;
      discard_speculation(metrics);
      context_.record_stage(metrics);
      break;
    }
    if (pool_.size() >= cap) {
      result.reached_cap = true;
      discard_speculation(metrics);  // no-op: nothing launches at cap
      context_.record_stage(metrics);
      break;
    }
    context_.record_stage(metrics);

    // Stage boundary: the serial schedule grows here; the pipelined one
    // harvests the background batch instead. The speculation is valid
    // exactly when it targeted THIS boundary's grow (base/count/seed all
    // match — a solve never mutates the pool, so only a cancelled staging
    // can miss); anything else falls back to the synchronous grow, which
    // regenerates the identical samples from the same substreams.
    const std::uint64_t target = std::min(cap, pool_.size() * 2);
    stage_samples = target - pool_.size();
    bool committed = false;
    if (spec_job.valid()) {
      const Stopwatch wait_watch;
      spec_job.join();
      const double wait_seconds = wait_watch.elapsed_seconds();
      if (staging.complete() && staging.base() == pool_.size() &&
          staging.count() == stage_samples &&
          staging.seed() == config_.seed &&
          staging.epoch() == pool_.grow_epoch()) {
        const Stopwatch commit_watch;
        pool_.commit_staged(std::move(staging), config_.parallel_sampling,
                            context_.workers);
        const double commit_seconds = commit_watch.elapsed_seconds();
        // sampling_seconds stays "time spent generating + splicing" so the
        // realized-throughput numbers compare across schedules; the hidden
        // slice (generation minus what the boundary actually waited) is
        // reported separately as overlap.
        stage_sampling = staged_seconds + commit_seconds;
        stage_overlap = std::max(0.0, staged_seconds - wait_seconds);
        stage_pipelined = true;
        stage_committed = stage_samples;
        result.sampling_seconds += stage_sampling;
        result.samples_generated += stage_samples;
        result.overlap_seconds += stage_overlap;
        result.speculative_samples_committed += stage_samples;
        committed = true;
        log(LogLevel::kDebug)
            << "IMCAF commit: " << stage_samples << " staged samples in "
            << commit_seconds << " s (" << stage_overlap
            << " s generation hidden), |R|=" << pool_.size();
      } else {
        // Cancelled mid-staging (deadline raced the stop check): drop the
        // partial batch and regrow synchronously — identical samples by
        // the substream contract. The next row carries the discard count.
        const std::uint64_t discarded = staging.staged_count();
        result.speculative_samples_discarded += discarded;
        stage_discarded = discarded;
        staging.clear();
      }
    }
    if (!committed) {
      const double before = result.sampling_seconds;
      timed_grow(stage_samples, result);
      stage_sampling = result.sampling_seconds - before;
    }
  }

  result.seeds = std::move(solution.seeds);
  result.c_hat = solution.c_hat;
  result.samples_used = pool_.size();
  if (result.estimated_benefit == 0.0 && !result.seeds.empty()) {
    // Cap/deadline exit: still report an independent estimate.
    DagumOptions dagum;
    dagum.eps_prime = params.ssa_eps2();
    dagum.delta_prime = delta_stage;
    dagum.seed = config_.seed ^ 0xFEEDFACEULL;
    dagum.model = config_.model;
    dagum.max_samples = std::max<std::uint64_t>(pool_.size(), 10'000);
    const Stopwatch estimate_watch;
    result.estimated_benefit =
        dagum_estimate_benefit(*graph_, *communities_, result.seeds, dagum,
                               context_)
            .value;
    result.estimate_seconds += estimate_watch.elapsed_seconds();
  }
  result.runtime_seconds = watch.elapsed_seconds();
  return result;
}

std::vector<ImcafResult> ImcEngine::solve_many(
    std::span<const EngineQuery> queries) {
  std::vector<ImcafResult> results;
  results.reserve(queries.size());
  for (const EngineQuery& query : queries) {
    if (query.solver == nullptr) {
      throw std::invalid_argument("ImcEngine::solve_many: null solver");
    }
    results.push_back(solve(query.k, *query.solver));
  }
  return results;
}

}  // namespace imc
