// IMCAF — the IMC Algorithmic Framework (paper Alg. 5).
//
// SSA-style sample doubling around any MAXR solver κ: generate Λ RIC
// samples, solve MAXR, and at each stop stage check whether (a) the
// candidate influences at least Λ samples and (b) an independent Dagum
// estimate c* of c(S) confirms ĉ_R(S) <= (1 + ε1)·c* — i.e. the pool is not
// overfitting S. On failure the pool doubles, capped by Ψ (eq. 22). The
// returned S is an α(1 − ε)-approximation with probability >= 1 − δ
// (Theorem 7), where α is the solver's MAXR guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "community/community_set.h"
#include "core/maxr_solver.h"
#include "estimation/concentration.h"
#include "graph/graph.h"
#include "util/mmap_arena.h"

namespace imc {

struct ImcafConfig {
  ApproxParams params;       // ε, δ (paper uses ε = δ = 0.2)
  std::uint64_t seed = 2024;
  /// Diffusion model for sampling AND the stop-stage Estimate; the paper's
  /// machinery extends verbatim from IC to LT (§II-A).
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Practical cap on |R| (0 = none beyond Ψ). Ψ is astronomically
  /// conservative on real inputs; benches set this to bound memory/time
  /// exactly like the paper's runtime limit.
  std::uint64_t max_samples = 0;
  bool parallel_sampling = true;
  /// Let the MAXR solver warm-start from its previous doubling stage via
  /// MaxrSolver::resume. Results are BIT-IDENTICAL either way (the resume
  /// contract); off exists for benchmarking the cold baseline.
  bool warm_start = true;
  /// Storage backend for the RIC pool arenas: kRam (aligned heap) or kMmap
  /// (anonymous mappings grown via mremap — the kernel can lazily back and
  /// swap them). Pool CONTENT is bit-identical either way; the golden
  /// determinism pins hold under both.
  ArenaBackend pool_backend = ArenaBackend::kRam;
  /// Overlap each stage's solve/estimate with speculative generation of
  /// the NEXT stage's samples into a staging arena, committed at the stage
  /// boundary (DESIGN.md §15). Results are BIT-IDENTICAL either way — the
  /// committed batch uses the same RNG substreams and merge as the serial
  /// schedule; off exists for benchmarking the serial baseline and for
  /// hosts where the background thread is pure overhead.
  bool pipeline = true;
};

struct ImcafResult {
  std::vector<NodeId> seeds;
  double c_hat = 0.0;              // ĉ_R(S) on the final pool
  double estimated_benefit = 0.0;  // independent Dagum estimate of c(S)
  std::uint64_t samples_used = 0;  // final |R|
  std::uint32_t stop_stages = 0;   // solver invocations
  bool reached_cap = false;        // terminated by Ψ / max_samples
  double lambda = 0.0;             // Λ of Alg. 5
  double psi = 0.0;                // Ψ of eq. 22 (possibly huge)
  double runtime_seconds = 0.0;
  /// Wall time spent inside pool.grow() across all doubling stages, and
  /// the samples generated in that time — together the realized sampling
  /// throughput (samples_generated / sampling_seconds). Per-stage numbers
  /// are logged at kDebug as the run proceeds.
  double sampling_seconds = 0.0;
  std::uint64_t samples_generated = 0;
  /// Wall time inside the MAXR solves and the stop-stage Estimates, summed
  /// over stages (the engine's per-stage split goes to the MetricsSink).
  double solver_seconds = 0.0;
  double estimate_seconds = 0.0;
  /// The run wound down early on an expired deadline or a cancellation
  /// (ExecutionContext); `seeds` is the best candidate from the stages
  /// that completed — never empty, since stopping is only checked after a
  /// solve.
  bool reached_deadline = false;
  /// Pipelined-execution accounting (all zero when ImcafConfig::pipeline
  /// is off or no speculation ran): sampling time hidden under the
  /// solve/estimate phases (generation seconds minus the boundary wait),
  /// and how many speculatively generated samples were committed vs
  /// thrown away because the stop condition fired first.
  double overlap_seconds = 0.0;
  std::uint64_t speculative_samples_committed = 0;
  std::uint64_t speculative_samples_discarded = 0;
};

/// Runs Alg. 5. Throws std::invalid_argument on empty communities, k = 0,
/// or k > |V|.
[[nodiscard]] ImcafResult imcaf_solve(const Graph& graph,
                                      const CommunitySet& communities,
                                      std::uint32_t k,
                                      const MaxrSolver& solver,
                                      const ImcafConfig& config = {});

}  // namespace imc
