#include "core/objective.h"

#include <algorithm>
#include <stdexcept>

#include "core/gain_kernels.h"
#include "util/mathx.h"

namespace imc {

namespace {

// Hot-loop skeleton shared by the sweep kernels below: walk a node's
// contiguous CSR touch span while software-prefetching the random-access
// `covered[sample]` word a few touches ahead. The prefetch run and the
// tail are split so the steady-state loop carries no extra bounds check.
// always_inline matters beyond the call overhead: the callers are
// IMC_POPCNT_CLONES functions, and only code inlined INTO a clone is
// compiled with that clone's ISA extensions — an outlined shared copy
// would pin the loop to the baseline software popcount.
template <typename Body>
[[gnu::always_inline]] inline void for_each_touch(
    std::span<const RicPool::Touch> touches, const std::uint64_t* covered,
    Body&& body) {
  const std::size_t size = touches.size();
  const std::size_t prefetched =
      size > kCoveredPrefetchDistance ? size - kCoveredPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < prefetched; ++i) {
    prefetch_read(&covered[touches[i + kCoveredPrefetchDistance].sample]);
    body(touches[i]);
  }
  for (; i < size; ++i) body(touches[i]);
}

}  // namespace

bool beats_c_hat(const CandidateScore& a, const CandidateScore& b) noexcept {
  if (!b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.influenced_gain != b.influenced_gain) {
    return a.influenced_gain > b.influenced_gain;
  }
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  if (a.appearance != b.appearance) return a.appearance > b.appearance;
  return a.node < b.node;
}

bool beats_nu(const CandidateScore& a, const CandidateScore& b) noexcept {
  if (!b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  return a.node < b.node;
}

CoverageState::CoverageState(const RicPool& pool)
    : pool_(&pool), fraction_table_(nu_fraction_row(0)) {
  covered_.assign(pool.size(), 0);
  saturated_.assign((pool.size() + 63) / 64, 0);
  is_seed_.assign(pool.graph().node_count(), 0);
  init_nu_base(0);
}

void CoverageState::init_nu_base(std::size_t from) {
  // Callers guarantee covered_[g] == 0 for every g in [from, size): the
  // base fraction of an untouched sample is its row's count-0 entry.
  const std::uint32_t* thresholds = pool_->thresholds().data();
  nu_base_.resize(pool_->size());
  for (std::size_t g = from; g < nu_base_.size(); ++g) {
    nu_base_[g] = fraction_table_[thresholds[g] * (kMaxNuThreshold + 1)];
  }
}

void CoverageState::reset() {
  std::fill(covered_.begin(), covered_.end(), 0);
  std::fill(saturated_.begin(), saturated_.end(), 0);
  std::fill(is_seed_.begin(), is_seed_.end(), 0);
  seeds_.clear();
  influenced_ = 0;
  nu_sum_ = KahanSum{};
  init_nu_base(0);
}

IMC_POPCNT_CLONES
void CoverageState::add_seed(NodeId v) {
  assert(v < is_seed_.size());
  if (is_seed_[v]) return;
  is_seed_[v] = 1;
  seeds_.push_back(v);
  for_each_touch(
      pool_->touches_of(v), covered_.data(),
      [&](const RicPool::Touch& touch) {
        const std::uint64_t before = covered_[touch.sample];
        const std::uint64_t after = before | touch.mask;
        if (after == before) return;
        covered_[touch.sample] = after;
        const auto old_count = static_cast<std::uint32_t>(popcount64(before));
        // Already-satisfied samples contribute exactly 0 to both deltas.
        if (old_count >= touch.threshold) return;
        const auto new_count = static_cast<std::uint32_t>(popcount64(after));
        if (new_count >= touch.threshold) {
          ++influenced_;
          saturated_[touch.sample >> 6] |= 1ULL << (touch.sample & 63);
        }
        const double* row =
            fraction_table_ + touch.threshold * (kMaxNuThreshold + 1);
        nu_base_[touch.sample] = row[new_count];
        nu_sum_.add(row[new_count] - row[old_count]);
      });
}

IMC_POPCNT_CLONES
void CoverageState::extend(const RicPool& pool, RicPool::PoolEpoch from_epoch) {
  if (&pool != pool_) {
    throw std::invalid_argument("CoverageState::extend: foreign pool");
  }
  if (from_epoch.samples != covered_.size()) {
    throw std::invalid_argument(
        "CoverageState::extend: epoch does not match the state's coverage");
  }
  if (pool.samples_since(from_epoch) == 0) return;  // validates the epoch

  const std::size_t old_samples = covered_.size();
  covered_.resize(pool.size(), 0);
  saturated_.resize((pool.size() + 63) / 64, 0);
  init_nu_base(old_samples);  // fresh tail starts untouched: row_h[0]
  extend_mark_.resize(pool.size(), 0);
  if (++extend_epoch_ == 0) {  // wraparound: every mark is stale again
    std::fill(extend_mark_.begin(), extend_mark_.end(), 0);
    extend_epoch_ = 1;
  }

  // Seed-major replay over EVERY touch of every seed, in insertion order —
  // the exact accumulation sequence a rebuild's add_seed loop runs, so the
  // fresh influenced/ν below match it bitwise (see the header contract).
  // First visit to a sample this replay reads `before = 0` via the mark,
  // later visits read the running mask; covered_ converges to the same
  // final union either way.
  const std::uint32_t epoch = extend_epoch_;
  std::uint32_t* marks = extend_mark_.data();
  std::uint64_t influenced = 0;
  KahanSum nu_sum;
  for (const NodeId v : seeds_) {
    for_each_touch(
        pool_->touches_of(v), covered_.data(),
        [&](const RicPool::Touch& touch) {
          const bool fresh = marks[touch.sample] != epoch;
          const std::uint64_t before = fresh ? 0 : covered_[touch.sample];
          const std::uint64_t after = before | touch.mask;
          if (fresh) {
            marks[touch.sample] = epoch;
            covered_[touch.sample] = after;  // clear the stale pre-replay mask
          } else if (after != before) {
            covered_[touch.sample] = after;
          }
          if (after == before) return;  // same early-out as add_seed
          const auto old_count =
              static_cast<std::uint32_t>(popcount64(before));
          if (old_count >= touch.threshold) return;
          const auto new_count =
              static_cast<std::uint32_t>(popcount64(after));
          if (new_count >= touch.threshold) {
            ++influenced;
            saturated_[touch.sample >> 6] |= 1ULL << (touch.sample & 63);
          }
          const double* row =
              fraction_table_ + touch.threshold * (kMaxNuThreshold + 1);
          nu_base_[touch.sample] = row[new_count];
          nu_sum.add(row[new_count] - row[old_count]);
        });
  }
  influenced_ = influenced;
  nu_sum_ = nu_sum;
}

bool operator==(const CoverageState& a, const CoverageState& b) {
  return a.pool_ == b.pool_ && a.covered_ == b.covered_ &&
         a.saturated_ == b.saturated_ && a.nu_base_ == b.nu_base_ &&
         a.is_seed_ == b.is_seed_ && a.seeds_ == b.seeds_ &&
         a.influenced_ == b.influenced_ &&
         a.nu_sum_.value() == b.nu_sum_.value();
}

double CoverageState::c_hat() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * static_cast<double>(influenced_) /
         static_cast<double>(pool_->size());
}

double CoverageState::nu() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * nu_sum_.value() /
         static_cast<double>(pool_->size());
}

IMC_POPCNT_CLONES
std::uint64_t CoverageState::marginal_influenced(NodeId v) const {
  assert(v < is_seed_.size());
  if (is_seed_[v]) return 0;
  std::uint64_t gain = 0;
  const std::uint64_t* saturated = saturated_.data();
  for_each_touch(
      pool_->touches_of(v), covered_.data(),
      [&](const RicPool::Touch& touch) {
        if ((saturated[touch.sample >> 6] >> (touch.sample & 63)) & 1ULL) {
          return;  // dead sample: can no longer flip
        }
        // Unsaturated, so the old count is below threshold: the sample
        // flips iff the union reaches it.
        const std::uint64_t after = covered_[touch.sample] | touch.mask;
        if (static_cast<std::uint32_t>(popcount64(after)) >= touch.threshold) {
          ++gain;
        }
      });
  return gain;
}

CandidateScore CoverageState::best_candidate_c_hat(
    std::span<const NodeId> candidates, std::size_t begin,
    std::size_t end) const {
  CandidateScore best;
  for (std::size_t i = begin; i < end && i < candidates.size(); ++i) {
    const NodeId v = candidates[i];
    if (is_seed_[v]) continue;
    CandidateScore score;
    score.node = v;
    score.influenced_gain = marginal_influenced(v);
    // Cheap reject before the ν sweep, mirroring the serial early-exit.
    if (best.valid() && score.influenced_gain < best.influenced_gain) {
      continue;
    }
    score.nu_gain = marginal_nu(v);
    score.appearance = pool_->appearance_count(v);
    if (beats_c_hat(score, best)) best = score;
  }
  return best;
}

CandidateScore CoverageState::best_candidate_nu(
    std::span<const NodeId> candidates, std::size_t begin,
    std::size_t end) const {
  CandidateScore best;
  for (std::size_t i = begin; i < end && i < candidates.size(); ++i) {
    const NodeId v = candidates[i];
    if (is_seed_[v]) continue;
    CandidateScore score;
    score.node = v;
    score.nu_gain = marginal_nu(v);
    if (beats_nu(score, best)) best = score;
  }
  return best;
}

double CoverageState::marginal_nu(NodeId v) const {
  assert(v < is_seed_.size());
  if (is_seed_[v]) return 0.0;
  const std::span<const RicPool::Touch> touches = pool_->touches_of(v);
  TouchGainView view;
  view.covered = covered_.data();
  view.saturated = saturated_.data();
  view.nu_base = nu_base_.data();
  view.fraction_table = fraction_table_;
  return active_gain_kernel_ops().marginal_nu(view, touches.data(),
                                              touches.size());
}

void CoverageState::accumulate_influenced_gains(std::uint32_t begin,
                                                std::uint32_t end,
                                                std::uint64_t* gains) const {
  SampleGainView view;
  view.covered = covered_.data();
  view.saturated = saturated_.data();
  view.thresholds = pool_->thresholds().data();
  view.nu_base = nu_base_.data();
  view.sample_offsets = pool_->sample_offsets().data();
  view.sample_arena = pool_->sample_arena().data();
  view.fraction_table = fraction_table_;
  active_gain_kernel_ops().accumulate_influenced(view, begin, end, gains);
}

void CoverageState::accumulate_nu_gains(std::uint32_t begin,
                                        std::uint32_t end,
                                        double* gains) const {
  SampleGainView view;
  view.covered = covered_.data();
  view.saturated = saturated_.data();
  view.thresholds = pool_->thresholds().data();
  view.nu_base = nu_base_.data();
  view.sample_offsets = pool_->sample_offsets().data();
  view.sample_arena = pool_->sample_arena().data();
  view.fraction_table = fraction_table_;
  active_gain_kernel_ops().accumulate_nu(view, begin, end, gains);
}

}  // namespace imc
