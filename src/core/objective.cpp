#include "core/objective.h"

#include <algorithm>

#include "util/mathx.h"

namespace imc {

namespace {

/// min(count / h, 1): the per-sample fractional ν term.
[[nodiscard]] double fraction_of(std::uint32_t count,
                                 std::uint32_t threshold) noexcept {
  return count >= threshold
             ? 1.0
             : static_cast<double>(count) / static_cast<double>(threshold);
}

}  // namespace

bool beats_c_hat(const CandidateScore& a, const CandidateScore& b) noexcept {
  if (!b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.influenced_gain != b.influenced_gain) {
    return a.influenced_gain > b.influenced_gain;
  }
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  if (a.appearance != b.appearance) return a.appearance > b.appearance;
  return a.node < b.node;
}

bool beats_nu(const CandidateScore& a, const CandidateScore& b) noexcept {
  if (!b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.nu_gain != b.nu_gain) return a.nu_gain > b.nu_gain;
  return a.node < b.node;
}

CoverageState::CoverageState(const RicPool& pool) : pool_(&pool) {
  covered_.assign(pool.size(), 0);
  is_seed_.assign(pool.graph().node_count(), 0);
}

void CoverageState::reset() {
  std::fill(covered_.begin(), covered_.end(), 0);
  std::fill(is_seed_.begin(), is_seed_.end(), 0);
  seeds_.clear();
  influenced_ = 0;
  nu_sum_ = KahanSum{};
}

void CoverageState::add_seed(NodeId v) {
  if (is_seed_.at(v)) return;
  is_seed_[v] = 1;
  seeds_.push_back(v);
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    covered_[touch.sample] = after;
    const auto threshold = pool_->sample(touch.sample).threshold;
    const auto old_count = static_cast<std::uint32_t>(popcount64(before));
    const auto new_count = static_cast<std::uint32_t>(popcount64(after));
    if (old_count < threshold && new_count >= threshold) ++influenced_;
    nu_sum_.add(fraction_of(new_count, threshold) -
                fraction_of(old_count, threshold));
  }
}

double CoverageState::c_hat() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * static_cast<double>(influenced_) /
         static_cast<double>(pool_->size());
}

double CoverageState::nu() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * nu_sum_.value() /
         static_cast<double>(pool_->size());
}

std::uint64_t CoverageState::marginal_influenced(NodeId v) const {
  if (is_seed_.at(v)) return 0;
  std::uint64_t gain = 0;
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    const auto threshold = pool_->sample(touch.sample).threshold;
    const auto old_count = static_cast<std::uint32_t>(popcount64(before));
    const auto new_count = static_cast<std::uint32_t>(popcount64(after));
    if (old_count < threshold && new_count >= threshold) ++gain;
  }
  return gain;
}

CandidateScore CoverageState::best_candidate_c_hat(
    std::span<const NodeId> candidates, std::size_t begin,
    std::size_t end) const {
  CandidateScore best;
  for (std::size_t i = begin; i < end && i < candidates.size(); ++i) {
    const NodeId v = candidates[i];
    if (is_seed_[v]) continue;
    CandidateScore score;
    score.node = v;
    score.influenced_gain = marginal_influenced(v);
    // Cheap reject before the ν sweep, mirroring the serial early-exit.
    if (best.valid() && score.influenced_gain < best.influenced_gain) {
      continue;
    }
    score.nu_gain = marginal_nu(v);
    score.appearance = pool_->appearance_count(v);
    if (beats_c_hat(score, best)) best = score;
  }
  return best;
}

CandidateScore CoverageState::best_candidate_nu(
    std::span<const NodeId> candidates, std::size_t begin,
    std::size_t end) const {
  CandidateScore best;
  for (std::size_t i = begin; i < end && i < candidates.size(); ++i) {
    const NodeId v = candidates[i];
    if (is_seed_[v]) continue;
    CandidateScore score;
    score.node = v;
    score.nu_gain = marginal_nu(v);
    if (beats_nu(score, best)) best = score;
  }
  return best;
}

double CoverageState::marginal_nu(NodeId v) const {
  if (is_seed_.at(v)) return 0.0;
  double gain = 0.0;
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    const auto threshold = pool_->sample(touch.sample).threshold;
    gain += fraction_of(static_cast<std::uint32_t>(popcount64(after)),
                        threshold) -
            fraction_of(static_cast<std::uint32_t>(popcount64(before)),
                        threshold);
  }
  return gain;
}

}  // namespace imc
