#include "core/objective.h"

#include <algorithm>

#include "util/mathx.h"

namespace imc {

namespace {

/// min(count / h, 1): the per-sample fractional ν term.
[[nodiscard]] double fraction_of(std::uint32_t count,
                                 std::uint32_t threshold) noexcept {
  return count >= threshold
             ? 1.0
             : static_cast<double>(count) / static_cast<double>(threshold);
}

}  // namespace

CoverageState::CoverageState(const RicPool& pool) : pool_(&pool) {
  covered_.assign(pool.size(), 0);
  is_seed_.assign(pool.graph().node_count(), 0);
}

void CoverageState::reset() {
  std::fill(covered_.begin(), covered_.end(), 0);
  std::fill(is_seed_.begin(), is_seed_.end(), 0);
  seeds_.clear();
  influenced_ = 0;
  nu_sum_ = 0.0;
}

void CoverageState::add_seed(NodeId v) {
  if (is_seed_.at(v)) return;
  is_seed_[v] = 1;
  seeds_.push_back(v);
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    covered_[touch.sample] = after;
    const auto threshold = pool_->sample(touch.sample).threshold;
    const auto old_count = static_cast<std::uint32_t>(popcount64(before));
    const auto new_count = static_cast<std::uint32_t>(popcount64(after));
    if (old_count < threshold && new_count >= threshold) ++influenced_;
    nu_sum_ += fraction_of(new_count, threshold) -
               fraction_of(old_count, threshold);
  }
}

double CoverageState::c_hat() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * static_cast<double>(influenced_) /
         static_cast<double>(pool_->size());
}

double CoverageState::nu() const noexcept {
  if (pool_->size() == 0) return 0.0;
  return pool_->total_benefit() * nu_sum_ /
         static_cast<double>(pool_->size());
}

std::uint64_t CoverageState::marginal_influenced(NodeId v) const {
  if (is_seed_.at(v)) return 0;
  std::uint64_t gain = 0;
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    const auto threshold = pool_->sample(touch.sample).threshold;
    const auto old_count = static_cast<std::uint32_t>(popcount64(before));
    const auto new_count = static_cast<std::uint32_t>(popcount64(after));
    if (old_count < threshold && new_count >= threshold) ++gain;
  }
  return gain;
}

double CoverageState::marginal_nu(NodeId v) const {
  if (is_seed_.at(v)) return 0.0;
  double gain = 0.0;
  for (const RicPool::Touch& touch : pool_->touches_of(v)) {
    const std::uint64_t before = covered_[touch.sample];
    const std::uint64_t after = before | touch.mask;
    if (after == before) continue;
    const auto threshold = pool_->sample(touch.sample).threshold;
    gain += fraction_of(static_cast<std::uint32_t>(popcount64(after)),
                        threshold) -
            fraction_of(static_cast<std::uint32_t>(popcount64(before)),
                        threshold);
  }
  return gain;
}

}  // namespace imc
