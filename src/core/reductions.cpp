#include "core/reductions.h"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.h"

namespace imc {

DksToImcResult dks_to_imc(const DksInstance& instance) {
  if (instance.edges.empty()) {
    throw std::invalid_argument("dks_to_imc: instance has no edges");
  }
  for (const auto& [a, b] : instance.edges) {
    if (a >= instance.nodes || b >= instance.nodes || a == b) {
      throw std::invalid_argument("dks_to_imc: bad edge endpoint");
    }
  }

  DksToImcResult result;
  result.copies_of.resize(instance.nodes);

  // One community per DkS edge, two fresh copy-nodes per community.
  std::vector<std::vector<NodeId>> groups;
  groups.reserve(instance.edges.size());
  NodeId next_node = 0;
  for (const auto& [a, b] : instance.edges) {
    const NodeId a_copy = next_node++;
    const NodeId b_copy = next_node++;
    result.copy_of.push_back(a);
    result.copy_of.push_back(b);
    result.copies_of[a].push_back(a_copy);
    result.copies_of[b].push_back(b_copy);
    groups.push_back({a_copy, b_copy});
  }

  // Wire each U_a into a strongly connected cluster (a directed cycle is
  // the cheapest strongly-connected wiring) with certain edges.
  GraphBuilder builder;
  builder.reserve_nodes(next_node);
  for (const auto& copies : result.copies_of) {
    if (copies.size() < 2) continue;
    for (std::size_t i = 0; i < copies.size(); ++i) {
      builder.add_edge(copies[i], copies[(i + 1) % copies.size()], 1.0);
    }
  }

  result.graph = builder.build();
  result.communities = CommunitySet(next_node, std::move(groups));
  for (CommunityId c = 0; c < result.communities.size(); ++c) {
    result.communities.set_threshold(c, 2);  // both endpoints needed
    // unit benefit (default 1.0): c(S) counts influenced edges.
  }
  return result;
}

std::uint64_t dks_edges_inside(const DksInstance& instance,
                               const std::vector<NodeId>& chosen) {
  std::vector<std::uint8_t> in_set(instance.nodes, 0);
  for (const NodeId v : chosen) in_set.at(v) = 1;
  std::uint64_t inside = 0;
  for (const auto& [a, b] : instance.edges) {
    if (in_set[a] && in_set[b]) ++inside;
  }
  return inside;
}

std::vector<NodeId> project_seeds_to_dks(const DksToImcResult& reduction,
                                         const std::vector<NodeId>& imc_seeds) {
  std::vector<NodeId> projected;
  projected.reserve(imc_seeds.size());
  for (const NodeId v : imc_seeds) {
    projected.push_back(reduction.copy_of.at(v));
  }
  std::sort(projected.begin(), projected.end());
  projected.erase(std::unique(projected.begin(), projected.end()),
                  projected.end());
  return projected;
}

std::vector<NodeId> lift_seeds_to_imc(const DksToImcResult& reduction,
                                      const std::vector<NodeId>& dks_nodes) {
  std::vector<NodeId> lifted;
  lifted.reserve(dks_nodes.size());
  for (const NodeId a : dks_nodes) {
    const auto& copies = reduction.copies_of.at(a);
    if (copies.empty()) {
      throw std::invalid_argument(
          "lift_seeds_to_imc: DkS node has no incident edge / copies");
    }
    lifted.push_back(copies.front());
  }
  return lifted;
}

}  // namespace imc
