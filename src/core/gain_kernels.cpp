// Runtime dispatch for the gain-kernel variants. Unlike the
// IMC_POPCNT_CLONES target_clones mechanism (which relies on ifunc
// resolution and is therefore disabled under sanitizers), dispatch here is
// an explicit atomic ops-table pointer guarded by __builtin_cpu_supports —
// it works identically in ASan/TSan builds, and tests can flip the active
// kernel with set_gain_kernel().
#include "core/gain_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/gain_kernels_registry.h"

namespace imc {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
// __builtin_cpu_supports requires literal feature names.
bool host_supports(GainKernelKind kind) noexcept {
  switch (kind) {
    case GainKernelKind::kScalar:
      return true;
    case GainKernelKind::kPopcnt:
      return __builtin_cpu_supports("popcnt") != 0;
    case GainKernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("popcnt") != 0;
    case GainKernelKind::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0 &&
             __builtin_cpu_supports("popcnt") != 0;
  }
  return false;
}
#else
bool host_supports(GainKernelKind kind) noexcept {
  return kind == GainKernelKind::kScalar;
}
#endif

/// Build-time availability: the variant TU compiled its implementation.
const GainKernelOps* built_ops(GainKernelKind kind) noexcept {
  switch (kind) {
    case GainKernelKind::kScalar:
      return gain_detail::scalar_ops();
    case GainKernelKind::kPopcnt:
      return gain_detail::popcnt_ops();
    case GainKernelKind::kAvx2:
      return gain_detail::avx2_ops();
    case GainKernelKind::kAvx512:
      return gain_detail::avx512_ops();
  }
  return nullptr;
}

constexpr GainKernelKind kAllKinds[] = {
    GainKernelKind::kScalar, GainKernelKind::kPopcnt,
    GainKernelKind::kAvx2, GainKernelKind::kAvx512};

/// Strongest supported variant — scalar is always built and supported.
const GainKernelOps* best_supported() noexcept {
  const GainKernelOps* best = gain_detail::scalar_ops();
  for (const GainKernelKind kind : kAllKinds) {
    if (gain_kernel_supported(kind)) best = built_ops(kind);
  }
  return best;
}

/// First-use resolution: honor IMC_KERNEL when it names a supported
/// variant, otherwise warn once on stderr and fall back to the best one.
const GainKernelOps* resolve_initial() noexcept {
  const char* env = std::getenv("IMC_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const std::optional<GainKernelKind> kind = parse_gain_kernel(env);
    if (kind.has_value() && gain_kernel_supported(*kind)) {
      return built_ops(*kind);
    }
    std::fprintf(stderr,
                 "imc: IMC_KERNEL=%s is %s on this host; using %s\n", env,
                 kind.has_value() ? "not supported" : "not recognized",
                 best_supported()->name);
  }
  return best_supported();
}

std::atomic<const GainKernelOps*> g_active{nullptr};

}  // namespace

bool gain_kernel_supported(GainKernelKind kind) noexcept {
  return built_ops(kind) != nullptr && host_supports(kind);
}

const GainKernelOps& gain_kernel_ops(GainKernelKind kind) {
  if (!gain_kernel_supported(kind)) {
    throw std::invalid_argument(
        std::string("gain kernel not supported on this host: ") +
        gain_kernel_name(kind));
  }
  return *built_ops(kind);
}

const GainKernelOps& active_gain_kernel_ops() noexcept {
  const GainKernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first uses resolve to the same table.
    ops = resolve_initial();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

GainKernelKind active_gain_kernel() noexcept {
  return active_gain_kernel_ops().kind;
}

bool set_gain_kernel(GainKernelKind kind) noexcept {
  if (!gain_kernel_supported(kind)) return false;
  g_active.store(built_ops(kind), std::memory_order_release);
  return true;
}

const char* gain_kernel_name(GainKernelKind kind) noexcept {
  switch (kind) {
    case GainKernelKind::kScalar:
      return "scalar";
    case GainKernelKind::kPopcnt:
      return "popcnt";
    case GainKernelKind::kAvx2:
      return "avx2";
    case GainKernelKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<GainKernelKind> parse_gain_kernel(
    std::string_view name) noexcept {
  if (name == "scalar") return GainKernelKind::kScalar;
  if (name == "popcnt") return GainKernelKind::kPopcnt;
  if (name == "avx2") return GainKernelKind::kAvx2;
  if (name == "avx512") return GainKernelKind::kAvx512;
  return std::nullopt;
}

}  // namespace imc
