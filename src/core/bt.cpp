#include "core/bt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/mathx.h"
#include "util/stopwatch.h"

namespace imc {

namespace {

/// A reduced MAXR instance: the sub-pool of samples touched by all fixed
/// centers, with per-sample coverage already credited to them.
struct BtInstance {
  // Per local sample.
  std::vector<std::uint32_t> threshold;
  std::vector<std::uint64_t> covered;  // member mask reached by fixed nodes
  // Per local sample: (node, full member mask the node reaches).
  std::vector<std::vector<std::pair<NodeId, std::uint64_t>>> touching;
  // Inverted index.
  std::unordered_map<NodeId, std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      index;

  [[nodiscard]] std::size_t size() const noexcept { return threshold.size(); }

  [[nodiscard]] bool satisfied(std::uint32_t g) const noexcept {
    return static_cast<std::uint32_t>(popcount64(covered[g])) >= threshold[g];
  }

  [[nodiscard]] std::uint64_t satisfied_count() const noexcept {
    std::uint64_t count = 0;
    for (std::uint32_t g = 0; g < size(); ++g) {
      if (satisfied(g)) ++count;
    }
    return count;
  }
};

BtInstance root_instance(const RicPool& pool) {
  BtInstance instance;
  const std::size_t m = pool.size();
  // Thresholds come from the pool's SoA array (one contiguous copy); the
  // per-sample touching lists come from the sample-major arena, and the
  // inverted index is read straight out of the CSR arena.
  const std::span<const std::uint32_t> thresholds = pool.thresholds();
  instance.threshold.assign(thresholds.begin(), thresholds.end());
  instance.covered.assign(m, 0);
  instance.touching.resize(m);
  for (std::uint32_t g = 0; g < m; ++g) {
    const auto touches = pool.sample_touches(g);
    instance.touching[g].assign(touches.begin(), touches.end());
  }
  const std::span<const std::uint64_t> offsets = pool.touch_offsets();
  const std::span<const RicPool::Touch> arena = pool.touch_arena();
  for (NodeId v = 0; v < pool.graph().node_count(); ++v) {
    if (offsets[v + 1] == offsets[v]) continue;
    auto& entries = instance.index[v];
    entries.reserve(offsets[v + 1] - offsets[v]);
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      entries.emplace_back(arena[i].sample, arena[i].mask);
    }
  }
  return instance;
}

/// Restriction of lines 2–7 of Alg. 4: keep only samples `center` touches,
/// credit its coverage (removing members u reaches == marking them covered).
BtInstance restrict_to_center(const BtInstance& parent, NodeId center) {
  BtInstance child;
  const auto it = parent.index.find(center);
  if (it == parent.index.end()) return child;

  child.threshold.reserve(it->second.size());
  child.covered.reserve(it->second.size());
  child.touching.reserve(it->second.size());
  for (const auto& [g, center_mask] : it->second) {
    const auto local = static_cast<std::uint32_t>(child.size());
    child.threshold.push_back(parent.threshold[g]);
    child.covered.push_back(parent.covered[g] | center_mask);
    child.touching.push_back(parent.touching[g]);
    for (const auto& [node, mask] : parent.touching[g]) {
      if (node == center) continue;
      if ((mask & ~child.covered[local]) == 0) continue;  // nothing to add
      child.index[node].emplace_back(local, mask);
    }
  }
  return child;
}

/// Plain greedy on the reduced instance, maximizing threshold crossings
/// (the paper's line 8; for thresholds reduced to <= 1 this is exact
/// (1 − 1/e) max-coverage greedy).
std::vector<NodeId> instance_greedy(BtInstance& instance, std::uint32_t k) {
  std::vector<NodeId> seeds;
  std::vector<NodeId> candidates;
  candidates.reserve(instance.index.size());
  for (const auto& [node, touches] : instance.index) {
    (void)touches;
    candidates.push_back(node);
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<std::uint8_t> used(candidates.size(), 0);

  for (std::uint32_t round = 0; round < k; ++round) {
    std::size_t best_slot = candidates.size();
    std::uint64_t best_cross = 0;
    std::uint32_t best_partial = 0;  // tie-break: members newly covered
    for (std::size_t slot = 0; slot < candidates.size(); ++slot) {
      if (used[slot]) continue;
      const NodeId v = candidates[slot];
      std::uint64_t cross = 0;
      std::uint32_t partial = 0;
      for (const auto& [g, mask] : instance.index.at(v)) {
        const std::uint64_t before = instance.covered[g];
        const std::uint64_t after = before | mask;
        if (after == before) continue;
        const auto h = instance.threshold[g];
        const auto old_count = static_cast<std::uint32_t>(popcount64(before));
        const auto new_count = static_cast<std::uint32_t>(popcount64(after));
        if (old_count < h && new_count >= h) ++cross;
        partial += new_count - old_count;
      }
      if (best_slot == candidates.size() || cross > best_cross ||
          (cross == best_cross && partial > best_partial)) {
        best_slot = slot;
        best_cross = cross;
        best_partial = partial;
      }
    }
    if (best_slot == candidates.size() ||
        (best_cross == 0 && best_partial == 0)) {
      break;
    }
    const NodeId winner = candidates[best_slot];
    used[best_slot] = 1;
    seeds.push_back(winner);
    for (const auto& [g, mask] : instance.index.at(winner)) {
      instance.covered[g] |= mask;
    }
  }
  return seeds;
}

struct RecursiveResult {
  std::vector<NodeId> seeds;
  std::uint64_t influenced = 0;
};

/// BT(d) on `instance`: enumerate centers, restrict, recurse with d−1.
RecursiveResult bt_recurse(const BtInstance& instance, std::uint32_t k,
                           std::uint32_t depth, const Deadline& deadline,
                           bool& timed_out, std::uint64_t& centers_tried,
                           const std::vector<NodeId>* center_order) {
  RecursiveResult best;
  if (k == 0 || instance.index.empty()) {
    best.influenced = instance.satisfied_count();
    return best;
  }

  if (depth <= 1) {
    BtInstance scratch = instance;  // greedy mutates coverage
    RecursiveResult result;
    result.seeds = instance_greedy(scratch, k);
    result.influenced = scratch.satisfied_count();
    return result;
  }

  // Candidate centers, ordered (outermost level passes appearance order).
  std::vector<NodeId> centers;
  if (center_order != nullptr) {
    centers = *center_order;
  } else {
    centers.reserve(instance.index.size());
    for (const auto& [node, touches] : instance.index) {
      (void)touches;
      centers.push_back(node);
    }
    std::sort(centers.begin(), centers.end());
  }

  for (const NodeId u : centers) {
    if (!best.seeds.empty() && deadline.expired()) {
      timed_out = true;
      break;
    }
    if (!instance.index.contains(u)) continue;
    ++centers_tried;
    BtInstance child = restrict_to_center(instance, u);
    RecursiveResult inner = bt_recurse(child, k - 1, depth - 1, deadline,
                                       timed_out, centers_tried, nullptr);
    // |D(K(u), u)| = satisfied samples within G(u) after adding T.
    BtInstance evaluated = child;
    for (const NodeId v : inner.seeds) {
      const auto it = evaluated.index.find(v);
      if (it == evaluated.index.end()) continue;
      for (const auto& [g, mask] : it->second) evaluated.covered[g] |= mask;
    }
    const std::uint64_t d_value = evaluated.satisfied_count();
    if (d_value > best.influenced || best.seeds.empty()) {
      best.influenced = d_value;
      best.seeds.clear();
      best.seeds.push_back(u);
      best.seeds.insert(best.seeds.end(), inner.seeds.begin(),
                        inner.seeds.end());
    }
  }
  return best;
}

}  // namespace

BtSolution bt_solve(const RicPool& pool, std::uint32_t k,
                    const BtConfig& config) {
  if (k == 0) throw std::invalid_argument("bt_solve: k must be >= 1");
  if (config.depth < 1) {
    throw std::invalid_argument("bt_solve: depth must be >= 1");
  }
  if (pool.communities().max_threshold() > config.depth) {
    throw std::invalid_argument(
        "bt_solve: a community threshold exceeds the configured depth d; "
        "BT's guarantee requires h <= d");
  }

  BtSolution solution;
  const BtInstance root = root_instance(pool);

  // Outer centers in descending appearance count (and optionally capped) —
  // a deterministic, quality-friendly enumeration order.
  std::vector<NodeId> centers;
  centers.reserve(root.index.size());
  for (const auto& [node, touches] : root.index) {
    (void)touches;
    centers.push_back(node);
  }
  std::sort(centers.begin(), centers.end(), [&](NodeId a, NodeId b) {
    const auto ca = pool.appearance_count(a);
    const auto cb = pool.appearance_count(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  if (config.candidate_limit > 0 && centers.size() > config.candidate_limit) {
    centers.resize(config.candidate_limit);
  }

  const Deadline deadline(config.deadline_seconds);
  bool timed_out = false;
  std::uint64_t centers_tried = 0;
  RecursiveResult best = bt_recurse(root, k, config.depth, deadline,
                                    timed_out, centers_tried, &centers);

  solution.seeds = std::move(best.seeds);
  solution.center = solution.seeds.empty() ? kInvalidNode : solution.seeds[0];
  solution.d_value = best.influenced;
  solution.timed_out = timed_out;
  solution.centers_tried = centers_tried;
  solution.c_hat = pool.c_hat(solution.seeds);
  return solution;
}

double BtSolver::alpha(const RicPool&, std::uint32_t k) const {
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  const double depth = static_cast<double>(std::max(2U, config_.depth));
  return kOneMinusInvE /
         std::pow(static_cast<double>(std::max(1U, k)), depth - 1.0);
}

}  // namespace imc
