// POPCNT gain-kernel variant: the same code as the scalar reference,
// compiled with -mpopcnt (see src/CMakeLists.txt) so popcount64 lowers to
// the hardware instruction instead of the SWAR sequence. Guarded on the
// compiler-defined __POPCNT__ so the TU degrades to "unavailable" when
// the flag was not applied (non-x86 builds).
#include "core/gain_kernels_registry.h"

#if defined(__POPCNT__)

#define IMC_GK_NAMESPACE popcnt
#define IMC_GK_NAME "popcnt"
#define IMC_GK_KIND GainKernelKind::kPopcnt
#define IMC_GK_VECTOR 0
#include "core/gain_kernels_impl.h"

namespace imc {
namespace gain_detail {

const GainKernelOps* popcnt_ops() noexcept { return &popcnt::ops(); }

}  // namespace gain_detail
}  // namespace imc

#else  // !defined(__POPCNT__)

namespace imc {
namespace gain_detail {

const GainKernelOps* popcnt_ops() noexcept { return nullptr; }

}  // namespace gain_detail
}  // namespace imc

#endif
