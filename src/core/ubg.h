// Upper Bound Greedy (paper Alg. 2) — the Sandwich Approximation solver.
//
// Runs greedy twice: once on the non-submodular objective ĉ_R, once on its
// tight submodular upper bound ν_R (Lemma 3; equality when all h_g = 1,
// Lemma 4), and returns whichever seed set scores higher under ĉ_R. The
// data-dependent guarantee is (ĉ_R(S_ν) / ν_R(S_ν)) · (1 − 1/e)
// (Theorem 2); `sandwich_ratio` of the result reports that leading factor.
#pragma once

#include "core/greedy.h"
#include "core/maxr_solver.h"

namespace imc {

struct UbgSolution : MaxrSolution {
  double sandwich_ratio = 0.0;  // ĉ_R(S_ν) / ν_R(S_ν), the Fig. 8 quantity
  GreedyResult from_c_hat;      // S_c of Alg. 2
  GreedyResult from_nu;         // S_ν of Alg. 2
};

/// `options` drives both greedy sweeps (serial or deterministic-parallel).
[[nodiscard]] UbgSolution ubg_solve(const RicPool& pool, std::uint32_t k,
                                    const GreedyOptions& options = {});

/// Warm-start state for UBG across IMCAF doubling stages: one carrier per
/// underlying greedy. Appending samples keeps both valid — the ĉ snapshots
/// by exact integer extension, the CELF init bounds by Lemma 3 (ν stays
/// submodular on the grown pool, so stage-fresh init gains recomputed via
/// the resumable chain remain sound upper bounds).
struct UbgResume final : MaxrResume {
  CHatResume c_hat;
  NuCelfResume nu;
};

/// ubg_solve via the warm-startable greedies; bit-identical to ubg_solve
/// on the same pool for any `state` (see greedy_c_hat_resumable /
/// celf_greedy_nu_resumable).
[[nodiscard]] UbgSolution ubg_resume(const RicPool& pool, std::uint32_t k,
                                     const GreedyOptions& options,
                                     UbgResume& state);

class UbgSolver final : public MaxrSolver {
 public:
  UbgSolver() = default;
  explicit UbgSolver(const GreedyOptions& options) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "UBG"; }
  /// α of the ν-side analysis: 1 − 1/e (the data-dependent ratio is
  /// reported per solve; see §V-B "How to integrate the MAXR algorithms").
  [[nodiscard]] double alpha(const RicPool&, std::uint32_t) const override {
    return 1.0 - 1.0 / 2.718281828459045;
  }
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return ubg_solve(pool, k, options_);
  }
  [[nodiscard]] MaxrSolution resume(
      const RicPool& pool, std::uint32_t k,
      std::unique_ptr<MaxrResume>& state) const override {
    auto* carried = dynamic_cast<UbgResume*>(state.get());
    if (carried == nullptr) {
      state = std::make_unique<UbgResume>();
      carried = static_cast<UbgResume*>(state.get());
    }
    return ubg_resume(pool, k, options_, *carried);
  }

 private:
  GreedyOptions options_;
};

}  // namespace imc
