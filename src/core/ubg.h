// Upper Bound Greedy (paper Alg. 2) — the Sandwich Approximation solver.
//
// Runs greedy twice: once on the non-submodular objective ĉ_R, once on its
// tight submodular upper bound ν_R (Lemma 3; equality when all h_g = 1,
// Lemma 4), and returns whichever seed set scores higher under ĉ_R. The
// data-dependent guarantee is (ĉ_R(S_ν) / ν_R(S_ν)) · (1 − 1/e)
// (Theorem 2); `sandwich_ratio` of the result reports that leading factor.
#pragma once

#include "core/greedy.h"
#include "core/maxr_solver.h"

namespace imc {

struct UbgSolution : MaxrSolution {
  double sandwich_ratio = 0.0;  // ĉ_R(S_ν) / ν_R(S_ν), the Fig. 8 quantity
  GreedyResult from_c_hat;      // S_c of Alg. 2
  GreedyResult from_nu;         // S_ν of Alg. 2
};

/// `options` drives both greedy sweeps (serial or deterministic-parallel).
[[nodiscard]] UbgSolution ubg_solve(const RicPool& pool, std::uint32_t k,
                                    const GreedyOptions& options = {});

class UbgSolver final : public MaxrSolver {
 public:
  UbgSolver() = default;
  explicit UbgSolver(const GreedyOptions& options) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "UBG"; }
  /// α of the ν-side analysis: 1 − 1/e (the data-dependent ratio is
  /// reported per solve; see §V-B "How to integrate the MAXR algorithms").
  [[nodiscard]] double alpha(const RicPool&, std::uint32_t) const override {
    return 1.0 - 1.0 / 2.718281828459045;
  }
  [[nodiscard]] MaxrSolution solve(const RicPool& pool,
                                   std::uint32_t k) const override {
    return ubg_solve(pool, k, options_);
  }

 private:
  GreedyOptions options_;
};

}  // namespace imc
