// Directed modularity (Leicht–Newman), the objective the Louvain detector
// optimizes and the metric tests assert on:
//   Q = (1/m) Σ_ij [ A_ij − d_out(i) d_in(j) / m ] δ(c_i, c_j)
// computed structurally (every directed edge counts 1, IC probabilities are
// ignored: community structure is topological, as in the paper's setup).
#pragma once

#include <span>

#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// Modularity of a full assignment (every node must have a community id;
/// use distinct singleton ids for "unassigned" nodes if needed).
/// Returns 0 for graphs without edges.
[[nodiscard]] double directed_modularity(
    const Graph& graph, std::span<const CommunityId> assignment);

}  // namespace imc
