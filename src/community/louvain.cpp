#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "community/modularity.h"

namespace imc {

namespace {

/// Weighted directed multigraph used during coarsening. Self-loops carry
/// the internal weight of contracted communities.
struct LevelGraph {
  // out[i] / in[i]: (neighbor, weight) lists; may contain self-loops.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> out;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> in;
  std::vector<double> out_strength;  // Σ outgoing weight incl. self-loops
  std::vector<double> in_strength;
  double total_weight = 0.0;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(out.size());
  }
};

LevelGraph finest_level(const Graph& graph) {
  LevelGraph level;
  const std::uint32_t n = graph.node_count();
  level.out.resize(n);
  level.in.resize(n);
  level.out_strength.assign(n, 0.0);
  level.in_strength.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      level.out[u].emplace_back(nb.node, 1.0);
      level.in[nb.node].emplace_back(u, 1.0);
      level.out_strength[u] += 1.0;
      level.in_strength[nb.node] += 1.0;
      level.total_weight += 1.0;
    }
  }
  return level;
}

/// One local-moving phase. Returns the per-node community labels (dense)
/// and whether anything moved at all.
struct MovePhaseResult {
  std::vector<std::uint32_t> label;  // node -> community (dense ids)
  std::uint32_t community_count = 0;
  bool moved = false;
};

MovePhaseResult local_moving(const LevelGraph& level,
                             const LouvainConfig& config, Rng& rng) {
  const std::uint32_t n = level.size();
  MovePhaseResult result;
  result.label.resize(n);
  std::iota(result.label.begin(), result.label.end(), 0U);

  // Community aggregates (indexed by current label).
  std::vector<double> community_out(level.out_strength);
  std::vector<double> community_in(level.in_strength);

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  rng.shuffle(std::span<std::uint32_t>(order));

  const double m = level.total_weight;
  if (m <= 0.0) {
    result.community_count = n;
    return result;
  }

  // Scratch: weight from/to each neighboring community of the current node.
  std::unordered_map<std::uint32_t, double> link_weight;
  link_weight.reserve(64);

  for (std::uint32_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool sweep_moved = false;
    for (const std::uint32_t node : order) {
      const std::uint32_t current = result.label[node];
      const double d_out = level.out_strength[node];
      const double d_in = level.in_strength[node];

      // Gather total link weight between `node` and each community
      // (both directions combined — that is the coupling term of ΔQ).
      link_weight.clear();
      for (const auto& [to, w] : level.out[node]) {
        if (to != node) link_weight[result.label[to]] += w;
      }
      for (const auto& [from, w] : level.in[node]) {
        if (from != node) link_weight[result.label[from]] += w;
      }

      // Remove the node from its community.
      community_out[current] -= d_out;
      community_in[current] -= d_in;

      // ΔQ of joining community c (relative to staying alone):
      //   links(node, c)/m − (d_out·In(c) + d_in·Out(c))/m².
      const auto gain_of = [&](std::uint32_t c) {
        const double links = [&] {
          const auto it = link_weight.find(c);
          return it == link_weight.end() ? 0.0 : it->second;
        }();
        return links / m -
               (d_out * community_in[c] + d_in * community_out[c]) / (m * m);
      };

      std::uint32_t best = current;
      double best_gain = gain_of(current);
      for (const auto& [c, unused_w] : link_weight) {
        (void)unused_w;
        if (c == best) continue;
        const double g = gain_of(c);
        if (g > best_gain + config.min_gain) {
          best_gain = g;
          best = c;
        }
      }

      community_out[best] += d_out;
      community_in[best] += d_in;
      if (best != current) {
        result.label[node] = best;
        result.moved = true;
        sweep_moved = true;
      }
    }
    if (!sweep_moved) break;
  }

  // Densify labels.
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  dense.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto [it, inserted] =
        dense.try_emplace(result.label[v], result.community_count);
    if (inserted) ++result.community_count;
    result.label[v] = it->second;
  }
  return result;
}

/// Contracts communities into super-nodes, merging parallel edges.
LevelGraph coarsen(const LevelGraph& level,
                   std::span<const std::uint32_t> label,
                   std::uint32_t community_count) {
  LevelGraph coarse;
  coarse.out.resize(community_count);
  coarse.in.resize(community_count);
  coarse.out_strength.assign(community_count, 0.0);
  coarse.in_strength.assign(community_count, 0.0);
  coarse.total_weight = level.total_weight;

  std::vector<std::unordered_map<std::uint32_t, double>> merged(
      community_count);
  for (std::uint32_t u = 0; u < level.size(); ++u) {
    for (const auto& [v, w] : level.out[u]) {
      merged[label[u]][label[v]] += w;
    }
  }
  for (std::uint32_t cu = 0; cu < community_count; ++cu) {
    for (const auto& [cv, w] : merged[cu]) {
      coarse.out[cu].emplace_back(cv, w);
      coarse.in[cv].emplace_back(cu, w);
      coarse.out_strength[cu] += w;
      coarse.in_strength[cv] += w;
    }
  }
  return coarse;
}

}  // namespace

LouvainResult louvain_communities(const Graph& graph,
                                  const LouvainConfig& config) {
  LouvainResult result;
  const NodeId n = graph.node_count();
  result.assignment.resize(n);
  std::iota(result.assignment.begin(), result.assignment.end(), 0U);
  if (n == 0) return result;

  Rng rng(config.seed);
  LevelGraph level = finest_level(graph);

  for (std::uint32_t round = 0; round < config.max_levels; ++round) {
    const MovePhaseResult phase = local_moving(level, config, rng);
    if (!phase.moved) break;
    ++result.levels;
    // Project the coarse labels back onto original nodes.
    for (NodeId v = 0; v < n; ++v) {
      result.assignment[v] = phase.label[result.assignment[v]];
    }
    if (phase.community_count == level.size()) break;
    level = coarsen(level, phase.label, phase.community_count);
  }

  // Densify the final assignment (projection preserves density, but be
  // defensive in case no round ran).
  std::unordered_map<CommunityId, CommunityId> dense;
  CommunityId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto [it, inserted] = dense.try_emplace(result.assignment[v], next);
    if (inserted) ++next;
    result.assignment[v] = it->second;
  }
  result.modularity = directed_modularity(graph, result.assignment);
  return result;
}

}  // namespace imc
