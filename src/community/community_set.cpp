#include "community/community_set.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/mathx.h"

namespace imc {

CommunitySet::CommunitySet(NodeId node_count,
                           std::vector<std::vector<NodeId>> groups)
    : node_count_(node_count), groups_(std::move(groups)) {
  for (const auto& group : groups_) {
    if (group.empty()) {
      throw std::invalid_argument("CommunitySet: empty community");
    }
    for (const NodeId v : group) {
      if (v >= node_count_) {
        throw std::invalid_argument("CommunitySet: member out of range");
      }
    }
  }
  rebuild_membership();
  thresholds_.assign(groups_.size(), 1);
  benefits_.assign(groups_.size(), 1.0);
}

CommunitySet CommunitySet::from_assignment(
    NodeId node_count, std::span<const CommunityId> assignment) {
  if (assignment.size() != node_count) {
    throw std::invalid_argument(
        "CommunitySet::from_assignment: size mismatch");
  }
  CommunityId max_id = 0;
  bool any = false;
  for (const CommunityId c : assignment) {
    if (c == kInvalidCommunity) continue;
    max_id = std::max(max_id, c);
    any = true;
  }
  std::vector<std::vector<NodeId>> groups(any ? max_id + 1 : 0);
  for (NodeId v = 0; v < node_count; ++v) {
    if (assignment[v] != kInvalidCommunity) {
      groups[assignment[v]].push_back(v);
    }
  }
  for (const auto& group : groups) {
    if (group.empty()) {
      throw std::invalid_argument(
          "CommunitySet::from_assignment: community ids must be dense");
    }
  }
  return CommunitySet(node_count, std::move(groups));
}

void CommunitySet::rebuild_membership() {
  community_of_.assign(node_count_, kInvalidCommunity);
  for (CommunityId c = 0; c < groups_.size(); ++c) {
    for (const NodeId v : groups_[c]) {
      if (community_of_[v] != kInvalidCommunity) {
        throw std::invalid_argument(
            "CommunitySet: node belongs to two communities");
      }
      community_of_[v] = c;
    }
  }
}

void CommunitySet::check_community(CommunityId c) const {
  if (c >= groups_.size()) {
    throw std::out_of_range("CommunitySet: community id out of range");
  }
}

std::span<const NodeId> CommunitySet::members(CommunityId c) const {
  check_community(c);
  return groups_[c];
}

CommunityId CommunitySet::community_of(NodeId v) const {
  if (v >= node_count_) {
    throw std::out_of_range("CommunitySet: node id out of range");
  }
  return community_of_[v];
}

void CommunitySet::move_member(NodeId v, CommunityId to) {
  if (v >= node_count_) {
    throw std::out_of_range("CommunitySet: node id out of range");
  }
  check_community(to);
  const CommunityId from = community_of_[v];
  if (from == kInvalidCommunity) {
    throw std::invalid_argument(
        "CommunitySet::move_member: node belongs to no community");
  }
  if (from == to) {
    throw std::invalid_argument(
        "CommunitySet::move_member: node already in target community");
  }
  if (groups_[from].size() <= 1) {
    throw std::invalid_argument(
        "CommunitySet::move_member: source community would become empty");
  }
  if (thresholds_[from] > groups_[from].size() - 1) {
    throw std::invalid_argument(
        "CommunitySet::move_member: source threshold would exceed its "
        "shrunken population");
  }
  auto& source = groups_[from];
  source.erase(std::find(source.begin(), source.end(), v));
  groups_[to].push_back(v);
  community_of_[v] = to;
}

std::uint32_t CommunitySet::threshold(CommunityId c) const {
  check_community(c);
  return thresholds_[c];
}

void CommunitySet::set_threshold(CommunityId c, std::uint32_t h) {
  check_community(c);
  if (h == 0 || h > groups_[c].size()) {
    throw std::invalid_argument(
        "CommunitySet::set_threshold: h must be in [1, population]");
  }
  thresholds_[c] = h;
}

std::uint32_t CommunitySet::max_threshold() const {
  std::uint32_t h = 0;
  for (const std::uint32_t t : thresholds_) h = std::max(h, t);
  return h;
}

double CommunitySet::benefit(CommunityId c) const {
  check_community(c);
  return benefits_[c];
}

void CommunitySet::set_benefit(CommunityId c, double b) {
  check_community(c);
  if (b <= 0.0) {
    throw std::invalid_argument(
        "CommunitySet::set_benefit: benefit must be positive");
  }
  benefits_[c] = b;
}

double CommunitySet::total_benefit() const {
  return std::accumulate(benefits_.begin(), benefits_.end(), 0.0);
}

double CommunitySet::min_benefit() const {
  if (benefits_.empty()) return 0.0;
  return *std::min_element(benefits_.begin(), benefits_.end());
}

double CommunitySet::coverage() const noexcept {
  if (node_count_ == 0) return 0.0;
  NodeId assigned = 0;
  for (const CommunityId c : community_of_) {
    if (c != kInvalidCommunity) ++assigned;
  }
  return static_cast<double>(assigned) / static_cast<double>(node_count_);
}

std::uint64_t CommunitySet::fingerprint() const {
  Fnv1a64 digest;
  digest.add_u64(node_count_);
  digest.add_u64(size());
  for (const auto& group : groups_) {
    digest.add_u64(group.size());
    digest.add_bytes(group.data(), group.size() * sizeof(NodeId));
  }
  digest.add_bytes(thresholds_.data(),
                   thresholds_.size() * sizeof(std::uint32_t));
  digest.add_bytes(benefits_.data(), benefits_.size() * sizeof(double));
  return digest.value();
}

std::string CommunitySet::summary() const {
  NodeId smallest = node_count_, largest = 0;
  for (const auto& group : groups_) {
    smallest = std::min<NodeId>(smallest, group.size());
    largest = std::max<NodeId>(largest, group.size());
  }
  std::ostringstream out;
  out << "CommunitySet(r=" << size() << ", coverage=" << coverage();
  if (!groups_.empty()) {
    out << ", |C| in [" << smallest << ", " << largest << "]";
  }
  out << ")";
  return out.str();
}

}  // namespace imc
