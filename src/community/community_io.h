// Plain-text (de)serialization of CommunitySets, so detected structures can
// be saved once and reused across CLI invocations and experiments.
//
// Format (line-oriented, '#' comments):
//   imc-communities v1
//   nodes <n>
//   community <id> threshold <h> benefit <b>
//   members <id> <v1> <v2> ...
// Community blocks may appear in any order; ids must be dense [0, r).
#pragma once

#include <iosfwd>
#include <string>

#include "community/community_set.h"

namespace imc {

/// Writes the full structure (members, thresholds, benefits).
void write_communities(std::ostream& out, const CommunitySet& communities);

/// Saves to a file; throws std::runtime_error on I/O failure.
void save_communities(const std::string& path,
                      const CommunitySet& communities);

/// Parses a structure; throws std::runtime_error (with line number) on
/// malformed input.
[[nodiscard]] CommunitySet read_communities(std::istream& in);

/// Loads from a file; throws std::runtime_error if unreadable.
[[nodiscard]] CommunitySet load_communities(const std::string& path);

}  // namespace imc
