// A disjoint collection of communities over the nodes of a graph, together
// with each community's activation threshold h_i and benefit b_i — the
// `Com` input of the IMC problem (paper §II-A).
//
// Not every node must belong to a community (nodes outside any community can
// still relay influence); communities must be pairwise disjoint and
// non-empty, which the constructor enforces.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace imc {

class CommunitySet {
 public:
  CommunitySet() = default;

  /// From explicit member lists. Throws std::invalid_argument if any group
  /// is empty, any node id >= node_count, or any node appears twice.
  CommunitySet(NodeId node_count, std::vector<std::vector<NodeId>> groups);

  /// From a per-node assignment (kInvalidCommunity = not in any community).
  /// Community ids must be dense [0, r); empty ids are rejected.
  static CommunitySet from_assignment(NodeId node_count,
                                      std::span<const CommunityId> assignment);

  [[nodiscard]] CommunityId size() const noexcept {
    return static_cast<CommunityId>(groups_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return groups_.empty(); }
  [[nodiscard]] NodeId node_count() const noexcept { return node_count_; }

  [[nodiscard]] std::span<const NodeId> members(CommunityId c) const;
  [[nodiscard]] NodeId population(CommunityId c) const {
    return static_cast<NodeId>(members(c).size());
  }

  /// Community containing `v`, or kInvalidCommunity.
  [[nodiscard]] CommunityId community_of(NodeId v) const;

  /// Moves `v` into community `to` (a GraphDelta membership move). `v`
  /// must currently belong to some OTHER community that stays non-empty —
  /// and whose threshold stays ≤ its shrunken population — after the move;
  /// `v` is appended to the target's member list (mask bit positions of
  /// existing members are preserved, only the target community's samples
  /// gain a bit). Throws std::invalid_argument when any of that fails;
  /// the set is unchanged on throw.
  void move_member(NodeId v, CommunityId to);

  // -- thresholds ---------------------------------------------------------
  [[nodiscard]] std::uint32_t threshold(CommunityId c) const;
  void set_threshold(CommunityId c, std::uint32_t h);
  /// Maximum threshold over all communities (the paper's h); 0 if empty.
  [[nodiscard]] std::uint32_t max_threshold() const;

  // -- benefits -----------------------------------------------------------
  [[nodiscard]] double benefit(CommunityId c) const;
  void set_benefit(CommunityId c, double b);
  /// Σ b_i (the paper's b).
  [[nodiscard]] double total_benefit() const;
  /// min b_i (the paper's β); 0 if empty.
  [[nodiscard]] double min_benefit() const;

  /// Benefits as a contiguous span (drives the ρ distribution of RIC).
  [[nodiscard]] std::span<const double> benefits() const noexcept {
    return benefits_;
  }

  /// Fraction of nodes assigned to some community.
  [[nodiscard]] double coverage() const noexcept;

  /// Order-stable 64-bit digest of the full structure: memberships,
  /// thresholds and benefit bit patterns. Pool snapshots
  /// (sampling/pool_snapshot.h) store it so a pool can refuse to attach
  /// to a community structure it was not sampled from. O(n + r).
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] std::string summary() const;

 private:
  void check_community(CommunityId c) const;
  void rebuild_membership();

  NodeId node_count_ = 0;
  std::vector<std::vector<NodeId>> groups_;
  std::vector<CommunityId> community_of_;   // node -> community
  std::vector<std::uint32_t> thresholds_;
  std::vector<double> benefits_;
};

}  // namespace imc
