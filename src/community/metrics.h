// Quality metrics for community structures: used by tests (Louvain must
// produce low-conductance communities on modular graphs), the CLI and the
// dataset-validation suite.
#pragma once

#include <vector>

#include "community/community_set.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc {

/// Conductance of community c: cut(C, V\C) / min(vol(C), vol(V\C)), with
/// volumes/cuts counted over directed edges. Returns 1 for degenerate
/// (zero-volume) communities; lower is better.
[[nodiscard]] double conductance(const Graph& graph,
                                 const CommunitySet& communities,
                                 CommunityId c);

/// Mean conductance over all communities.
[[nodiscard]] double average_conductance(const Graph& graph,
                                         const CommunitySet& communities);

/// Fraction of edges whose endpoints share a community (both assigned).
[[nodiscard]] double internal_edge_fraction(const Graph& graph,
                                            const CommunitySet& communities);

/// Population distribution summary.
struct CommunitySizeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
  double threshold_mean = 0.0;  // mean activation threshold h_i
};
[[nodiscard]] CommunitySizeStats community_size_stats(
    const CommunitySet& communities);

}  // namespace imc
