#include "community/threshold_policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imc {

void apply_fraction_thresholds(CommunitySet& communities, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "apply_fraction_thresholds: fraction must be in (0, 1]");
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    const auto population = static_cast<double>(communities.population(c));
    const auto h = static_cast<std::uint32_t>(
        std::clamp(std::ceil(fraction * population), 1.0, population));
    communities.set_threshold(c, h);
  }
}

void apply_constant_thresholds(CommunitySet& communities, std::uint32_t h) {
  if (h == 0) {
    throw std::invalid_argument("apply_constant_thresholds: h must be >= 1");
  }
  for (CommunityId c = 0; c < communities.size(); ++c) {
    communities.set_threshold(c, std::min(h, communities.population(c)));
  }
}

void apply_population_benefits(CommunitySet& communities) {
  for (CommunityId c = 0; c < communities.size(); ++c) {
    communities.set_benefit(c, static_cast<double>(communities.population(c)));
  }
}

void apply_uniform_benefits(CommunitySet& communities, double value) {
  for (CommunityId c = 0; c < communities.size(); ++c) {
    communities.set_benefit(c, value);
  }
}

}  // namespace imc
