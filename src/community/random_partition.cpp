#include "community/random_partition.h"

#include <numeric>
#include <stdexcept>

namespace imc {

std::vector<CommunityId> random_partition(NodeId node_count,
                                          CommunityId community_count,
                                          Rng& rng) {
  if (community_count == 0 || community_count > node_count) {
    throw std::invalid_argument(
        "random_partition: need 0 < communities <= nodes");
  }
  std::vector<CommunityId> assignment(node_count);
  // First assign one distinct node to each community (no empties), then
  // scatter the rest uniformly.
  std::vector<NodeId> nodes(node_count);
  std::iota(nodes.begin(), nodes.end(), 0U);
  rng.shuffle(std::span<NodeId>(nodes));
  for (CommunityId c = 0; c < community_count; ++c) {
    assignment[nodes[c]] = c;
  }
  for (NodeId i = community_count; i < node_count; ++i) {
    assignment[nodes[i]] = static_cast<CommunityId>(rng.below(community_count));
  }
  return assignment;
}

}  // namespace imc
