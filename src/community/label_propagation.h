// Label-propagation community detection (Raghavan et al. 2007) — a fast
// alternative detector used in tests and ablations alongside Louvain.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

struct LabelPropagationConfig {
  std::uint64_t seed = 42;
  std::uint32_t max_sweeps = 32;
};

/// Each node repeatedly adopts the most frequent label among its (in+out)
/// neighbors until stable; returns a dense assignment.
[[nodiscard]] std::vector<CommunityId> label_propagation_communities(
    const Graph& graph, const LabelPropagationConfig& config = {});

}  // namespace imc
