#include "community/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace imc {

double conductance(const Graph& graph, const CommunitySet& communities,
                   CommunityId c) {
  if (communities.node_count() != graph.node_count()) {
    throw std::invalid_argument("conductance: node count mismatch");
  }
  std::uint64_t cut = 0;
  std::uint64_t volume_inside = 0;
  for (const NodeId v : communities.members(c)) {
    for (const Neighbor& nb : graph.out_neighbors(v)) {
      ++volume_inside;
      if (communities.community_of(nb.node) != c) ++cut;
    }
    // Incoming cut edges (from outside into C).
    for (const Neighbor& nb : graph.in_neighbors(v)) {
      if (communities.community_of(nb.node) != c) ++cut;
    }
  }
  const std::uint64_t volume_outside = graph.edge_count() - volume_inside;
  const std::uint64_t denominator = std::min(volume_inside, volume_outside);
  if (denominator == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denominator);
}

double average_conductance(const Graph& graph,
                           const CommunitySet& communities) {
  if (communities.empty()) return 1.0;
  double total = 0.0;
  for (CommunityId c = 0; c < communities.size(); ++c) {
    total += conductance(graph, communities, c);
  }
  return total / static_cast<double>(communities.size());
}

double internal_edge_fraction(const Graph& graph,
                              const CommunitySet& communities) {
  if (graph.edge_count() == 0) return 0.0;
  std::uint64_t internal = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const CommunityId cu = communities.community_of(u);
    if (cu == kInvalidCommunity) continue;
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (communities.community_of(nb.node) == cu) ++internal;
    }
  }
  return static_cast<double>(internal) /
         static_cast<double>(graph.edge_count());
}

CommunitySizeStats community_size_stats(const CommunitySet& communities) {
  CommunitySizeStats stats;
  if (communities.empty()) return stats;
  stats.min = communities.population(0);
  stats.max = communities.population(0);
  double population_total = 0.0;
  double threshold_total = 0.0;
  for (CommunityId c = 0; c < communities.size(); ++c) {
    const NodeId population = communities.population(c);
    stats.min = std::min(stats.min, population);
    stats.max = std::max(stats.max, population);
    population_total += static_cast<double>(population);
    threshold_total += static_cast<double>(communities.threshold(c));
  }
  stats.mean = population_total / static_cast<double>(communities.size());
  stats.threshold_mean =
      threshold_total / static_cast<double>(communities.size());
  return stats;
}

}  // namespace imc
