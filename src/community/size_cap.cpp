#include "community/size_cap.h"

#include <stdexcept>

#include "util/mathx.h"

namespace imc {

CommunitySet cap_community_sizes(const CommunitySet& communities, NodeId cap,
                                 Rng& rng) {
  if (cap == 0) {
    throw std::invalid_argument("cap_community_sizes: cap must be >= 1");
  }
  std::vector<std::vector<NodeId>> groups;
  groups.reserve(communities.size());
  for (CommunityId c = 0; c < communities.size(); ++c) {
    const auto members = communities.members(c);
    if (members.size() <= cap) {
      groups.emplace_back(members.begin(), members.end());
      continue;
    }
    std::vector<NodeId> shuffled(members.begin(), members.end());
    rng.shuffle(std::span<NodeId>(shuffled));
    // ceil(|C| / s) chunks of near-equal size (never exceeding `cap`).
    const std::uint64_t chunks = ceil_div(shuffled.size(), cap);
    const std::uint64_t base = shuffled.size() / chunks;
    const std::uint64_t remainder = shuffled.size() % chunks;
    std::size_t begin = 0;
    for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t len = base + (chunk < remainder ? 1 : 0);
      groups.emplace_back(shuffled.begin() + begin,
                          shuffled.begin() + begin + len);
      begin += len;
    }
  }
  return CommunitySet(communities.node_count(), std::move(groups));
}

}  // namespace imc
