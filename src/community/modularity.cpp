#include "community/modularity.h"

#include <stdexcept>
#include <vector>

namespace imc {

double directed_modularity(const Graph& graph,
                           std::span<const CommunityId> assignment) {
  if (assignment.size() != graph.node_count()) {
    throw std::invalid_argument("directed_modularity: assignment size");
  }
  const double m = static_cast<double>(graph.edge_count());
  if (m == 0.0) return 0.0;

  CommunityId max_id = 0;
  for (const CommunityId c : assignment) {
    if (c == kInvalidCommunity) {
      throw std::invalid_argument(
          "directed_modularity: full assignment required");
    }
    max_id = std::max(max_id, c);
  }

  // Per-community: internal edges, total out-degree, total in-degree.
  std::vector<double> internal(max_id + 1, 0.0);
  std::vector<double> out_total(max_id + 1, 0.0);
  std::vector<double> in_total(max_id + 1, 0.0);

  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const CommunityId cu = assignment[u];
    out_total[cu] += static_cast<double>(graph.out_degree(u));
    in_total[cu] += static_cast<double>(graph.in_degree(u));
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (assignment[nb.node] == cu) internal[cu] += 1.0;
    }
  }

  double q = 0.0;
  for (CommunityId c = 0; c <= max_id; ++c) {
    q += internal[c] / m - (out_total[c] / m) * (in_total[c] / m);
  }
  return q;
}

}  // namespace imc
