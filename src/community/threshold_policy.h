// Policies assigning activation thresholds and benefits to a CommunitySet,
// matching the paper's two experimental regimes (§VI-A):
//   * regular:  h_i = 50% of population (fraction policy),
//   * bounded:  h_i = 2 (constant policy, capped at the population).
// Benefits: b_i = |C_i| (population policy) in all paper experiments.
#pragma once

#include <cstdint>

#include "community/community_set.h"

namespace imc {

/// h_i = clamp(ceil(fraction * |C_i|), 1, |C_i|).
void apply_fraction_thresholds(CommunitySet& communities, double fraction);

/// h_i = min(h, |C_i|). The paper's bounded-threshold setting uses h = 2.
void apply_constant_thresholds(CommunitySet& communities, std::uint32_t h);

/// b_i = |C_i| (the paper's setting: benefit equals population).
void apply_population_benefits(CommunitySet& communities);

/// b_i = value for all communities.
void apply_uniform_benefits(CommunitySet& communities, double value = 1.0);

}  // namespace imc
