#include "community/label_propagation.h"

#include <numeric>
#include <unordered_map>

namespace imc {

std::vector<CommunityId> label_propagation_communities(
    const Graph& graph, const LabelPropagationConfig& config) {
  const NodeId n = graph.node_count();
  std::vector<CommunityId> label(n);
  std::iota(label.begin(), label.end(), 0U);
  if (n == 0) return label;

  Rng rng(config.seed);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0U);

  std::unordered_map<CommunityId, std::uint32_t> votes;
  votes.reserve(64);

  for (std::uint32_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    rng.shuffle(std::span<NodeId>(order));
    bool changed = false;
    for (const NodeId v : order) {
      votes.clear();
      for (const Neighbor& nb : graph.out_neighbors(v)) ++votes[label[nb.node]];
      for (const Neighbor& nb : graph.in_neighbors(v)) ++votes[label[nb.node]];
      if (votes.empty()) continue;
      // Highest vote count; ties broken by smallest label for determinism.
      CommunityId best = label[v];
      std::uint32_t best_votes = 0;
      for (const auto& [c, count] : votes) {
        if (count > best_votes || (count == best_votes && c < best)) {
          best = c;
          best_votes = count;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Densify.
  std::unordered_map<CommunityId, CommunityId> dense;
  CommunityId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto [it, inserted] = dense.try_emplace(label[v], next);
    if (inserted) ++next;
    label[v] = it->second;
  }
  return label;
}

}  // namespace imc
