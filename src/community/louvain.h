// Directed Louvain community detection (Blondel et al. 2008; directed
// modularity per Leicht–Newman / Dugué–Perez), the detector the paper uses
// to build community structures for IMC (§VI-A).
//
// Two phases per level: (1) local moving — greedily reassign nodes to the
// neighboring community with the best modularity gain until a sweep yields
// no improvement, (2) coarsening — contract each community to a super-node
// and recurse. Deterministic given the seed (node visit order is shuffled).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

struct LouvainConfig {
  std::uint64_t seed = 42;
  std::uint32_t max_levels = 24;     // coarsening rounds
  std::uint32_t max_sweeps = 64;     // local-moving sweeps per level
  double min_gain = 1e-9;            // stop sweeping below this total gain
};

struct LouvainResult {
  std::vector<CommunityId> assignment;  // node -> dense community id
  double modularity = 0.0;              // of the final assignment
  std::uint32_t levels = 0;             // coarsening rounds performed
};

/// Runs directed Louvain on the graph's topology (edge probabilities are
/// ignored; each directed edge has unit weight at the finest level).
[[nodiscard]] LouvainResult louvain_communities(const Graph& graph,
                                                const LouvainConfig& config = {});

}  // namespace imc
