#include "community/community_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace imc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("communities file, line " + std::to_string(line) +
                           ": " + what);
}

}  // namespace

void write_communities(std::ostream& out, const CommunitySet& communities) {
  out << "imc-communities v1\n";
  out << "nodes " << communities.node_count() << "\n";
  for (CommunityId c = 0; c < communities.size(); ++c) {
    out << "community " << c << " threshold " << communities.threshold(c)
        << " benefit " << communities.benefit(c) << "\n";
    out << "members " << c;
    for (const NodeId v : communities.members(c)) out << ' ' << v;
    out << "\n";
  }
}

void save_communities(const std::string& path,
                      const CommunitySet& communities) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_communities: cannot open " + path);
  write_communities(out, communities);
  if (!out) throw std::runtime_error("save_communities: write failed");
}

CommunitySet read_communities(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;

  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line() || line != "imc-communities v1") {
    fail(line_number, "missing 'imc-communities v1' header");
  }
  if (!next_line()) fail(line_number, "missing 'nodes' line");
  NodeId node_count = 0;
  {
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword >> node_count) || keyword != "nodes") {
      fail(line_number, "expected 'nodes <n>'");
    }
  }

  struct Block {
    std::uint32_t threshold = 1;
    double benefit = 1.0;
    std::vector<NodeId> members;
    bool have_header = false;
    bool have_members = false;
  };
  std::map<CommunityId, Block> blocks;

  while (next_line()) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "community") {
      CommunityId id = 0;
      std::string threshold_kw, benefit_kw;
      std::uint32_t threshold = 0;
      double benefit = 0.0;
      if (!(fields >> id >> threshold_kw >> threshold >> benefit_kw >>
            benefit) ||
          threshold_kw != "threshold" || benefit_kw != "benefit") {
        fail(line_number, "expected 'community <id> threshold <h> benefit <b>'");
      }
      Block& block = blocks[id];
      block.threshold = threshold;
      block.benefit = benefit;
      block.have_header = true;
    } else if (keyword == "members") {
      CommunityId id = 0;
      if (!(fields >> id)) fail(line_number, "expected 'members <id> ...'");
      Block& block = blocks[id];
      if (block.have_members) fail(line_number, "duplicate members line");
      NodeId v = 0;
      while (fields >> v) block.members.push_back(v);
      block.have_members = true;
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  std::vector<std::vector<NodeId>> groups(blocks.size());
  for (auto& [id, block] : blocks) {
    if (id >= blocks.size()) fail(line_number, "community ids must be dense");
    if (!block.have_members || block.members.empty()) {
      fail(line_number,
           "community " + std::to_string(id) + " has no members");
    }
    groups[id] = std::move(block.members);
  }
  CommunitySet communities(node_count, std::move(groups));
  for (const auto& [id, block] : blocks) {
    if (block.have_header) {
      communities.set_threshold(id, block.threshold);
      communities.set_benefit(id, block.benefit);
    }
  }
  return communities;
}

CommunitySet load_communities(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_communities: cannot open " + path);
  return read_communities(in);
}

}  // namespace imc
