// Size-cap splitting — the paper's `s` parameter (§VI-A): "If a community C
// was larger than s, we split it into ceil(|C|/s) communities."
#pragma once

#include "community/community_set.h"
#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Splits every community with more than `cap` members into near-equal
/// chunks of at most `cap` (members are shuffled before chunking so splits
/// are unbiased). Thresholds/benefits of the result are reset to defaults;
/// apply a policy from community/threshold_policy.h afterwards.
[[nodiscard]] CommunitySet cap_community_sizes(const CommunitySet& communities,
                                               NodeId cap, Rng& rng);

}  // namespace imc
