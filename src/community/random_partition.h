// Random community formation — the paper's baseline community structure
// ("we fix the number of communities and randomly put nodes into
// communities", §VI-A).
#pragma once

#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace imc {

/// Assigns every node of [0, node_count) to one of `community_count`
/// communities uniformly at random; guarantees no community is empty
/// (requires community_count <= node_count). Returns a dense assignment.
[[nodiscard]] std::vector<CommunityId> random_partition(
    NodeId node_count, CommunityId community_count, Rng& rng);

}  // namespace imc
