#!/usr/bin/env bash
# CI helper: the nightly deep-fuzz run. Rotates the base seed by calendar
# date so every night explores a fresh slice of instance space while any
# given night stays reproducible (re-run with the same date or export the
# printed IMC_FUZZ_SEED). 2000 cases instead of tier-1's 200.
#
# Usage: tools/ci/run_fuzz_nightly.sh [build-dir]
# Knobs: IMC_FUZZ_CASES (default 2000), IMC_FUZZ_SEED (default date-rotated).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Seed = YYYYMMDD unless the caller pinned one (e.g. to replay last night).
seed="${IMC_FUZZ_SEED:-$(date -u +%Y%m%d)}"
cases="${IMC_FUZZ_CASES:-2000}"
echo "nightly fuzz: IMC_FUZZ_SEED=${seed} IMC_FUZZ_CASES=${cases}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "${jobs}" \
  --target imc_fuzz_tests --target imc_io_tests

# The io label (pool formats, mmap arenas, corrupted-file corpus) runs
# alongside the deep fuzz sweep: the pool_roundtrip check exercises the
# same loaders on random instances, and a nightly regression in either
# should surface from both angles.
IMC_FUZZ_SEED="${seed}" IMC_FUZZ_CASES="${cases}" \
  ctest --test-dir "${build_dir}" -L 'fuzz|io' --output-on-failure
