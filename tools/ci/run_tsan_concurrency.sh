#!/usr/bin/env bash
# CI helper: build the concurrency-labeled test slice under ThreadSanitizer
# and run it. Uses a dedicated build tree (default build-tsan/) so the
# regular build's cache and artifacts are untouched.
#
# Usage: tools/ci/run_tsan_concurrency.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIMC_SANITIZE=thread
cmake --build "${build_dir}" -j "${jobs}" \
  --target imc_concurrency_tests --target imc_engine_tests \
  --target imc_delta_tests

# halt_on_error makes any race fail the ctest invocation instead of just
# printing a report; second_deadlock_stack improves lock-order diagnostics.
# The engine label rides along: warm-start resume and solve_many exercise
# the thread pool through the same deterministic-parallel sweeps, and the
# pipelined-engine tests (both labels carry pipeline_engine_test.cpp) drive
# the staging-commit handoff — background stage_samples overlapping const
# pool readers, then the boundary join + commit_staged — which is exactly
# the surface TSan must prove clean. The delta label rides along because
# invalidate_and_repair fans regeneration chunks out over the same thread
# pool and then merges them into one CSR index rebuild (DESIGN.md §16).
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  ctest --test-dir "${build_dir}" -L 'concurrency|engine|delta' \
  --output-on-failure -j "${jobs}"
