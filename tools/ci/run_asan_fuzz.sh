#!/usr/bin/env bash
# CI helper: build the differential fuzz suite under ASan+UBSan
# (-DIMC_SANITIZE=address expands to -fsanitize=address,undefined) and run
# the `fuzz` ctest label. Uses a dedicated build tree (default build-asan/)
# so the regular build's cache and artifacts are untouched.
#
# Usage: tools/ci/run_asan_fuzz.sh [build-dir]
# Knobs: IMC_FUZZ_CASES / IMC_FUZZ_SEED pass through to the harness.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIMC_SANITIZE=address
cmake --build "${build_dir}" -j "${jobs}" \
  --target imc_fuzz_tests --target imc_engine_tests \
  --target imc_io_tests --target imc_delta_tests

# abort_on_error turns the first ASan report into a test failure instead of
# a log line; detect_leaks catches pool/arena ownership bugs the
# differential checks can't see. halt_on_error does the same for UBSan.
# The engine label rides along: CoverageState::extend and the warm-start
# carriers shuffle heap buffers that ASan should watch too. The io label
# rides along for the same reason: mmap arena growth, copy-on-write
# materialization and the snapshot loaders move raw bytes with lifetimes
# that the sanitizers — not the differential checks — are built to police.
# The delta label rides along: in-place sample repair rewrites arena spans
# and splices CSR adjacency in place — exactly the kind of off-by-one
# surface ASan exists for (the fuzz label's delta_vs_rebuild check covers
# the randomized side of the same path).
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1 detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  ctest --test-dir "${build_dir}" -L 'fuzz|engine|io|delta' \
  --output-on-failure -j "${jobs}"
