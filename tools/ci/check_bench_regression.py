#!/usr/bin/env python3
"""Fail on micro-benchmark regressions against the committed baseline.

Compares a fresh ``bench_micro_components --json`` run against the
checked-in ``BENCH_micro.json`` and exits 1 if any benchmark on the
curated allowlist slowed down by more than ``--threshold`` (default 25%).

Only *stable serial* benchmarks are gated on timing: multi-threaded
variants and end-to-end solves depend on core count and scheduler noise,
so a hard gate on them would flap. The allowlist below is the contract —
extend it when a new serial hot path gets a benchmark, prune it if a
benchmark is retired (an allowlisted name missing from either file is an
error, so renames cannot silently drop coverage).

The end-to-end pipeline sweep (``BM_ImcafEndToEnd/{warm}/{threads}``) is
gated on *shape* instead: every row in COUNTER_CHECKS must be present in
the fresh run and carry every listed counter. That catches a sweep arg
being dropped or a counter silently vanishing from the reporter without
flapping on wall-clock noise.

Typical use (see the `bench` label notes in bench/CMakeLists.txt and
DESIGN.md §14):

    build/bench/bench_micro_components --json /tmp/fresh.json
    python3 tools/ci/check_bench_regression.py \
        --baseline BENCH_micro.json --fresh /tmp/fresh.json

Measure on a quiet machine; prefer --benchmark_repetitions=3 for the
fresh run (the reporter records the per-repetition mean).

Exit codes: 0 clean, 1 regression (or missing allowlisted benchmark),
2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys

# Serial benchmarks whose cpu time is reproducible enough to gate on.
# Names must match the JSON "name" field exactly.
ALLOWLIST = [
    "BM_RrSetGeneration",
    "BM_RicSampleGeneration",
    "BM_RicSampleGenerationLarge",
    "BM_PoolCHat",
    "BM_PoolCHatLarge",
    "BM_CoverageMarginal",
    "BM_GreedyCHatSelect/0",
    "BM_CelfGreedyNuSelect/0",
    "BM_GreedyCHatSelectLarge/0",
    "BM_CelfGreedyNuSelectLarge/0",
    "BM_Louvain",
]

# Counters every end-to-end Alg. 5 row must report. The serial-schedule
# rows (threads == 0) and the pipelined rows share one schema so a diff
# of BENCH_micro.json always lines up column-for-column.
_E2E_COUNTERS = [
    "items_per_second",
    "sampling_seconds",
    "solver_seconds",
    "estimate_seconds",
    "overlap_seconds",
    "speculative_samples_committed",
    "speculative_samples_discarded",
    "stop_stages",
    "warm_start",
    "pipeline",
    "threads",
]

# Counters every repair-vs-rebuild row must report (DESIGN.md §16):
# repaired_fraction is the headline — a single-edge delta must stay a
# small-minority repair, which EXPERIMENTS.md tracks from these rows.
_DELTA_COUNTERS = [
    "items_per_second",
    "repaired_samples",
    "repaired_fraction",
    "pool_size",
    "rebuild",
    "threads",
]

# Presence-gated rows: name -> counters that must exist in the fresh run
# (timing is NOT compared — these rows are thread/scheduler dependent).
COUNTER_CHECKS = {
    "BM_ImcafEndToEnd/0/0": _E2E_COUNTERS,
    "BM_ImcafEndToEnd/1/0": _E2E_COUNTERS,
    "BM_ImcafEndToEnd/1/2": _E2E_COUNTERS,
    "BM_ImcafEndToEnd/1/4": _E2E_COUNTERS,
    "BM_ImcafEndToEnd/1/8": _E2E_COUNTERS,
    "BM_DeltaRepairVsRebuild/0/0": _DELTA_COUNTERS,
    "BM_DeltaRepairVsRebuild/0/8": _DELTA_COUNTERS,
    "BM_DeltaRepairVsRebuild/1/0": _DELTA_COUNTERS,
    "BM_DeltaRepairVsRebuild/1/8": _DELTA_COUNTERS,
}

# Field gated by default: cpu time excludes other-process interference
# that wall time picks up.
DEFAULT_METRIC = "cpu_ns_per_op"


def load_benchmarks(path: str) -> dict[str, dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(f"error: {path} has no 'benchmarks' array")
    table: dict[str, dict] = {}
    for entry in benchmarks:
        name = entry.get("name")
        if isinstance(name, str):
            # Aggregate rows (_mean/_median/_stddev) from
            # --benchmark_repetitions shadow the raw name; prefer the
            # mean when present, else the plain row.
            if name.endswith(("_median", "_stddev", "_cv")):
                continue
            if name.endswith("_mean"):
                table[name[: -len("_mean")]] = entry
            else:
                table.setdefault(name, entry)
    return table


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh micro-bench results against the baseline."
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_micro.json"
    )
    parser.add_argument(
        "--fresh", required=True, help="fresh --json run to validate"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed fractional slowdown (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        help=f"JSON field to compare (default {DEFAULT_METRIC})",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    failures = []
    print(f"{'benchmark':42} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in ALLOWLIST:
        base_entry = baseline.get(name)
        fresh_entry = fresh.get(name)
        if base_entry is None or fresh_entry is None:
            where = args.baseline if base_entry is None else args.fresh
            failures.append(f"{name}: missing from {where}")
            print(f"{name:42} {'MISSING':>12}")
            continue
        base = base_entry.get(args.metric)
        new = fresh_entry.get(args.metric)
        if not isinstance(base, (int, float)) or not isinstance(
            new, (int, float)
        ) or base <= 0:
            failures.append(f"{name}: metric {args.metric!r} unusable")
            print(f"{name:42} {'BAD METRIC':>12}")
            continue
        ratio = new / base
        flag = ""
        if ratio > 1.0 + args.threshold:
            failures.append(
                f"{name}: {base:.0f} -> {new:.0f} ns "
                f"({(ratio - 1.0) * 100.0:+.1f}%)"
            )
            flag = "  REGRESSION"
        print(f"{name:42} {base:12.0f} {new:12.0f} {ratio:7.2f}{flag}")

    for name, counters in COUNTER_CHECKS.items():
        fresh_entry = fresh.get(name)
        if fresh_entry is None:
            failures.append(f"{name}: missing from {args.fresh}")
            print(f"{name:42} {'MISSING':>12}")
            continue
        missing = [
            counter
            for counter in counters
            if not isinstance(fresh_entry.get(counter), (int, float))
        ]
        if missing:
            failures.append(
                f"{name}: missing counter(s) {', '.join(missing)}"
            )
            print(f"{name:42} {'NO COUNTERS':>12}  ({', '.join(missing)})")
        else:
            print(f"{name:42} {'counters ok':>12}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
            f"{args.threshold * 100.0:.0f}% (or went missing):",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"\nOK: {len(ALLOWLIST)} benchmarks within threshold, "
        f"{len(COUNTER_CHECKS)} counter schemas present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
