// imc_cli — command-line front end for the library.
//
// Usage:
//   imc_cli stats       [--dataset NAME | --graph FILE [--undirected]] [--scale S]
//   imc_cli communities [graph opts] [--method louvain|random|lpa]
//                       [--size-cap S] [--regime regular|bounded]
//   imc_cli solve       [graph opts] [community opts] --algo ubg|maf|bt|mb
//                       [--k K] [--max-samples N] [--model ic|lt]
//                       [--parallel] [--threads N] [--time-budget-s S]
//                       [--metrics-json FILE] [--no-warm-start]
//                       [--no-pipeline] [--pool-backend ram|mmap]
//                       [--save-pool FILE]
//                       [--load-pool FILE [--trust-pool]]
//                       [--apply-deltas FILE]
//   imc_cli baseline    [graph opts] [community opts]
//                       --algo hbc|ks|im|imm|degree|random [--k K]
//   imc_cli simulate    [graph opts] [community opts] --seeds 1,2,3
//                       [--simulations N] [--model ic|lt]
//
// Graphs come either from the synthetic Table-I stand-ins (--dataset) or a
// SNAP edge-list file (--graph; weighted-cascade IC probabilities applied).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "imc/imc.h"

namespace {

using namespace imc;

/// Argument mistakes the CLI can diagnose up front (bad values, flags that
/// do not apply to the subcommand). main() prints the message plus the
/// usage text and exits 2, distinguishing operator error from runtime
/// failures (exit 1).
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

Graph load_graph(const ArgParser& args) {
  if (args.has("graph")) {
    EdgeListOptions options;
    options.undirected = args.get_bool("undirected", false);
    LoadedEdgeList loaded =
        load_edge_list(args.get_string("graph", ""), options);
    apply_weighted_cascade(loaded.edges, loaded.node_count);
    return Graph(loaded.node_count, loaded.edges);
  }
  const std::string dataset = args.get_string("dataset", "facebook");
  const double scale = args.get_double("scale", 0.2);
  return make_dataset(dataset_from_name(dataset), scale);
}

CommunitySet load_communities(const ArgParser& args, const Graph& graph) {
  if (args.has("communities")) {
    CommunitySet loaded =
        imc::load_communities(args.get_string("communities", ""));
    if (loaded.node_count() != graph.node_count()) {
      throw std::invalid_argument(
          "--communities file does not match the graph's node count");
    }
    return loaded;
  }
  CommunityBuildConfig config;
  const std::string method = args.get_string("method", "louvain");
  if (method == "louvain") {
    config.method = CommunityMethod::kLouvain;
  } else if (method == "random") {
    config.method = CommunityMethod::kRandom;
  } else if (method == "lpa") {
    config.method = CommunityMethod::kLabelPropagation;
  } else {
    throw std::invalid_argument("unknown --method " + method);
  }
  config.size_cap =
      static_cast<NodeId>(args.get_int("size-cap", 8));
  const std::string regime = args.get_string("regime", "regular");
  if (regime == "regular") {
    config.regime = ThresholdRegime::kFractionOfPopulation;
    config.threshold_fraction = args.get_double("threshold-fraction", 0.5);
  } else if (regime == "bounded") {
    config.regime = ThresholdRegime::kConstantBounded;
    config.threshold_constant =
        static_cast<std::uint32_t>(args.get_int("threshold", 2));
  } else {
    throw std::invalid_argument("unknown --regime " + regime);
  }
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return build_communities(graph, config);
}

DiffusionModel load_model(const ArgParser& args) {
  const std::string model = args.get_string("model", "ic");
  if (model == "ic") return DiffusionModel::kIndependentCascade;
  if (model == "lt") return DiffusionModel::kLinearThreshold;
  throw std::invalid_argument("unknown --model " + model);
}

std::vector<NodeId> parse_seed_list(const std::string& text) {
  std::vector<NodeId> seeds;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) {
      seeds.push_back(static_cast<NodeId>(std::stoul(token)));
    }
  }
  return seeds;
}

void print_seeds(const std::vector<NodeId>& seeds) {
  std::cout << "seeds:";
  for (const NodeId v : seeds) std::cout << ' ' << v;
  std::cout << "\n";
}

int cmd_stats(const ArgParser& args) {
  const Graph graph = load_graph(args);
  const auto stats = graph.degree_stats();
  Table table("graph statistics", {"metric", "value"});
  table.add_row({std::string("nodes"),
                 static_cast<long long>(graph.node_count())});
  table.add_row({std::string("edges"),
                 static_cast<long long>(graph.edge_count())});
  table.add_row({std::string("mean out-degree"), stats.mean_out});
  table.add_row({std::string("max out-degree"),
                 static_cast<long long>(stats.max_out)});
  table.add_row({std::string("max in-degree"),
                 static_cast<long long>(stats.max_in)});
  table.add_row({std::string("isolated nodes"),
                 static_cast<long long>(stats.isolated)});
  table.add_row({std::string("weak components"),
                 static_cast<long long>(
                     weakly_connected_components(graph).count)});
  table.add_row({std::string("strong components"),
                 static_cast<long long>(
                     strongly_connected_components(graph).count)});
  table.add_row({std::string("avg clustering coeff"),
                 average_clustering_coefficient(graph)});
  table.add_row({std::string("degeneracy (max core)"),
                 static_cast<long long>(degeneracy(graph))});
  table.add_row({std::string("power-law exponent (MLE)"),
                 power_law_exponent_mle(graph)});
  table.print(std::cout);
  return 0;
}

int cmd_communities(const ArgParser& args) {
  const Graph graph = load_graph(args);
  const CommunitySet communities = load_communities(args, graph);
  const auto sizes = community_size_stats(communities);
  Table table("community structure", {"metric", "value"});
  table.add_row({std::string("communities (r)"),
                 static_cast<long long>(communities.size())});
  table.add_row({std::string("coverage"), communities.coverage()});
  table.add_row({std::string("population min"),
                 static_cast<long long>(sizes.min)});
  table.add_row({std::string("population max"),
                 static_cast<long long>(sizes.max)});
  table.add_row({std::string("population mean"), sizes.mean});
  table.add_row({std::string("mean threshold h"), sizes.threshold_mean});
  table.add_row({std::string("total benefit b"),
                 communities.total_benefit()});
  table.add_row({std::string("internal edge fraction"),
                 internal_edge_fraction(graph, communities)});
  table.add_row({std::string("avg conductance"),
                 average_conductance(graph, communities)});
  table.print(std::cout);
  if (args.has("save")) {
    const std::string path = args.get_string("save", "");
    save_communities(path, communities);
    std::cout << "saved to " << path
              << " (reusable via --communities)\n";
  }
  return 0;
}

int cmd_solve(const ArgParser& args) {
  // Mutable: --apply-deltas streams GraphDelta batches into them.
  Graph graph = load_graph(args);
  CommunitySet communities = load_communities(args, graph);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 10));

  const std::string algo = args.get_string("algo", "ubg");
  MaxrAlgorithm algorithm;
  if (algo == "ubg") {
    algorithm = MaxrAlgorithm::kUbg;
  } else if (algo == "maf") {
    algorithm = MaxrAlgorithm::kMaf;
  } else if (algo == "bt") {
    algorithm = MaxrAlgorithm::kBt;
  } else if (algo == "mb") {
    algorithm = MaxrAlgorithm::kMb;
  } else {
    throw std::invalid_argument("unknown --algo " + algo);
  }
  MaxrSolverOptions solver_options;
  solver_options.parallel = args.get_bool("parallel", false);
  const auto solver = make_maxr_solver(algorithm, solver_options);

  ImcafConfig config;
  config.max_samples = static_cast<std::uint64_t>(
      args.get_int("max-samples", 20000));
  config.model = load_model(args);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  config.parallel_sampling = args.get_bool("parallel-sampling", true);
  config.warm_start = !args.get_bool("no-warm-start", false);
  config.pipeline = !args.get_bool("no-pipeline", false);
  const std::string backend = args.get_string("pool-backend", "ram");
  if (backend == "ram") {
    config.pool_backend = ArenaBackend::kRam;
  } else if (backend == "mmap") {
    config.pool_backend = ArenaBackend::kMmap;
  } else {
    throw UsageError("--pool-backend must be ram or mmap");
  }

  const double time_budget = args.get_double("time-budget-s", 0.0);
  if (args.has("time-budget-s") && !(time_budget > 0.0)) {
    throw UsageError("--time-budget-s must be a positive number of seconds");
  }
  const std::string metrics_path = args.get_string("metrics-json", "");
  if (args.has("metrics-json") && metrics_path.empty()) {
    throw UsageError("--metrics-json requires a file path");
  }

  RecordingMetricsSink metrics;
  ExecutionContext context;
  context.seed = config.seed;
  // Construct the Deadline last so the clock starts as close to the run as
  // possible (the context doc's "build right before launching").
  if (time_budget > 0.0) context.deadline = Deadline(time_budget);
  if (!metrics_path.empty()) context.metrics = &metrics;

  ImcEngine engine(graph, communities, config, context);
  if (args.has("trust-pool") && !args.has("load-pool")) {
    throw UsageError("--trust-pool only applies with --load-pool");
  }
  if (args.has("load-pool")) {
    const std::string pool_path = args.get_string("load-pool", "");
    if (pool_path.empty()) throw UsageError("--load-pool requires a path");
    engine.attach_pool(pool_path, args.get_bool("trust-pool", false)
                                      ? SnapshotTrust::kTrustPayload
                                      : SnapshotTrust::kVerifyPayload);
    std::cout << "attached pool " << pool_path << " (|R|="
              << engine.pool().size() << ")\n";
  }
  ImcafResult result = engine.solve(k, *solver);

  // Dynamic-graph replay (DESIGN.md §16): each blank-line-separated batch
  // in the file is applied as one GraphDelta — the shared pool is repaired
  // in place, then the query re-solves on the mutated instance. The final
  // printed result (and any --save-pool snapshot) reflects the last state.
  if (args.has("apply-deltas")) {
    const std::string delta_path = args.get_string("apply-deltas", "");
    if (delta_path.empty()) {
      throw UsageError("--apply-deltas requires a file path");
    }
    std::ifstream in(delta_path);
    if (!in) {
      throw std::runtime_error("cannot open --apply-deltas file " +
                               delta_path);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::vector<GraphDelta> stream = parse_delta_stream(buffer.str());
    std::cout << "replaying " << stream.size() << " delta batch"
              << (stream.size() == 1 ? "" : "es") << " from " << delta_path
              << "\n";
    std::size_t batch_no = 0;
    for (const GraphDelta& delta : stream) {
      ++batch_no;
      const RicPool::RepairStats stats =
          engine.apply_delta(graph, communities, delta);
      result = engine.solve(k, *solver);
      std::cout << "batch " << batch_no << ": " << delta.edges.size()
                << " edge op(s), " << delta.moves.size()
                << " move(s); repaired " << stats.repaired << "/"
                << stats.total << " samples; c_hat " << result.c_hat
                << " (|R|=" << result.samples_used << ")\n";
    }
  }

  if (args.has("save-pool")) {
    const std::string pool_path = args.get_string("save-pool", "");
    if (pool_path.empty()) throw UsageError("--save-pool requires a path");
    save_ric_pool_snapshot(pool_path, engine.pool());
    std::cout << "pool snapshot written to " << pool_path << " (|R|="
              << engine.pool().size() << ")\n";
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      throw std::runtime_error("cannot open --metrics-json file " +
                               metrics_path);
    }
    metrics.write_json(out);
  }

  print_seeds(result.seeds);
  std::cout << "c_hat on final pool:   " << result.c_hat << "\n"
            << "independent estimate:  " << result.estimated_benefit << "\n"
            << "RIC samples used:      " << result.samples_used << "\n"
            << "stop stages:           " << result.stop_stages << "\n"
            << "runtime seconds:       " << result.runtime_seconds << "\n"
            << "total benefit in play: " << communities.total_benefit()
            << "\n";
  if (result.reached_deadline) {
    std::cout << "note: time budget expired; seeds are the best candidate "
                 "from the completed stages\n";
  }
  if (!metrics_path.empty()) {
    std::cout << "stage metrics written to " << metrics_path << "\n";
  }
  return 0;
}

int cmd_baseline(const ArgParser& args) {
  const Graph graph = load_graph(args);
  const CommunitySet communities = load_communities(args, graph);
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  const std::string algo = args.get_string("algo", "hbc");
  std::vector<NodeId> seeds;
  if (algo == "hbc") {
    seeds = hbc_select(graph, communities, k);
  } else if (algo == "ks") {
    seeds = ks_select(communities, k, rng);
  } else if (algo == "im") {
    seeds = im_ris_select(graph, k).seeds;
  } else if (algo == "imm") {
    seeds = imm_select(graph, k).seeds;
  } else if (algo == "degree") {
    seeds = degree_select(graph, k);
  } else if (algo == "pagerank") {
    seeds = pagerank_select(graph, k);
  } else if (algo == "degree-discount") {
    seeds = degree_discount_select(graph, k);
  } else if (algo == "random") {
    seeds = random_select(graph, k, rng);
  } else {
    throw std::invalid_argument("unknown --algo " + algo);
  }
  print_seeds(seeds);
  std::cout << "estimated benefit: "
            << BenefitOracle(graph, communities).benefit(seeds) << " of "
            << communities.total_benefit() << "\n";
  return 0;
}

int cmd_simulate(const ArgParser& args) {
  const Graph graph = load_graph(args);
  const CommunitySet communities = load_communities(args, graph);
  const std::vector<NodeId> seeds =
      parse_seed_list(args.get_string("seeds", "0"));

  MonteCarloOptions mc;
  mc.simulations = static_cast<std::uint32_t>(
      args.get_int("simulations", 10000));
  mc.model = load_model(args);
  std::cout << "seeds: " << seeds.size() << "\n"
            << "expected spread:  "
            << mc_expected_spread(graph, seeds, mc) << "\n"
            << "expected benefit: "
            << mc_expected_benefit(graph, communities, seeds, mc) << " of "
            << communities.total_benefit() << "\n"
            << "expected nu:      "
            << mc_expected_nu(graph, communities, seeds, mc) << "\n";
  return 0;
}

void print_usage() {
  std::cout <<
      "imc_cli — Influence Maximization at Community Level\n"
      "subcommands:\n"
      "  stats        graph statistics\n"
      "  communities  community detection + structure metrics\n"
      "  solve        run IMCAF with UBG/MAF/BT/MB\n"
      "  baseline     run HBC/KS/IM/IMM/degree/pagerank/degree-discount/"
      "random\n"
      "  simulate     Monte-Carlo evaluation of a given seed list\n"
      "common options: --dataset NAME | --graph FILE [--undirected],\n"
      "  --scale S, --method louvain|random|lpa, --size-cap S,\n"
      "  --regime regular|bounded, --k K, --model ic|lt, --seed N,\n"
      "  --threads N (worker count; also via IMC_THREADS env),\n"
      "  --parallel (deterministic parallel seed selection in solve)\n"
      "solve-only options:\n"
      "  --time-budget-s S   wall-clock budget; returns the best seeds from\n"
      "                      the stages that completed in time\n"
      "  --metrics-json F    write per-stage engine telemetry as JSON to F\n"
      "  --no-warm-start     cold MAXR solve every doubling stage\n"
      "                      (results are bit-identical; for benchmarking)\n"
      "  --no-pipeline       serial grow/solve/estimate schedule instead of\n"
      "                      overlapping the next stage's sampling with the\n"
      "                      solve (results are bit-identical either way)\n"
      "  --pool-backend B    ram (default) or mmap arena storage for the\n"
      "                      RIC pool (bit-identical content either way)\n"
      "  --save-pool F       write the final pool as a binary v2 snapshot\n"
      "  --load-pool F       start from a saved pool (binary snapshots are\n"
      "                      attached zero-copy via mmap and fully verified\n"
      "                      by default; text v1 accepted)\n"
      "  --trust-pool        skip the O(pool) checksum + payload checks on\n"
      "                      --load-pool (for snapshots this host wrote;\n"
      "                      attach cost becomes independent of pool size)\n"
      "  --apply-deltas F    after the first solve, replay streaming graph\n"
      "                      updates from F (lines 'E u v w' upsert an edge,\n"
      "                      w=0 removes; 'M v c' moves v to community c;\n"
      "                      blank lines separate batches); each batch\n"
      "                      repairs the pool in place and re-solves\n";
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.positional().empty()) {
    print_usage();
    return 2;
  }
  const std::string& command = args.positional().front();
  try {
    if (command != "solve") {
      for (const char* flag : {"time-budget-s", "metrics-json",
                               "no-warm-start", "no-pipeline", "pool-backend",
                               "save-pool", "load-pool", "trust-pool",
                               "apply-deltas"}) {
        if (args.has(flag)) {
          throw UsageError(std::string("--") + flag +
                           " only applies to the solve subcommand");
        }
      }
    }
    // Size the shared pool before anything touches it.
    const auto threads = args.get_int("threads", 0);
    if (threads > 0) {
      set_default_pool_threads(static_cast<unsigned>(threads));
    }
    if (command == "stats") return cmd_stats(args);
    if (command == "communities") return cmd_communities(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "baseline") return cmd_baseline(args);
    if (command == "simulate") return cmd_simulate(args);
    std::cerr << "unknown subcommand: " << command << "\n";
    print_usage();
    return 2;
  } catch (const UsageError& error) {
    std::cerr << "error: " << error.what() << "\n";
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
