// Reproduces Fig. 6: expected benefit vs k under BOUNDED thresholds
// (h_i = 2), Louvain communities with s = 8.
//
// Includes MB (the MAF∧BT combination); on the larger network MB runs
// against the configured time limit — exactly as the paper, which discarded
// MB's results there, we flag timeouts in the output instead.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Fig. 6 — Benefit vs k, bounded thresholds (h = 2)");

  struct Panel {
    DatasetId dataset;
    bool include_mb;
  };
  const Panel panels[] = {
      {DatasetId::kFacebook, true},
      {DatasetId::kEpinions, true},  // large: expect MB to hit the limit
  };
  const std::uint32_t ks[] = {5, 10, 20, 50};

  Table table("Fig. 6",
              {"dataset", "k", "algorithm", "benefit", "seconds", "note"});
  for (const Panel& panel : panels) {
    const Graph graph = load_dataset(panel.dataset, ctx);
    const CommunitySet communities =
        standard_communities(graph, CommunityMethod::kLouvain,
                             ThresholdRegime::kConstantBounded);
    std::vector<BenchAlgo> algos = {BenchAlgo::kUbg, BenchAlgo::kMaf,
                                    BenchAlgo::kHbc, BenchAlgo::kKs,
                                    BenchAlgo::kIm};
    if (panel.include_mb) algos.push_back(BenchAlgo::kMb);
    for (const std::uint32_t k : ks) {
      for (const BenchAlgo algo : algos) {
        double benefit = 0.0, seconds = 0.0;
        bool timed_out = false;
        for (int run = 0; run < ctx.runs; ++run) {
          const AlgoOutcome outcome = run_algorithm(
              algo, graph, communities, k, ctx,
              0xF16'6000ULL + static_cast<std::uint64_t>(run) * 17 + k);
          benefit += outcome.benefit;
          seconds += outcome.seconds;
          timed_out |= outcome.timed_out;
        }
        table.add_row({dataset_info(panel.dataset).name,
                       static_cast<long long>(k), algo_name(algo),
                       benefit / ctx.runs, seconds / ctx.runs,
                       std::string(timed_out ? "HIT TIME LIMIT" : "")});
      }
    }
  }
  emit(ctx, table, "fig6");
  return 0;
}
