// Reproduces Fig. 7: CPU runtime of our algorithms vs k on the large
// networks.
//
//   (a) bounded thresholds (h = 2) on epinions-like: MAF ≈ UBG ≪ MB
//       (MB spawns O(|V|) subproblems — paper: exceeded the limit on Pokec)
//   (b) regular thresholds on dblp-like and pokec-like: MAF flat in k,
//       UBG's greedy grows with k.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Fig. 7 — Runtime (seconds) vs k");

  Table table("Fig. 7",
              {"panel", "dataset", "k", "algorithm", "seconds", "note"});

  const std::uint32_t ks[] = {5, 10, 20, 50};

  // ---- (a) bounded on epinions-like --------------------------------------
  {
    const Graph graph = load_dataset(DatasetId::kEpinions, ctx);
    const CommunitySet communities =
        standard_communities(graph, CommunityMethod::kLouvain,
                             ThresholdRegime::kConstantBounded);
    for (const std::uint32_t k : ks) {
      for (const BenchAlgo algo :
           {BenchAlgo::kUbg, BenchAlgo::kMaf, BenchAlgo::kMb}) {
        const AlgoOutcome outcome = run_algorithm(
            algo, graph, communities, k, ctx, 0xF16'7000ULL + k);
        table.add_row({std::string("7a bounded"), std::string("epinions"),
                       static_cast<long long>(k), algo_name(algo),
                       outcome.seconds,
                       std::string(outcome.timed_out ? "HIT TIME LIMIT"
                                                     : "")});
      }
    }
  }

  // ---- (b) regular on dblp-like and pokec-like ----------------------------
  for (const DatasetId dataset : {DatasetId::kDblp, DatasetId::kPokec}) {
    const Graph graph = load_dataset(dataset, ctx);
    const CommunitySet communities = standard_communities(
        graph, CommunityMethod::kLouvain,
        ThresholdRegime::kFractionOfPopulation);
    for (const std::uint32_t k : ks) {
      for (const BenchAlgo algo : {BenchAlgo::kUbg, BenchAlgo::kMaf}) {
        const AlgoOutcome outcome = run_algorithm(
            algo, graph, communities, k, ctx, 0xF16'7b00ULL + k);
        table.add_row({std::string("7b regular"),
                       dataset_info(dataset).name,
                       static_cast<long long>(k), algo_name(algo),
                       outcome.seconds, std::string("")});
      }
    }
  }

  emit(ctx, table, "fig7");
  return 0;
}
