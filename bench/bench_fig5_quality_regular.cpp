// Reproduces Fig. 5: expected benefit vs seed budget k, REGULAR thresholds
// (h_i = 50% of population), Louvain communities with s = 8.
//
// Expected shape (paper §VI-B): UBG best, MAF close behind, both beat the
// IM / HBC / KS baselines, the gap widening as k grows; KS worst (topology-
// blind).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Fig. 5 — Benefit vs k, regular thresholds (h = 0.5|C|)");

  const DatasetId datasets[] = {DatasetId::kFacebook, DatasetId::kWikiVote,
                                DatasetId::kEpinions, DatasetId::kDblp};
  const BenchAlgo algos[] = {BenchAlgo::kUbg, BenchAlgo::kMaf,
                             BenchAlgo::kHbc, BenchAlgo::kKs, BenchAlgo::kIm};
  const std::uint32_t ks[] = {5, 10, 20, 50};

  Table table("Fig. 5", {"dataset", "k", "algorithm", "benefit", "seconds"});
  for (const DatasetId dataset : datasets) {
    const Graph graph = load_dataset(dataset, ctx);
    const CommunitySet communities = standard_communities(
        graph, CommunityMethod::kLouvain,
        ThresholdRegime::kFractionOfPopulation);
    for (const std::uint32_t k : ks) {
      for (const BenchAlgo algo : algos) {
        double benefit = 0.0, seconds = 0.0;
        for (int run = 0; run < ctx.runs; ++run) {
          const AlgoOutcome outcome = run_algorithm(
              algo, graph, communities, k, ctx,
              0xF15'5000ULL + static_cast<std::uint64_t>(run) * 131 + k);
          benefit += outcome.benefit;
          seconds += outcome.seconds;
        }
        table.add_row({dataset_info(dataset).name,
                       static_cast<long long>(k), algo_name(algo),
                       benefit / ctx.runs, seconds / ctx.runs});
      }
    }
  }
  emit(ctx, table, "fig5");
  return 0;
}
