// Extension experiment (beyond the paper's baseline set): the complete
// seeder matrix — paper algorithms, paper baselines, and the classic IM
// heuristics (IMM, PageRank, DegreeDiscount, Degree, Random) — scored on
// the community objective under both threshold regimes.
#include "bench_common.h"

#include "core/baselines/centrality.h"
#include "core/baselines/imm.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Extension — full seeder matrix on the community objective");

  const Graph graph = load_dataset(DatasetId::kFacebook, ctx);
  constexpr std::uint32_t k = 10;

  Table table("Seeder matrix (facebook-like, k=10)",
              {"regime", "seeder", "benefit", "seconds"});
  for (const ThresholdRegime regime :
       {ThresholdRegime::kFractionOfPopulation,
        ThresholdRegime::kConstantBounded}) {
    const CommunitySet communities =
        standard_communities(graph, CommunityMethod::kLouvain, regime);

    // Paper algorithms + paper baselines via the shared runner.
    for (const BenchAlgo algo :
         {BenchAlgo::kUbg, BenchAlgo::kMaf, BenchAlgo::kHbc, BenchAlgo::kKs,
          BenchAlgo::kIm, BenchAlgo::kDegree, BenchAlgo::kRandom}) {
      const AlgoOutcome outcome =
          run_algorithm(algo, graph, communities, k, ctx, 0xE77E4DED);
      table.add_row({std::string(to_string(regime)), algo_name(algo),
                     outcome.benefit, outcome.seconds});
    }
    // Extended IM heuristics.
    {
      Stopwatch watch;
      const ImmResult imm = imm_select(graph, k);
      const double seconds = watch.elapsed_seconds();
      table.add_row({std::string(to_string(regime)), std::string("IMM"),
                     evaluate_benefit(graph, communities, imm.seeds),
                     seconds});
    }
    {
      Stopwatch watch;
      const auto seeds = pagerank_select(graph, k);
      const double seconds = watch.elapsed_seconds();
      table.add_row({std::string(to_string(regime)),
                     std::string("PageRank"),
                     evaluate_benefit(graph, communities, seeds), seconds});
    }
    {
      Stopwatch watch;
      const auto seeds = degree_discount_select(graph, k);
      const double seconds = watch.elapsed_seconds();
      table.add_row({std::string(to_string(regime)),
                     std::string("DegreeDiscount"),
                     evaluate_benefit(graph, communities, seeds), seconds});
    }
  }
  emit(ctx, table, "extended_baselines");
  return 0;
}
