// Reproduces Table I: statistics of the (stand-in) datasets.
//
// Paper numbers are reported verbatim next to the synthetic stand-in's
// actual statistics so the scale substitution is explicit (DESIGN.md §3).
#include "bench_common.h"

#include "graph/algorithms.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Table I — Statistics of datasets (synthetic stand-ins, scale=" +
         std::to_string(ctx.scale) + ")");

  Table table("Table I", {"Data", "Type", "Paper nodes", "Paper edges",
                          "Standin nodes", "Standin edges", "Mean out-deg",
                          "Max out-deg", "WCCs"});
  for (const DatasetInfo& info : dataset_catalog()) {
    const Graph graph = load_dataset(info.id, ctx);
    const auto stats = graph.degree_stats();
    const auto wcc = weakly_connected_components(graph);
    table.add_row({info.name, std::string(info.directed ? "Directed"
                                                        : "Undirected"),
                   static_cast<long long>(info.paper_nodes),
                   static_cast<long long>(info.paper_edges),
                   static_cast<long long>(graph.node_count()),
                   static_cast<long long>(graph.edge_count()),
                   stats.mean_out, static_cast<long long>(stats.max_out),
                   static_cast<long long>(wcc.count)});
  }
  emit(ctx, table, "table1");
  return 0;
}
