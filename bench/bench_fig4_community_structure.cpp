// Reproduces Fig. 4: solution quality vs community structure.
//
//   (a) facebook + Louvain, s ∈ {4, 8, 16, 32}, regular thresholds
//   (b) facebook + Random,  same sweep
//   (c) facebook + Louvain, bounded thresholds h = 2 (quality INcreases
//       with s here — the paper's observed contrast)
//   (d) dblp + Louvain, regular thresholds
// k = 10 everywhere (paper setting). Expected shape: benefit decreases as
// s grows in the regular regime and our algorithms dominate baselines
// regardless of the formation method.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Fig. 4 — Quality of solution vs community structure (k=10)");

  struct Panel {
    const char* label;
    DatasetId dataset;
    CommunityMethod method;
    ThresholdRegime regime;
  };
  const Panel panels[] = {
      {"4a facebook/louvain/regular", DatasetId::kFacebook,
       CommunityMethod::kLouvain, ThresholdRegime::kFractionOfPopulation},
      {"4b facebook/random/regular", DatasetId::kFacebook,
       CommunityMethod::kRandom, ThresholdRegime::kFractionOfPopulation},
      {"4c facebook/louvain/bounded", DatasetId::kFacebook,
       CommunityMethod::kLouvain, ThresholdRegime::kConstantBounded},
      {"4d dblp/louvain/regular", DatasetId::kDblp, CommunityMethod::kLouvain,
       ThresholdRegime::kFractionOfPopulation},
  };
  const BenchAlgo algos[] = {BenchAlgo::kUbg, BenchAlgo::kMaf,
                             BenchAlgo::kHbc, BenchAlgo::kKs};
  constexpr std::uint32_t k = 10;

  Table table("Fig. 4", {"panel", "s", "algorithm", "benefit", "seconds"});
  for (const Panel& panel : panels) {
    const Graph graph = load_dataset(panel.dataset, ctx);
    for (const NodeId s : {4U, 8U, 16U, 32U}) {
      const CommunitySet communities =
          standard_communities(graph, panel.method, panel.regime, s);
      for (const BenchAlgo algo : algos) {
        double benefit = 0.0, seconds = 0.0;
        for (int run = 0; run < ctx.runs; ++run) {
          const AlgoOutcome outcome = run_algorithm(
              algo, graph, communities, k, ctx,
              0xF16'4000ULL + static_cast<std::uint64_t>(run) * 31 + s);
          benefit += outcome.benefit;
          seconds += outcome.seconds;
        }
        table.add_row({std::string(panel.label),
                       static_cast<long long>(s), algo_name(algo),
                       benefit / ctx.runs, seconds / ctx.runs});
      }
    }
  }
  emit(ctx, table, "fig4");
  return 0;
}
