// Ablation: Independent Cascade vs Linear Threshold (the paper's §II-A
// claim that the whole IMC machinery transfers to LT).
//
// Same graph, same communities, same budget: solve with UBG/MAF under each
// model and evaluate with the matching forward simulator. Expected shape:
// rankings are preserved across models; absolute benefits differ (LT's
// single live in-edge per node changes the diffusion reach).
#include "bench_common.h"

#include "core/maf.h"
#include "core/ubg.h"
#include "diffusion/monte_carlo.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Ablation — IC vs LT diffusion model");

  const Graph graph = load_dataset(DatasetId::kFacebook, ctx);
  const CommunitySet communities = standard_communities(
      graph, CommunityMethod::kLouvain,
      ThresholdRegime::kFractionOfPopulation);

  Table table("IC vs LT",
              {"model", "algorithm", "k", "benefit(MC)", "spread(MC)",
               "seconds"});
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    const std::string model_name =
        model == DiffusionModel::kIndependentCascade ? "IC" : "LT";
    for (const std::uint32_t k : {5U, 10U, 20U}) {
      for (const bool use_ubg : {true, false}) {
        ImcafConfig config;
        config.max_samples = std::min<std::uint64_t>(ctx.max_samples, 16000);
        config.model = model;
        Stopwatch watch;
        ImcafResult result;
        if (use_ubg) {
          UbgSolver solver;
          result = imcaf_solve(graph, communities, k, solver, config);
        } else {
          MafSolver solver;
          result = imcaf_solve(graph, communities, k, solver, config);
        }
        const double seconds = watch.elapsed_seconds();

        MonteCarloOptions mc;
        mc.simulations = 4000;
        mc.model = model;
        table.add_row({model_name, std::string(use_ubg ? "UBG" : "MAF"),
                       static_cast<long long>(k),
                       mc_expected_benefit(graph, communities, result.seeds,
                                           mc),
                       mc_expected_spread(graph, result.seeds, mc),
                       seconds});
      }
    }
  }
  emit(ctx, table, "ablation_models");
  return 0;
}
