#include "bench_common.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/baselines/hbc.h"
#include "core/baselines/im_ris.h"
#include "core/baselines/ks.h"
#include "core/baselines/simple.h"
#include "core/bt.h"
#include "core/maf.h"
#include "core/mb.h"
#include "core/ubg.h"
#include "util/rng.h"

namespace imc::bench {

void append_json(const BenchContext& ctx, const Table& table) {
  if (!ctx.json_path) return;
  // One process = one JSON document: accumulate the tables emitted so far
  // and rewrite the whole array each time, so an interrupted run (time
  // limit, ctrl-C between tables) still leaves parseable JSON behind.
  static std::vector<std::string> rendered;
  std::ostringstream body;
  table.write_json(body);
  rendered.push_back(body.str());

  std::ofstream out(*ctx.json_path);
  if (!out) {
    throw std::runtime_error("append_json: cannot open " + *ctx.json_path);
  }
  out << "[\n";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    out << rendered[i] << (i + 1 < rendered.size() ? ",\n" : "\n");
  }
  out << "]\n";
  if (!out) {
    throw std::runtime_error("append_json: write failed for " +
                             *ctx.json_path);
  }
}

AlgoOutcome run_algorithm(BenchAlgo algo, const Graph& graph,
                          const CommunitySet& communities, std::uint32_t k,
                          const BenchContext& ctx, std::uint64_t seed) {
  AlgoOutcome outcome;
  const Stopwatch watch;
  Rng rng(seed);

  const auto run_imcaf = [&](const MaxrSolver& solver) {
    ImcafConfig config;
    config.max_samples = ctx.max_samples;
    config.seed = seed;
    const ImcafResult result =
        imcaf_solve(graph, communities, k, solver, config);
    outcome.seeds = result.seeds;
  };

  switch (algo) {
    case BenchAlgo::kUbg: {
      run_imcaf(UbgSolver{});
      break;
    }
    case BenchAlgo::kMaf: {
      run_imcaf(MafSolver{seed});
      break;
    }
    case BenchAlgo::kMb: {
      BtConfig bt;
      // The IMCAF doubling loop re-solves BT at every stop stage; split the
      // budget so a whole MB run stays near ctx.time_limit, mirroring the
      // paper's per-run time limit (under which MB was discarded on the
      // largest network).
      bt.deadline_seconds = ctx.time_limit / 4.0;
      const MbSolver solver(bt, seed);
      run_imcaf(solver);
      // Re-detect the deadline: a second quick BT probe is wasteful, so we
      // simply flag by wall clock.
      outcome.timed_out = watch.elapsed_seconds() > ctx.time_limit;
      break;
    }
    case BenchAlgo::kHbc:
      outcome.seeds = hbc_select(graph, communities, k);
      break;
    case BenchAlgo::kKs:
      outcome.seeds = ks_select(communities, k, rng);
      break;
    case BenchAlgo::kIm: {
      ImRisConfig config;
      config.seed = seed;
      outcome.seeds = im_ris_select(graph, k, config).seeds;
      break;
    }
    case BenchAlgo::kDegree:
      outcome.seeds = degree_select(graph, k);
      break;
    case BenchAlgo::kRandom:
      outcome.seeds = random_select(graph, k, rng);
      break;
  }

  outcome.seconds = watch.elapsed_seconds();
  outcome.benefit = evaluate_benefit(graph, communities, outcome.seeds,
                                     seed ^ 0x5EEDULL);
  return outcome;
}

}  // namespace imc::bench
