// Shared plumbing for the experiment harness (bench/bench_*.cpp).
//
// Every bench binary runs with no required arguments; knobs come from the
// environment so the whole suite can be driven by a single loop:
//   IMC_BENCH_SCALE        dataset node-count multiplier   (default 0.12)
//   IMC_BENCH_RUNS         repetitions averaged per cell   (default 2)
//   IMC_BENCH_MAX_SAMPLES  RIC pool cap inside IMCAF       (default 30000)
//   IMC_BENCH_TIME_LIMIT   per-algorithm deadline, seconds (default 20)
//   IMC_BENCH_CSV_DIR      if set, also dump each table as CSV there
//   IMC_BENCH_JSON         if set, collect every table into this JSON file
// The one command-line flag is `--json <path>` (equivalent to
// IMC_BENCH_JSON): emit() then appends each table to a JSON array at that
// path, rewritten after every table so partial runs still leave valid JSON.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "community/community_set.h"
#include "core/imcaf.h"
#include "core/problem.h"
#include "estimation/dagum.h"
#include "graph/generators/dataset_catalog.h"
#include "graph/graph.h"
#include "util/cli.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace imc::bench {

struct BenchContext {
  double scale = 0.12;
  int runs = 2;
  std::uint64_t max_samples = 30000;
  double time_limit = 20.0;
  std::optional<std::string> csv_dir;
  std::optional<std::string> json_path;

  static BenchContext from_env() {
    BenchContext ctx;
    ctx.scale = env_double("IMC_BENCH_SCALE", ctx.scale);
    ctx.runs = static_cast<int>(env_int("IMC_BENCH_RUNS", ctx.runs));
    ctx.max_samples = static_cast<std::uint64_t>(
        env_int("IMC_BENCH_MAX_SAMPLES", static_cast<std::int64_t>(ctx.max_samples)));
    ctx.time_limit = env_double("IMC_BENCH_TIME_LIMIT", ctx.time_limit);
    ctx.csv_dir = env_string("IMC_BENCH_CSV_DIR");
    ctx.json_path = env_string("IMC_BENCH_JSON");
    return ctx;
  }

  /// from_env() plus command-line overrides (currently `--json <path>`).
  static BenchContext from_args(int argc, const char* const* argv) {
    BenchContext ctx = from_env();
    const ArgParser args(argc, argv);
    if (args.has("json")) ctx.json_path = args.get_string("json", "");
    if (ctx.json_path && ctx.json_path->empty()) ctx.json_path.reset();
    return ctx;
  }
};

/// Appends `table` to the JSON array at ctx.json_path (no-op when unset).
void append_json(const BenchContext& ctx, const Table& table);

/// Builds the stand-in graph for `id` at the context scale.
inline Graph load_dataset(DatasetId id, const BenchContext& ctx) {
  return make_dataset(id, ctx.scale);
}

/// The paper's standard community setup (§VI-A) on top of a graph.
inline CommunitySet standard_communities(const Graph& graph,
                                         CommunityMethod method,
                                         ThresholdRegime regime,
                                         NodeId size_cap = 8,
                                         std::uint64_t seed = 42) {
  CommunityBuildConfig config;
  config.method = method;
  config.size_cap = size_cap;
  config.regime = regime;
  config.seed = seed;
  return build_communities(graph, config);
}

/// Scores a seed set with the same Dagum estimator the paper uses for all
/// algorithms (ε' = δ' = 0.1 inherited from DagumOptions defaults).
inline double evaluate_benefit(const Graph& graph,
                               const CommunitySet& communities,
                               const std::vector<NodeId>& seeds,
                               std::uint64_t seed = 4242) {
  if (seeds.empty()) return 0.0;
  DagumOptions options;
  options.seed = seed;
  options.max_samples = 400'000;
  return dagum_estimate_benefit(graph, communities, seeds, options).value;
}

/// Prints the table and optionally writes CSV / appends JSON next to it.
inline void emit(const BenchContext& ctx, const Table& table,
                 const std::string& csv_name) {
  table.print(std::cout);
  std::cout << "\n";
  if (ctx.csv_dir) {
    table.save_csv(*ctx.csv_dir + "/" + csv_name + ".csv");
  }
  append_json(ctx, table);
}

/// Algorithms compared in the paper's experiments.
enum class BenchAlgo { kUbg, kMaf, kMb, kHbc, kKs, kIm, kDegree, kRandom };

inline std::string algo_name(BenchAlgo algo) {
  switch (algo) {
    case BenchAlgo::kUbg: return "UBG";
    case BenchAlgo::kMaf: return "MAF";
    case BenchAlgo::kMb: return "MB";
    case BenchAlgo::kHbc: return "HBC";
    case BenchAlgo::kKs: return "KS";
    case BenchAlgo::kIm: return "IM";
    case BenchAlgo::kDegree: return "Degree";
    case BenchAlgo::kRandom: return "Random";
  }
  return "?";
}

struct AlgoOutcome {
  std::vector<NodeId> seeds;
  double benefit = 0.0;
  double seconds = 0.0;
  bool timed_out = false;
};

/// Runs one algorithm end to end (seed selection + Dagum scoring). The
/// ctx.time_limit deadline is honoured by MB/BT (the paper discards MB runs
/// that exceed the runtime limit — we flag them instead).
AlgoOutcome run_algorithm(BenchAlgo algo, const Graph& graph,
                          const CommunitySet& communities, std::uint32_t k,
                          const BenchContext& ctx, std::uint64_t seed);

/// Banner with the reproduced experiment id.
inline void banner(const std::string& what) {
  std::cout << "\n############################################################\n"
            << "# " << what << "\n"
            << "############################################################\n\n";
}

}  // namespace imc::bench
