// Component micro-benchmarks (google-benchmark): substrate hot paths.
#include <benchmark/benchmark.h>

#include <memory>

#include "community/community_set.h"
#include "community/louvain.h"
#include "community/size_cap.h"
#include "community/threshold_policy.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "diffusion/ic_model.h"
#include "graph/generators/dataset_catalog.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "sampling/ric_sample.h"
#include "sampling/rr_set.h"
#include "util/cli.h"

namespace {

using namespace imc;

double micro_scale() {
  static const double scale = env_double("IMC_BENCH_SCALE", 0.12);
  return scale;
}

const Graph& facebook_graph() {
  static const Graph graph = make_dataset(DatasetId::kFacebook, micro_scale());
  return graph;
}

const CommunitySet& facebook_communities() {
  static const CommunitySet communities = [] {
    CommunitySet set = CommunitySet::from_assignment(
        facebook_graph().node_count(),
        louvain_communities(facebook_graph()).assignment);
    Rng rng(1);
    set = cap_community_sizes(set, 8, rng);
    apply_population_benefits(set);
    apply_fraction_thresholds(set, 0.5);
    return set;
  }();
  return communities;
}

void BM_GraphBuild(benchmark::State& state) {
  Rng rng(1);
  BarabasiAlbertConfig config;
  config.nodes = static_cast<NodeId>(state.range(0));
  config.attach = 4;
  const EdgeList edges = barabasi_albert_edges(config, rng);
  for (auto _ : state) {
    Graph graph(config.nodes, edges);
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(5000);

void BM_IcSimulation(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  Rng rng(2);
  std::vector<NodeId> seeds{0, 1, 2, 3, 4};
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_ic_into(graph, seeds, rng, active, scratch));
  }
}
BENCHMARK(BM_IcSimulation);

void BM_RrSetGeneration(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_rr_set(graph, rng).nodes.size());
  }
}
BENCHMARK(BM_RrSetGeneration);

void BM_RicSampleGeneration(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  RicSampler sampler(graph, communities);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.generate(rng).touching.size());
  }
}
BENCHMARK(BM_RicSampleGeneration);

void BM_PoolCHat(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  static RicPool pool = [&] {
    RicPool p(graph, communities);
    p.grow(5000, 5);
    return p;
  }();
  Rng rng(6);
  const auto seeds = rng.sample_without_replacement(graph.node_count(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.c_hat(seeds));
  }
}
BENCHMARK(BM_PoolCHat);

void BM_CoverageMarginal(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  static RicPool pool = [&] {
    RicPool p(graph, communities);
    p.grow(5000, 7);
    return p;
  }();
  CoverageState cover(pool);
  cover.add_seed(0);
  NodeId v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover.marginal_nu(v));
    v = (v + 1) % graph.node_count();
  }
}
BENCHMARK(BM_CoverageMarginal);

// Serial vs deterministic-parallel greedy selection (the UBG/MAF hot loop).
// Arg 0 runs the serial sweep; Arg N > 0 runs the same selection on an
// N-thread pool. Seed sets are bit-identical across all variants; compare
// wall time per iteration to read off the selection speedup.
void greedy_selection_bench(benchmark::State& state,
                            GreedyResult (*engine)(const RicPool&,
                                                   std::uint32_t,
                                                   const GreedyOptions&)) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  static RicPool pool = [&] {
    RicPool p(graph, communities);
    p.grow(8000, 13);
    return p;
  }();
  const auto threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<ThreadPool> workers;
  GreedyOptions options;
  if (threads > 0) {
    workers = std::make_unique<ThreadPool>(threads);
    options.parallel = true;
    options.pool = workers.get();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine(pool, 10, options).seeds.size());
  }
}

void BM_GreedyCHatSelect(benchmark::State& state) {
  greedy_selection_bench(state, &greedy_c_hat);
}
BENCHMARK(BM_GreedyCHatSelect)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_CelfGreedyNuSelect(benchmark::State& state) {
  greedy_selection_bench(state, &celf_greedy_nu);
}
BENCHMARK(BM_CelfGreedyNuSelect)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_Louvain(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain_communities(graph).modularity);
  }
}
BENCHMARK(BM_Louvain);

}  // namespace

BENCHMARK_MAIN();
