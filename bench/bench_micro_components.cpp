// Component micro-benchmarks (google-benchmark): substrate hot paths.
//
// Besides the console table, the binary writes a machine-readable summary
// (name, ns/op, iterations, pool_size/threads counters) to BENCH_micro.json
// — override the path with `--json <path>`, disable with `--json ""`.
// Fixture knobs:
//   IMC_BENCH_SCALE        small-fixture dataset scale       (default 0.12)
//   IMC_MICRO_LARGE_SCALE  large-fixture dataset scale       (default 1.0)
//   IMC_MICRO_POOL         large-fixture RIC pool size       (default 40000)
//   IMC_MICRO_HUGE_POOL    huge-fixture RIC pool size      (default 1000000)
// Kernel selection: IMC_KERNEL=scalar|popcnt|avx2|avx512 pins the gain
// kernel the selection benches run on (default: best supported).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "community/community_set.h"
#include "community/louvain.h"
#include "community/size_cap.h"
#include "community/threshold_policy.h"
#include "core/engine.h"
#include "core/greedy.h"
#include "core/imcaf.h"
#include "core/objective.h"
#include "core/ubg.h"
#include "diffusion/ic_model.h"
#include "graph/delta.h"
#include "graph/generators/dataset_catalog.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/pool_snapshot.h"
#include "sampling/ric_pool.h"
#include "sampling/ric_sample.h"
#include "sampling/rr_set.h"
#include "util/cli.h"
#include "util/context.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace imc;

double micro_scale() {
  static const double scale = env_double("IMC_BENCH_SCALE", 0.12);
  return scale;
}

double micro_large_scale() {
  static const double scale = env_double("IMC_MICRO_LARGE_SCALE", 1.0);
  return scale;
}

std::uint64_t micro_pool_samples() {
  static const auto samples =
      static_cast<std::uint64_t>(env_int("IMC_MICRO_POOL", 40000));
  return samples;
}

std::uint64_t micro_huge_pool_samples() {
  static const auto samples =
      static_cast<std::uint64_t>(env_int("IMC_MICRO_HUGE_POOL", 1000000));
  return samples;
}

CommunitySet standard_communities(const Graph& graph) {
  CommunitySet set = CommunitySet::from_assignment(
      graph.node_count(), louvain_communities(graph).assignment);
  Rng rng(1);
  set = cap_community_sizes(set, 8, rng);
  apply_population_benefits(set);
  apply_fraction_thresholds(set, 0.5);
  return set;
}

const Graph& facebook_graph() {
  static const Graph graph = make_dataset(DatasetId::kFacebook, micro_scale());
  return graph;
}

const CommunitySet& facebook_communities() {
  static const CommunitySet communities =
      standard_communities(facebook_graph());
  return communities;
}

// The "large" fixture: full-scale facebook stand-in with a pool sized so the
// covered/threshold working set exceeds L1/L2 — this is where the CSR arena
// layout and prefetching pay; the small fixture above is cache-resident.
const Graph& large_graph() {
  static const Graph graph =
      make_dataset(DatasetId::kFacebook, micro_large_scale());
  return graph;
}

const CommunitySet& large_communities() {
  static const CommunitySet communities = standard_communities(large_graph());
  return communities;
}

const RicPool& large_pool() {
  static const RicPool pool = [] {
    RicPool p(large_graph(), large_communities());
    p.grow(micro_pool_samples(), 17);
    return p;
  }();
  return pool;
}

void BM_GraphBuild(benchmark::State& state) {
  Rng rng(1);
  BarabasiAlbertConfig config;
  config.nodes = static_cast<NodeId>(state.range(0));
  config.attach = 4;
  const EdgeList edges = barabasi_albert_edges(config, rng);
  for (auto _ : state) {
    Graph graph(config.nodes, edges);
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(5000);

void BM_IcSimulation(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  Rng rng(2);
  std::vector<NodeId> seeds{0, 1, 2, 3, 4};
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_ic_into(graph, seeds, rng, active, scratch));
  }
}
BENCHMARK(BM_IcSimulation);

void BM_RrSetGeneration(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_rr_set(graph, rng).nodes.size());
  }
}
BENCHMARK(BM_RrSetGeneration);

void BM_RicSampleGeneration(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  RicSampler sampler(graph, communities);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.generate(rng).touching.size());
  }
}
BENCHMARK(BM_RicSampleGeneration);

// Raw sampler throughput on the full-scale fixture (mean in-degree ~78
// under weighted cascade — the geometric-skip sweet spot), arena-direct:
// this is the per-sample cost that BM_PoolGrowLarge amortizes.
void BM_RicSampleGenerationLarge(benchmark::State& state) {
  const Graph& graph = large_graph();
  const CommunitySet& communities = large_communities();
  RicSampler sampler(graph, communities);
  RicSampler::TouchArena arena;
  Rng rng(4);
  for (auto _ : state) {
    arena.clear();
    benchmark::DoNotOptimize(sampler.generate_into(rng, arena).touch_count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RicSampleGenerationLarge);

// End-to-end pool growth on the large fixture — the acceptance benchmark
// for the sampling engine (geometric skip + bit-parallel masks +
// arena-direct stitching). Arg 0 is the serial path; Arg N > 0 grows on a
// local N-thread pool. items/s is samples/s.
void BM_PoolGrowLarge(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<ThreadPool> workers;
  if (threads > 0) workers = std::make_unique<ThreadPool>(threads);
  const std::uint64_t count = micro_pool_samples();
  for (auto _ : state) {
    RicPool pool(large_graph(), large_communities());
    pool.grow(count, 17, /*parallel=*/threads > 0, workers.get());
    benchmark::DoNotOptimize(pool.touch_arena().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
  state.counters["pool_size"] = static_cast<double>(count);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_PoolGrowLarge)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Dynamic-update cost on the large fixture: a single-edge delta handled by
// invalidate_and_repair (regenerate only the samples touching the changed
// head, each from its original substream — DESIGN.md §16) vs a full
// from-scratch rebuild on the mutated graph. Both produce bit-identical
// pools; repaired_fraction is the share the repair had to regenerate. The
// edge head is chosen at median touch-popularity, so the frontier is
// representative rather than hub-degenerate or leaf-trivial.
// Args: {0 = repair | 1 = rebuild, threads (0 = serial)}.
void BM_DeltaRepairVsRebuild(benchmark::State& state) {
  const bool rebuild = state.range(0) != 0;
  const auto threads = static_cast<unsigned>(state.range(1));
  std::unique_ptr<ThreadPool> workers;
  if (threads > 0) workers = std::make_unique<ThreadPool>(threads);
  // apply_delta mutates, so this bench owns private copies of the fixture.
  Graph graph = large_graph();
  CommunitySet communities = large_communities();
  const std::uint64_t count = micro_pool_samples();
  RicPool pool(graph, communities);
  pool.grow(count, 17, /*parallel=*/threads > 0, workers.get());

  const std::span<const std::uint64_t> offsets = pool.touch_offsets();
  std::vector<std::uint64_t> touch_counts;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (graph.in_degree(v) > 0) {
      touch_counts.push_back(offsets[v + 1] - offsets[v]);
    }
  }
  std::nth_element(touch_counts.begin(),
                   touch_counts.begin() + touch_counts.size() / 2,
                   touch_counts.end());
  const std::uint64_t median = touch_counts[touch_counts.size() / 2];
  NodeId head = 0;
  std::uint64_t best_gap = ~std::uint64_t{0};
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (graph.in_degree(v) == 0) continue;
    const std::uint64_t touches = offsets[v + 1] - offsets[v];
    const std::uint64_t gap =
        touches > median ? touches - median : median - touches;
    if (gap < best_gap) {
      best_gap = gap;
      head = v;
    }
  }
  const Neighbor in_edge = graph.in_neighbors(head)[0];
  const auto weight = static_cast<double>(in_edge.weight);

  double repaired = 0.0;
  bool shrink = true;
  for (auto _ : state) {
    // Alternate halving/restoring the weight: every iteration is a real
    // change with the same repair frontier, and scaling down can never
    // push an LT in-weight sum past 1.
    GraphDelta delta;
    delta.upsert_edge(in_edge.node, head, shrink ? weight * 0.5 : weight);
    shrink = !shrink;
    const DeltaEffects effects = apply_delta(graph, communities, delta);
    if (rebuild) {
      RicPool fresh(graph, communities);
      fresh.grow(count, 17, /*parallel=*/threads > 0, workers.get());
      benchmark::DoNotOptimize(fresh.touch_arena().size());
      repaired += static_cast<double>(count);
    } else {
      const RicPool::RepairStats stats =
          pool.invalidate_and_repair(effects, 17, /*parallel=*/threads > 0,
                                     workers.get());
      benchmark::DoNotOptimize(pool.touch_arena().size());
      repaired += static_cast<double>(stats.repaired);
    }
  }
  const auto iterations = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
  state.counters["repaired_samples"] = repaired / iterations;
  state.counters["repaired_fraction"] =
      repaired / (iterations * static_cast<double>(count));
  state.counters["pool_size"] = static_cast<double>(count);
  state.counters["rebuild"] = rebuild ? 1.0 : 0.0;
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_DeltaRepairVsRebuild)
    ->Args({0, 0})
    ->Args({0, 8})
    ->Args({1, 0})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

void BM_PoolCHat(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  static RicPool pool = [&] {
    RicPool p(graph, communities);
    p.grow(5000, 5);
    return p;
  }();
  Rng rng(6);
  const auto seeds = rng.sample_without_replacement(graph.node_count(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.c_hat(seeds));
  }
  state.counters["pool_size"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_PoolCHat);

void BM_PoolCHatLarge(benchmark::State& state) {
  const RicPool& pool = large_pool();
  Rng rng(6);
  const auto seeds =
      rng.sample_without_replacement(large_graph().node_count(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.c_hat(seeds));
  }
  state.counters["pool_size"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_PoolCHatLarge);

// Binary snapshot persistence on the large (~40k sample) pool. Save is one
// sequential arena write; Load contrasts the three reload paths — Arg 0
// is the streamed read (checksum + full per-sample validation, O(pool),
// owned arenas), Arg 1 the default zero-copy mmap attach (same checks,
// one pass over the mapping, no copy), Arg 2 the opt-in TRUSTED attach
// (`--load-pool --trust-pool`) whose cost must stay independent of pool
// size — the acceptance bar for warm restarts.
void BM_PoolSnapshotSave(benchmark::State& state) {
  const RicPool& pool = large_pool();
  const std::string path = "/tmp/imc_bench_pool_save.snap";
  for (auto _ : state) {
    save_ric_pool_snapshot(path, pool);
  }
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  state.counters["pool_size"] = static_cast<double>(pool.size());
  state.counters["snapshot_bytes"] = static_cast<double>(probe.tellg());
  std::remove(path.c_str());
}
BENCHMARK(BM_PoolSnapshotSave)->Unit(benchmark::kMillisecond);

void BM_PoolSnapshotLoad(benchmark::State& state) {
  const RicPool& pool = large_pool();
  const std::string path = "/tmp/imc_bench_pool_load.snap";
  save_ric_pool_snapshot(path, pool);
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RicPool loaded =
        mode == 0 ? load_ric_pool_snapshot(path, large_graph(),
                                           large_communities())
                  : attach_ric_pool_snapshot(
                        path, large_graph(), large_communities(),
                        mode == 2 ? SnapshotTrust::kTrustPayload
                                  : SnapshotTrust::kVerifyPayload);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.counters["pool_size"] = static_cast<double>(pool.size());
  state.counters["mmap"] = mode != 0 ? 1 : 0;
  state.counters["trusted"] = mode == 2 ? 1 : 0;
  std::remove(path.c_str());
}
BENCHMARK(BM_PoolSnapshotLoad)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_CoverageMarginal(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  const CommunitySet& communities = facebook_communities();
  static RicPool pool = [&] {
    RicPool p(graph, communities);
    p.grow(5000, 7);
    return p;
  }();
  CoverageState cover(pool);
  cover.add_seed(0);
  NodeId v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover.marginal_nu(v));
    v = (v + 1) % graph.node_count();
  }
  state.counters["pool_size"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_CoverageMarginal);

// Serial vs deterministic-parallel greedy selection (the UBG/MAF hot loop).
// Arg 0 runs the serial sweep; Arg N > 0 runs the same selection on an
// N-thread pool. Seed sets are bit-identical across all variants; compare
// wall time per iteration to read off the selection speedup.
void greedy_selection_bench(benchmark::State& state, const RicPool& pool,
                            GreedyResult (*engine)(const RicPool&,
                                                   std::uint32_t,
                                                   const GreedyOptions&)) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<ThreadPool> workers;
  GreedyOptions options;
  if (threads > 0) {
    workers = std::make_unique<ThreadPool>(threads);
    options.parallel = true;
    options.pool = workers.get();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine(pool, 10, options).seeds.size());
  }
  // items/s = samples swept per second of selection, like the pool-grow
  // benches report samples grown per second.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pool.size()));
  state.counters["pool_size"] = static_cast<double>(pool.size());
  state.counters["threads"] = static_cast<double>(threads);
}

const RicPool& small_greedy_pool() {
  static const RicPool pool = [] {
    RicPool p(facebook_graph(), facebook_communities());
    p.grow(8000, 13);
    return p;
  }();
  return pool;
}

void BM_GreedyCHatSelect(benchmark::State& state) {
  greedy_selection_bench(state, small_greedy_pool(), &greedy_c_hat);
}
BENCHMARK(BM_GreedyCHatSelect)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

void BM_CelfGreedyNuSelect(benchmark::State& state) {
  greedy_selection_bench(state, small_greedy_pool(), &celf_greedy_nu);
}
BENCHMARK(BM_CelfGreedyNuSelect)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

// Large-fixture selection: the acceptance benchmark for the CSR/SoA layout
// and the SIMD gain kernels (DESIGN.md §14).
void BM_GreedyCHatSelectLarge(benchmark::State& state) {
  greedy_selection_bench(state, large_pool(), &greedy_c_hat);
}
BENCHMARK(BM_GreedyCHatSelectLarge)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CelfGreedyNuSelectLarge(benchmark::State& state) {
  greedy_selection_bench(state, large_pool(), &celf_greedy_nu);
}
BENCHMARK(BM_CelfGreedyNuSelectLarge)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Huge fixture: ≥10⁶ samples (~25x the covered/arena working set of the
// large fixture — firmly DRAM-resident) on the same full-scale graph. This
// is the scale where the sharded slab sweep and the SIMD kernels are
// measured for acceptance; grown once, reused by both engines.
const RicPool& huge_pool() {
  static const RicPool pool = [] {
    RicPool p(large_graph(), large_communities());
    p.grow(micro_huge_pool_samples(), 23);
    return p;
  }();
  return pool;
}

void BM_GreedyCHatSelectHuge(benchmark::State& state) {
  greedy_selection_bench(state, huge_pool(), &greedy_c_hat);
}
BENCHMARK(BM_GreedyCHatSelectHuge)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CelfGreedyNuSelectHuge(benchmark::State& state) {
  greedy_selection_bench(state, huge_pool(), &celf_greedy_nu);
}
BENCHMARK(BM_CelfGreedyNuSelectHuge)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// End-to-end IMCAF: Arg 0 solves cold at every doubling stage
// (warm_start=false), Arg 1 warm-starts the solver across stages via
// MaxrSolver::resume (the default). Outputs are bit-identical; the
// solver_seconds counter isolates the MAXR time the warm start saves —
// the acceptance metric for the staged engine is its cold/warm ratio.
// Hub-structured fixture for the warm-start measurement: a BA graph under
// the weighted cascade keeps the greedy prefix stable as the pool doubles,
// so the carried ĉ snapshots and CELF init chains actually get replayed.
// (The Louvain/fraction-threshold fixture above has near-tied marginals —
// its winners reshuffle every doubling and the carry falls back to cold,
// which is correct but measures only the fallback.)
const Graph& ba_hub_graph() {
  static const Graph graph = [] {
    Rng rng(77);
    BarabasiAlbertConfig config;
    config.nodes = 2000;
    config.attach = 2;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }();
  return graph;
}

const CommunitySet& ba_hub_communities() {
  static const CommunitySet communities = [] {
    const NodeId n = ba_hub_graph().node_count();
    std::vector<std::vector<NodeId>> groups;
    for (NodeId begin = 0; begin < n; begin += 6) {
      auto& group = groups.emplace_back();
      for (NodeId v = begin; v < std::min<NodeId>(begin + 6, n); ++v) {
        group.push_back(v);
      }
    }
    CommunitySet set(n, std::move(groups));
    apply_constant_thresholds(set, 2);
    apply_population_benefits(set);
    return set;
  }();
  return communities;
}

// End-to-end Alg. 5 runs, arguments {warm_start, threads}. threads == 0 is
// the serial schedule (pipeline off, no worker pool); threads > 0 runs the
// pipelined engine (DESIGN.md §15) with that many workers overlapping each
// stage's solve/estimate with the next stage's sample generation.
// Sampling itself stays SERIAL in every row (parallel_sampling = false) so
// the pipeline's only lever is the overlap — on a multi-core host the
// wall-clock should approach max(sampling, solve + estimate) instead of
// their sum, i.e. the solver_seconds counter disappears from the wall
// time at >= 2 threads. (The committed numbers come from a single-core
// container — see EXPERIMENTS.md — where overlap cannot shorten wall
// time; the overlap_seconds counter still reports what WAS hidden.)
// items_per_second = RIC samples generated end to end.
void BM_ImcafEndToEnd(benchmark::State& state) {
  const Graph& graph = ba_hub_graph();
  const CommunitySet& communities = ba_hub_communities();
  const UbgSolver solver;
  const auto threads = static_cast<unsigned>(state.range(1));
  ImcafConfig config;
  config.max_samples = 24000;  // 4 stop stages from Λ ≈ 2.7k
  config.seed = 2024;
  config.parallel_sampling = false;
  config.warm_start = state.range(0) != 0;
  config.pipeline = threads > 0;
  std::unique_ptr<ThreadPool> workers;
  if (threads > 0) workers = std::make_unique<ThreadPool>(threads);
  double sampling_seconds = 0.0;
  double solver_seconds = 0.0;
  double estimate_seconds = 0.0;
  double overlap_seconds = 0.0;
  double committed = 0.0;
  double discarded = 0.0;
  double stop_stages = 0.0;
  std::int64_t samples = 0;
  for (auto _ : state) {
    ExecutionContext context;
    context.workers = workers.get();
    ImcEngine engine(graph, communities, config, context);
    const ImcafResult result = engine.solve(10, solver);
    benchmark::DoNotOptimize(result.seeds.size());
    sampling_seconds += result.sampling_seconds;
    solver_seconds += result.solver_seconds;
    estimate_seconds += result.estimate_seconds;
    overlap_seconds += result.overlap_seconds;
    committed += static_cast<double>(result.speculative_samples_committed);
    discarded += static_cast<double>(result.speculative_samples_discarded);
    stop_stages = static_cast<double>(result.stop_stages);
    samples += static_cast<std::int64_t>(result.samples_generated);
  }
  const auto iterations = static_cast<double>(state.iterations());
  state.SetItemsProcessed(samples);
  state.counters["sampling_seconds"] = sampling_seconds / iterations;
  state.counters["solver_seconds"] = solver_seconds / iterations;
  state.counters["estimate_seconds"] = estimate_seconds / iterations;
  state.counters["overlap_seconds"] = overlap_seconds / iterations;
  state.counters["speculative_samples_committed"] = committed / iterations;
  state.counters["speculative_samples_discarded"] = discarded / iterations;
  state.counters["stop_stages"] = stop_stages;
  state.counters["warm_start"] = config.warm_start ? 1.0 : 0.0;
  state.counters["pipeline"] = config.pipeline ? 1.0 : 0.0;
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ImcafEndToEnd)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  const Graph& graph = facebook_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain_communities(graph).modularity);
  }
}
BENCHMARK(BM_Louvain);

// Console output as usual, plus a JSON record per finished run so perf
// tracking can diff BENCH_micro.json files across commits.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::ostringstream record;
      record << "    {\"name\": \"" << json_escape(run.benchmark_name())
             << "\", \"ns_per_op\": " << to_ns(run.GetAdjustedRealTime(), run)
             << ", \"cpu_ns_per_op\": " << to_ns(run.GetAdjustedCPUTime(), run)
             << ", \"iterations\": " << run.iterations;
      for (const auto& [name, counter] : run.counters) {
        record << ", \"" << json_escape(name) << "\": " << counter.value;
      }
      record << "}";
      records_.push_back(record.str());
    }
  }

  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro_components: cannot open " << path << "\n";
      return;
    }
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << records_.size() << " benchmark records to "
              << path << "\n";
  }

 private:
  static double to_ns(double time, const Run& run) {
    switch (run.time_unit) {
      case benchmark::kNanosecond: return time;
      case benchmark::kMicrosecond: return time * 1e3;
      case benchmark::kMillisecond: return time * 1e6;
      case benchmark::kSecond: return time * 1e9;
    }
    return time;
  }

  std::vector<std::string> records_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write(json_path);
  benchmark::Shutdown();
  return 0;
}
