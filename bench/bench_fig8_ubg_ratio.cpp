// Reproduces Fig. 8: the data-dependent UBG guarantee ratio
// c(S_ν) / ν(S_ν) as a function of k, regular vs bounded thresholds.
//
// S_ν is the CELF greedy solution on ν_R; the ratio is evaluated with
// Monte-Carlo estimates of c and ν (as in the paper). Expected shape: the
// ratio rises toward 1 as k grows and is uniformly higher in the bounded
// regime (smaller thresholds => ĉ closer to its submodular upper bound).
#include "bench_common.h"

#include "core/greedy.h"
#include "diffusion/monte_carlo.h"
#include "sampling/ric_pool.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Fig. 8 — UBG sandwich ratio c(S_nu)/nu(S_nu) vs k");

  Table table("Fig. 8", {"dataset", "regime", "k", "ratio", "c(S_nu)",
                         "nu(S_nu)"});
  const std::uint32_t ks[] = {5, 10, 20, 50, 100};

  for (const DatasetId dataset :
       {DatasetId::kFacebook, DatasetId::kEpinions}) {
    const Graph graph = load_dataset(dataset, ctx);
    for (const ThresholdRegime regime :
         {ThresholdRegime::kFractionOfPopulation,
          ThresholdRegime::kConstantBounded}) {
      const CommunitySet communities =
          standard_communities(graph, CommunityMethod::kLouvain, regime);
      RicPool pool(graph, communities);
      pool.grow(std::min<std::uint64_t>(ctx.max_samples, 20000), 0xF16'8000ULL);
      for (const std::uint32_t k : ks) {
        if (k > graph.node_count()) continue;
        const GreedyResult s_nu = celf_greedy_nu(pool, k);
        MonteCarloOptions mc;
        mc.simulations = 4000;
        const double c_value =
            mc_expected_benefit(graph, communities, s_nu.seeds, mc);
        const double nu_value =
            mc_expected_nu(graph, communities, s_nu.seeds, mc);
        table.add_row({dataset_info(dataset).name,
                       std::string(to_string(regime)),
                       static_cast<long long>(k),
                       nu_value > 0 ? c_value / nu_value : 0.0, c_value,
                       nu_value});
      }
    }
  }
  emit(ctx, table, "fig8");
  return 0;
}
