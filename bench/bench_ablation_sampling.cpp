// Ablation: RIC sample budget sensitivity.
//
//   1. Solution quality (independent Dagum score) of UBG as the pool grows
//      — how many samples the estimate actually needs vs the Ψ worst case.
//   2. Sampler throughput by dataset / threshold regime.
#include "bench_common.h"

#include "core/ubg.h"
#include "estimation/concentration.h"
#include "sampling/ric_pool.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Ablation — RIC sampling budget");

  const Graph graph = load_dataset(DatasetId::kFacebook, ctx);
  const CommunitySet communities = standard_communities(
      graph, CommunityMethod::kLouvain,
      ThresholdRegime::kFractionOfPopulation);
  constexpr std::uint32_t k = 10;

  // Ψ for reference (the eq. 22 worst case the doubling scheme avoids).
  ApproxParams params;
  const double psi = static_cast<double>(psi_sample_cap(
      graph.node_count(), k, communities.total_benefit(),
      communities.min_benefit(), communities.max_threshold(),
      1.0 - 1.0 / 2.718281828, params));
  std::cout << "Psi (eq. 22 cap) for this instance: " << psi << "\n\n";

  Table table("UBG quality vs pool size",
              {"samples", "chat", "dagum_benefit", "gen_seconds",
               "solve_seconds"});
  RicPool pool(graph, communities);
  std::uint64_t have = 0;
  double generation_seconds = 0.0;
  for (const std::uint64_t target :
       {500ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL, 16000ULL, 32000ULL}) {
    Stopwatch watch;
    pool.grow(target - have, 0xAB1A2);
    generation_seconds += watch.elapsed_seconds();
    have = target;
    watch.restart();
    const UbgSolution solution = ubg_solve(pool, k);
    const double solve_seconds = watch.elapsed_seconds();
    const double score =
        evaluate_benefit(graph, communities, solution.seeds, target);
    table.add_row({static_cast<long long>(target), solution.c_hat, score,
                   generation_seconds, solve_seconds});
  }
  emit(ctx, table, "ablation_sampling_budget");

  Table throughput("RIC sampler throughput",
                   {"dataset", "regime", "samples_per_second",
                    "mean_touch_size"});
  for (const DatasetId dataset :
       {DatasetId::kFacebook, DatasetId::kWikiVote, DatasetId::kEpinions}) {
    const Graph g = load_dataset(dataset, ctx);
    for (const ThresholdRegime regime :
         {ThresholdRegime::kFractionOfPopulation,
          ThresholdRegime::kConstantBounded}) {
      const CommunitySet com =
          standard_communities(g, CommunityMethod::kLouvain, regime);
      RicSampler sampler(g, com);
      Rng rng(0xAB1A3);
      Stopwatch watch;
      std::uint64_t touches = 0;
      constexpr int kSamples = 3000;
      for (int i = 0; i < kSamples; ++i) {
        touches += sampler.generate(rng).touching.size();
      }
      const double seconds = watch.elapsed_seconds();
      throughput.add_row(
          {dataset_info(dataset).name, std::string(to_string(regime)),
           seconds > 0 ? kSamples / seconds : 0.0,
           static_cast<double>(touches) / kSamples});
    }
  }
  emit(ctx, throughput, "ablation_sampling_throughput");
  return 0;
}
