// Ablation: greedy engine choices called out in DESIGN.md.
//
//   1. CELF lazy greedy vs plain re-evaluating greedy on the submodular
//      ν_R — identical values, very different work.
//   2. Plain greedy on the non-submodular ĉ_R vs CELF on ν_R as the seed
//      rule inside UBG — why UBG runs BOTH (Alg. 2): each alone can lose.
#include "bench_common.h"

#include "core/greedy.h"
#include "core/ubg.h"
#include "sampling/ric_pool.h"

int main(int argc, char** argv) {
  using namespace imc;
  using namespace imc::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  banner("Ablation — greedy engines (CELF vs plain; c-hat vs nu)");

  const Graph graph = load_dataset(DatasetId::kFacebook, ctx);

  Table lazy_table("CELF vs plain greedy on nu",
                   {"regime", "k", "celf_s", "plain_s", "speedup",
                    "nu(celf)", "nu(plain)"});
  Table rule_table("Seed rule inside UBG",
                   {"regime", "k", "chat(greedy-chat)", "chat(celf-nu)",
                    "chat(UBG=max)"});

  for (const ThresholdRegime regime :
       {ThresholdRegime::kFractionOfPopulation,
        ThresholdRegime::kConstantBounded}) {
    const CommunitySet communities =
        standard_communities(graph, CommunityMethod::kLouvain, regime);
    RicPool pool(graph, communities);
    pool.grow(std::min<std::uint64_t>(ctx.max_samples, 20000), 0xAB1A7E);

    for (const std::uint32_t k : {10U, 25U, 50U}) {
      Stopwatch watch;
      const GreedyResult celf = celf_greedy_nu(pool, k);
      const double celf_seconds = watch.elapsed_seconds();
      watch.restart();
      const GreedyResult plain = plain_greedy_nu(pool, k);
      const double plain_seconds = watch.elapsed_seconds();
      lazy_table.add_row({std::string(to_string(regime)),
                          static_cast<long long>(k), celf_seconds,
                          plain_seconds,
                          celf_seconds > 0 ? plain_seconds / celf_seconds
                                           : 0.0,
                          celf.nu, plain.nu});

      const GreedyResult chat = greedy_c_hat(pool, k);
      const UbgSolution ubg = ubg_solve(pool, k);
      rule_table.add_row({std::string(to_string(regime)),
                          static_cast<long long>(k), chat.c_hat,
                          celf.c_hat, ubg.c_hat});
    }
  }
  emit(ctx, lazy_table, "ablation_greedy_celf");
  emit(ctx, rule_table, "ablation_greedy_rule");
  return 0;
}
