#include "diffusion/live_edge.h"

#include <gtest/gtest.h>

#include "diffusion/ic_model.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(LiveEdge, CertainGraphKeepsAllEdges) {
  const Graph graph = test::complete_graph(5, 1.0);
  Rng rng(1);
  const LiveEdgeGraph sample = sample_live_edges(graph, rng);
  EXPECT_EQ(sample.edge_count(), graph.edge_count());
}

TEST(LiveEdge, ZeroWeightDropsAllEdges) {
  const Graph graph = test::complete_graph(5, 0.0);
  Rng rng(2);
  EXPECT_EQ(sample_live_edges(graph, rng).edge_count(), 0U);
}

TEST(LiveEdge, SurvivalRateMatchesWeight) {
  const Graph graph = test::complete_graph(30, 0.3);
  Rng rng(3);
  double kept = 0.0;
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    kept += static_cast<double>(sample_live_edges(graph, rng).edge_count());
  }
  const double rate = kept / kRuns / static_cast<double>(graph.edge_count());
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(LiveEdge, ReachableMatchesStructure) {
  const Graph graph = test::path_graph(4, 1.0);
  Rng rng(4);
  const LiveEdgeGraph sample = sample_live_edges(graph, rng);
  const std::vector<NodeId> sources{1};
  EXPECT_EQ(sample.reachable(sources), (std::vector<NodeId>{1, 2, 3}));
}

TEST(LiveEdge, SpreadDistributionMatchesIcSimulation) {
  // The live-edge view and direct IC simulation must agree in expectation
  // (they are the same distribution — §II-A).
  const Graph graph = test::cycle_graph(12, 0.5);
  Rng rng_live(5), rng_ic(5);
  const std::vector<NodeId> seeds{0};
  double live_total = 0.0, ic_total = 0.0;
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  constexpr int kRuns = 20000;
  for (int run = 0; run < kRuns; ++run) {
    live_total += static_cast<double>(
        sample_live_edges(graph, rng_live).reachable(seeds).size());
    ic_total += static_cast<double>(
        simulate_ic_into(graph, seeds, rng_ic, active, scratch));
  }
  EXPECT_NEAR(live_total / kRuns, ic_total / kRuns, 0.06);
}

}  // namespace
}  // namespace imc
