#include "diffusion/lt_model.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(LtModel, WeightValidation) {
  // In-weights must sum to <= 1.
  GraphBuilder ok;
  ok.add_edge(0, 2, 0.5).add_edge(1, 2, 0.5);
  EXPECT_TRUE(lt_weights_valid(ok.build()));

  GraphBuilder bad;
  bad.add_edge(0, 2, 0.8).add_edge(1, 2, 0.8);
  EXPECT_FALSE(lt_weights_valid(bad.build()));

  Rng rng(1);
  const std::vector<NodeId> seeds{0};
  EXPECT_THROW((void)simulate_lt(bad.build(), seeds, rng), std::invalid_argument);
}

TEST(LtModel, SeedsAlwaysActive) {
  const Graph graph = test::path_graph(4, 0.0);
  Rng rng(2);
  const std::vector<NodeId> seeds{1, 3};
  EXPECT_EQ(simulate_lt(graph, seeds, rng), seeds);
}

TEST(LtModel, FullWeightMeansCertainActivation) {
  // Path with weight 1: every threshold θ <= 1 is met once the
  // predecessor activates, so the cascade reaches the whole suffix.
  const Graph graph = test::path_graph(5, 1.0);
  Rng rng(3);
  const std::vector<NodeId> seeds{0};
  EXPECT_EQ(simulate_lt(graph, seeds, rng).size(), 5U);
}

TEST(LtModel, ActivationRateMatchesWeight) {
  // Single edge 0 -> 1 with w = 0.4: P(1 active) = P(θ_1 <= 0.4) = 0.4.
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.4);
  const Graph graph = builder.build();
  Rng rng(4);
  const std::vector<NodeId> seeds{0};
  int hits = 0;
  constexpr int kRuns = 20000;
  for (int run = 0; run < kRuns; ++run) {
    hits += (simulate_lt(graph, seeds, rng).size() == 2);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kRuns, 0.4, 0.015);
}

TEST(LtModel, AccumulatesInfluenceAcrossNeighbors) {
  // 0 and 1 each feed 2 with weight 0.5; with both seeded, incoming = 1.0
  // >= any θ, so node 2 is always activated.
  GraphBuilder builder;
  builder.add_edge(0, 2, 0.5).add_edge(1, 2, 0.5);
  const Graph graph = builder.build();
  Rng rng(5);
  const std::vector<NodeId> both{0, 1};
  for (int run = 0; run < 200; ++run) {
    EXPECT_EQ(simulate_lt(graph, both, rng).size(), 3U);
  }
  // With only one seed the probability is 0.5.
  const std::vector<NodeId> one{0};
  int hits = 0;
  constexpr int kRuns = 20000;
  for (int run = 0; run < kRuns; ++run) {
    hits += (simulate_lt(graph, one, rng).size() == 2);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kRuns, 0.5, 0.015);
}

TEST(LtModel, OutOfRangeSeedThrows) {
  const Graph graph = test::path_graph(3, 0.5);
  Rng rng(6);
  const std::vector<NodeId> seeds{9};
  EXPECT_THROW((void)simulate_lt(graph, seeds, rng), std::out_of_range);
}

}  // namespace
}  // namespace imc
