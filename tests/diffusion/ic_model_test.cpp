#include "diffusion/ic_model.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(IcModel, SeedsAlwaysActive) {
  const Graph graph = test::path_graph(5, 0.0);
  Rng rng(1);
  const std::vector<NodeId> seeds{2};
  EXPECT_EQ(simulate_ic(graph, seeds, rng), seeds);
}

TEST(IcModel, CertainEdgesEqualReachability) {
  const Graph graph = test::path_graph(6, 1.0);
  Rng rng(2);
  const std::vector<NodeId> seeds{1};
  EXPECT_EQ(simulate_ic(graph, seeds, rng),
            forward_reachable(graph, seeds));
}

TEST(IcModel, MultipleSeedsUnion) {
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(0, 1, 1.0).add_edge(3, 4, 1.0);
  const Graph graph = builder.build();
  Rng rng(3);
  const std::vector<NodeId> seeds{0, 3};
  EXPECT_EQ(simulate_ic(graph, seeds, rng),
            (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(IcModel, DuplicateSeedsTolerated) {
  const Graph graph = test::path_graph(3, 1.0);
  Rng rng(4);
  const std::vector<NodeId> seeds{0, 0, 0};
  EXPECT_EQ(simulate_ic(graph, seeds, rng).size(), 3U);
}

TEST(IcModel, OutOfRangeSeedThrows) {
  const Graph graph = test::path_graph(3);
  Rng rng(5);
  const std::vector<NodeId> seeds{7};
  EXPECT_THROW((void)simulate_ic(graph, seeds, rng), std::out_of_range);
}

TEST(IcModel, ActivationRateMatchesEdgeProbability) {
  // Star center seeded: each leaf independently active with p = 0.3.
  const Graph graph = test::star_graph(101, 0.3);
  Rng rng(6);
  const std::vector<NodeId> seeds{0};
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  double total = 0.0;
  constexpr int kRuns = 3000;
  for (int run = 0; run < kRuns; ++run) {
    total += static_cast<double>(
                 simulate_ic_into(graph, seeds, rng, active, scratch)) -
             1.0;  // exclude the seed
  }
  EXPECT_NEAR(total / kRuns / 100.0, 0.3, 0.01);
}

TEST(IcModel, TwoHopPathProbability) {
  // 0 -> 1 -> 2 with p = 0.5: P(2 active | seed 0) = 0.25.
  const Graph graph = test::path_graph(3, 0.5);
  Rng rng(7);
  const std::vector<NodeId> seeds{0};
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  int hits = 0;
  constexpr int kRuns = 20000;
  for (int run = 0; run < kRuns; ++run) {
    simulate_ic_into(graph, seeds, rng, active, scratch);
    hits += active[2];
  }
  EXPECT_NEAR(static_cast<double>(hits) / kRuns, 0.25, 0.01);
}

TEST(IcModel, SimulateIntoReturnsCount) {
  const Graph graph = test::complete_graph(4, 1.0);
  Rng rng(8);
  const std::vector<NodeId> seeds{0};
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  EXPECT_EQ(simulate_ic_into(graph, seeds, rng, active, scratch), 4U);
}

TEST(IcModel, MonotoneInSeedsOnAverage) {
  const Graph graph = test::cycle_graph(20, 0.4);
  Rng rng(9);
  std::vector<std::uint8_t> active;
  std::vector<NodeId> scratch;
  double small = 0.0, large = 0.0;
  const std::vector<NodeId> one{0};
  const std::vector<NodeId> two{0, 10};
  for (int run = 0; run < 2000; ++run) {
    small += static_cast<double>(
        simulate_ic_into(graph, one, rng, active, scratch));
    large += static_cast<double>(
        simulate_ic_into(graph, two, rng, active, scratch));
  }
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace imc
