#include "diffusion/monte_carlo.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace imc {
namespace {

TEST(MonteCarlo, SpreadOnDeterministicPath) {
  const Graph graph = test::path_graph(5, 1.0);
  MonteCarloOptions options;
  options.simulations = 50;
  const std::vector<NodeId> seeds{0};
  EXPECT_DOUBLE_EQ(mc_expected_spread(graph, seeds, options), 5.0);
}

TEST(MonteCarlo, SpreadSingleEdge) {
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.3);
  MonteCarloOptions options;
  options.simulations = 40000;
  const std::vector<NodeId> seeds{0};
  EXPECT_NEAR(mc_expected_spread(builder.build(), seeds, options), 1.3,
              0.01);
}

TEST(MonteCarlo, ZeroSimulationsGiveZero) {
  const Graph graph = test::path_graph(3);
  MonteCarloOptions options;
  options.simulations = 0;
  const std::vector<NodeId> seeds{0};
  EXPECT_DOUBLE_EQ(mc_expected_spread(graph, seeds, options), 0.0);
}

TEST(MonteCarlo, BenefitOnNonSubmodularGadget) {
  // Analytic values (see test_support.h): c({a}) = w², c({a,b}) = (1-(1-w)²)².
  const test::NonSubmodularGadget gadget(0.3);
  MonteCarloOptions options;
  options.simulations = 60000;

  const std::vector<NodeId> a{0};
  const std::vector<NodeId> ab{0, 1};
  const double c_a =
      mc_expected_benefit(gadget.graph, gadget.communities, a, options);
  const double c_ab =
      mc_expected_benefit(gadget.graph, gadget.communities, ab, options);
  EXPECT_NEAR(c_a, 0.09, 0.006);
  EXPECT_NEAR(c_ab, 0.2601, 0.008);
  // The paper's headline: marginal of b on top of a EXCEEDS b alone
  // (supermodular behavior near thresholds) -> c is not submodular.
  EXPECT_GT(c_ab - c_a, c_a + 0.02);
}

TEST(MonteCarlo, BenefitCountsOnlyCrossedThresholds) {
  // Community {1, 2} with h = 2; seeding node 1 alone influences nothing
  // (no edges), seeding both members influences it surely.
  GraphBuilder builder;
  builder.reserve_nodes(3);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{1, 2}});
  communities.set_threshold(0, 2);
  communities.set_benefit(0, 4.0);
  MonteCarloOptions options;
  options.simulations = 100;
  const std::vector<NodeId> one{1};
  const std::vector<NodeId> both{1, 2};
  EXPECT_DOUBLE_EQ(mc_expected_benefit(graph, communities, one, options),
                   0.0);
  EXPECT_DOUBLE_EQ(mc_expected_benefit(graph, communities, both, options),
                   4.0);
}

TEST(MonteCarlo, NuUpperBoundsBenefit) {
  const test::NonSubmodularGadget gadget(0.4);
  MonteCarloOptions options;
  options.simulations = 20000;
  const std::vector<NodeId> seeds{0};
  const double c =
      mc_expected_benefit(gadget.graph, gadget.communities, seeds, options);
  const double nu =
      mc_expected_nu(gadget.graph, gadget.communities, seeds, options);
  EXPECT_GE(nu + 1e-9, c);
  // Analytic ν for seed {a}: E[min(hits/2, 1)] with hits ~ Bin(2, 0.4):
  // = 0.5·P(1 hit) + 1·P(2 hits) = 0.5·0.48 + 0.16 = 0.4.
  EXPECT_NEAR(nu, 0.4, 0.01);
}

TEST(MonteCarlo, NuEqualsBenefitWhenThresholdOne) {
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.5);
  const Graph graph = builder.build();
  CommunitySet communities(2, {{1}});  // h = 1 by default
  MonteCarloOptions options;
  options.simulations = 30000;
  options.seed = 11;
  const std::vector<NodeId> seeds{0};
  const double c = mc_expected_benefit(graph, communities, seeds, options);
  const double nu = mc_expected_nu(graph, communities, seeds, options);
  // Identical per-run values with the same seed; only the parallel
  // accumulation order may differ, so allow float dust.
  EXPECT_NEAR(c, nu, 1e-9);
}

TEST(MonteCarlo, LtModelSupported) {
  const Graph graph = test::path_graph(4, 1.0);
  MonteCarloOptions options;
  options.simulations = 50;
  options.model = DiffusionModel::kLinearThreshold;
  const std::vector<NodeId> seeds{0};
  EXPECT_DOUBLE_EQ(mc_expected_spread(graph, seeds, options), 4.0);
}

TEST(MonteCarlo, InfoReportsFullRunWithoutDeadline) {
  const Graph graph = test::path_graph(4, 1.0);
  McRunInfo info;
  MonteCarloOptions options;
  options.simulations = 200;
  options.info = &info;
  const std::vector<NodeId> seeds{0};
  // No deadline/cancel: everything completes and the estimate matches the
  // info-less run exactly (same replication count, same division).
  MonteCarloOptions plain = options;
  plain.info = nullptr;
  EXPECT_EQ(mc_expected_spread(graph, seeds, options),
            mc_expected_spread(graph, seeds, plain));
  EXPECT_EQ(info.completed, 200U);
  EXPECT_FALSE(info.truncated);
}

TEST(MonteCarlo, ExpiredDeadlineTruncatesReplications) {
  const Graph graph = test::path_graph(4, 1.0);
  const Deadline deadline(1e-9);  // effectively already expired
  McRunInfo info;
  MonteCarloOptions options;
  options.simulations = 5000;
  options.deadline = &deadline;
  options.info = &info;
  const std::vector<NodeId> seeds{0};
  const double spread = mc_expected_spread(graph, seeds, options);
  EXPECT_TRUE(info.truncated);
  EXPECT_LT(info.completed, 5000U);
  // The average is over completed replications only — on this certain
  // path every completed run spreads to all 4 nodes, so any nonzero
  // completion still reports 4; zero completions report 0.
  if (info.completed > 0) {
    EXPECT_DOUBLE_EQ(spread, 4.0);
  } else {
    EXPECT_DOUBLE_EQ(spread, 0.0);
  }
}

TEST(MonteCarlo, CancellationFlagTruncatesReplications) {
  const Graph graph = test::path_graph(4, 1.0);
  const std::atomic<bool> cancel{true};
  McRunInfo info;
  MonteCarloOptions options;
  options.simulations = 5000;
  options.parallel = false;
  options.cancel = &cancel;
  options.info = &info;
  const std::vector<NodeId> seeds{0};
  const double spread = mc_expected_spread(graph, seeds, options);
  EXPECT_TRUE(info.truncated);
  EXPECT_EQ(info.completed, 0U);  // flag was set before the first poll
  EXPECT_DOUBLE_EQ(spread, 0.0);
}

TEST(MonteCarlo, SerialAndParallelAgree) {
  const Graph graph = test::cycle_graph(10, 0.5);
  MonteCarloOptions serial;
  serial.simulations = 4000;
  serial.parallel = false;
  MonteCarloOptions parallel = serial;
  parallel.parallel = true;
  const std::vector<NodeId> seeds{0};
  // Same seed => same per-chunk streams; values agree closely (chunk
  // boundaries differ, so only statistically).
  EXPECT_NEAR(mc_expected_spread(graph, seeds, serial),
              mc_expected_spread(graph, seeds, parallel), 0.15);
}

}  // namespace
}  // namespace imc
