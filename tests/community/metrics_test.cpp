#include "community/metrics.h"

#include <gtest/gtest.h>

#include "community/louvain.h"
#include "community/random_partition.h"
#include "graph/generators/generators.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Conductance, IsolatedCommunityIsZero) {
  // Two disjoint 2-cycles, communities = the cycles: no cut edges.
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(1, 0).add_edge(2, 3).add_edge(3, 2);
  const Graph graph = builder.build();
  CommunitySet communities(4, {{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(conductance(graph, communities, 0), 0.0);
  EXPECT_DOUBLE_EQ(conductance(graph, communities, 1), 0.0);
  EXPECT_DOUBLE_EQ(average_conductance(graph, communities), 0.0);
}

TEST(Conductance, FullyCutCommunityIsHigh) {
  // 0 -> 1 where {0} and {1} are separate communities: all volume is cut.
  GraphBuilder builder;
  builder.add_edge(0, 1);
  const Graph graph = builder.build();
  CommunitySet communities(2, {{0}, {1}});
  EXPECT_DOUBLE_EQ(conductance(graph, communities, 0), 1.0);
}

TEST(Conductance, HandComputedMixedCase) {
  // Community {0,1}: internal edge 0->1; cut edges 1->2 and 2->0.
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{0, 1}, {2}});
  // vol_inside = outgoing from {0,1} = 2 (0->1, 1->2); cut = 1->2 out plus
  // 2->0 in = 2; min(vol_in, vol_out) = min(2, 1) = 1 -> conductance 2.
  EXPECT_DOUBLE_EQ(conductance(graph, communities, 0), 2.0);
}

TEST(Conductance, LouvainBeatsRandomOnSbm) {
  Rng rng(3);
  SbmConfig config;
  config.nodes = 200;
  config.blocks = 4;
  config.p_in = 0.2;
  config.p_out = 0.01;
  const Graph graph(config.nodes, sbm_edges(config, rng));

  const CommunitySet louvain = CommunitySet::from_assignment(
      graph.node_count(), louvain_communities(graph).assignment);
  const CommunitySet random = CommunitySet::from_assignment(
      graph.node_count(),
      random_partition(graph.node_count(), louvain.size(), rng));
  EXPECT_LT(average_conductance(graph, louvain) + 0.2,
            average_conductance(graph, random));
}

TEST(InternalEdgeFraction, AllInternalVsNone) {
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(1, 0);
  const Graph graph = builder.build();
  CommunitySet together(2, {{0, 1}});
  CommunitySet apart(2, {{0}, {1}});
  EXPECT_DOUBLE_EQ(internal_edge_fraction(graph, together), 1.0);
  EXPECT_DOUBLE_EQ(internal_edge_fraction(graph, apart), 0.0);
}

TEST(InternalEdgeFraction, UnassignedNodesDontCount) {
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(2, 0);
  const Graph graph = builder.build();
  CommunitySet communities(3, {{0, 1}});  // node 2 unassigned
  EXPECT_DOUBLE_EQ(internal_edge_fraction(graph, communities), 0.5);
}

TEST(SizeStats, Values) {
  CommunitySet communities(10, {{0, 1}, {2, 3, 4, 5}, {6}});
  communities.set_threshold(1, 3);
  const auto stats = community_size_stats(communities);
  EXPECT_EQ(stats.min, 1U);
  EXPECT_EQ(stats.max, 4U);
  EXPECT_NEAR(stats.mean, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.threshold_mean, 5.0 / 3.0, 1e-12);
}

TEST(SizeStats, EmptySet) {
  CommunitySet communities;
  const auto stats = community_size_stats(communities);
  EXPECT_EQ(stats.min, 0U);
  EXPECT_EQ(stats.max, 0U);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

}  // namespace
}  // namespace imc
