#include "community/size_cap.h"

#include <gtest/gtest.h>

#include <set>

#include "util/mathx.h"

namespace imc {
namespace {

TEST(SizeCap, SmallCommunitiesUntouched) {
  CommunitySet set(6, {{0, 1}, {2, 3, 4}});
  Rng rng(1);
  const CommunitySet capped = cap_community_sizes(set, 4, rng);
  EXPECT_EQ(capped.size(), 2U);
  EXPECT_EQ(capped.population(0), 2U);
  EXPECT_EQ(capped.population(1), 3U);
}

TEST(SizeCap, SplitsIntoCeilChunks) {
  // |C| = 10, s = 4 -> ceil(10/4) = 3 chunks (sizes 4, 3, 3).
  std::vector<NodeId> members(10);
  for (NodeId v = 0; v < 10; ++v) members[v] = v;
  CommunitySet set(10, {members});
  Rng rng(2);
  const CommunitySet capped = cap_community_sizes(set, 4, rng);
  EXPECT_EQ(capped.size(), 3U);
  std::multiset<NodeId> sizes;
  for (CommunityId c = 0; c < capped.size(); ++c) {
    sizes.insert(capped.population(c));
    EXPECT_LE(capped.population(c), 4U);
  }
  EXPECT_EQ(sizes, (std::multiset<NodeId>{3, 3, 4}));
}

TEST(SizeCap, PreservesMembership) {
  std::vector<NodeId> members(23);
  for (NodeId v = 0; v < 23; ++v) members[v] = v;
  CommunitySet set(23, {members});
  Rng rng(3);
  const CommunitySet capped = cap_community_sizes(set, 8, rng);
  std::set<NodeId> seen;
  for (CommunityId c = 0; c < capped.size(); ++c) {
    for (const NodeId v : capped.members(c)) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate node " << v;
    }
  }
  EXPECT_EQ(seen.size(), 23U);
}

TEST(SizeCap, CapOneMakesSingletons) {
  CommunitySet set(5, {{0, 1, 2, 3, 4}});
  Rng rng(4);
  const CommunitySet capped = cap_community_sizes(set, 1, rng);
  EXPECT_EQ(capped.size(), 5U);
  for (CommunityId c = 0; c < 5; ++c) EXPECT_EQ(capped.population(c), 1U);
}

TEST(SizeCap, RejectsZeroCap) {
  CommunitySet set(2, {{0, 1}});
  Rng rng(5);
  EXPECT_THROW((void)cap_community_sizes(set, 0, rng), std::invalid_argument);
}

TEST(SizeCap, ResetsThresholdsToDefault) {
  CommunitySet set(4, {{0, 1, 2, 3}});
  set.set_threshold(0, 4);
  set.set_benefit(0, 9.0);
  Rng rng(6);
  const CommunitySet capped = cap_community_sizes(set, 2, rng);
  for (CommunityId c = 0; c < capped.size(); ++c) {
    EXPECT_EQ(capped.threshold(c), 1U);
    EXPECT_DOUBLE_EQ(capped.benefit(c), 1.0);
  }
}

}  // namespace
}  // namespace imc
