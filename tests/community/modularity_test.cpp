#include "community/modularity.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_support.h"

namespace imc {
namespace {

TEST(Modularity, EmptyGraphIsZero) {
  Graph graph;
  const std::vector<CommunityId> assignment;
  EXPECT_DOUBLE_EQ(directed_modularity(graph, assignment), 0.0);
}

TEST(Modularity, TwoDisjointCliquesHandComputed) {
  // Two 2-cycles: {0,1} and {2,3}; m = 4.
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(1, 0).add_edge(2, 3).add_edge(3, 2);
  const Graph graph = builder.build();
  const std::vector<CommunityId> split{0, 0, 1, 1};
  // Q = Σ_c [internal/m − (out/m)(in/m)] = 2·(2/4 − (2/4)(2/4)) = 0.5.
  EXPECT_NEAR(directed_modularity(graph, split), 0.5, 1e-12);

  const std::vector<CommunityId> merged{0, 0, 0, 0};
  // One community: internal = 4/4 = 1, penalty = (4/4)(4/4) = 1 -> Q = 0.
  EXPECT_NEAR(directed_modularity(graph, merged), 0.0, 1e-12);
}

TEST(Modularity, SplitBeatsMergeOnModularGraph) {
  GraphBuilder builder;
  // Two triangles joined by a single edge.
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  builder.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
  builder.add_edge(2, 3);
  const Graph graph = builder.build();
  const std::vector<CommunityId> split{0, 0, 0, 1, 1, 1};
  std::vector<CommunityId> singletons(6);
  std::iota(singletons.begin(), singletons.end(), 0U);
  const std::vector<CommunityId> merged{0, 0, 0, 0, 0, 0};
  const double q_split = directed_modularity(graph, split);
  EXPECT_GT(q_split, directed_modularity(graph, merged));
  EXPECT_GT(q_split, directed_modularity(graph, singletons));
}

TEST(Modularity, RejectsIncompleteAssignment) {
  const Graph graph = test::path_graph(3);
  const std::vector<CommunityId> wrong_size{0, 0};
  EXPECT_THROW((void)directed_modularity(graph, wrong_size), std::invalid_argument);
  const std::vector<CommunityId> with_hole{0, kInvalidCommunity, 0};
  EXPECT_THROW((void)directed_modularity(graph, with_hole), std::invalid_argument);
}

}  // namespace
}  // namespace imc
