#include "community/threshold_policy.h"

#include <gtest/gtest.h>

namespace imc {
namespace {

CommunitySet make_set() {
  // populations: 1, 2, 5, 8
  return CommunitySet(16, {{0}, {1, 2}, {3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}});
}

TEST(ThresholdPolicy, FractionHalfRoundsUp) {
  CommunitySet set = make_set();
  apply_fraction_thresholds(set, 0.5);
  EXPECT_EQ(set.threshold(0), 1U);  // ceil(0.5)
  EXPECT_EQ(set.threshold(1), 1U);  // ceil(1.0)
  EXPECT_EQ(set.threshold(2), 3U);  // ceil(2.5)
  EXPECT_EQ(set.threshold(3), 4U);  // ceil(4.0)
}

TEST(ThresholdPolicy, FractionOneRequiresEveryone) {
  CommunitySet set = make_set();
  apply_fraction_thresholds(set, 1.0);
  EXPECT_EQ(set.threshold(3), 8U);
}

TEST(ThresholdPolicy, FractionRejectsBadInput) {
  CommunitySet set = make_set();
  EXPECT_THROW((void)apply_fraction_thresholds(set, 0.0), std::invalid_argument);
  EXPECT_THROW((void)apply_fraction_thresholds(set, 1.2), std::invalid_argument);
}

TEST(ThresholdPolicy, ConstantCappedByPopulation) {
  CommunitySet set = make_set();
  apply_constant_thresholds(set, 2);
  EXPECT_EQ(set.threshold(0), 1U);  // capped at population 1
  EXPECT_EQ(set.threshold(1), 2U);
  EXPECT_EQ(set.threshold(2), 2U);
  EXPECT_EQ(set.threshold(3), 2U);
  EXPECT_THROW((void)apply_constant_thresholds(set, 0), std::invalid_argument);
}

TEST(ThresholdPolicy, PopulationBenefits) {
  CommunitySet set = make_set();
  apply_population_benefits(set);
  EXPECT_DOUBLE_EQ(set.benefit(0), 1.0);
  EXPECT_DOUBLE_EQ(set.benefit(2), 5.0);
  EXPECT_DOUBLE_EQ(set.total_benefit(), 16.0);
}

TEST(ThresholdPolicy, UniformBenefits) {
  CommunitySet set = make_set();
  apply_uniform_benefits(set, 2.5);
  EXPECT_DOUBLE_EQ(set.benefit(0), 2.5);
  EXPECT_DOUBLE_EQ(set.benefit(3), 2.5);
}

}  // namespace
}  // namespace imc
