#include "community/community_set.h"

#include <gtest/gtest.h>

#include <vector>

namespace imc {
namespace {

TEST(CommunitySet, BasicConstruction) {
  CommunitySet set(6, {{0, 1, 2}, {3, 4}});
  EXPECT_EQ(set.size(), 2U);
  EXPECT_EQ(set.node_count(), 6U);
  EXPECT_EQ(set.population(0), 3U);
  EXPECT_EQ(set.population(1), 2U);
  EXPECT_EQ(set.community_of(1), 0U);
  EXPECT_EQ(set.community_of(4), 1U);
  EXPECT_EQ(set.community_of(5), kInvalidCommunity);
}

TEST(CommunitySet, DefaultsAreUnitThresholdAndBenefit) {
  CommunitySet set(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(set.threshold(0), 1U);
  EXPECT_DOUBLE_EQ(set.benefit(0), 1.0);
  EXPECT_DOUBLE_EQ(set.total_benefit(), 2.0);
}

TEST(CommunitySet, RejectsEmptyCommunity) {
  EXPECT_THROW((void)CommunitySet(4, {{0}, {}}), std::invalid_argument);
}

TEST(CommunitySet, RejectsOutOfRangeMember) {
  EXPECT_THROW((void)CommunitySet(3, {{0, 5}}), std::invalid_argument);
}

TEST(CommunitySet, RejectsOverlap) {
  EXPECT_THROW((void)CommunitySet(4, {{0, 1}, {1, 2}}), std::invalid_argument);
}

TEST(CommunitySet, ThresholdValidation) {
  CommunitySet set(4, {{0, 1, 2}});
  set.set_threshold(0, 3);
  EXPECT_EQ(set.threshold(0), 3U);
  EXPECT_THROW((void)set.set_threshold(0, 0), std::invalid_argument);
  EXPECT_THROW((void)set.set_threshold(0, 4), std::invalid_argument);
  EXPECT_THROW((void)set.set_threshold(1, 1), std::out_of_range);
}

TEST(CommunitySet, BenefitValidation) {
  CommunitySet set(2, {{0, 1}});
  set.set_benefit(0, 5.5);
  EXPECT_DOUBLE_EQ(set.benefit(0), 5.5);
  EXPECT_THROW((void)set.set_benefit(0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)set.set_benefit(0, -1.0), std::invalid_argument);
}

TEST(CommunitySet, Aggregates) {
  CommunitySet set(8, {{0, 1}, {2, 3, 4}, {5}});
  set.set_threshold(0, 2);
  set.set_threshold(1, 3);
  set.set_benefit(0, 2.0);
  set.set_benefit(1, 3.0);
  set.set_benefit(2, 0.5);
  EXPECT_EQ(set.max_threshold(), 3U);
  EXPECT_DOUBLE_EQ(set.total_benefit(), 5.5);
  EXPECT_DOUBLE_EQ(set.min_benefit(), 0.5);
  EXPECT_DOUBLE_EQ(set.coverage(), 6.0 / 8.0);
}

TEST(CommunitySet, FromAssignment) {
  const std::vector<CommunityId> assignment{0, 1, 0, kInvalidCommunity, 1};
  const CommunitySet set = CommunitySet::from_assignment(5, assignment);
  EXPECT_EQ(set.size(), 2U);
  EXPECT_EQ(set.population(0), 2U);
  EXPECT_EQ(set.population(1), 2U);
  EXPECT_EQ(set.community_of(3), kInvalidCommunity);
}

TEST(CommunitySet, FromAssignmentRejectsGaps) {
  // Community 1 missing -> ids not dense.
  const std::vector<CommunityId> assignment{0, 2, 0};
  EXPECT_THROW((void)CommunitySet::from_assignment(3, assignment),
               std::invalid_argument);
}

TEST(CommunitySet, FromAssignmentRejectsSizeMismatch) {
  const std::vector<CommunityId> assignment{0, 0};
  EXPECT_THROW((void)CommunitySet::from_assignment(3, assignment),
               std::invalid_argument);
}

TEST(CommunitySet, EmptySet) {
  CommunitySet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.max_threshold(), 0U);
  EXPECT_DOUBLE_EQ(set.total_benefit(), 0.0);
  EXPECT_DOUBLE_EQ(set.min_benefit(), 0.0);
}

TEST(CommunitySet, BenefitsSpanMatches) {
  CommunitySet set(4, {{0}, {1}, {2}});
  set.set_benefit(1, 7.0);
  const auto benefits = set.benefits();
  ASSERT_EQ(benefits.size(), 3U);
  EXPECT_DOUBLE_EQ(benefits[1], 7.0);
}

TEST(CommunitySet, SummaryMentionsShape) {
  CommunitySet set(4, {{0, 1}, {2}});
  const std::string summary = set.summary();
  EXPECT_NE(summary.find("r=2"), std::string::npos);
}

}  // namespace
}  // namespace imc
