#include "community/louvain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "community/modularity.h"
#include "community/random_partition.h"
#include "graph/generators/generators.h"
#include "test_support.h"

namespace imc {
namespace {

Graph make_test_graph() {
  Rng rng(99);
  SbmConfig config;
  config.nodes = 150;
  config.blocks = 5;
  config.p_in = 0.3;
  config.p_out = 0.01;
  return Graph(config.nodes, sbm_edges(config, rng));
}

void expect_dense_assignment(const std::vector<CommunityId>& assignment) {
  std::set<CommunityId> ids(assignment.begin(), assignment.end());
  ASSERT_FALSE(ids.contains(kInvalidCommunity));
  CommunityId expected = 0;
  for (const CommunityId id : ids) EXPECT_EQ(id, expected++);
}

TEST(Louvain, EmptyGraph) {
  Graph graph;
  const LouvainResult result = louvain_communities(graph);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(Louvain, MergesTwoTriangles) {
  GraphBuilder builder;
  builder.add_undirected_edge(0, 1).add_undirected_edge(1, 2)
      .add_undirected_edge(2, 0);
  builder.add_undirected_edge(3, 4).add_undirected_edge(4, 5)
      .add_undirected_edge(5, 3);
  builder.add_undirected_edge(2, 3);
  const Graph graph = builder.build();
  const LouvainResult result = louvain_communities(graph);
  expect_dense_assignment(result.assignment);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[1], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_EQ(result.assignment[4], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Louvain, RecoversPlantedSbmBlocks) {
  Rng rng(77);
  SbmConfig config;
  config.nodes = 240;
  config.blocks = 4;
  config.p_in = 0.25;
  config.p_out = 0.005;
  const Graph graph(config.nodes, sbm_edges(config, rng));
  const LouvainResult result = louvain_communities(graph);
  expect_dense_assignment(result.assignment);

  // Most pairs within a planted block should share a detected community.
  std::uint64_t agree = 0, total = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (NodeId v = u + 1; v < graph.node_count(); ++v) {
      if (sbm_block_of(u, 4) != sbm_block_of(v, 4)) continue;
      ++total;
      agree += (result.assignment[u] == result.assignment[v]);
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.8);
}

TEST(Louvain, BeatsRandomPartitionModularity) {
  const Graph graph = make_test_graph();
  const LouvainResult louvain = louvain_communities(graph);
  Rng rng(5);
  const auto random = random_partition(
      graph.node_count(),
      std::max<CommunityId>(
          1, static_cast<CommunityId>(
                 *std::max_element(louvain.assignment.begin(),
                                   louvain.assignment.end()) + 1)),
      rng);
  EXPECT_GT(louvain.modularity, directed_modularity(graph, random) + 0.05);
}

TEST(Louvain, DeterministicGivenSeed) {
  const Graph graph = make_test_graph();
  LouvainConfig config;
  config.seed = 123;
  const LouvainResult a = louvain_communities(graph, config);
  const LouvainResult b = louvain_communities(graph, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Louvain, ModularityMatchesMetric) {
  const Graph graph = make_test_graph();
  const LouvainResult result = louvain_communities(graph);
  EXPECT_NEAR(result.modularity,
              directed_modularity(graph, result.assignment), 1e-12);
}

TEST(Louvain, EdgelessGraphIsSingletons) {
  GraphBuilder builder;
  builder.reserve_nodes(5);
  const LouvainResult result = louvain_communities(builder.build());
  expect_dense_assignment(result.assignment);
  std::set<CommunityId> ids(result.assignment.begin(),
                            result.assignment.end());
  EXPECT_EQ(ids.size(), 5U);
}

}  // namespace
}  // namespace imc
