#include "community/community_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace imc {
namespace {

CommunitySet sample_set() {
  CommunitySet set(8, {{0, 1, 2}, {4, 5}, {7}});
  set.set_threshold(0, 2);
  set.set_threshold(1, 2);
  set.set_benefit(0, 3.5);
  set.set_benefit(2, 9.0);
  return set;
}

TEST(CommunityIo, RoundTripPreservesEverything) {
  const CommunitySet original = sample_set();
  std::stringstream buffer;
  write_communities(buffer, original);
  const CommunitySet loaded = read_communities(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.node_count(), original.node_count());
  for (CommunityId c = 0; c < original.size(); ++c) {
    EXPECT_EQ(loaded.threshold(c), original.threshold(c));
    EXPECT_DOUBLE_EQ(loaded.benefit(c), original.benefit(c));
    ASSERT_EQ(loaded.population(c), original.population(c));
    const auto a = loaded.members(c);
    const auto b = original.members(c);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CommunityIo, AcceptsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "imc-communities v1\n"
      "# another\n"
      "nodes 4\n"
      "community 0 threshold 1 benefit 2.5\n"
      "members 0 1 3\n");
  const CommunitySet set = read_communities(in);
  EXPECT_EQ(set.size(), 1U);
  EXPECT_DOUBLE_EQ(set.benefit(0), 2.5);
  EXPECT_EQ(set.community_of(3), 0U);
}

TEST(CommunityIo, MembersWithoutHeaderGetDefaults) {
  std::istringstream in(
      "imc-communities v1\n"
      "nodes 3\n"
      "members 0 0 1 2\n");
  const CommunitySet set = read_communities(in);
  EXPECT_EQ(set.threshold(0), 1U);
  EXPECT_DOUBLE_EQ(set.benefit(0), 1.0);
}

TEST(CommunityIo, RejectsMalformedInput) {
  {
    std::istringstream in("not a header\n");
    EXPECT_THROW((void)read_communities(in), std::runtime_error);
  }
  {
    std::istringstream in("imc-communities v1\nnodes 3\nbogus 1\n");
    EXPECT_THROW((void)read_communities(in), std::runtime_error);
  }
  {
    // Non-dense ids.
    std::istringstream in(
        "imc-communities v1\nnodes 5\nmembers 2 0 1\n");
    EXPECT_THROW((void)read_communities(in), std::runtime_error);
  }
  {
    // Member out of node range -> CommunitySet constructor throws.
    std::istringstream in(
        "imc-communities v1\nnodes 2\nmembers 0 0 7\n");
    EXPECT_THROW((void)read_communities(in), std::invalid_argument);
  }
}

TEST(CommunityIo, FileRoundTrip) {
  const CommunitySet original = sample_set();
  const std::string path = ::testing::TempDir() + "/imc_communities_test.txt";
  save_communities(path, original);
  const CommunitySet loaded = load_communities(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(CommunityIo, MissingFileThrows) {
  EXPECT_THROW((void)load_communities("/no/such/file.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace imc
