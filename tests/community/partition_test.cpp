// Tests for random_partition and label_propagation_communities.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "community/label_propagation.h"
#include "community/random_partition.h"
#include "graph/generators/generators.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(RandomPartition, EveryCommunityNonEmpty) {
  Rng rng(1);
  const auto assignment = random_partition(100, 10, rng);
  std::vector<int> population(10, 0);
  for (const CommunityId c : assignment) {
    ASSERT_LT(c, 10U);
    ++population[c];
  }
  for (const int p : population) EXPECT_GE(p, 1);
}

TEST(RandomPartition, AllNodesAssigned) {
  Rng rng(2);
  const auto assignment = random_partition(57, 7, rng);
  EXPECT_EQ(assignment.size(), 57U);
}

TEST(RandomPartition, ExactFitOnePerCommunity) {
  Rng rng(3);
  const auto assignment = random_partition(5, 5, rng);
  std::set<CommunityId> ids(assignment.begin(), assignment.end());
  EXPECT_EQ(ids.size(), 5U);
}

TEST(RandomPartition, RejectsBadCounts) {
  Rng rng(4);
  EXPECT_THROW((void)random_partition(5, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)random_partition(5, 6, rng), std::invalid_argument);
}

TEST(RandomPartition, RoughlyBalanced) {
  Rng rng(5);
  const auto assignment = random_partition(10000, 10, rng);
  std::vector<int> population(10, 0);
  for (const CommunityId c : assignment) ++population[c];
  for (const int p : population) EXPECT_NEAR(p, 1000, 150);
}

TEST(LabelPropagation, DenseAssignment) {
  Rng rng(6);
  SbmConfig config;
  config.nodes = 120;
  config.blocks = 3;
  config.p_in = 0.3;
  config.p_out = 0.01;
  const Graph graph(config.nodes, sbm_edges(config, rng));
  const auto assignment = label_propagation_communities(graph);
  ASSERT_EQ(assignment.size(), graph.node_count());
  std::set<CommunityId> ids(assignment.begin(), assignment.end());
  CommunityId expected = 0;
  for (const CommunityId id : ids) EXPECT_EQ(id, expected++);
}

TEST(LabelPropagation, FindsFewerCommunitiesThanNodes) {
  Rng rng(7);
  SbmConfig config;
  config.nodes = 120;
  config.blocks = 3;
  config.p_in = 0.4;
  config.p_out = 0.005;
  const Graph graph(config.nodes, sbm_edges(config, rng));
  const auto assignment = label_propagation_communities(graph);
  std::set<CommunityId> ids(assignment.begin(), assignment.end());
  EXPECT_LT(ids.size(), 30U);  // strong structure collapses labels
}

TEST(LabelPropagation, IsolatedNodesKeepOwnLabels) {
  GraphBuilder builder;
  builder.reserve_nodes(4);
  const auto assignment = label_propagation_communities(builder.build());
  std::set<CommunityId> ids(assignment.begin(), assignment.end());
  EXPECT_EQ(ids.size(), 4U);
}

TEST(LabelPropagation, Deterministic) {
  const Graph graph = test::cycle_graph(30);
  LabelPropagationConfig config;
  config.seed = 9;
  EXPECT_EQ(label_propagation_communities(graph, config),
            label_propagation_communities(graph, config));
}

}  // namespace
}  // namespace imc
