#include "util/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace imc {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  const auto args = parse({"prog", "--k=25", "--name=facebook"});
  EXPECT_EQ(args.get_int("k", 0), 25);
  EXPECT_EQ(args.get_string("name", ""), "facebook");
}

TEST(ArgParser, SpaceForm) {
  const auto args = parse({"prog", "--k", "25", "--scale", "0.5"});
  EXPECT_EQ(args.get_int("k", 0), 25);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
}

TEST(ArgParser, BooleanFlags) {
  const auto args = parse({"prog", "--verbose", "--quiet=false"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", true));
  EXPECT_TRUE(args.get_bool("absent", true));
  EXPECT_FALSE(args.get_bool("absent", false));
}

TEST(ArgParser, Positional) {
  const auto args = parse({"prog", "input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(ArgParser, HasAndFallbacks) {
  const auto args = parse({"prog", "--present=1"});
  EXPECT_TRUE(args.has("present"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_EQ(args.get_int("absent", -7), -7);
  EXPECT_EQ(args.get_string("absent", "dflt"), "dflt");
}

TEST(ArgParser, FlagFollowedByOption) {
  const auto args = parse({"prog", "--flag", "--k=2"});
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_int("k", 0), 2);
}

TEST(EnvHelpers, ReadAndFallback) {
  ::setenv("IMC_TEST_ENV_INT", "42", 1);
  ::setenv("IMC_TEST_ENV_DOUBLE", "2.5", 1);
  EXPECT_EQ(env_int("IMC_TEST_ENV_INT", 0), 42);
  EXPECT_DOUBLE_EQ(env_double("IMC_TEST_ENV_DOUBLE", 0.0), 2.5);
  EXPECT_EQ(env_int("IMC_TEST_ENV_MISSING_ZZZ", 9), 9);
  EXPECT_FALSE(env_string("IMC_TEST_ENV_MISSING_ZZZ").has_value());
  ::unsetenv("IMC_TEST_ENV_INT");
  ::unsetenv("IMC_TEST_ENV_DOUBLE");
}

TEST(EnvHelpers, EmptyTreatedAsUnset) {
  ::setenv("IMC_TEST_ENV_EMPTY", "", 1);
  EXPECT_EQ(env_int("IMC_TEST_ENV_EMPTY", 3), 3);
  ::unsetenv("IMC_TEST_ENV_EMPTY");
}

}  // namespace
}  // namespace imc
