#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace imc {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW((void)Table("t", {}), std::invalid_argument);
}

TEST(Table, RejectsRowSizeMismatch) {
  Table table("t", {"a", "b"});
  EXPECT_THROW((void)table.add_row({std::string("x")}), std::invalid_argument);
}

TEST(Table, PrintsAlignedContent) {
  Table table("Demo", {"name", "count", "ratio"});
  table.add_row({std::string("alpha"), 42LL, 0.5});
  table.add_row({std::string("b"), 7LL, 0.25});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);  // default precision 3
}

TEST(Table, FloatPrecisionConfigurable) {
  Table table("t", {"x"});
  table.set_float_precision(1);
  table.add_row({0.25});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("0.2"), std::string::npos);
  EXPECT_EQ(out.str().find("0.25"), std::string::npos);
}

TEST(CsvEscape, PassesPlainFields) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Table, WritesCsv) {
  Table table("t", {"name", "value"});
  table.add_row({std::string("x,y"), 1LL});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "name,value\n\"x,y\",1\n");
}

TEST(Table, SaveCsvRoundTrip) {
  Table table("t", {"a"});
  table.add_row({3.5});
  const std::string path = ::testing::TempDir() + "/imc_table_test.csv";
  table.save_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "a");
  EXPECT_EQ(row, "3.500");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvBadPathThrows) {
  Table table("t", {"a"});
  EXPECT_THROW((void)table.save_csv("/nonexistent_dir_zzz/file.csv"),
               std::runtime_error);
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Table, WritesJson) {
  Table table("Demo", {"name", "count", "ratio"});
  table.add_row({std::string("a\"b"), 42LL, 0.5});
  std::ostringstream out;
  table.write_json(out);
  EXPECT_EQ(out.str(),
            "{\"title\":\"Demo\",\"columns\":[\"name\",\"count\","
            "\"ratio\"],\"rows\":[[\"a\\\"b\",42,0.5]]}");
}

TEST(Table, WritesJsonEmptyRows) {
  Table table("t", {"a"});
  std::ostringstream out;
  table.write_json(out);
  EXPECT_EQ(out.str(), "{\"title\":\"t\",\"columns\":[\"a\"],\"rows\":[]}");
}

TEST(Table, RowCount) {
  Table table("t", {"a"});
  EXPECT_EQ(table.row_count(), 0U);
  table.add_row({1LL});
  table.add_row({2LL});
  EXPECT_EQ(table.row_count(), 2U);
  EXPECT_EQ(table.title(), "t");
}

}  // namespace
}  // namespace imc
