#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace imc {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous: CI boxes stall
  EXPECT_NEAR(watch.elapsed_ms(), watch.elapsed_seconds() * 1e3,
              watch.elapsed_ms() * 0.5);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.elapsed_seconds(), 0.015);
}

TEST(Deadline, InactiveByDefault) {
  const Deadline none;
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.expired());
  const Deadline negative(-5.0);
  EXPECT_FALSE(negative.active());
}

TEST(Deadline, ExpiresAfterBudget) {
  const Deadline deadline(0.01);
  EXPECT_TRUE(deadline.active());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(deadline.expired());
}

TEST(Deadline, NotExpiredEarly) {
  const Deadline deadline(60.0);
  EXPECT_FALSE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.budget_seconds(), 60.0);
}

}  // namespace
}  // namespace imc
