#include "util/logging.h"

#include <gtest/gtest.h>

namespace imc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::instance().level(); }
  void TearDown() override { Logger::instance().set_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LoggingTest, OffDisablesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LoggingTest, SetAndGetLevel) {
  Logger::instance().set_level(LogLevel::kDebug);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, StreamingDoesNotCrashWhenFiltered) {
  Logger::instance().set_level(LogLevel::kOff);
  log(LogLevel::kDebug) << "invisible " << 42 << ' ' << 3.14;
}

TEST_F(LoggingTest, StreamingDoesNotCrashWhenEnabled) {
  Logger::instance().set_level(LogLevel::kError);
  log(LogLevel::kError) << "visible error from logging_test (expected)";
}

}  // namespace
}  // namespace imc
