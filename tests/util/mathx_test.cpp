#include "util/mathx.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace imc {
namespace {

TEST(LogBinomial, SmallExactValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 3)), 120.0, 1e-7);
  EXPECT_NEAR(std::exp(log_binomial(6, 3)), 20.0, 1e-9);
}

TEST(LogBinomial, EdgeCases) {
  EXPECT_DOUBLE_EQ(log_binomial(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(log_binomial(10, 11), 0.0);
}

TEST(LogBinomial, Symmetry) {
  EXPECT_NEAR(log_binomial(100, 30), log_binomial(100, 70), 1e-9);
}

TEST(LogBinomial, LargeValuesFinite) {
  const double value = log_binomial(1'000'000, 500);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_GT(value, 0.0);
}

TEST(KahanSum, ExactForSmallInputs) {
  KahanSum sum;
  sum.add(1.0);
  sum.add(2.0);
  sum.add(3.0);
  EXPECT_DOUBLE_EQ(sum.value(), 6.0);
}

TEST(KahanSum, CompensatesCancellation) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10'000'000; ++i) sum.add(1e-16);
  // Naive summation would lose every tiny addend; Kahan keeps them.
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(stddev(values), 2.13809, 1e-4);  // sample (n-1) stddev
}

TEST(Stats, DegenerateInputs) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{-2, -4, -6, -8, -10};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(xs, empty), 0.0);
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div(10, 3), 4U);
  EXPECT_EQ(ceil_div(9, 3), 3U);
  EXPECT_EQ(ceil_div(1, 100), 1U);
  EXPECT_EQ(ceil_div(0, 5), 0U);
}

TEST(Popcount64, Values) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(0xFFFFFFFFFFFFFFFFULL), 64);
  EXPECT_EQ(popcount64(0b1011), 3);
}

}  // namespace
}  // namespace imc
