#include "util/mmap_arena.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

namespace imc {
namespace {

TEST(MmapStorage, AnonymousMappingIsZeroFilledAndWritable) {
  MmapStorage storage = MmapStorage::anonymous(100);
  ASSERT_TRUE(storage.valid());
  EXPECT_TRUE(storage.writable());
  EXPECT_GE(storage.size(), 100U);
  EXPECT_EQ(storage.size() % 64, 0U);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    EXPECT_EQ(std::to_integer<int>(storage.data()[i]), 0) << "byte " << i;
  }
  storage.data()[0] = std::byte{42};
  EXPECT_EQ(std::to_integer<int>(storage.data()[0]), 42);
}

TEST(MmapStorage, GrowPreservesContentsAcrossRemap) {
  MmapStorage storage = MmapStorage::anonymous(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    storage.data()[i] = static_cast<std::byte>(i % 251);
  }
  // Large enough that the kernel may well have to move the mapping — the
  // contract is "contents travel", wherever the base ends up.
  storage.grow(1 << 22);
  ASSERT_GE(storage.size(), std::size_t{1} << 22);
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(std::to_integer<int>(storage.data()[i]),
              static_cast<int>(i % 251))
        << "byte " << i << " lost in grow";
  }
}

TEST(MmapStorage, FileBackedMappingPersistsToDisk) {
  const std::string path = ::testing::TempDir() + "/imc_mmap_file_test.bin";
  {
    MmapStorage storage = MmapStorage::create_file(path, 256);
    ASSERT_TRUE(storage.valid());
    std::memcpy(storage.data(), "persisted-through-the-page-cache", 32);
  }  // unmap + close flush the shared mapping
  MmapStorage reopened = MmapStorage::open_readonly(path);
  ASSERT_TRUE(reopened.valid());
  EXPECT_FALSE(reopened.writable());
  ASSERT_GE(reopened.size(), 32U);
  EXPECT_EQ(std::memcmp(reopened.data(),
                        "persisted-through-the-page-cache", 32),
            0);
  std::remove(path.c_str());
}

TEST(MmapStorage, OpenReadonlyRejectsMissingFile) {
  EXPECT_THROW((void)MmapStorage::open_readonly("/no/such/mapping.bin"),
               std::runtime_error);
}

TEST(MmapStorage, GrowOnReadonlyMappingThrows) {
  const std::string path = ::testing::TempDir() + "/imc_mmap_ro_test.bin";
  { (void)MmapStorage::create_file(path, 64); }
  MmapStorage storage = MmapStorage::open_readonly(path);
  EXPECT_THROW(storage.grow(128), std::runtime_error);
  std::remove(path.c_str());
}

class ArenaVectorBackends
    : public ::testing::TestWithParam<ArenaBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, ArenaVectorBackends,
                         ::testing::Values(ArenaBackend::kRam,
                                           ArenaBackend::kMmap),
                         [](const auto& info) {
                           return info.param == ArenaBackend::kRam ? "Ram"
                                                                   : "Mmap";
                         });

TEST_P(ArenaVectorBackends, PushBackGrowthPreservesContents) {
  ArenaVector<std::uint64_t> arena(GetParam());
  for (std::uint64_t i = 0; i < 10'000; ++i) arena.push_back(i * i);
  ASSERT_EQ(arena.size(), 10'000U);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(arena[i], i * i) << "slot " << i;
  }
  EXPECT_EQ(arena.back(), 9'999ULL * 9'999ULL);
}

TEST_P(ArenaVectorBackends, VectorShapedOperations) {
  ArenaVector<int> arena(GetParam());
  arena.assign(5, 7);
  ASSERT_EQ(arena.size(), 5U);
  EXPECT_EQ(arena[4], 7);
  arena.resize(8, -1);
  EXPECT_EQ(arena[4], 7);
  EXPECT_EQ(arena[7], -1);
  arena.clear();
  EXPECT_TRUE(arena.empty());
  const int block[3] = {1, 2, 3};
  arena.append(block, block + 3);
  ASSERT_EQ(arena.size(), 3U);
  EXPECT_EQ(arena[2], 3);
  EXPECT_EQ(arena.span().size(), 3U);
  EXPECT_EQ(arena.span()[0], 1);
}

TEST_P(ArenaVectorBackends, PairElementsSurviveGrowth) {
  // The sample arena's element type — the one that motivated kArenaSafe
  // (libstdc++ std::pair is not trivially copyable, but is memcpy-safe).
  ArenaVector<std::pair<std::uint32_t, std::uint64_t>> arena(GetParam());
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    arena.emplace_back(i, ~std::uint64_t{i});
  }
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    ASSERT_EQ(arena[i].first, i);
    ASSERT_EQ(arena[i].second, ~std::uint64_t{i});
  }
}

TEST_P(ArenaVectorBackends, MoveTransfersOwnership) {
  ArenaVector<int> arena(GetParam());
  arena.assign(100, 9);
  const int* before = arena.data();
  ArenaVector<int> moved = std::move(arena);
  EXPECT_EQ(moved.data(), before);
  ASSERT_EQ(moved.size(), 100U);
  EXPECT_EQ(moved[99], 9);
  EXPECT_EQ(arena.size(), 0U);  // NOLINT(bugprone-use-after-move)
}

TEST(ArenaVector, RamAndMmapProduceIdenticalContents) {
  ArenaVector<std::uint64_t> ram(ArenaBackend::kRam);
  ArenaVector<std::uint64_t> mapped(ArenaBackend::kMmap);
  for (std::uint64_t i = 0; i < 4'097; ++i) {
    ram.push_back(i * 2654435761ULL);
    mapped.push_back(i * 2654435761ULL);
  }
  ASSERT_EQ(ram.size(), mapped.size());
  EXPECT_EQ(std::memcmp(ram.data(), mapped.data(),
                        ram.size() * sizeof(std::uint64_t)),
            0);
}

TEST(ArenaVector, BorrowedViewServesReadsZeroCopy) {
  auto map = std::make_shared<const MmapStorage>(MmapStorage::anonymous(
      64 * sizeof(std::uint64_t)));
  auto* slab =
      reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(map->data()));
  std::iota(slab, slab + 64, 100);

  ArenaVector<std::uint64_t> view = ArenaVector<std::uint64_t>::borrowed(
      slab, 64, map, ArenaBackend::kRam);
  EXPECT_TRUE(view.is_borrowed());
  // Const access is genuinely zero-copy (non-const data() would
  // copy-on-write materialize — that is the next test).
  EXPECT_EQ(std::as_const(view).data(), slab);
  EXPECT_EQ(std::as_const(view)[63], 163U);
  EXPECT_TRUE(view.is_borrowed());
}

TEST(ArenaVector, BorrowedViewMaterializesOnFirstMutation) {
  auto map = std::make_shared<const MmapStorage>(MmapStorage::anonymous(
      16 * sizeof(std::uint64_t)));
  auto* slab =
      reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(map->data()));
  std::iota(slab, slab + 16, 0);
  std::weak_ptr<const MmapStorage> watcher = map;

  ArenaVector<std::uint64_t> view = ArenaVector<std::uint64_t>::borrowed(
      slab, 16, std::move(map), ArenaBackend::kRam);
  view.push_back(16);  // first mutation: copy-on-write
  EXPECT_FALSE(view.is_borrowed());
  EXPECT_NE(view.data(), slab);
  ASSERT_EQ(view.size(), 17U);
  for (std::uint64_t i = 0; i < 17; ++i) ASSERT_EQ(view[i], i);
  // The keepalive was released with the borrow — nothing pins the mapping.
  EXPECT_TRUE(watcher.expired());
}

TEST(ArenaVector, BorrowedKeepaliveOutlivesTheSourceHandle) {
  auto map = std::make_shared<const MmapStorage>(MmapStorage::anonymous(
      8 * sizeof(std::uint64_t)));
  auto* slab =
      reinterpret_cast<std::uint64_t*>(const_cast<std::byte*>(map->data()));
  slab[7] = 777;
  ArenaVector<std::uint64_t> view =
      ArenaVector<std::uint64_t>::borrowed(slab, 8, map);
  map.reset();  // the view's keepalive must keep the mapping alive
  EXPECT_EQ(std::as_const(view)[7], 777U);
}

}  // namespace
}  // namespace imc
