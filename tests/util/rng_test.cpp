#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace imc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(9);
  const auto first = rng.next();
  rng.next();
  rng.reseed(9);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(17);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(23);
  std::vector<int> histogram(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(10)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.between(-3, 3);
    ASSERT_GE(value, -3);
    ASSERT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7U);  // all 7 values hit in 1000 draws
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  const Rng base(7);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (s0.next() == s1.next());
  EXPECT_LT(equal, 4);
  // Splitting is deterministic.
  Rng again = base.split(0);
  Rng reference = base.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(again.next(), reference.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleMovesMass) {
  Rng rng(13);
  std::vector<int> values(1000);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(std::span<int>(values));
  int fixed_points = 0;
  for (int i = 0; i < 1000; ++i) fixed_points += (values[i] == i);
  EXPECT_LT(fixed_points, 20);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (std::uint32_t population : {10U, 100U, 10000U}) {
    for (std::uint32_t count : {0U, 1U, 5U, population / 2}) {
      const auto sample = rng.sample_without_replacement(population, count);
      EXPECT_EQ(sample.size(), count);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (const auto v : sample) EXPECT_LT(v, population);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(8, 8);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8U);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(19);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(DiscreteDistribution, RejectsBadInput) {
  EXPECT_THROW((void)DiscreteDistribution{std::span<const double>{}},
               std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW((void)DiscreteDistribution{negative}, std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)DiscreteDistribution{zeros}, std::invalid_argument);
}

TEST(DiscreteDistribution, MatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  DiscreteDistribution dist(weights);
  EXPECT_DOUBLE_EQ(dist.total_weight(), 10.0);

  Rng rng(42);
  std::vector<int> histogram(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++histogram[dist.sample(rng)];
  for (int i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(histogram[i]) / kDraws, expected,
                0.01);
  }
}

TEST(DiscreteDistribution, ProbabilityOfReconstructsWeights) {
  const std::vector<double> weights{0.5, 0.25, 0.25};
  DiscreteDistribution dist(weights);
  EXPECT_NEAR(dist.probability_of(0), 0.5, 1e-12);
  EXPECT_NEAR(dist.probability_of(1), 0.25, 1e-12);
  EXPECT_NEAR(dist.probability_of(2), 0.25, 1e-12);
  EXPECT_THROW((void)dist.probability_of(3), std::out_of_range);
}

TEST(DiscreteDistribution, HandlesZeroWeightEntries) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  DiscreteDistribution dist(weights);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto draw = dist.sample(rng);
    EXPECT_TRUE(draw == 1 || draw == 3);
  }
}

TEST(DiscreteDistribution, SingleBucket) {
  const std::vector<double> weights{5.0};
  DiscreteDistribution dist(weights);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng), 0U);
}

}  // namespace
}  // namespace imc
