#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace imc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1U);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 1000,
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 for (std::uint64_t i = begin; i < end; ++i) ++hits[i];
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0,
               [&](std::uint64_t, std::uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeFewerChunksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  parallel_for(pool, 3,
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 total += static_cast<int>(end - begin);
               });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW((void)
      parallel_for(pool, 100,
                   [](std::uint64_t begin, std::uint64_t, unsigned) {
                     if (begin == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ChunkIndicesAreDistinct) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<unsigned> chunks;
  parallel_for(pool, 64,
               [&](std::uint64_t, std::uint64_t, unsigned chunk) {
                 const std::lock_guard<std::mutex> lock(mutex);
                 chunks.push_back(chunk);
               });
  std::sort(chunks.begin(), chunks.end());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i], i);
  }
}

TEST(DefaultPool, IsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().size(), 1U);
}

}  // namespace
}  // namespace imc
