#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace imc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1U);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 1000,
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 for (std::uint64_t i = begin; i < end; ++i) ++hits[i];
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0,
               [&](std::uint64_t, std::uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeFewerChunksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  parallel_for(pool, 3,
               [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                 total += static_cast<int>(end - begin);
               });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW((void)
      parallel_for(pool, 100,
                   [](std::uint64_t begin, std::uint64_t, unsigned) {
                     if (begin == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ChunkIndicesAreDistinct) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<unsigned> chunks;
  parallel_for(pool, 64,
               [&](std::uint64_t, std::uint64_t, unsigned chunk) {
                 const std::lock_guard<std::mutex> lock(mutex);
                 chunks.push_back(chunk);
               });
  std::sort(chunks.begin(), chunks.end());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i], i);
  }
}

// Regression: a parallel_for issued from INSIDE a submitted task used to
// block in future::get() while its own chunks sat behind it in the queue —
// a guaranteed deadlock on a 1-thread pool. Help-running makes the waiting
// thread execute queued chunks itself.
TEST(ParallelFor, NestedInsideSubmittedTaskOneThread) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  auto done = pool.submit([&] {
    parallel_for(pool, 100,
                 [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                   total += static_cast<int>(end - begin);
                 });
  });
  done.get();
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, NestedInsideSubmittedTaskManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::future<void>> outer;
  // More outer tasks than workers, each fanning out again: every worker is
  // simultaneously a parallel_for caller.
  for (int t = 0; t < 8; ++t) {
    outer.push_back(pool.submit([&] {
      parallel_for(pool, 50,
                   [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                     total += static_cast<int>(end - begin);
                   });
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ParallelFor, TwoLevelNestingInsideBody) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 6, [&](std::uint64_t begin, std::uint64_t end, unsigned) {
    for (std::uint64_t i = begin; i < end; ++i) {
      parallel_for(pool, 10,
                   [&](std::uint64_t b, std::uint64_t e, unsigned) {
                     total += static_cast<int>(e - b);
                   });
    }
  });
  EXPECT_EQ(total.load(), 60);
}

TEST(ParallelFor, NestedBodyExceptionStillPropagates) {
  ThreadPool pool(1);
  auto done = pool.submit([&] {
    parallel_for(pool, 10, [](std::uint64_t begin, std::uint64_t, unsigned) {
      if (begin == 0) throw std::runtime_error("inner chunk failed");
    });
  });
  EXPECT_THROW(done.get(), std::runtime_error);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  ThreadPool pool(1);
  // Park the single worker so submissions stay queued. Wait until the
  // worker actually OWNS the parked task — otherwise try_run_one below
  // could pop it onto this thread and spin on `release` forever.
  std::atomic<bool> parked_started{false};
  std::atomic<bool> release{false};
  auto parked = pool.submit([&] {
    parked_started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked_started.load()) std::this_thread::yield();
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(counter.load(), 5);
  release.store(true);
  parked.get();
  for (auto& f : futures) f.get();
  EXPECT_FALSE(pool.try_run_one());
}

TEST(DefaultPool, IsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().size(), 1U);
}

TEST(HelpWait, ReturnsAfterTaskAndConsumesFuture) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto future = pool.submit([&counter] { ++counter; });
  help_wait(pool, future);
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(future.valid());  // get() consumed it
}

TEST(HelpWait, RethrowsTaskException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(help_wait(pool, future), std::runtime_error);
}

// The background-grow pattern: waiting from inside a pool task on a
// 1-thread pool must help-run the waited-on task instead of deadlocking
// behind it.
TEST(HelpWait, FromInsideWorkerHelpRuns) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&counter] { ++counter; });
    help_wait(pool, inner);
  });
  outer.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(BackgroundJob, RunsBodyAndJoins) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  BackgroundJob job = submit_job(
      pool, [&counter](const std::atomic<bool>&) { ++counter; });
  EXPECT_TRUE(job.valid());
  job.join();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(job.valid());  // join consumed the task
  EXPECT_TRUE(job.done());
  EXPECT_FALSE(job.skipped());
  job.join();  // idempotent
}

TEST(BackgroundJob, JoinRethrowsBodyException) {
  ThreadPool pool(1);
  BackgroundJob job = submit_job(pool, [](const std::atomic<bool>&) {
    throw std::runtime_error("job failed");
  });
  EXPECT_THROW(job.join(), std::runtime_error);
  EXPECT_TRUE(job.done());
}

TEST(BackgroundJob, CancelBeforeRunSkipsBody) {
  ThreadPool pool(1);
  // Park the worker so the job stays queued until after cancel().
  std::atomic<bool> parked_started{false};
  std::atomic<bool> release{false};
  auto parked = pool.submit([&] {
    parked_started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked_started.load()) std::this_thread::yield();
  std::atomic<int> counter{0};
  BackgroundJob job = submit_job(
      pool, [&counter](const std::atomic<bool>&) { ++counter; });
  job.cancel();
  EXPECT_TRUE(job.cancelled());
  release.store(true);
  parked.get();
  job.join();
  EXPECT_TRUE(job.skipped());
  EXPECT_EQ(counter.load(), 0);
}

TEST(BackgroundJob, CancelFlagReachesRunningBody) {
  ThreadPool pool(2);
  std::atomic<bool> body_started{false};
  BackgroundJob job =
      submit_job(pool, [&body_started](const std::atomic<bool>& cancel) {
        body_started.store(true);
        while (!cancel.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
  while (!body_started.load()) std::this_thread::yield();
  job.cancel();
  job.join();  // terminates because the body saw the flag
  EXPECT_FALSE(job.skipped());
}

TEST(BackgroundJob, SubmittedAndJoinedFromWorkerDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto outer = pool.submit([&] {
    BackgroundJob job = submit_job(
        pool, [&counter](const std::atomic<bool>&) { ++counter; });
    job.join();  // help-runs on the 1-thread pool
  });
  outer.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(BackgroundJob, DestructorCancelsAndJoinsRunningBody) {
  ThreadPool pool(2);
  std::atomic<bool> body_started{false};
  std::atomic<bool> body_finished{false};
  {
    BackgroundJob job = submit_job(
        pool, [&body_started, &body_finished](const std::atomic<bool>& cancel) {
          body_started.store(true);
          while (!cancel.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          body_finished.store(true);
        });
    while (!body_started.load()) std::this_thread::yield();
    // Dropping the handle must cancel + wait, never abandon the body.
  }
  EXPECT_TRUE(body_finished.load());
}

TEST(BackgroundJob, DefaultConstructedIsInertlyJoinable) {
  BackgroundJob job;
  EXPECT_FALSE(job.valid());
  EXPECT_TRUE(job.done());
  EXPECT_FALSE(job.cancelled());
  EXPECT_FALSE(job.skipped());
  job.cancel();
  job.join();  // all no-ops
}

}  // namespace
}  // namespace imc
