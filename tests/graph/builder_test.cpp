#include "graph/builder.h"

#include <gtest/gtest.h>

#include "graph/weights.h"

namespace imc {
namespace {

TEST(GraphBuilder, GrowsNodeCountOnDemand) {
  GraphBuilder builder;
  builder.add_edge(0, 7, 0.5);
  EXPECT_EQ(builder.node_count(), 8U);
  builder.add_edge(9, 1, 0.5);
  EXPECT_EQ(builder.node_count(), 10U);
}

TEST(GraphBuilder, ReserveNodesNeverShrinks) {
  GraphBuilder builder;
  builder.reserve_nodes(10);
  builder.add_edge(0, 1);
  EXPECT_EQ(builder.node_count(), 10U);
  builder.reserve_nodes(5);
  EXPECT_EQ(builder.node_count(), 10U);
}

TEST(GraphBuilder, UndirectedEmitsBothDirections) {
  GraphBuilder builder;
  builder.add_undirected_edge(0, 1, 0.4);
  const Graph graph = builder.build();
  EXPECT_DOUBLE_EQ(graph.weight(0, 1), graph.weight(1, 0));
  EXPECT_NEAR(graph.weight(0, 1), 0.4, 1e-7);
}

TEST(GraphBuilder, WeightedCascadeBuild) {
  // Node 2 has in-degree 2 => both incoming edges weighted 1/2.
  GraphBuilder builder;
  builder.add_edge(0, 2).add_edge(1, 2).add_edge(0, 1);
  const Graph graph = builder.build_weighted_cascade();
  EXPECT_NEAR(graph.weight(0, 2), 0.5, 1e-7);
  EXPECT_NEAR(graph.weight(1, 2), 0.5, 1e-7);
  EXPECT_NEAR(graph.weight(0, 1), 1.0, 1e-7);
}

TEST(GraphBuilder, BuilderReusableAfterBuild) {
  GraphBuilder builder;
  builder.add_edge(0, 1);
  const Graph first = builder.build();
  builder.add_edge(1, 2);
  const Graph second = builder.build();
  EXPECT_EQ(first.edge_count(), 1U);
  EXPECT_EQ(second.edge_count(), 2U);
}

TEST(Weights, WeightedCascadeCountsParallelEdges) {
  EdgeList edges{{0, 2, 1.0}, {1, 2, 1.0}, {1, 2, 1.0}};
  apply_weighted_cascade(edges, 3);
  for (const WeightedEdge& e : edges) {
    EXPECT_NEAR(e.weight, 1.0 / 3.0, 1e-12);
  }
}

TEST(Weights, UniformWeights) {
  EdgeList edges{{0, 1, 0.9}, {1, 2, 0.1}};
  apply_uniform_weights(edges, 0.05);
  for (const WeightedEdge& e : edges) EXPECT_DOUBLE_EQ(e.weight, 0.05);
  EXPECT_THROW((void)apply_uniform_weights(edges, 1.5), std::invalid_argument);
}

TEST(Weights, TrivalencyDrawsFromLevels) {
  EdgeList edges(100, WeightedEdge{0, 1, 0.0});
  Rng rng(8);
  apply_trivalency_weights(edges, rng);
  for (const WeightedEdge& e : edges) {
    EXPECT_TRUE(e.weight == 0.1 || e.weight == 0.01 || e.weight == 0.001);
  }
}

}  // namespace
}  // namespace imc
