#include "graph/edgelist_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace imc {
namespace {

TEST(EdgeListIo, ParsesSnapFormat) {
  std::istringstream in(
      "# Directed graph: example\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1 2\n"
      "2\t0\n");
  const LoadedEdgeList loaded = read_edge_list(in);
  EXPECT_EQ(loaded.node_count, 3U);
  ASSERT_EQ(loaded.edges.size(), 3U);
  EXPECT_EQ(loaded.edges[0].source, 0U);
  EXPECT_EQ(loaded.edges[0].target, 1U);
  EXPECT_DOUBLE_EQ(loaded.edges[0].weight, 1.0);
}

TEST(EdgeListIo, ParsesExplicitWeights) {
  std::istringstream in("0 1 0.25\n1 0 0.75\n");
  const LoadedEdgeList loaded = read_edge_list(in);
  EXPECT_DOUBLE_EQ(loaded.edges[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(loaded.edges[1].weight, 0.75);
}

TEST(EdgeListIo, DefaultWeightOption) {
  std::istringstream in("0 1\n");
  EdgeListOptions options;
  options.default_weight = 0.1;
  const LoadedEdgeList loaded = read_edge_list(in, options);
  EXPECT_DOUBLE_EQ(loaded.edges[0].weight, 0.1);
}

TEST(EdgeListIo, UndirectedOptionDoublesEdges) {
  std::istringstream in("0 1\n1 2\n");
  EdgeListOptions options;
  options.undirected = true;
  const LoadedEdgeList loaded = read_edge_list(in, options);
  EXPECT_EQ(loaded.edges.size(), 4U);
}

TEST(EdgeListIo, DensifiesSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 3000000\n");
  const LoadedEdgeList loaded = read_edge_list(in);
  EXPECT_EQ(loaded.node_count, 3U);
  EXPECT_FALSE(loaded.id_map.empty());
  EXPECT_EQ(loaded.id_map.at(1000000), 0U);
  EXPECT_EQ(loaded.id_map.at(2000000), 1U);
}

TEST(EdgeListIo, KeepsDenseIdsVerbatim) {
  std::istringstream in("0 5\n5 3\n");
  const LoadedEdgeList loaded = read_edge_list(in);
  EXPECT_EQ(loaded.node_count, 6U);
  EXPECT_TRUE(loaded.id_map.empty());
  EXPECT_EQ(loaded.edges[0].source, 0U);
  EXPECT_EQ(loaded.edges[0].target, 5U);
}

TEST(EdgeListIo, EmptyInput) {
  std::istringstream in("# only comments\n\n");
  const LoadedEdgeList loaded = read_edge_list(in);
  EXPECT_EQ(loaded.node_count, 0U);
  EXPECT_TRUE(loaded.edges.empty());
}

TEST(EdgeListIo, RejectsMalformedLines) {
  std::istringstream one_field("42\n");
  EXPECT_THROW((void)read_edge_list(one_field), std::runtime_error);
  std::istringstream bad_id("a b\n");
  EXPECT_THROW((void)read_edge_list(bad_id), std::runtime_error);
  std::istringstream bad_weight("0 1 zzz\n");
  EXPECT_THROW((void)read_edge_list(bad_weight), std::runtime_error);
}

TEST(EdgeListIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_edge_list("/definitely/not/here.txt"),
               std::runtime_error);
}

TEST(EdgeListIo, WriteReadRoundTrip) {
  const EdgeList edges{{0, 1, 0.5}, {1, 2, 0.25}};
  const Graph graph(3, edges);
  std::stringstream buffer;
  write_edge_list(buffer, graph);
  const LoadedEdgeList loaded = read_edge_list(buffer);
  const Graph rebuilt(loaded.node_count, loaded.edges);
  EXPECT_EQ(rebuilt.node_count(), 3U);
  EXPECT_EQ(rebuilt.edge_count(), 2U);
  EXPECT_NEAR(rebuilt.weight(0, 1), 0.5, 1e-6);
  EXPECT_NEAR(rebuilt.weight(1, 2), 0.25, 1e-6);
}

TEST(EdgeListIo, SaveAndLoadFile) {
  const EdgeList edges{{0, 1, 1.0}};
  const Graph graph(2, edges);
  const std::string path = ::testing::TempDir() + "/imc_edgelist_test.txt";
  save_edge_list(path, graph);
  const LoadedEdgeList loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edges.size(), 1U);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imc
