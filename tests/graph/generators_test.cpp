#include "graph/generators/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators/dataset_catalog.h"
#include "util/rng.h"

namespace imc {
namespace {

TEST(ErdosRenyi, EdgeCountConcentrates) {
  Rng rng(1);
  const NodeId n = 300;
  const double p = 0.05;
  const EdgeList edges = erdos_renyi_edges(n, p, rng);
  const double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, expected * 0.15);
}

TEST(ErdosRenyi, NoSelfLoopsAndInRange) {
  Rng rng(2);
  for (const WeightedEdge& e : erdos_renyi_edges(50, 0.2, rng)) {
    EXPECT_NE(e.source, e.target);
    EXPECT_LT(e.source, 50U);
    EXPECT_LT(e.target, 50U);
  }
}

TEST(ErdosRenyi, DegenerateProbabilities) {
  Rng rng(3);
  EXPECT_TRUE(erdos_renyi_edges(10, 0.0, rng).empty());
  EXPECT_EQ(erdos_renyi_edges(10, 1.0, rng).size(), 90U);
  EXPECT_THROW((void)erdos_renyi_edges(10, 1.5, rng), std::invalid_argument);
}

TEST(ErdosRenyi, DeterministicGivenSeed) {
  Rng a(7), b(7);
  EXPECT_EQ(erdos_renyi_edges(40, 0.1, a), erdos_renyi_edges(40, 0.1, b));
}

TEST(BarabasiAlbert, UndirectedCounts) {
  Rng rng(4);
  BarabasiAlbertConfig config;
  config.nodes = 500;
  config.attach = 3;
  config.directed = false;
  const EdgeList edges = barabasi_albert_edges(config, rng);
  const Graph graph(config.nodes, edges);
  EXPECT_EQ(graph.node_count(), 500U);
  // Each non-seed node adds `attach` undirected edges (2 directed).
  const double expected = 2.0 * (500 - 4) * 3 + 4 * 3;  // + seed clique
  EXPECT_NEAR(static_cast<double>(graph.edge_count()), expected,
              expected * 0.05);
}

TEST(BarabasiAlbert, HeavyTail) {
  Rng rng(5);
  BarabasiAlbertConfig config;
  config.nodes = 2000;
  config.attach = 2;
  const Graph graph(config.nodes, barabasi_albert_edges(config, rng));
  const auto stats = graph.degree_stats();
  // Hubs should be far above the mean degree — the PA signature.
  EXPECT_GT(stats.max_out, 10 * static_cast<std::uint32_t>(stats.mean_out));
}

TEST(BarabasiAlbert, DirectedReciprocity) {
  Rng rng(6);
  BarabasiAlbertConfig config;
  config.nodes = 400;
  config.attach = 4;
  config.directed = true;
  config.reciprocity = 0.0;
  const EdgeList no_recip = barabasi_albert_edges(config, rng);
  config.reciprocity = 1.0;
  const EdgeList full_recip = barabasi_albert_edges(config, rng);
  EXPECT_GT(full_recip.size(), no_recip.size());
}

TEST(BarabasiAlbert, RejectsBadConfig) {
  Rng rng(7);
  BarabasiAlbertConfig config;
  config.nodes = 3;
  config.attach = 3;
  EXPECT_THROW((void)barabasi_albert_edges(config, rng), std::invalid_argument);
  config.attach = 0;
  EXPECT_THROW((void)barabasi_albert_edges(config, rng), std::invalid_argument);
}

TEST(WattsStrogatz, NoRewireIsRingLattice) {
  Rng rng(8);
  WattsStrogatzConfig config;
  config.nodes = 20;
  config.neighbors_each_side = 2;
  config.rewire = 0.0;
  const Graph graph(config.nodes, watts_strogatz_edges(config, rng));
  // Ring lattice: every node has degree 2k in both directions.
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(graph.out_degree(v), 4U);
    EXPECT_EQ(graph.in_degree(v), 4U);
  }
}

TEST(WattsStrogatz, EdgeCountStable) {
  Rng rng(9);
  WattsStrogatzConfig config;
  config.nodes = 100;
  config.neighbors_each_side = 3;
  config.rewire = 0.3;
  const EdgeList edges = watts_strogatz_edges(config, rng);
  EXPECT_EQ(edges.size(), 600U);  // n*k directed pairs * 2 directions
}

TEST(WattsStrogatz, RejectsBadConfig) {
  Rng rng(10);
  WattsStrogatzConfig config;
  config.nodes = 5;
  config.neighbors_each_side = 3;  // 2k >= n
  EXPECT_THROW((void)watts_strogatz_edges(config, rng), std::invalid_argument);
}

TEST(Sbm, PlantedStructureDenserInside) {
  Rng rng(11);
  SbmConfig config;
  config.nodes = 400;
  config.blocks = 4;
  config.p_in = 0.2;
  config.p_out = 0.01;
  const Graph graph(config.nodes, sbm_edges(config, rng));
  std::uint64_t internal = 0, external = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      if (sbm_block_of(u, config.blocks) ==
          sbm_block_of(nb.node, config.blocks)) {
        ++internal;
      } else {
        ++external;
      }
    }
  }
  EXPECT_GT(internal, external * 3);
}

TEST(Sbm, EdgeCountMatchesExpectation) {
  Rng rng(12);
  SbmConfig config;
  config.nodes = 600;
  config.blocks = 6;
  config.p_in = 0.1;
  config.p_out = 0.005;
  const EdgeList edges = sbm_edges(config, rng);
  // Within-block pairs: blocks * C(100, 2); cross pairs: the rest.
  const double within_pairs = 6.0 * 100 * 99 / 2.0;
  const double total_pairs = 600.0 * 599 / 2.0;
  const double expected =
      2.0 * (within_pairs * 0.1 + (total_pairs - within_pairs) * 0.005);
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, expected * 0.1);
}

TEST(Sbm, SingleBlockIsErdosRenyi) {
  Rng rng(13);
  SbmConfig config;
  config.nodes = 100;
  config.blocks = 1;
  config.p_in = 0.1;
  config.p_out = 0.5;  // unused: there are no cross pairs
  const EdgeList edges = sbm_edges(config, rng);
  const double expected = 2.0 * (100.0 * 99 / 2) * 0.1;
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, expected * 0.25);
}

TEST(ForestFire, ConnectedToEarlierNodes) {
  Rng rng(14);
  ForestFireConfig config;
  config.nodes = 200;
  const Graph graph(config.nodes, forest_fire_edges(config, rng));
  // Every node except 0 must have at least one out-edge (its ambassador).
  for (NodeId v = 1; v < graph.node_count(); ++v) {
    EXPECT_GE(graph.out_degree(v), 1U) << "node " << v;
  }
  // And the whole graph is weakly connected by construction.
  EXPECT_EQ(weakly_connected_components(graph).count, 1U);
}

TEST(ForestFire, DensifiesWithForwardProbability) {
  Rng rng(15);
  ForestFireConfig sparse;
  sparse.nodes = 300;
  sparse.p_forward = 0.1;
  ForestFireConfig dense = sparse;
  dense.p_forward = 0.45;
  const auto sparse_edges = forest_fire_edges(sparse, rng).size();
  const auto dense_edges = forest_fire_edges(dense, rng).size();
  EXPECT_GT(dense_edges, sparse_edges);
}

TEST(DatasetCatalog, HasFiveDatasetsInTableOrder) {
  const auto& catalog = dataset_catalog();
  ASSERT_EQ(catalog.size(), 5U);
  EXPECT_EQ(catalog[0].name, "facebook");
  EXPECT_EQ(catalog[4].name, "pokec");
  EXPECT_FALSE(catalog[0].directed);
  EXPECT_TRUE(catalog[1].directed);
}

TEST(DatasetCatalog, LookupByName) {
  EXPECT_EQ(dataset_from_name("FaceBook"), DatasetId::kFacebook);
  EXPECT_EQ(dataset_from_name("wiki-vote"), DatasetId::kWikiVote);
  EXPECT_THROW((void)dataset_from_name("orkut"), std::invalid_argument);
}

TEST(DatasetCatalog, MakeDatasetScalesAndWeights) {
  const Graph graph = make_dataset(DatasetId::kFacebook, 0.5);
  EXPECT_NEAR(static_cast<double>(graph.node_count()), 747 * 0.5, 2.0);
  // Weighted cascade: in-weights of every non-source node sum to ~1.
  int checked = 0;
  for (NodeId v = 0; v < graph.node_count() && checked < 50; ++v) {
    if (graph.in_degree(v) == 0) continue;
    double total = 0.0;
    for (const Neighbor& nb : graph.in_neighbors(v)) {
      total += static_cast<double>(nb.weight);
    }
    EXPECT_LE(total, 1.0 + 1e-3);
    EXPECT_GT(total, 0.2);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(DatasetCatalog, DeterministicAcrossCalls) {
  const Graph a = make_dataset(DatasetId::kWikiVote, 0.1);
  const Graph b = make_dataset(DatasetId::kWikiVote, 0.1);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.to_edge_list(), b.to_edge_list());
}

TEST(DatasetCatalog, RejectsBadScale) {
  EXPECT_THROW((void)make_dataset(DatasetId::kDblp, 0.0), std::invalid_argument);
  EXPECT_THROW((void)make_dataset(DatasetId::kDblp, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace imc
