// GraphDelta streaming updates (DESIGN.md §16): apply_edge_updates against
// a from-scratch rebuild, community membership moves, batch validation
// (strong guarantee) and the replay-file parser.
#include "graph/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/weights.h"
#include "test_support.h"
#include "util/rng.h"

namespace imc {
namespace {

Graph random_graph(std::uint64_t seed, NodeId nodes = 40) {
  Rng rng(seed);
  BarabasiAlbertConfig config;
  config.nodes = nodes;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  return Graph(config.nodes, edges);
}

/// Full structural equality: both CSRs, both uniform-in-weight caches and
/// the fingerprint. Any drift between the incremental path and a rebuild
/// shows up here.
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    const auto a_out = a.out_neighbors(v);
    const auto b_out = b.out_neighbors(v);
    ASSERT_EQ(a_out.size(), b_out.size()) << "out-degree of " << v;
    for (std::size_t i = 0; i < a_out.size(); ++i) {
      EXPECT_EQ(a_out[i].node, b_out[i].node) << "out edge " << v;
      EXPECT_EQ(a_out[i].weight, b_out[i].weight) << "out weight " << v;
    }
    const auto a_in = a.in_neighbors(v);
    const auto b_in = b.in_neighbors(v);
    ASSERT_EQ(a_in.size(), b_in.size()) << "in-degree of " << v;
    for (std::size_t i = 0; i < a_in.size(); ++i) {
      EXPECT_EQ(a_in[i].node, b_in[i].node) << "in edge " << v;
      EXPECT_EQ(a_in[i].weight, b_in[i].weight) << "in weight " << v;
    }
    ASSERT_EQ(a.in_weights_uniform(v), b.in_weights_uniform(v))
        << "uniformity of " << v;
    if (a.in_weights_uniform(v)) {
      EXPECT_EQ(a.in_uniform_weight(v), b.in_uniform_weight(v));
      EXPECT_DOUBLE_EQ(a.in_uniform_inv_log1p(v), b.in_uniform_inv_log1p(v));
    }
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(GraphDelta, ApplyEdgeUpdatesMatchesRebuildFromScratch) {
  for (std::uint64_t seed : {3ULL, 17ULL, 91ULL}) {
    Graph graph = random_graph(seed);
    Rng rng(seed ^ 0xD1CEULL);

    // A mixed batch: removals of existing edges, weight changes and brand
    // new edges, tracked in a map that models last-wins semantics.
    std::map<std::pair<NodeId, NodeId>, double> expected;
    for (const WeightedEdge& e : graph.to_edge_list()) {
      expected[{e.source, e.target}] = e.weight;
    }
    std::vector<EdgeUpdate> updates;
    for (int i = 0; i < 60; ++i) {
      const NodeId u = static_cast<NodeId>(rng.below(graph.node_count()));
      const NodeId v = static_cast<NodeId>(rng.below(graph.node_count()));
      if (u == v) continue;
      const double w = rng.bernoulli(0.25) ? 0.0 : rng.uniform(0.05, 0.95);
      updates.push_back(EdgeUpdate{u, v, w});
      if (w == 0.0) {
        expected.erase({u, v});
      } else {
        expected[{u, v}] = static_cast<float>(w);
      }
    }

    graph.apply_edge_updates(updates);

    EdgeList rebuilt_edges;
    for (const auto& [key, weight] : expected) {
      rebuilt_edges.push_back(WeightedEdge{key.first, key.second, weight});
    }
    const Graph rebuilt(graph.node_count(), rebuilt_edges);
    expect_same_graph(graph, rebuilt);
  }
}

TEST(GraphDelta, ApplyEdgeUpdatesReportsChangedInHeads) {
  Graph graph = test::path_graph(6, 0.5);  // 0->1->...->5
  std::vector<EdgeUpdate> updates{
      EdgeUpdate{0, 1, 0.5},   // no-op: same weight
      EdgeUpdate{1, 2, 0.0},   // removal: head 2 changes
      EdgeUpdate{0, 3, 0.7},   // insertion: head 3 changes
      EdgeUpdate{2, 2, 0.9},   // self-loop: inert
      EdgeUpdate{4, 5, 0.5},   // shadowed by the later update...
      EdgeUpdate{4, 5, 0.25},  // ...last wins: head 5 changes
  };
  const std::vector<NodeId> heads = graph.apply_edge_updates(updates);
  EXPECT_EQ(heads, (std::vector<NodeId>{2, 3, 5}));
  EXPECT_FALSE(graph.has_edge(1, 2));
  EXPECT_FLOAT_EQ(static_cast<float>(graph.weight(0, 3)), 0.7F);
  EXPECT_FLOAT_EQ(static_cast<float>(graph.weight(4, 5)), 0.25F);
  EXPECT_FALSE(graph.has_edge(2, 2));

  // Removing an absent edge is a no-op, not an error.
  EXPECT_TRUE(
      graph.apply_edge_updates(std::vector<EdgeUpdate>{EdgeUpdate{3, 0, 0.0}})
          .empty());
}

TEST(GraphDelta, ApplyEdgeUpdatesValidatesBeforeMutating) {
  Graph graph = test::cycle_graph(5, 0.4);
  const std::uint64_t before = graph.fingerprint();
  // A valid update followed by an invalid one: nothing may be applied.
  std::vector<EdgeUpdate> bad_endpoint{EdgeUpdate{0, 1, 0.9},
                                       EdgeUpdate{0, 99, 0.5}};
  EXPECT_THROW((void)graph.apply_edge_updates(bad_endpoint),
               std::invalid_argument);
  std::vector<EdgeUpdate> bad_weight{EdgeUpdate{0, 1, 0.9},
                                     EdgeUpdate{1, 2, 1.5}};
  EXPECT_THROW((void)graph.apply_edge_updates(bad_weight),
               std::invalid_argument);
  std::vector<EdgeUpdate> negative{EdgeUpdate{1, 2, -0.1}};
  EXPECT_THROW((void)graph.apply_edge_updates(negative),
               std::invalid_argument);
  EXPECT_EQ(graph.fingerprint(), before);
}

TEST(GraphDelta, MoveMemberRelabelsAndPreservesMaskPositions) {
  CommunitySet communities(8, {{0, 1, 2}, {3, 4}, {5, 6, 7}});
  communities.move_member(1, 2);
  EXPECT_EQ(communities.community_of(1), 2U);
  // Source keeps its order with the mover erased; target appends, so the
  // existing members keep their group-vector positions (= mask bits).
  EXPECT_EQ(std::vector<NodeId>(communities.members(0).begin(),
                                communities.members(0).end()),
            (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(std::vector<NodeId>(communities.members(2).begin(),
                                communities.members(2).end()),
            (std::vector<NodeId>{5, 6, 7, 1}));
}

TEST(GraphDelta, MoveMemberValidation) {
  CommunitySet communities(6, {{0, 1, 2}, {3}, {4, 5}});
  communities.set_threshold(2, 2);
  // Last member cannot leave (communities must stay non-empty).
  EXPECT_THROW(communities.move_member(3, 0), std::invalid_argument);
  // Threshold 2 with 2 members: a departure would make h > |C|.
  EXPECT_THROW(communities.move_member(4, 0), std::invalid_argument);
  // Moving to the community the node is already in is an error, as is an
  // unknown node or target.
  EXPECT_THROW(communities.move_member(0, 0), std::invalid_argument);
  EXPECT_THROW(communities.move_member(99, 0), std::out_of_range);
  EXPECT_THROW(communities.move_member(0, 9), std::out_of_range);
  EXPECT_EQ(communities.community_of(3), 1U);
  EXPECT_EQ(communities.community_of(4), 2U);
}

TEST(GraphDelta, ApplyDeltaIsAtomicAcrossTheBatch) {
  Graph graph = test::cycle_graph(6, 0.3);
  CommunitySet communities(6, {{0, 1, 2}, {3, 4, 5}});
  const std::uint64_t graph_before = graph.fingerprint();
  const std::uint64_t comm_before = communities.fingerprint();

  // First move is fine; the second drains community 0 below its last
  // member — the simulation must reject the WHOLE batch up front.
  GraphDelta delta;
  delta.upsert_edge(0, 3, 0.8)
      .move_member(1, 1)
      .move_member(2, 1)
      .move_member(0, 1);
  EXPECT_THROW((void)apply_delta(graph, communities, delta),
               std::invalid_argument);
  EXPECT_EQ(graph.fingerprint(), graph_before);
  EXPECT_EQ(communities.fingerprint(), comm_before);
}

TEST(GraphDelta, ApplyDeltaReportsSortedUniqueEffects) {
  Graph graph = test::cycle_graph(9, 0.3);
  CommunitySet communities(9, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}});
  GraphDelta delta;
  delta.upsert_edge(0, 7, 0.5)
      .remove_edge(4, 5)
      .move_member(1, 1)   // touches communities 0 and 1
      .move_member(6, 1);  // touches communities 2 and 1 (dup with above)
  const DeltaEffects effects = apply_delta(graph, communities, delta);
  EXPECT_EQ(effects.changed_in_nodes, (std::vector<NodeId>{5, 7}));
  EXPECT_EQ(effects.changed_communities, (std::vector<CommunityId>{0, 1, 2}));
  EXPECT_FALSE(effects.empty());

  // An empty delta and an all-no-op delta both report empty effects.
  EXPECT_TRUE(apply_delta(graph, communities, GraphDelta{}).empty());
  GraphDelta noop;
  noop.upsert_edge(0, 1, graph.weight(0, 1));
  EXPECT_TRUE(apply_delta(graph, communities, noop).empty());
}

TEST(GraphDelta, ParseDeltaStreamBatchesAndErrors) {
  const std::string text =
      "# replay file\n"
      "E 0 1 0.5\n"
      "M 3 2\n"
      "\n"
      "E 1 2 0\n"
      "\n"
      "\n"
      "M 4 0\n";
  const std::vector<GraphDelta> stream = parse_delta_stream(text);
  ASSERT_EQ(stream.size(), 3U);
  ASSERT_EQ(stream[0].edges.size(), 1U);
  EXPECT_EQ(stream[0].edges[0], (EdgeUpdate{0, 1, 0.5}));
  ASSERT_EQ(stream[0].moves.size(), 1U);
  EXPECT_EQ(stream[0].moves[0], (MemberMove{3, 2}));
  ASSERT_EQ(stream[1].edges.size(), 1U);
  EXPECT_EQ(stream[1].edges[0], (EdgeUpdate{1, 2, 0.0}));
  EXPECT_TRUE(stream[1].moves.empty());
  ASSERT_EQ(stream[2].moves.size(), 1U);
  EXPECT_EQ(stream[2].moves[0], (MemberMove{4, 0}));

  EXPECT_TRUE(parse_delta_stream("").empty());
  EXPECT_TRUE(parse_delta_stream("# only comments\n\n").empty());

  EXPECT_THROW((void)parse_delta_stream("X 1 2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_delta_stream("E 1 2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_delta_stream("M 1 2 3\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_delta_stream("E a b 0.5\n"), std::invalid_argument);
  try {
    (void)parse_delta_stream("E 0 1 0.5\n\nM nope 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace imc
