#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/types.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Graph, EmptyGraph) {
  Graph graph;
  EXPECT_TRUE(graph.empty());
  EXPECT_EQ(graph.node_count(), 0U);
  EXPECT_EQ(graph.edge_count(), 0U);
}

TEST(Graph, BasicConstruction) {
  const EdgeList edges{{0, 1, 0.5}, {1, 2, 0.25}, {2, 0, 1.0}};
  Graph graph(3, edges);
  EXPECT_EQ(graph.node_count(), 3U);
  EXPECT_EQ(graph.edge_count(), 3U);
  EXPECT_DOUBLE_EQ(graph.weight(0, 1), 0.5);
  EXPECT_NEAR(graph.weight(1, 2), 0.25, 1e-7);
  EXPECT_DOUBLE_EQ(graph.weight(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(graph.weight(1, 0), 0.0);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(Graph, RejectsBadEndpoints) {
  const EdgeList edges{{0, 5, 0.5}};
  EXPECT_THROW((void)Graph(3, edges), std::invalid_argument);
}

TEST(Graph, RejectsBadWeights) {
  EXPECT_THROW((void)Graph(2, EdgeList{{0, 1, 1.5}}), std::invalid_argument);
  EXPECT_THROW((void)Graph(2, EdgeList{{0, 1, -0.1}}), std::invalid_argument);
}

TEST(Graph, DropsSelfLoops) {
  Graph graph(2, EdgeList{{0, 0, 0.5}, {0, 1, 0.5}});
  EXPECT_EQ(graph.edge_count(), 1U);
  EXPECT_EQ(graph.out_degree(0), 1U);
}

TEST(Graph, MergesParallelEdgesNoisyOr) {
  // Two parallel 0.5 edges -> p = 1 - 0.5*0.5 = 0.75.
  Graph graph(2, EdgeList{{0, 1, 0.5}, {0, 1, 0.5}});
  EXPECT_EQ(graph.edge_count(), 1U);
  EXPECT_NEAR(graph.weight(0, 1), 0.75, 1e-6);
}

TEST(Graph, InOutDuality) {
  const EdgeList edges{{0, 1, 0.3}, {2, 1, 0.4}, {1, 2, 0.9}};
  Graph graph(3, edges);
  EXPECT_EQ(graph.in_degree(1), 2U);
  EXPECT_EQ(graph.out_degree(1), 1U);
  // Every out-edge appears as the matching in-edge.
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Neighbor& nb : graph.out_neighbors(u)) {
      bool found = false;
      for (const Neighbor& in : graph.in_neighbors(nb.node)) {
        if (in.node == u) {
          EXPECT_FLOAT_EQ(in.weight, nb.weight);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Graph, NeighborsSortedById) {
  const EdgeList edges{{0, 3, 0.1}, {0, 1, 0.2}, {0, 2, 0.3}};
  Graph graph(4, edges);
  const auto neighbors = graph.out_neighbors(0);
  ASSERT_EQ(neighbors.size(), 3U);
  EXPECT_EQ(neighbors[0].node, 1U);
  EXPECT_EQ(neighbors[1].node, 2U);
  EXPECT_EQ(neighbors[2].node, 3U);
}

TEST(Graph, OutOfRangeAccessThrows) {
  Graph graph(2, EdgeList{{0, 1, 0.5}});
  EXPECT_THROW((void)graph.out_neighbors(2), std::out_of_range);
  EXPECT_THROW((void)graph.in_neighbors(5), std::out_of_range);
  EXPECT_THROW((void)graph.out_degree(2), std::out_of_range);
}

TEST(Graph, ToEdgeListRoundTrip) {
  const EdgeList edges{{0, 1, 0.5}, {1, 2, 0.25}, {2, 0, 1.0}};
  Graph graph(3, edges);
  const EdgeList dumped = graph.to_edge_list();
  Graph rebuilt(3, dumped);
  EXPECT_EQ(rebuilt.edge_count(), graph.edge_count());
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 0; v < 3; ++v) {
      EXPECT_NEAR(rebuilt.weight(u, v), graph.weight(u, v), 1e-7);
    }
  }
}

TEST(Graph, DegreeStats) {
  // star: 0 -> {1, 2, 3}; node 4 isolated.
  GraphBuilder builder;
  builder.reserve_nodes(5);
  builder.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  const Graph graph = builder.build();
  const auto stats = graph.degree_stats();
  EXPECT_DOUBLE_EQ(stats.mean_out, 3.0 / 5.0);
  EXPECT_EQ(stats.max_out, 3U);
  EXPECT_EQ(stats.max_in, 1U);
  EXPECT_EQ(stats.isolated, 1U);
}

TEST(Graph, Summary) {
  const Graph graph = test::path_graph(4);
  EXPECT_EQ(graph.summary(), "Graph(n=4, m=3)");
}

}  // namespace
}  // namespace imc
