// Parameterized validity sweep across every generator: all emitted edges
// are in range, loop-free where promised, deterministic given the seed,
// and the resulting Graph round-trips through the CSR constructor.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/generators/generators.h"
#include "graph/graph.h"

namespace imc {
namespace {

enum class Generator { kEr, kBa, kBaDirected, kWs, kSbm, kFf };

using Param = std::tuple<Generator, int /*nodes*/, int /*seed*/>;

EdgeList generate(Generator which, NodeId n, Rng& rng) {
  switch (which) {
    case Generator::kEr:
      return erdos_renyi_edges(n, 8.0 / static_cast<double>(n), rng);
    case Generator::kBa: {
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 3;
      return barabasi_albert_edges(config, rng);
    }
    case Generator::kBaDirected: {
      BarabasiAlbertConfig config;
      config.nodes = n;
      config.attach = 3;
      config.directed = true;
      config.reciprocity = 0.3;
      return barabasi_albert_edges(config, rng);
    }
    case Generator::kWs: {
      WattsStrogatzConfig config;
      config.nodes = n;
      config.neighbors_each_side = 2;
      config.rewire = 0.2;
      return watts_strogatz_edges(config, rng);
    }
    case Generator::kSbm: {
      SbmConfig config;
      config.nodes = n;
      config.blocks = 4;
      config.p_in = 0.1;
      config.p_out = 0.01;
      return sbm_edges(config, rng);
    }
    case Generator::kFf: {
      ForestFireConfig config;
      config.nodes = n;
      return forest_fire_edges(config, rng);
    }
  }
  return {};
}

class GeneratorValidityTest : public ::testing::TestWithParam<Param> {};

TEST_P(GeneratorValidityTest, EdgesAreValidAndDeterministic) {
  const auto [which, nodes, seed] = GetParam();
  const auto n = static_cast<NodeId>(nodes);
  Rng rng_a(static_cast<std::uint64_t>(seed));
  Rng rng_b(static_cast<std::uint64_t>(seed));
  const EdgeList a = generate(which, n, rng_a);
  const EdgeList b = generate(which, n, rng_b);
  EXPECT_EQ(a, b) << "generator must be deterministic";
  EXPECT_FALSE(a.empty());

  for (const WeightedEdge& e : a) {
    ASSERT_LT(e.source, n);
    ASSERT_LT(e.target, n);
    ASSERT_NE(e.source, e.target);
    ASSERT_GE(e.weight, 0.0);
    ASSERT_LE(e.weight, 1.0);
  }

  // CSR construction must accept the list verbatim.
  const Graph graph(n, a);
  EXPECT_EQ(graph.node_count(), n);
  EXPECT_GT(graph.edge_count(), 0U);
}

std::string generator_param_name(
    const ::testing::TestParamInfo<Param>& info) {
  const char* name = "unknown";
  switch (std::get<0>(info.param)) {
    case Generator::kEr: name = "er"; break;
    case Generator::kBa: name = "ba"; break;
    case Generator::kBaDirected: name = "badir"; break;
    case Generator::kWs: name = "ws"; break;
    case Generator::kSbm: name = "sbm"; break;
    case Generator::kFf: name = "ff"; break;
  }
  return std::string(name) + "_n" + std::to_string(std::get<1>(info.param)) +
         "_s" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorValidityTest,
    ::testing::Combine(::testing::Values(Generator::kEr, Generator::kBa,
                                         Generator::kBaDirected,
                                         Generator::kWs, Generator::kSbm,
                                         Generator::kFf),
                       ::testing::Values(40, 150),
                       ::testing::Values(1, 2)),
    generator_param_name);

}  // namespace
}  // namespace imc
