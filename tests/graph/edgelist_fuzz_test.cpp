// Deterministic fuzzing of the SNAP edge-list parser: random byte soups
// and near-valid mutations must either parse cleanly or throw
// std::runtime_error — never crash, hang, or return malformed structures.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/edgelist_io.h"
#include "util/rng.h"

namespace imc {
namespace {

/// Random printable-ish line soup.
std::string random_soup(Rng& rng, int lines) {
  static constexpr char kAlphabet[] =
      "0123456789 \t#abcxyz-.\n0123456789 0123456789 ";
  std::string text;
  for (int line = 0; line < lines; ++line) {
    const auto length = rng.below(30);
    for (std::uint64_t i = 0; i < length; ++i) {
      text += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
    }
    text += '\n';
  }
  return text;
}

class EdgeListFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeListFuzzTest, NeverCrashesOnSoup) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const std::string soup = random_soup(rng, 40);
  std::istringstream in(soup);
  try {
    const LoadedEdgeList loaded = read_edge_list(in);
    // If it parsed, the result must be structurally sound.
    for (const WeightedEdge& e : loaded.edges) {
      EXPECT_LT(e.source, loaded.node_count);
      EXPECT_LT(e.target, loaded.node_count);
    }
  } catch (const std::runtime_error&) {
    // Rejecting garbage is the expected other outcome.
  }
}

TEST_P(EdgeListFuzzTest, MutatedValidInputIsHandled) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 5);
  // Start from a valid edge list...
  std::string text = "# header\n";
  for (int e = 0; e < 20; ++e) {
    text += std::to_string(rng.below(50)) + "\t" +
            std::to_string(rng.below(50)) + "\n";
  }
  // ...and corrupt a few random bytes.
  for (int hit = 0; hit < 5; ++hit) {
    text[rng.below(text.size())] =
        static_cast<char>('!' + rng.below(90));
  }
  std::istringstream in(text);
  try {
    const LoadedEdgeList loaded = read_edge_list(in);
    for (const WeightedEdge& e : loaded.edges) {
      EXPECT_LT(e.source, loaded.node_count);
      EXPECT_LT(e.target, loaded.node_count);
    }
  } catch (const std::runtime_error&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeListFuzzTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace imc
