#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_support.h"
#include "util/rng.h"

namespace imc {
namespace {

TEST(Reachability, ForwardOnPath) {
  const Graph graph = test::path_graph(5);
  const std::vector<NodeId> sources{1};
  EXPECT_EQ(forward_reachable(graph, sources),
            (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(Reachability, BackwardOnPath) {
  const Graph graph = test::path_graph(5);
  const std::vector<NodeId> targets{3};
  EXPECT_EQ(backward_reachable(graph, targets),
            (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Reachability, MultiSourceUnion) {
  const Graph graph = test::path_graph(6);
  const std::vector<NodeId> sources{4, 0};
  const auto reachable = forward_reachable(graph, sources);
  EXPECT_EQ(reachable.size(), 6U);  // 0 reaches everything
}

TEST(Reachability, DuplicatedSourcesAreFine) {
  const Graph graph = test::path_graph(3);
  const std::vector<NodeId> sources{1, 1, 1};
  EXPECT_EQ(forward_reachable(graph, sources), (std::vector<NodeId>{1, 2}));
}

TEST(BfsDistances, PathDistances) {
  const Graph graph = test::path_graph(4);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BfsDistances, UnreachableMarked) {
  GraphBuilder builder;
  builder.reserve_nodes(3);
  builder.add_edge(0, 1);
  const auto dist = bfs_distances(builder.build(), 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Scc, CycleIsOneComponent) {
  const Graph graph = test::cycle_graph(5);
  const Components scc = strongly_connected_components(graph);
  EXPECT_EQ(scc.count, 1U);
}

TEST(Scc, PathIsAllSingletons) {
  const Graph graph = test::path_graph(5);
  const Components scc = strongly_connected_components(graph);
  EXPECT_EQ(scc.count, 5U);
}

TEST(Scc, TwoCyclesWithBridge) {
  GraphBuilder builder;
  // cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3.
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  builder.add_edge(3, 4).add_edge(4, 3);
  builder.add_edge(2, 3);
  const Components scc = strongly_connected_components(builder.build());
  EXPECT_EQ(scc.count, 2U);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[0], scc.component_of[2]);
  EXPECT_EQ(scc.component_of[3], scc.component_of[4]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
}

TEST(Scc, GroupsPartitionNodes) {
  const Graph graph = test::cycle_graph(4);
  const Components scc = strongly_connected_components(graph);
  const auto groups = scc.groups();
  std::size_t total = 0;
  for (const auto& group : groups) total += group.size();
  EXPECT_EQ(total, 4U);
}

TEST(Wcc, DisconnectedPieces) {
  GraphBuilder builder;
  builder.reserve_nodes(6);
  builder.add_edge(0, 1).add_edge(2, 3);
  const Components wcc = weakly_connected_components(builder.build());
  EXPECT_EQ(wcc.count, 4U);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(wcc.component_of[0], wcc.component_of[1]);
  EXPECT_EQ(wcc.component_of[2], wcc.component_of[3]);
  EXPECT_NE(wcc.component_of[0], wcc.component_of[2]);
}

TEST(Wcc, DirectionIgnored) {
  GraphBuilder builder;
  builder.add_edge(0, 1).add_edge(2, 1);  // 2 only has an out-edge into 1
  const Components wcc = weakly_connected_components(builder.build());
  EXPECT_EQ(wcc.count, 1U);
}

// --- property sweep: Tarjan vs. brute-force mutual-reachability ------------

/// Brute-force SCC: u ~ v iff u reaches v and v reaches u.
Components brute_force_scc(const Graph& graph) {
  const NodeId n = graph.node_count();
  std::vector<std::set<NodeId>> reach(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId> single{v};
    const auto forward = forward_reachable(graph, single);
    reach[v] = std::set<NodeId>(forward.begin(), forward.end());
  }
  Components result;
  result.component_of.assign(n, kInvalidCommunity);
  for (NodeId v = 0; v < n; ++v) {
    if (result.component_of[v] != kInvalidCommunity) continue;
    const CommunityId id = result.count++;
    for (NodeId w = v; w < n; ++w) {
      if (reach[v].contains(w) && reach[w].contains(v)) {
        result.component_of[w] = id;
      }
    }
  }
  return result;
}

class SccRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SccRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const NodeId n = 2 + static_cast<NodeId>(rng.below(30));
  GraphBuilder builder;
  builder.reserve_nodes(n);
  const auto edges = 1 + rng.below(static_cast<std::uint64_t>(n) * 3);
  for (std::uint64_t e = 0; e < edges; ++e) {
    builder.add_edge(static_cast<NodeId>(rng.below(n)),
                     static_cast<NodeId>(rng.below(n)));
  }
  const Graph graph = builder.build();

  const Components fast = strongly_connected_components(graph);
  const Components slow = brute_force_scc(graph);
  ASSERT_EQ(fast.count, slow.count);
  // Same partition up to relabeling.
  std::map<CommunityId, CommunityId> mapping;
  for (NodeId v = 0; v < n; ++v) {
    const auto [it, inserted] =
        mapping.try_emplace(fast.component_of[v], slow.component_of[v]);
    EXPECT_EQ(it->second, slow.component_of[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SccRandomTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace imc
