#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators/generators.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Clustering, TriangleIsFullyClustered) {
  GraphBuilder builder;
  builder.add_undirected_edge(0, 1).add_undirected_edge(1, 2)
      .add_undirected_edge(2, 0);
  const Graph graph = builder.build();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering_coefficient(graph, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(graph), 1.0);
}

TEST(Clustering, StarHasNoTriangles) {
  const Graph graph = test::star_graph(8, 1.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(graph, 0), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(graph), 0.0);
}

TEST(Clustering, HalfOpenTriangle) {
  // 0-1, 0-2, 0-3, 1-2: node 0 has 3 neighbors, 1 connected pair of 3.
  GraphBuilder builder;
  builder.add_undirected_edge(0, 1).add_undirected_edge(0, 2)
      .add_undirected_edge(0, 3).add_undirected_edge(1, 2);
  const Graph graph = builder.build();
  EXPECT_NEAR(local_clustering_coefficient(graph, 0), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(graph, 3), 0.0);
}

TEST(Clustering, DirectionIgnored) {
  // Directed triangle counts the same as undirected.
  const Graph graph = test::cycle_graph(3, 1.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(graph, 0), 1.0);
}

TEST(Clustering, WattsStrogatzLatticeIsClustered) {
  Rng rng(1);
  WattsStrogatzConfig config;
  config.nodes = 60;
  config.neighbors_each_side = 3;
  config.rewire = 0.0;
  const Graph lattice(config.nodes, watts_strogatz_edges(config, rng));
  // Ring lattice with k=3: C = 0.6 exactly.
  EXPECT_NEAR(average_clustering_coefficient(lattice), 0.6, 1e-9);
}

TEST(CoreNumbers, PathIsOneCore) {
  const Graph graph = test::path_graph(6, 1.0);
  const auto cores = core_numbers(graph);
  for (const auto c : cores) EXPECT_EQ(c, 1U);
  EXPECT_EQ(degeneracy(graph), 1U);
}

TEST(CoreNumbers, CliquePlusTail) {
  GraphBuilder builder;
  // K4 on {0..3} plus a tail 3-4-5.
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) builder.add_undirected_edge(a, b);
  }
  builder.add_undirected_edge(3, 4).add_undirected_edge(4, 5);
  const Graph graph = builder.build();
  const auto cores = core_numbers(graph);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(cores[v], 3U) << "clique node " << v;
  EXPECT_EQ(cores[4], 1U);
  EXPECT_EQ(cores[5], 1U);
  EXPECT_EQ(degeneracy(graph), 3U);
}

TEST(CoreNumbers, EmptyAndIsolated) {
  GraphBuilder builder;
  builder.reserve_nodes(3);
  const auto cores = core_numbers(builder.build());
  for (const auto c : cores) EXPECT_EQ(c, 0U);
}

TEST(DegreeHistogram, CountsMatch) {
  const Graph graph = test::star_graph(5, 1.0);  // center out-deg 4, leaves 0
  const auto histogram = out_degree_histogram(graph);
  ASSERT_EQ(histogram.size(), 5U);
  EXPECT_EQ(histogram[0], 4U);
  EXPECT_EQ(histogram[4], 1U);
}

TEST(PowerLaw, DetectsHeavyTailInBa) {
  Rng rng(2);
  BarabasiAlbertConfig config;
  config.nodes = 3000;
  config.attach = 4;
  const Graph graph(config.nodes, barabasi_albert_edges(config, rng));
  const double exponent = power_law_exponent_mle(graph, 5);
  // BA degree distribution has exponent ~3.
  EXPECT_GT(exponent, 1.8);
  EXPECT_LT(exponent, 4.5);
}

TEST(PowerLaw, DegenerateReturnsZero) {
  const Graph graph = test::path_graph(5, 1.0);
  EXPECT_DOUBLE_EQ(power_law_exponent_mle(graph, 10), 0.0);
}

}  // namespace
}  // namespace imc
