#include <gtest/gtest.h>

#include "util/logging.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Keep test output clean; individual tests may lower the level.
  imc::Logger::instance().set_level(imc::LogLevel::kError);
  return RUN_ALL_TESTS();
}
