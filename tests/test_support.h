// Shared fixtures and tiny deterministic graphs for the test suite.
#pragma once

#include <algorithm>
#include <vector>

#include "community/community_set.h"
#include "community/threshold_policy.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace imc::test {

/// Directed path 0 -> 1 -> ... -> n-1, all weights `w`.
inline Graph path_graph(NodeId n, double w = 1.0) {
  GraphBuilder builder;
  builder.reserve_nodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1, w);
  return builder.build();
}

/// Star with center 0 pointing at leaves 1..n-1, weights `w`.
inline Graph star_graph(NodeId n, double w = 1.0) {
  GraphBuilder builder;
  builder.reserve_nodes(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v, w);
  return builder.build();
}

/// Directed cycle over n nodes, weights `w`.
inline Graph cycle_graph(NodeId n, double w = 1.0) {
  GraphBuilder builder;
  builder.reserve_nodes(n);
  for (NodeId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n, w);
  return builder.build();
}

/// Complete digraph (all ordered pairs), weights `w`.
inline Graph complete_graph(NodeId n, double w = 1.0) {
  GraphBuilder builder;
  builder.reserve_nodes(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) builder.add_edge(a, b, w);
    }
  }
  return builder.build();
}

/// Communities by contiguous chunks of `size`, unit benefits, h = 1.
inline CommunitySet chunk_communities(NodeId node_count, NodeId size) {
  std::vector<std::vector<NodeId>> groups;
  for (NodeId begin = 0; begin < node_count; begin += size) {
    auto& group = groups.emplace_back();
    for (NodeId v = begin; v < std::min<NodeId>(begin + size, node_count);
         ++v) {
      group.push_back(v);
    }
  }
  return CommunitySet(node_count, std::move(groups));
}

/// The non-submodularity gadget used across objective tests: community
/// {x=2, y=3} with threshold 2; seeds a=0, b=1 each pointing at both
/// members with probability `w`.
///   c({a}) = w²; c({a,b}) = (1-(1-w)²)².
/// With w = 0.3: c({a}) = 0.09, c({a,b}) = 0.2601 > 2·0.09.
struct NonSubmodularGadget {
  Graph graph;
  CommunitySet communities;

  explicit NonSubmodularGadget(double w = 0.3) {
    GraphBuilder builder;
    builder.reserve_nodes(4);
    builder.add_edge(0, 2, w).add_edge(0, 3, w);
    builder.add_edge(1, 2, w).add_edge(1, 3, w);
    graph = builder.build();
    communities = CommunitySet(4, {{2, 3}});
    communities.set_threshold(0, 2);
  }
};

}  // namespace imc::test
