// Full-pipeline integration under the Linear Threshold model: dataset
// stand-in -> Louvain communities -> IMCAF(LT) -> independent LT scoring,
// mirroring end_to_end_test.cpp for the paper's §II-A model extension.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/imcaf.h"
#include "core/maf.h"
#include "core/problem.h"
#include "core/ubg.h"
#include "diffusion/lt_model.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/dataset_catalog.h"

namespace imc {
namespace {

class LtPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(make_dataset(DatasetId::kWikiVote, 0.1));
    CommunityBuildConfig config;
    config.method = CommunityMethod::kLouvain;
    config.size_cap = 8;
    config.regime = ThresholdRegime::kConstantBounded;
    config.threshold_constant = 2;
    communities_ = new CommunitySet(build_communities(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete communities_;
    delete graph_;
    communities_ = nullptr;
    graph_ = nullptr;
  }
  static Graph* graph_;
  static CommunitySet* communities_;
};

Graph* LtPipelineTest::graph_ = nullptr;
CommunitySet* LtPipelineTest::communities_ = nullptr;

TEST_F(LtPipelineTest, WeightedCascadeIsLtAdmissible) {
  EXPECT_TRUE(lt_weights_valid(*graph_));
}

TEST_F(LtPipelineTest, UbgUnderLtBeatsRandomUnderLt) {
  UbgSolver solver;
  ImcafConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  config.max_samples = 8000;
  const ImcafResult result =
      imcaf_solve(*graph_, *communities_, 8, solver, config);
  ASSERT_FALSE(result.seeds.empty());

  MonteCarloOptions mc;
  mc.simulations = 8000;
  mc.model = DiffusionModel::kLinearThreshold;
  const double ours =
      mc_expected_benefit(*graph_, *communities_, result.seeds, mc);

  Rng rng(3);
  double random_best = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto seeds =
        rng.sample_without_replacement(graph_->node_count(), 8);
    random_best = std::max(
        random_best,
        mc_expected_benefit(*graph_, *communities_, seeds, mc));
  }
  EXPECT_GE(ours, random_best * 0.95);
}

TEST_F(LtPipelineTest, LtAndIcPickOverlappingButDifferentSeeds) {
  MafSolver solver;
  ImcafConfig ic_config;
  ic_config.max_samples = 6000;
  ImcafConfig lt_config = ic_config;
  lt_config.model = DiffusionModel::kLinearThreshold;
  const ImcafResult ic =
      imcaf_solve(*graph_, *communities_, 10, solver, ic_config);
  const ImcafResult lt =
      imcaf_solve(*graph_, *communities_, 10, solver, lt_config);
  EXPECT_FALSE(ic.seeds.empty());
  EXPECT_FALSE(lt.seeds.empty());
  // Both target the same communities at this scale; exact seed identity is
  // not required, only that each pipeline produced sane budgets.
  EXPECT_LE(ic.seeds.size(), 10U);
  EXPECT_LE(lt.seeds.size(), 10U);
}

TEST_F(LtPipelineTest, EstimatesAgreeWithForwardLtSimulation) {
  MafSolver solver;
  ImcafConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  config.max_samples = 8000;
  const ImcafResult result =
      imcaf_solve(*graph_, *communities_, 6, solver, config);
  MonteCarloOptions mc;
  mc.simulations = 20000;
  mc.model = DiffusionModel::kLinearThreshold;
  const double truth =
      mc_expected_benefit(*graph_, *communities_, result.seeds, mc);
  EXPECT_NEAR(result.estimated_benefit, truth,
              std::max(2.0, truth * 0.2));
}

}  // namespace
}  // namespace imc
