// End-to-end pipeline tests: dataset stand-in -> community formation ->
// IMCAF with each solver -> independent evaluation, mirroring the paper's
// experimental flow (§VI) at a miniature scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baselines/hbc.h"
#include "core/baselines/im_ris.h"
#include "core/baselines/ks.h"
#include "core/imcaf.h"
#include "core/problem.h"
#include "core/ubg.h"
#include "core/maf.h"
#include "diffusion/monte_carlo.h"
#include "estimation/benefit_oracle.h"
#include "graph/generators/dataset_catalog.h"

namespace imc {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(make_dataset(DatasetId::kFacebook, 0.25));
    CommunityBuildConfig config;
    config.method = CommunityMethod::kLouvain;
    config.size_cap = 8;
    config.regime = ThresholdRegime::kConstantBounded;
    config.threshold_constant = 2;
    communities_ = new CommunitySet(build_communities(*graph_, config));
  }
  static void TearDownTestSuite() {
    delete communities_;
    delete graph_;
    communities_ = nullptr;
    graph_ = nullptr;
  }

  static Graph* graph_;
  static CommunitySet* communities_;
};

Graph* EndToEndTest::graph_ = nullptr;
CommunitySet* EndToEndTest::communities_ = nullptr;

TEST_F(EndToEndTest, CommunityPipelineIsValid) {
  EXPECT_GT(communities_->size(), 10U);
  EXPECT_EQ(communities_->node_count(), graph_->node_count());
  EXPECT_EQ(communities_->max_threshold(), 2U);
  // Population benefits.
  for (CommunityId c = 0; c < std::min<CommunityId>(communities_->size(), 20);
       ++c) {
    EXPECT_DOUBLE_EQ(communities_->benefit(c),
                     static_cast<double>(communities_->population(c)));
    EXPECT_LE(communities_->population(c), 8U);
  }
  EXPECT_NEAR(communities_->coverage(), 1.0, 1e-12);  // Louvain covers all
}

TEST_F(EndToEndTest, UbgBeatsHeuristicBaselines) {
  const std::uint32_t k = 10;
  UbgSolver solver;
  ImcafConfig config;
  config.max_samples = 12000;
  const ImcafResult ubg =
      imcaf_solve(*graph_, *communities_, k, solver, config);

  Rng rng(17);
  const auto hbc = hbc_select(*graph_, *communities_, k);
  const auto ks = ks_select(*communities_, k, rng);

  MonteCarloOptions mc;
  mc.simulations = 8000;
  const double ubg_value =
      mc_expected_benefit(*graph_, *communities_, ubg.seeds, mc);
  const double hbc_value =
      mc_expected_benefit(*graph_, *communities_, hbc, mc);
  const double ks_value = mc_expected_benefit(*graph_, *communities_, ks, mc);

  // The paper's headline ordering (with slack for MC noise at this scale).
  EXPECT_GE(ubg_value * 1.05, hbc_value);
  EXPECT_GE(ubg_value * 1.05, ks_value);
  EXPECT_GT(ubg_value, 0.0);
}

TEST_F(EndToEndTest, MafRunsFastAndReasonably) {
  const std::uint32_t k = 10;
  MafSolver solver;
  ImcafConfig config;
  config.max_samples = 12000;
  const ImcafResult maf =
      imcaf_solve(*graph_, *communities_, k, solver, config);
  EXPECT_FALSE(maf.seeds.empty());
  MonteCarloOptions mc;
  mc.simulations = 6000;
  EXPECT_GT(mc_expected_benefit(*graph_, *communities_, maf.seeds, mc), 0.0);
}

TEST_F(EndToEndTest, RegularThresholdRegimeWorksToo) {
  CommunityBuildConfig config;
  config.method = CommunityMethod::kRandom;
  config.size_cap = 8;
  config.regime = ThresholdRegime::kFractionOfPopulation;
  config.threshold_fraction = 0.5;
  const CommunitySet regular = build_communities(*graph_, config);
  EXPECT_GT(regular.size(), 10U);

  UbgSolver solver;
  ImcafConfig imcaf_config;
  imcaf_config.max_samples = 8000;
  const ImcafResult result =
      imcaf_solve(*graph_, regular, 8, solver, imcaf_config);
  EXPECT_EQ(result.seeds.size(), 8U);
  EXPECT_GT(result.estimated_benefit, 0.0);
}

TEST_F(EndToEndTest, BenefitOracleConsistentWithMonteCarlo) {
  const auto seeds = hbc_select(*graph_, *communities_, 6);
  BenefitOracle oracle(*graph_, *communities_);
  MonteCarloOptions mc;
  mc.simulations = 20000;
  const double truth = mc_expected_benefit(*graph_, *communities_, seeds, mc);
  EXPECT_NEAR(oracle.benefit(seeds), truth, std::max(1.0, truth * 0.2));
}

TEST_F(EndToEndTest, ImBaselineOptimizesSpreadNotBenefit) {
  const ImRisConfig config;
  const ImRisResult im = im_ris_select(*graph_, 10, config);
  EXPECT_EQ(im.seeds.size(), 10U);
  EXPECT_GT(im.estimated_spread, 10.0);
  // Its community benefit is measurable but need not beat UBG.
  MonteCarloOptions mc;
  mc.simulations = 4000;
  EXPECT_GE(mc_expected_benefit(*graph_, *communities_, im.seeds, mc), 0.0);
}

TEST_F(EndToEndTest, LouvainVersusRandomCommunitiesBothSolvable) {
  for (const CommunityMethod method :
       {CommunityMethod::kLouvain, CommunityMethod::kRandom}) {
    CommunityBuildConfig config;
    config.method = method;
    config.size_cap = 6;
    config.regime = ThresholdRegime::kConstantBounded;
    const CommunitySet communities = build_communities(*graph_, config);
    MafSolver solver;
    ImcafConfig imcaf_config;
    imcaf_config.max_samples = 4000;
    const ImcafResult result =
        imcaf_solve(*graph_, communities, 6, solver, imcaf_config);
    EXPECT_FALSE(result.seeds.empty()) << to_string(method);
  }
}

}  // namespace
}  // namespace imc
