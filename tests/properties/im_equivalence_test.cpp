// When every community is a singleton with h = 1 and b = 1, IMC collapses
// to classic influence maximization: c(S) = E[#influenced communities]
// = expected spread over community members. With ALL nodes as singletons,
// c(S) = σ(S) exactly, RIC sampling degenerates to RIS, and ĉ_R and ν_R
// coincide (Lemma 4). This suite pins that degeneration down — it is the
// paper's "IM is a special case of IMC" claim made executable.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines/im_ris.h"
#include "core/greedy.h"
#include "core/ubg.h"
#include "diffusion/monte_carlo.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "sampling/rr_set.h"
#include "test_support.h"

namespace imc {
namespace {

Graph im_graph() {
  Rng rng(2718);
  BarabasiAlbertConfig config;
  config.nodes = 70;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  return Graph(config.nodes, edges);
}

CommunitySet singleton_communities(NodeId n) {
  std::vector<std::vector<NodeId>> groups;
  groups.reserve(n);
  for (NodeId v = 0; v < n; ++v) groups.push_back({v});
  return CommunitySet(n, std::move(groups));  // h = 1, b = 1 defaults
}

TEST(ImEquivalence, BenefitEqualsSpread) {
  const Graph graph = im_graph();
  const CommunitySet singletons = singleton_communities(graph.node_count());
  MonteCarloOptions mc;
  mc.simulations = 30000;
  const std::vector<NodeId> seeds{0, 5, 11};
  const double spread = mc_expected_spread(graph, seeds, mc);
  const double benefit = mc_expected_benefit(graph, singletons, seeds, mc);
  // Identical per-run values under the same seed (both count active nodes).
  EXPECT_NEAR(benefit, spread, 1e-9);
}

TEST(ImEquivalence, RicEstimateMatchesRisEstimate) {
  const Graph graph = im_graph();
  const CommunitySet singletons = singleton_communities(graph.node_count());

  RicPool ric(graph, singletons);
  ric.grow(40000, 31);
  RrPool ris(graph);
  Rng rng(31);
  ris.generate(40000, rng);

  const std::vector<NodeId> seeds{0, 9, 23, 41};
  const double via_ric = ric.c_hat(seeds);
  const double via_ris = ris.estimate_spread(seeds);
  EXPECT_NEAR(via_ric, via_ris, std::max(1.0, via_ris * 0.05));
}

TEST(ImEquivalence, NuCollapsesOntoCHat) {
  const Graph graph = im_graph();
  const CommunitySet singletons = singleton_communities(graph.node_count());
  RicPool pool(graph, singletons);
  pool.grow(5000, 37);
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seeds = rng.sample_without_replacement(graph.node_count(), 6);
    EXPECT_NEAR(pool.nu(seeds), pool.c_hat(seeds), 1e-9);
  }
}

TEST(ImEquivalence, UbgSeedsMatchImQuality) {
  const Graph graph = im_graph();
  const CommunitySet singletons = singleton_communities(graph.node_count());
  RicPool pool(graph, singletons);
  pool.grow(20000, 43);
  const UbgSolution ubg = ubg_solve(pool, 5);
  const ImRisResult im = im_ris_select(graph, 5);

  MonteCarloOptions mc;
  mc.simulations = 20000;
  const double ubg_spread = mc_expected_spread(graph, ubg.seeds, mc);
  const double im_spread = mc_expected_spread(graph, im.seeds, mc);
  EXPECT_NEAR(ubg_spread, im_spread, std::max(1.5, im_spread * 0.08));
}

TEST(ImEquivalence, SandwichRatioIsExactlyOne) {
  const Graph graph = im_graph();
  const CommunitySet singletons = singleton_communities(graph.node_count());
  RicPool pool(graph, singletons);
  pool.grow(3000, 47);
  const UbgSolution ubg = ubg_solve(pool, 4);
  EXPECT_NEAR(ubg.sandwich_ratio, 1.0, 1e-9);
}

}  // namespace
}  // namespace imc
