// Property sweep for the recursive BT(d) extension (paper §IV-C):
// on instances with thresholds <= 3, BT(3) must satisfy
//   ĉ(BT(3)) >= (1 − 1/e)/k² · ĉ(OPT)
// and never crash / return malformed seed sets.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "community/threshold_policy.h"
#include "core/brute_force.h"
#include "core/bt.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

using Param = std::tuple<int /*seed*/, int /*threshold*/>;

class BtRecursiveTest : public ::testing::TestWithParam<Param> {};

TEST_P(BtRecursiveTest, DepthBoundHolds) {
  const auto [seed, threshold] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  BarabasiAlbertConfig config;
  config.nodes = 15;
  config.attach = 2;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_uniform_weights(edges, 0.4);
  const Graph graph(config.nodes, edges);
  CommunitySet communities = test::chunk_communities(15, 5);
  apply_constant_thresholds(communities,
                            static_cast<std::uint32_t>(threshold));
  RicPool pool(graph, communities);
  pool.grow(120, static_cast<std::uint64_t>(seed));

  const std::uint32_t k = 3;
  BtConfig bt_config;
  bt_config.depth = static_cast<std::uint32_t>(threshold);
  const BtSolution bt = bt_solve(pool, k, bt_config);

  // Structure checks.
  EXPECT_LE(bt.seeds.size(), k);
  const std::set<NodeId> unique(bt.seeds.begin(), bt.seeds.end());
  EXPECT_EQ(unique.size(), bt.seeds.size());

  // Theoretical bound vs brute force: α = (1 − 1/e)/k^{d−1}.
  const BruteForceResult opt = brute_force_maxr(pool, k, 50'000'000);
  double alpha = 1.0 - 1.0 / 2.718281828;
  for (int d = 2; d <= threshold; ++d) alpha /= static_cast<double>(k);
  EXPECT_GE(bt.c_hat + 1e-9, alpha * opt.c_hat);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BtRecursiveTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MaxrFactory, CoversEveryAlgorithm) {
  const test::NonSubmodularGadget gadget(0.4);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(200, 3);
  for (const MaxrAlgorithm algorithm :
       {MaxrAlgorithm::kUbg, MaxrAlgorithm::kMaf, MaxrAlgorithm::kBt,
        MaxrAlgorithm::kMb}) {
    const auto solver = make_maxr_solver(algorithm);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), to_string(algorithm));
    const double alpha = solver->alpha(pool, 2);
    EXPECT_GT(alpha, 0.0);
    EXPECT_LE(alpha, 1.0);
    const MaxrSolution solution = solver->solve(pool, 2);
    EXPECT_FALSE(solution.seeds.empty());
    EXPECT_NEAR(solution.c_hat, pool.c_hat(solution.seeds), 1e-12);
  }
}

}  // namespace
}  // namespace imc
