// Empirical validation of the Lemma 6 tail bounds: on the analytic gadget
// (where c(S) is known in closed form) the fraction of RIC pools whose
// estimate ĉ_R(S) deviates beyond (1 ± ε)·c(S) must not exceed the
// martingale bound (plus statistical slack).
#include <gtest/gtest.h>

#include <cmath>

#include "estimation/concentration.h"
#include "sampling/ric_pool.h"
#include "test_support.h"

namespace imc {
namespace {

TEST(Lemma6Empirical, UpperAndLowerTailRates) {
  const test::NonSubmodularGadget gadget(0.5);
  // c({a, b}) = (1 - 0.25)² = 0.5625, b = 1.
  const double c_exact = 0.5625;
  const std::vector<NodeId> seeds{0, 1};

  constexpr double kEps = 0.2;
  constexpr std::uint64_t kPoolSize = 300;
  constexpr int kTrials = 400;

  int upper_violations = 0;
  int lower_violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RicPool pool(gadget.graph, gadget.communities);
    pool.grow(kPoolSize, 0x1e44a6 + static_cast<std::uint64_t>(trial));
    const double estimate = pool.c_hat(seeds);
    if (estimate > (1.0 + kEps) * c_exact) ++upper_violations;
    if (estimate < (1.0 - kEps) * c_exact) ++lower_violations;
  }

  const double upper_bound =
      lemma6_upper_tail(kPoolSize, kEps, 1.0, c_exact);
  const double lower_bound =
      lemma6_lower_tail(kPoolSize, kEps, 1.0, c_exact);
  // Allow 3-sigma binomial slack on the empirical rates.
  const auto slack = [&](double bound) {
    return bound + 3.0 * std::sqrt(bound * (1.0 - bound) / kTrials) + 0.01;
  };
  EXPECT_LE(static_cast<double>(upper_violations) / kTrials,
            slack(upper_bound));
  EXPECT_LE(static_cast<double>(lower_violations) / kTrials,
            slack(lower_bound));
}

TEST(Lemma6Empirical, EstimatorIsUnbiasedAcrossPools) {
  const test::NonSubmodularGadget gadget(0.5);
  const double c_exact = 0.5625;
  const std::vector<NodeId> seeds{0, 1};
  double total = 0.0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    RicPool pool(gadget.graph, gadget.communities);
    pool.grow(200, 0xBAE5 + static_cast<std::uint64_t>(trial) * 7);
    total += pool.c_hat(seeds);
  }
  EXPECT_NEAR(total / kTrials, c_exact, 0.02);
}

}  // namespace
}  // namespace imc
