// Property-based checks of the paper's structural results (Lemmas 2-5,
// non-submodularity, monotonicity) swept across random instances with
// TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "community/threshold_policy.h"
#include "core/objective.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "test_support.h"

namespace imc {
namespace {

// Parameter: (rng seed, community size cap, constant threshold, model).
using PropertyParam = std::tuple<int, int, int, DiffusionModel>;

class PoolPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    const auto [seed, cap, threshold, model] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 1000 + 17);
    BarabasiAlbertConfig config;
    config.nodes = 48;
    config.attach = 2;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    graph_ = Graph(config.nodes, edges);
    communities_ = test::chunk_communities(config.nodes,
                                           static_cast<NodeId>(cap));
    apply_population_benefits(communities_);
    apply_constant_thresholds(communities_,
                              static_cast<std::uint32_t>(threshold));
    pool_ = std::make_unique<RicPool>(graph_, communities_, model);
    pool_->grow(400, static_cast<std::uint64_t>(seed));
    rng_ = Rng(static_cast<std::uint64_t>(seed) + 99);
  }

  /// Random seed set of the given size.
  std::vector<NodeId> random_seeds(std::uint32_t count) {
    return rng_.sample_without_replacement(graph_.node_count(), count);
  }

  Graph graph_;
  CommunitySet communities_;
  std::unique_ptr<RicPool> pool_;
  Rng rng_{0};
};

TEST_P(PoolPropertyTest, CHatIsMonotone) {
  for (int trial = 0; trial < 10; ++trial) {
    auto big = random_seeds(8);
    std::vector<NodeId> small(big.begin(), big.begin() + 4);
    EXPECT_LE(pool_->c_hat(small), pool_->c_hat(big) + 1e-12);
  }
}

TEST_P(PoolPropertyTest, NuIsMonotone) {
  for (int trial = 0; trial < 10; ++trial) {
    auto big = random_seeds(8);
    std::vector<NodeId> small(big.begin(), big.begin() + 4);
    EXPECT_LE(pool_->nu(small), pool_->nu(big) + 1e-12);
  }
}

TEST_P(PoolPropertyTest, Lemma3NuUpperBoundsCHat) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto seeds = random_seeds(1 + trial % 8);
    EXPECT_GE(pool_->nu(seeds) + 1e-12, pool_->c_hat(seeds));
  }
}

TEST_P(PoolPropertyTest, Lemma4EqualityAtThresholdOne) {
  const auto [seed, cap, threshold, model] = GetParam();
  (void)seed;
  (void)cap;
  (void)model;
  if (threshold != 1) GTEST_SKIP() << "only the h = 1 leg";
  for (int trial = 0; trial < 10; ++trial) {
    const auto seeds = random_seeds(1 + trial % 8);
    EXPECT_NEAR(pool_->nu(seeds), pool_->c_hat(seeds), 1e-9);
  }
}

TEST_P(PoolPropertyTest, NuIsSubmodular) {
  // ν(S ∪ {v}) − ν(S) >= ν(T ∪ {v}) − ν(T) for S ⊆ T, v ∉ T.
  for (int trial = 0; trial < 12; ++trial) {
    const auto base = random_seeds(7);
    const std::vector<NodeId> s(base.begin(), base.begin() + 3);
    const std::vector<NodeId> t(base.begin(), base.begin() + 6);
    const NodeId v = base[6];
    auto with = [&](std::vector<NodeId> set) {
      set.push_back(v);
      return set;
    };
    const double gain_s = pool_->nu(with(s)) - pool_->nu(s);
    const double gain_t = pool_->nu(with(t)) - pool_->nu(t);
    EXPECT_GE(gain_s + 1e-9, gain_t);
  }
}

TEST_P(PoolPropertyTest, CoverageStateAgreesWithPoolOnRandomSets) {
  for (int trial = 0; trial < 6; ++trial) {
    const auto seeds = random_seeds(5);
    CoverageState state(*pool_);
    for (const NodeId v : seeds) state.add_seed(v);
    EXPECT_NEAR(state.c_hat(), pool_->c_hat(seeds), 1e-12);
    EXPECT_NEAR(state.nu(), pool_->nu(seeds), 1e-12);
  }
}

TEST_P(PoolPropertyTest, Lemma5SandwichOnInfluencedCount) {
  // max_u |D(S,u)| <= Σ_g X_g(S) <= Σ_u |D(S,u)|.
  for (int trial = 0; trial < 6; ++trial) {
    const auto seeds = random_seeds(5);
    const std::uint64_t influenced = pool_->influenced_count(seeds);

    std::uint64_t max_d = 0, sum_d = 0;
    for (const NodeId u : seeds) {
      // D(S, u): samples u touches that S influences.
      std::uint64_t d = 0;
      for (const RicPool::Touch& touch : pool_->touches_of(u)) {
        const RicSample& g = pool_->sample(touch.sample);
        if (g.members_reached(seeds) >= g.threshold) ++d;
      }
      max_d = std::max(max_d, d);
      sum_d += d;
    }
    EXPECT_LE(max_d, influenced);
    EXPECT_LE(influenced, sum_d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoolPropertyTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),  // seeds
        ::testing::Values(4, 6),        // community cap
        ::testing::Values(1, 2, 3),     // threshold
        ::testing::Values(DiffusionModel::kIndependentCascade,
                          DiffusionModel::kLinearThreshold)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_cap" +
             std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ==
                      DiffusionModel::kIndependentCascade
                  ? "_ic"
                  : "_lt");
    });

// --- Lemma 2's explicit instance ------------------------------------------

TEST(PaperLemma2, SingleSampleCounterexample) {
  // A RIC sample whose community {u, v} has h = 2 and R(u) = {u},
  // R(v) = {v}: ĉ({u}) = ĉ({v}) = 0 but ĉ({u,v}) = 1 — non-submodular.
  GraphBuilder builder;
  builder.reserve_nodes(2);
  const Graph graph = builder.build();  // no edges
  CommunitySet communities(2, {{0, 1}});
  communities.set_threshold(0, 2);
  RicPool pool(graph, communities);
  pool.grow(1, 7);

  const std::vector<NodeId> u{0}, v{1}, uv{0, 1}, empty{};
  EXPECT_DOUBLE_EQ(pool.c_hat(u), 0.0);
  EXPECT_DOUBLE_EQ(pool.c_hat(v), 0.0);
  EXPECT_DOUBLE_EQ(pool.c_hat(uv), 1.0);
  // Submodularity would need ĉ({u}) − ĉ(∅) >= ĉ({u,v}) − ĉ({v}).
  EXPECT_LT(pool.c_hat(u) - pool.c_hat(empty),
            pool.c_hat(uv) - pool.c_hat(v));
}

// --- the Fig. 2-style supermodularity gadget -------------------------------

TEST(PaperFig2, CHatExhibitsSupermodularBehavior) {
  const test::NonSubmodularGadget gadget(0.3);
  RicPool pool(gadget.graph, gadget.communities);
  pool.grow(40000, 11);
  const std::vector<NodeId> a{0}, b{1}, ab{0, 1}, empty{};
  const double c_a = pool.c_hat(a);
  const double c_b = pool.c_hat(b);
  const double c_ab = pool.c_hat(ab);
  // Analytic: c({a}) = 0.09, c({a,b}) = 0.2601.
  EXPECT_NEAR(c_a, 0.09, 0.01);
  EXPECT_NEAR(c_ab, 0.2601, 0.015);
  EXPECT_GT(c_ab - c_a, c_b - 0.0 + 0.02);  // violates submodularity
}

}  // namespace
}  // namespace imc
