#include "estimation/dklr_aa.h"

#include <gtest/gtest.h>

#include "diffusion/monte_carlo.h"
#include "test_support.h"
#include "util/rng.h"

namespace imc {
namespace {

TEST(DklrAa, RejectsBadParameters) {
  const auto draw = [] { return 0.5; };
  DklrAaOptions options;
  options.epsilon = 0.0;
  EXPECT_THROW((void)dklr_aa_estimate(draw, options), std::invalid_argument);
  options.epsilon = 0.1;
  options.delta = 1.0;
  EXPECT_THROW((void)dklr_aa_estimate(draw, options), std::invalid_argument);
}

TEST(DklrAa, ExactOnConstantVariable) {
  const auto draw = [] { return 1.0; };
  DklrAaOptions options;
  const DklrAaEstimate estimate = dklr_aa_estimate(draw, options);
  EXPECT_TRUE(estimate.converged);
  EXPECT_NEAR(estimate.value, 1.0, 1e-12);
  // Zero variance: rho collapses to the eps·mu floor.
  EXPECT_LE(estimate.rho_hat, options.epsilon * 1.1);
}

TEST(DklrAa, BernoulliWithinEpsilon) {
  Rng rng(5);
  const double p = 0.3;
  const auto draw = [&rng, p]() -> double { return rng.bernoulli(p) ? 1 : 0; };
  DklrAaOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  const DklrAaEstimate estimate = dklr_aa_estimate(draw, options);
  ASSERT_TRUE(estimate.converged);
  EXPECT_NEAR(estimate.value, p, p * 0.1);
  EXPECT_GT(estimate.samples, 0U);
}

TEST(DklrAa, LowVarianceNeedsFewerPhase3Samples) {
  // Same mean 0.5; Bernoulli(0.5) has variance 0.25, the constant 0.5 has
  // variance 0: the AA should finish the low-variance case with far fewer
  // samples — the whole point of the variance phase.
  Rng rng(7);
  const auto noisy = [&rng]() -> double { return rng.bernoulli(0.5) ? 1 : 0; };
  const auto quiet = []() -> double { return 0.5; };
  DklrAaOptions options;
  options.epsilon = 0.03;
  options.delta = 0.1;
  const DklrAaEstimate noisy_estimate = dklr_aa_estimate(noisy, options);
  const DklrAaEstimate quiet_estimate = dklr_aa_estimate(quiet, options);
  ASSERT_TRUE(noisy_estimate.converged);
  ASSERT_TRUE(quiet_estimate.converged);
  EXPECT_LT(quiet_estimate.samples * 3, noisy_estimate.samples);
}

TEST(DklrAa, BudgetExhaustionReported) {
  Rng rng(9);
  const auto draw = [&rng]() -> double {
    return rng.bernoulli(0.001) ? 1 : 0;
  };
  DklrAaOptions options;
  options.epsilon = 0.01;
  options.max_samples = 500;  // far too few for p = 0.001
  const DklrAaEstimate estimate = dklr_aa_estimate(draw, options);
  EXPECT_FALSE(estimate.converged);
  EXPECT_LE(estimate.samples, 500U);
}

TEST(DklrAa, BenefitMatchesMonteCarlo) {
  const test::NonSubmodularGadget gadget(0.5);
  MonteCarloOptions mc;
  mc.simulations = 80000;
  const std::vector<NodeId> seeds{0, 1};
  const double truth =
      mc_expected_benefit(gadget.graph, gadget.communities, seeds, mc);

  DklrAaOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  const DklrAaEstimate estimate = dklr_aa_estimate_benefit(
      gadget.graph, gadget.communities, seeds, options);
  ASSERT_TRUE(estimate.converged);
  EXPECT_NEAR(estimate.value, truth, truth * 0.12);
}

TEST(DklrAa, EmptyCommunitiesGiveZero) {
  const Graph graph = test::path_graph(3, 0.5);
  CommunitySet communities;
  const std::vector<NodeId> seeds{0};
  const DklrAaEstimate estimate =
      dklr_aa_estimate_benefit(graph, communities, seeds);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
  EXPECT_FALSE(estimate.converged);
}

}  // namespace
}  // namespace imc
