#include "estimation/concentration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace imc {
namespace {

TEST(ApproxParams, PaperSplits) {
  ApproxParams params;  // defaults: ε = δ = 0.2
  EXPECT_DOUBLE_EQ(params.eps1(), 0.1);
  EXPECT_DOUBLE_EQ(params.eps2(), 0.1);
  EXPECT_DOUBLE_EQ(params.delta1(), 0.1);
  EXPECT_DOUBLE_EQ(params.ssa_eps1(), 0.05);
  // Alg. 5 line 3 feasibility: ε1 + ε2 + ε3 + ε1·ε2 <= ε.
  EXPECT_LE(params.ssa_eps1() + params.ssa_eps2() + params.ssa_eps3() +
                params.ssa_eps1() * params.ssa_eps2(),
            params.epsilon + 1e-12);
}

TEST(Lemma6, TailsShrinkWithSamples) {
  const double few = lemma6_upper_tail(100, 0.1, 10.0, 2.0);
  const double many = lemma6_upper_tail(10000, 0.1, 10.0, 2.0);
  EXPECT_LT(many, few);
  EXPECT_LE(many, 1.0);
  EXPECT_GE(many, 0.0);
}

TEST(Lemma6, LowerTailTighterThanUpper) {
  // exp(-Rε²c/2b) <= exp(-Rε²c/3b).
  EXPECT_LE(lemma6_lower_tail(1000, 0.1, 10.0, 2.0),
            lemma6_upper_tail(1000, 0.1, 10.0, 2.0));
}

TEST(Lemma6, DegenerateInputsSaturate) {
  EXPECT_DOUBLE_EQ(lemma6_upper_tail(1000, 0.1, 0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(lemma6_lower_tail(1000, 0.1, 10.0, 0.0), 1.0);
}

TEST(Corollary1, ExactFormula) {
  // 2·b·ln(1/δ)/(ε²·c*) with b=10, c*=2, ε=0.1, δ=0.1.
  const double expected = 2.0 * 10.0 * std::log(10.0) / (0.01 * 2.0);
  EXPECT_NEAR(corollary1_samples(10.0, 2.0, 0.1, 0.1), expected, 1e-6);
}

TEST(Corollary1, RejectsBadArguments) {
  EXPECT_THROW((void)corollary1_samples(0.0, 1.0, 0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)corollary1_samples(1.0, 1.0, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)corollary1_samples(1.0, 1.0, 0.1, 1.5),
               std::invalid_argument);
}

TEST(Corollary2, GrowsWithNAndK) {
  const double base = corollary2_samples(100, 5, 10.0, 2.0, 0.5, 0.1, 0.1);
  EXPECT_GT(corollary2_samples(10000, 5, 10.0, 2.0, 0.5, 0.1, 0.1), base);
  EXPECT_GT(corollary2_samples(100, 20, 10.0, 2.0, 0.5, 0.1, 0.1), base);
}

TEST(Corollary2, ShrinksWithAlpha) {
  const double weak = corollary2_samples(100, 5, 10.0, 2.0, 0.1, 0.1, 0.1);
  const double strong = corollary2_samples(100, 5, 10.0, 2.0, 0.9, 0.1, 0.1);
  EXPECT_GT(weak, strong);
}

TEST(Psi, CombinesBothCorollaries) {
  ApproxParams params;
  const std::uint64_t psi = psi_sample_cap(1000, 10, 100.0, 1.0, 4, 0.5,
                                           params);
  const double c_lower = 1.0 * 10.0 / 4.0;
  const double c1 = corollary1_samples(100.0, c_lower, params.eps1(),
                                       params.delta1());
  const double c2 = corollary2_samples(1000, 10, 100.0, c_lower, 0.5,
                                       params.eps2(), params.delta2());
  EXPECT_EQ(psi, static_cast<std::uint64_t>(std::ceil(std::max(c1, c2))));
}

TEST(Psi, RejectsZeroKOrH) {
  ApproxParams params;
  EXPECT_THROW((void)psi_sample_cap(10, 0, 1.0, 1.0, 1, 0.5, params),
               std::invalid_argument);
  EXPECT_THROW((void)psi_sample_cap(10, 1, 1.0, 1.0, 0, 0.5, params),
               std::invalid_argument);
}

TEST(Psi, SaturatesInsteadOfOverflowing) {
  ApproxParams params;
  // Absurdly weak alpha drives the bound sky-high; must not overflow.
  const std::uint64_t psi =
      psi_sample_cap(1'000'000, 100, 1e9, 1e-9, 64, 1e-12, params);
  EXPECT_GT(psi, 0U);
}

TEST(SsaLambda, MatchesFormula) {
  ApproxParams params;  // ε3 = 0.05, δ = 0.2
  const double expected = (1.05) * (1.05) * (3.0 / 0.0025) *
                          std::log(3.0 / 0.4);
  EXPECT_NEAR(ssa_lambda(params), expected, 1e-9);
}

TEST(DagumLambdaPrime, MatchesFormula) {
  const double expected =
      1.0 + 4.0 * (std::exp(1.0) - 2.0) * std::log(2.0 / 0.1) * 1.1 / 0.01;
  EXPECT_NEAR(dagum_lambda_prime(0.1, 0.1), expected, 1e-9);
  EXPECT_THROW((void)dagum_lambda_prime(0.0, 0.1), std::invalid_argument);
}

TEST(DagumLambdaPrime, TighterEpsNeedsMoreSamples) {
  EXPECT_GT(dagum_lambda_prime(0.01, 0.1), dagum_lambda_prime(0.1, 0.1));
  EXPECT_GT(dagum_lambda_prime(0.1, 0.01), dagum_lambda_prime(0.1, 0.1));
}

}  // namespace
}  // namespace imc
