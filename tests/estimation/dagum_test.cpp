#include "estimation/dagum.h"

#include <gtest/gtest.h>

#include <atomic>

#include "community/threshold_policy.h"
#include "diffusion/monte_carlo.h"
#include "estimation/concentration.h"
#include "test_support.h"
#include "util/context.h"

namespace imc {
namespace {

TEST(Dagum, ExactOnDeterministicInstance) {
  // Certain path: seeding node 0 influences both singleton communities
  // every time, so c(S) = total benefit exactly.
  const Graph graph = test::path_graph(6, 1.0);
  CommunitySet communities(6, {{2}, {5}});
  communities.set_benefit(0, 2.0);
  communities.set_benefit(1, 3.0);
  const std::vector<NodeId> seeds{0};
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds);
  EXPECT_TRUE(estimate.converged);
  // The stopping rule returns b·Λ'/T with T = ceil(Λ') here, so the value
  // sits a hair below b; allow that quantization.
  EXPECT_NEAR(estimate.value, 5.0, 0.01);
}

TEST(Dagum, WithinEpsilonOfMonteCarlo) {
  const test::NonSubmodularGadget gadget(0.5);
  MonteCarloOptions mc;
  mc.simulations = 80000;
  const std::vector<NodeId> seeds{0, 1};
  const double truth =
      mc_expected_benefit(gadget.graph, gadget.communities, seeds, mc);

  DagumOptions options;
  options.eps_prime = 0.05;
  options.delta_prime = 0.05;
  const DagumEstimate estimate =
      dagum_estimate_benefit(gadget.graph, gadget.communities, seeds, options);
  ASSERT_TRUE(estimate.converged);
  EXPECT_NEAR(estimate.value, truth, truth * 0.12);
}

TEST(Dagum, ZeroBenefitSeedNeverConverges) {
  // Seeds that influence nothing: the stopping rule cannot accumulate
  // influenced samples and must hit T_max.
  const Graph graph = test::path_graph(4, 0.0);
  CommunitySet communities(4, {{3}});
  const std::vector<NodeId> seeds{0};  // no way to reach node 3
  DagumOptions options;
  options.max_samples = 2000;
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds, options);
  EXPECT_FALSE(estimate.converged);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
  EXPECT_EQ(estimate.samples, 2000U);
}

TEST(Dagum, TinyBudgetFallsBackToRunningMean) {
  const Graph graph = test::path_graph(4, 1.0);
  CommunitySet communities(4, {{3}});
  const std::vector<NodeId> seeds{0};
  DagumOptions options;
  options.max_samples = 5;  // far below Λ'
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds, options);
  EXPECT_FALSE(estimate.converged);
  // Every sample is influenced, so the running mean is exactly b.
  EXPECT_NEAR(estimate.value, 1.0, 1e-9);
}

TEST(Dagum, SampleCountNearLambdaPrimeOverMean) {
  // For a Bernoulli(p) benefit, T ≈ Λ'/p.
  GraphBuilder builder;
  builder.add_edge(0, 1, 0.25);
  const Graph graph = builder.build();
  CommunitySet communities(2, {{1}});
  const std::vector<NodeId> seeds{0};
  DagumOptions options;
  options.eps_prime = 0.1;
  options.delta_prime = 0.1;
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds, options);
  ASSERT_TRUE(estimate.converged);
  const double lambda_prime = dagum_lambda_prime(0.1, 0.1);
  EXPECT_NEAR(static_cast<double>(estimate.samples), lambda_prime / 0.25,
              lambda_prime / 0.25 * 0.2);
}

TEST(Dagum, RejectsOutOfRangeSeed) {
  const Graph graph = test::path_graph(3, 0.5);
  CommunitySet communities(3, {{2}});
  const std::vector<NodeId> seeds{10};
  EXPECT_THROW((void)dagum_estimate_benefit(graph, communities, seeds),
               std::out_of_range);
}

TEST(Dagum, InactiveContextIsBitIdentical) {
  // The context overload with no deadline/cancellation must not perturb
  // the draw sequence — the two overloads share one implementation.
  const test::NonSubmodularGadget gadget(0.5);
  const std::vector<NodeId> seeds{0, 1};
  DagumOptions options;
  options.max_samples = 5000;
  const DagumEstimate plain =
      dagum_estimate_benefit(gadget.graph, gadget.communities, seeds,
                             options);
  const ExecutionContext context;  // inactive deadline, no cancel flag
  const DagumEstimate with_context = dagum_estimate_benefit(
      gadget.graph, gadget.communities, seeds, options, context);
  EXPECT_EQ(plain.value, with_context.value);
  EXPECT_EQ(plain.samples, with_context.samples);
  EXPECT_EQ(plain.converged, with_context.converged);
  EXPECT_FALSE(with_context.reached_deadline);
}

TEST(Dagum, ExpiredDeadlineWindsDownWithPartialEstimate) {
  const test::NonSubmodularGadget gadget(0.5);
  const std::vector<NodeId> seeds{0, 1};
  const DagumOptions options;
  ExecutionContext context;
  context.deadline = Deadline(1e-9);  // effectively already expired
  const DagumEstimate estimate = dagum_estimate_benefit(
      gadget.graph, gadget.communities, seeds, options, context);
  EXPECT_TRUE(estimate.reached_deadline);
  EXPECT_FALSE(estimate.converged);
  // Polling runs every 64 draws, so the wind-down happens within the
  // first polling window.
  EXPECT_LT(estimate.samples, 64U);
}

TEST(Dagum, CancellationFlagStopsDraws) {
  const test::NonSubmodularGadget gadget(0.5);
  const std::vector<NodeId> seeds{0, 1};
  const DagumOptions options;
  const std::atomic<bool> cancel{true};
  ExecutionContext context;
  context.cancel = &cancel;
  const DagumEstimate estimate = dagum_estimate_benefit(
      gadget.graph, gadget.communities, seeds, options, context);
  EXPECT_TRUE(estimate.reached_deadline);
  EXPECT_FALSE(estimate.converged);
  EXPECT_LT(estimate.samples, 64U);
}

TEST(Dagum, EmptyCommunitiesGiveZero) {
  const Graph graph = test::path_graph(3, 0.5);
  CommunitySet communities;
  const std::vector<NodeId> seeds{0};
  const DagumEstimate estimate =
      dagum_estimate_benefit(graph, communities, seeds);
  EXPECT_DOUBLE_EQ(estimate.value, 0.0);
}

}  // namespace
}  // namespace imc
