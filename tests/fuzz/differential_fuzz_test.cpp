// The differential fuzz suite (ctest label `fuzz`).
//
// DifferentialFuzz.Battery is the workhorse: IMC_FUZZ_CASES random
// instances (default 200 + a tiny-instance run biased toward exhaustive
// enumeration), every optimized hot path pitted against its reference
// oracle. On failure the log contains the shrunk instance and a
// self-contained repro snippet; re-run just that case with
// IMC_FUZZ_CASE_SEED=<seed printed in the log>.
//
// The remaining tests check the harness itself: the generator only emits
// valid specs, the shrinker reduces aggressively, and a deliberately
// broken oracle IS caught and shrinks to a hand-sized counterexample.
#include "testing/differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "sampling/ric_pool.h"
#include "testing/instance_gen.h"
#include "testing/reference_oracles.h"
#include "testing/shrink.h"
#include "util/rng.h"

namespace imc::testing {
namespace {

TEST(DifferentialFuzz, Battery) {
  FuzzConfig config = fuzz_config_from_env();
  const std::vector<FuzzCheck> checks = default_checks();

  FuzzReport report = run_differential_fuzz(config, checks, &std::cerr);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cases_run, config.case_seed_override ? 1 : config.cases);

  if (config.case_seed_override) return;  // single-case replay mode

  // Second pass biased toward enumerably tiny instances so the
  // sampler-vs-ground-truth check actually executes often (on the default
  // distribution most cases are too big to enumerate and are skipped).
  FuzzConfig tiny = config;
  tiny.cases = std::max<std::uint32_t>(1, config.cases / 8);
  tiny.base_seed = fuzz_case_seed(config.base_seed, 0xd157ULL);
  tiny.distribution.max_nodes = 6;
  tiny.distribution.max_community_size = 4;
  FuzzReport tiny_report = run_differential_fuzz(tiny, checks, &std::cerr);
  EXPECT_TRUE(tiny_report.ok()) << tiny_report.summary();
  EXPECT_GT(tiny_report.checks_run, 0U);
}

TEST(DifferentialFuzz, GeneratorOnlyEmitsValidSpecs) {
  InstanceDistribution dist;
  Rng rng(0xfab1eULL);
  for (int i = 0; i < 300; ++i) {
    const InstanceSpec spec = random_instance(dist, rng);
    ASSERT_TRUE(spec.valid()) << spec.summary();
    // Building must succeed wherever valid() said yes — valid() exists so
    // the shrinker can pre-filter without exceptions.
    EXPECT_NO_THROW({
      const Graph graph = spec.build_graph();
      const CommunitySet communities = spec.build_communities();
      EXPECT_EQ(graph.node_count(), spec.node_count);
      EXPECT_EQ(communities.size(), spec.groups.size());
    }) << spec.summary();
  }
}

TEST(DifferentialFuzz, GeneratorCoversEveryRegime) {
  InstanceDistribution dist;
  Rng rng(0xc0ffeeULL);
  int lt = 0;
  int mixed_weights = 0;
  std::vector<std::string> topologies;
  for (int i = 0; i < 200; ++i) {
    const InstanceSpec spec = random_instance(dist, rng);
    lt += spec.model == DiffusionModel::kLinearThreshold;
    topologies.push_back(spec.topology);
    const Graph graph = spec.build_graph();
    bool uniform = true;
    for (NodeId v = 0; v < graph.node_count() && uniform; ++v) {
      uniform = graph.in_weights_uniform(v);
    }
    mixed_weights += !uniform;
  }
  EXPECT_GT(lt, 10);
  EXPECT_GT(mixed_weights, 10);  // per-edge Bernoulli fallback exercised
  for (const char* label : {"er", "sbm", "ba"}) {
    EXPECT_NE(std::count(topologies.begin(), topologies.end(), label), 0)
        << label;
  }
}

TEST(DifferentialFuzz, ShrinkerReducesTrivialFailureToMinimum) {
  InstanceDistribution dist;
  Rng rng(0x5777ULL);
  const InstanceSpec spec = random_instance(dist, rng);
  ASSERT_TRUE(spec.valid());
  // A predicate that always fails shrinks as far as validity allows: one
  // node, one single-member community, zero edges.
  const ShrinkResult result = shrink_instance(
      spec, [](const InstanceSpec&, std::uint64_t) { return true; }, 0);
  EXPECT_EQ(result.spec.node_count, 1U);
  EXPECT_EQ(result.spec.groups.size(), 1U);
  EXPECT_TRUE(result.spec.edges.empty());
  EXPECT_TRUE(result.spec.valid());
}

TEST(DifferentialFuzz, ReproSnippetIsSelfContained) {
  InstanceDistribution dist;
  Rng rng(0xabcULL);
  const InstanceSpec spec = random_instance(dist, rng);
  const std::string snippet = repro_snippet(spec, 1234, "pool_layout");
  EXPECT_NE(snippet.find("IMC_FUZZ_CASE_SEED=1234"), std::string::npos);
  EXPECT_NE(snippet.find("imc::Graph graph(node_count, edges);"),
            std::string::npos);
  EXPECT_NE(snippet.find("communities.set_threshold("), std::string::npos);
  EXPECT_NE(snippet.find("pool_layout"), std::string::npos);
}

/// Deliberately broken oracle — the classic off-by-one: a sample counts as
/// influenced one reached member too early. The harness must flag the
/// disagreement with the real evaluator and shrink the counterexample to
/// hand size. This is the in-tree version of the "inject a bug, watch the
/// harness catch it" acceptance test.
std::optional<std::string> off_by_one_check(const InstanceSpec& spec,
                                            std::uint64_t case_seed) {
  const Graph graph = spec.build_graph();
  const CommunitySet communities = spec.build_communities();
  RicPool pool(graph, communities, spec.model);
  pool.grow(24 + case_seed % 9, case_seed, /*parallel=*/false);
  const std::vector<NodeId> seeds{0};
  std::uint64_t broken = 0;
  for (std::uint32_t g = 0; g < pool.size(); ++g) {
    const RicSample sample = pool.sample(g);
    if (sample.members_reached(seeds) + 1 >= sample.threshold) ++broken;
  }
  if (broken != pool.influenced_count(seeds)) {
    return "off-by-one influenced count " + std::to_string(broken) +
           " != " + std::to_string(pool.influenced_count(seeds));
  }
  return std::nullopt;
}

TEST(DifferentialFuzz, HarnessCatchesInjectedOffByOne) {
  FuzzConfig config;
  config.cases = 40;
  config.base_seed = 0xbadc0deULL;
  config.max_failures = 1;
  const std::vector<FuzzCheck> checks{{"off_by_one", off_by_one_check}};

  const FuzzReport report = run_differential_fuzz(config, checks, nullptr);
  ASSERT_FALSE(report.ok())
      << "injected off-by-one was NOT caught in 40 cases";
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.check, "off_by_one");
  // Acceptance bar: the shrunk repro is hand-sized.
  EXPECT_LE(failure.shrunk.node_count, 10U)
      << "shrunk only to: " << failure.shrunk.summary();
  EXPECT_TRUE(failure.shrunk.valid());
  EXPECT_NE(failure.repro.find("IMC_FUZZ_CASE_SEED="), std::string::npos);
  // The shrunk spec must still fail the check — shrinking preserved the bug.
  EXPECT_TRUE(
      off_by_one_check(failure.shrunk, failure.case_seed).has_value());
}

TEST(DifferentialFuzz, CaseSeedOverrideRunsExactlyOneCase) {
  FuzzConfig config;
  config.cases = 50;
  config.case_seed_override = fuzz_case_seed(config.base_seed, 7);
  const std::vector<FuzzCheck> checks{
      {"noop", [](const InstanceSpec&, std::uint64_t)
                   -> std::optional<std::string> { return std::nullopt; }}};
  const FuzzReport report = run_differential_fuzz(config, checks, nullptr);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_run, 1U);
}

}  // namespace
}  // namespace imc::testing
