// Regression pins for the MAXR selection pipeline across memory-layout
// changes: UBG and MAF seed sets on a fixed scenario must stay bit-identical
// to the expectations recorded BEFORE the flat CSR/SoA refactor, for the
// serial path and for parallel sweeps with 1, 2 and 8 workers. Any layout or
// hot-loop change that reorders a tie-break or perturbs a floating-point
// accumulation shows up here as a changed seed vector.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "community/threshold_policy.h"
#include "core/maf.h"
#include "core/ubg.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "sampling/ric_pool.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace imc {
namespace {

class MaxrDeterminismTest : public ::testing::Test {
 protected:
  static Graph make_graph() {
    Rng rng(77);
    BarabasiAlbertConfig config;
    config.nodes = 150;
    config.attach = 3;
    EdgeList edges = barabasi_albert_edges(config, rng);
    apply_weighted_cascade(edges, config.nodes);
    return Graph(config.nodes, edges);
  }

  /// Binds communities_ to threshold h and grows the pool. The pool holds
  /// references to graph_/communities_, so both live in the fixture.
  RicPool make_pool(std::uint32_t h) {
    communities_ = test::chunk_communities(150, 6);
    apply_constant_thresholds(communities_, h);
    apply_population_benefits(communities_);
    RicPool pool(graph_, communities_);
    pool.grow(1200, 11, /*parallel=*/false);
    return pool;
  }

  Graph graph_ = make_graph();
  CommunitySet communities_ = test::chunk_communities(150, 6);
};

/// Runs UBG and MAF at every pinned thread count and checks the seeds.
void expect_pinned_seeds(const RicPool& pool,
                         const std::vector<NodeId>& ubg_expected,
                         const std::vector<NodeId>& maf_expected) {
  for (const unsigned threads : {0U, 1U, 2U, 8U}) {
    ThreadPool workers(threads == 0 ? 1 : threads);
    GreedyOptions options;
    if (threads > 0) {
      options.parallel = true;
      options.pool = &workers;
      options.min_parallel_candidates = 1;  // force the parallel path
    }
    const UbgSolution ubg = ubg_solve(pool, 8, options);
    EXPECT_EQ(ubg.seeds, ubg_expected) << "UBG drifted at threads=" << threads;
    const MafSolution maf = maf_solve(pool, 8, /*seed=*/99, options);
    EXPECT_EQ(maf.seeds, maf_expected) << "MAF drifted at threads=" << threads;
  }
}

// Expected seed sets recorded under RNG contract v2 (geometric-skip
// live-edge realization, kRicSamplerRngContract). These are exact-equality
// pins, not statistical checks: any layout or sampler change that alters
// the per-sample draw sequence must bump the contract version and re-record
// them ONCE, with serial/parallel agreement verified at every thread count.
TEST_F(MaxrDeterminismTest, PinnedSeedsThresholdOne) {
  expect_pinned_seeds(make_pool(1), {1, 3, 0, 8, 10, 44, 37, 109},
                      {1, 3, 0, 10, 6, 8, 2, 4});
}

TEST_F(MaxrDeterminismTest, PinnedSeedsThresholdTwo) {
  expect_pinned_seeds(make_pool(2), {1, 3, 0, 10, 44, 6, 33, 4},
                      {1, 3, 0, 10, 6, 8, 2, 4});
}

// Warm-start pins: resuming after the pool doubles must reproduce the cold
// solve on the grown pool bit-for-bit (the MaxrSolver::resume contract) —
// including the pinned first-stage seeds above on the original pool.
TEST_F(MaxrDeterminismTest, WarmResumeAfterGrowthMatchesColdSolve) {
  const std::vector<std::vector<NodeId>> ubg_stage1 = {
      {1, 3, 0, 8, 10, 44, 37, 109}, {1, 3, 0, 10, 44, 6, 33, 4}};
  const std::vector<NodeId> maf_stage1 = {1, 3, 0, 10, 6, 8, 2, 4};
  for (const std::uint32_t h : {1U, 2U}) {
    RicPool pool = make_pool(h);
    const GreedyOptions options;
    UbgResume ubg_state;
    MafResume maf_state;
    EXPECT_EQ(ubg_resume(pool, 8, options, ubg_state).seeds,
              ubg_stage1[h - 1])
        << "h=" << h;
    EXPECT_EQ(maf_resume(pool, 8, /*seed=*/99, options, maf_state).seeds,
              maf_stage1)
        << "h=" << h;

    pool.grow(1200, 11, /*parallel=*/false);  // 1200 -> 2400 doubling
    const UbgSolution warm = ubg_resume(pool, 8, options, ubg_state);
    const UbgSolution cold = ubg_solve(pool, 8, options);
    EXPECT_EQ(warm.seeds, cold.seeds) << "h=" << h;
    EXPECT_EQ(warm.c_hat, cold.c_hat) << "h=" << h;
    EXPECT_EQ(warm.from_nu.seeds, cold.from_nu.seeds) << "h=" << h;
    EXPECT_EQ(warm.from_nu.nu, cold.from_nu.nu) << "h=" << h;

    const MafSolution maf_warm =
        maf_resume(pool, 8, /*seed=*/99, options, maf_state);
    const MafSolution maf_cold = maf_solve(pool, 8, /*seed=*/99, options);
    EXPECT_EQ(maf_warm.seeds, maf_cold.seeds) << "h=" << h;
    EXPECT_EQ(maf_warm.c_hat, maf_cold.c_hat) << "h=" << h;
  }
}

}  // namespace
}  // namespace imc
