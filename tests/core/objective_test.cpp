#include "core/objective.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "community/threshold_policy.h"
#include "graph/generators/generators.h"
#include "graph/weights.h"
#include "test_support.h"

namespace imc {
namespace {

/// Deterministic fixture: certain edges make every sample identical, so
/// incremental state can be checked exactly.
///   relays: 6 -> {0,1}, 7 -> {2}, 8 -> {2,3}
///   C0 = {0, 1} (h=2), C1 = {2, 3} (h=1)
struct Fixture {
  Graph graph;
  CommunitySet communities;

  Fixture() {
    GraphBuilder builder;
    builder.reserve_nodes(9);
    builder.add_edge(6, 0, 1.0).add_edge(6, 1, 1.0);
    builder.add_edge(7, 2, 1.0);
    builder.add_edge(8, 2, 1.0).add_edge(8, 3, 1.0);
    graph = builder.build();
    communities = CommunitySet(9, {{0, 1}, {2, 3}});
    communities.set_threshold(0, 2);
    communities.set_threshold(1, 1);
  }
};

RicPool make_pool(const Fixture& fixture, std::uint64_t count = 200) {
  RicPool pool(fixture.graph, fixture.communities);
  pool.grow(count, 42);
  return pool;
}

TEST(CoverageState, EmptyState) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  EXPECT_EQ(state.influenced(), 0U);
  EXPECT_DOUBLE_EQ(state.nu_sum(), 0.0);
  EXPECT_DOUBLE_EQ(state.c_hat(), 0.0);
  EXPECT_TRUE(state.seeds().empty());
}

TEST(CoverageState, AddSeedMatchesPoolEvaluation) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  state.add_seed(6);
  state.add_seed(7);
  const std::vector<NodeId> seeds{6, 7};
  EXPECT_EQ(state.influenced(), pool.influenced_count(seeds));
  EXPECT_NEAR(state.c_hat(), pool.c_hat(seeds), 1e-12);
  EXPECT_NEAR(state.nu(), pool.nu(seeds), 1e-12);
}

TEST(CoverageState, MarginalsMatchDifference) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  state.add_seed(7);
  for (const NodeId v : {0U, 1U, 2U, 6U, 8U}) {
    const std::uint64_t predicted = state.marginal_influenced(v);
    const double predicted_nu = state.marginal_nu(v);
    CoverageState copy(pool);
    copy.add_seed(7);
    copy.add_seed(v);
    EXPECT_EQ(copy.influenced() - state.influenced(), predicted)
        << "node " << v;
    EXPECT_NEAR(copy.nu_sum() - state.nu_sum(), predicted_nu, 1e-12);
  }
}

TEST(CoverageState, IdempotentSeedAddition) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  state.add_seed(6);
  const auto influenced = state.influenced();
  state.add_seed(6);
  EXPECT_EQ(state.influenced(), influenced);
  EXPECT_EQ(state.seeds().size(), 1U);
  EXPECT_EQ(state.marginal_influenced(6), 0U);
  EXPECT_DOUBLE_EQ(state.marginal_nu(6), 0.0);
}

TEST(CoverageState, ResetClearsEverything) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  state.add_seed(6);
  state.add_seed(8);
  state.reset();
  EXPECT_EQ(state.influenced(), 0U);
  EXPECT_DOUBLE_EQ(state.nu_sum(), 0.0);
  EXPECT_TRUE(state.seeds().empty());
}

TEST(CoverageState, PartialCoverageCountsInNuOnly) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  // Node 0 covers only member 0 of C0 (h = 2): ĉ gains nothing, ν gains.
  state.add_seed(0);
  const std::uint64_t c0_samples = pool.community_frequency(0);
  EXPECT_EQ(state.influenced(), 0U);
  EXPECT_NEAR(state.nu_sum(), static_cast<double>(c0_samples) * 0.5, 1e-12);
}

TEST(CoverageState, NuAccumulationDoesNotDriftOverManySeeds) {
  // Regression: nu_sum_ used to accumulate raw incremental doubles while
  // RicPool::nu recomputes with a KahanSum — after hundreds of add_seed
  // deltas the two drifted apart. Both sides are compensated now.
  Rng rng(91);
  BarabasiAlbertConfig config;
  config.nodes = 400;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);
  CommunitySet communities = test::chunk_communities(config.nodes, 5);
  apply_constant_thresholds(communities, 2);
  apply_population_benefits(communities);
  RicPool pool(graph, communities);
  pool.grow(6000, 92);

  CoverageState state(pool);
  for (NodeId v = 0; v < config.nodes; ++v) {
    state.add_seed(v);
    if (state.seeds().size() % 50 == 0 || v + 1 == config.nodes) {
      const double reference = pool.nu(state.seeds());
      const double incremental = state.nu();
      const double scale = std::max(1.0, std::abs(reference));
      EXPECT_LE(std::abs(incremental - reference) / scale, 1e-12)
          << "after " << state.seeds().size() << " seeds";
    }
  }
}

TEST(CoverageState, ExtendMatchesFullRebuild) {
  // Interleave seed additions, pool growth (serial and parallel), and
  // extend() catch-ups; after every extend the incremental state must be
  // operator== to a fresh CoverageState replaying the same seeds on the
  // grown pool — including the BITWISE Kahan-compensated nu_sum.
  Rng rng(91);
  BarabasiAlbertConfig config;
  config.nodes = 200;
  config.attach = 3;
  EdgeList edges = barabasi_albert_edges(config, rng);
  apply_weighted_cascade(edges, config.nodes);
  const Graph graph(config.nodes, edges);
  CommunitySet communities = test::chunk_communities(config.nodes, 5);
  apply_constant_thresholds(communities, 2);
  apply_population_benefits(communities);
  RicPool pool(graph, communities);
  pool.grow(300, 5, /*parallel=*/false);

  const auto check = [&](const CoverageState& state) {
    CoverageState rebuilt(pool);
    for (const NodeId v : state.seeds()) rebuilt.add_seed(v);
    EXPECT_TRUE(state == rebuilt)
        << "after " << state.seeds().size() << " seeds at |R|="
        << pool.size();
  };

  CoverageState state(pool);
  RicPool::PoolEpoch epoch = pool.grow_epoch();
  state.add_seed(1);
  state.add_seed(3);
  check(state);

  pool.grow(500, 5, /*parallel=*/true);
  state.extend(pool, epoch);
  epoch = pool.grow_epoch();
  check(state);

  state.add_seed(0);
  state.add_seed(42);
  pool.grow(800, 5, /*parallel=*/false);
  state.extend(pool, epoch);
  epoch = pool.grow_epoch();
  check(state);

  // Extending with zero new samples is a no-op.
  state.extend(pool, epoch);
  check(state);

  state.add_seed(7);
  pool.grow(400, 5, /*parallel=*/true);
  state.extend(pool, epoch);
  check(state);
}

TEST(CoverageState, ExtendRejectsForeignPoolAndStaleEpoch) {
  const Fixture fixture;
  RicPool pool = make_pool(fixture, 100);
  CoverageState state(pool);
  const RicPool::PoolEpoch epoch = pool.grow_epoch();
  state.add_seed(6);

  const RicPool other = make_pool(fixture, 100);
  EXPECT_THROW(state.extend(other, other.grow_epoch()),
               std::invalid_argument);

  pool.grow(50, 42);
  // An epoch newer than the state's own coverage is rejected too.
  EXPECT_THROW(state.extend(pool, pool.grow_epoch()), std::invalid_argument);
  state.extend(pool, epoch);  // the matching epoch works
  EXPECT_EQ(state.seeds().size(), 1U);

  // The consumed epoch is now stale for this state.
  pool.grow(50, 42);
  EXPECT_THROW(state.extend(pool, epoch), std::invalid_argument);
}

TEST(CoverageState, ThresholdCrossingCounted) {
  const Fixture fixture;
  const RicPool pool = make_pool(fixture);
  CoverageState state(pool);
  state.add_seed(0);
  state.add_seed(1);  // C0 fully covered in its samples now
  EXPECT_EQ(state.influenced(), pool.community_frequency(0));
}

}  // namespace
}  // namespace imc
